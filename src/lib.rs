//! # transitive-array — facade crate
//!
//! Full-system Rust reproduction of **"Transitive Array: An Efficient GEMM
//! Accelerator with Result Reuse"** (ISCA 2025). This crate re-exports the
//! workspace's sub-crates under one roof so applications can depend on a
//! single package:
//!
//! * [`quant`] — quantization schemes, calibration, Table 3 method roster;
//! * [`bitslice`] — 2's-complement bit-slicing, TransRows, im2col;
//! * [`hasse`] — the Hasse-graph Scoreboard (forward/backward passes,
//!   balanced forest, static & dynamic SI);
//! * [`sim`] — hardware substrates (SRAM/DRAM, Benes network, energy/area);
//! * [`core`] — the Transitive Array accelerator itself;
//! * [`baselines`] — BitFusion / ANT / Olive / Tender / BitVert models;
//! * [`models`] — LLaMA & ResNet-18 workloads and synthetic tensors;
//! * [`serve`] — the multi-tenant continuous-batching serving frontend;
//! * [`workloads`] — the workload registry and model zoo (every named
//!   benchmark/figure/example workload, with oracles and seeds);
//! * [`mod@bench`] — the benchmark/report toolkit (scale presets, perf gates).
//!
//! Most applications only need the [`prelude`]:
//!
//! ```
//! use transitive_array::prelude::*;
//!
//! let session = Session::new(TransArrayConfig::builder().build()?)?;
//! # Ok::<(), TaError>(())
//! ```
//!
//! See `examples/quickstart.rs` for the 60-second tour and DESIGN.md for
//! the system inventory.

#![forbid(unsafe_code)]

pub use ta_baselines as baselines;
pub use ta_bench as bench;
pub use ta_bitslice as bitslice;
pub use ta_core as core;
pub use ta_hasse as hasse;
pub use ta_models as models;
pub use ta_quant as quant;
pub use ta_serve as serve;
pub use ta_sim as sim;
pub use ta_workloads as workloads;

/// The one-import surface for applications: the request API
/// ([`Session`](prelude::Session) and friends), its error types, the
/// serving frontend, the word-parallel [`kernels`](prelude::kernels)
/// facade, and the handful of support types they mention.
pub mod prelude {
    pub use ta_bench::Scale;
    pub use ta_bitslice::kernels;
    pub use ta_core::error::{ConfigError, TaError};
    pub use ta_core::{
        ConfigBuilder, GemmReport, GemmRequest, GemmResponse, GemmShape, ScoreboardMode, Session,
        TransArrayConfig, TransitiveArray,
    };
    pub use ta_hasse::{NullSink, ResultSink, VecSink};
    pub use ta_quant::{gemm_i32, MatI32};
    pub use ta_serve::{
        BatchPolicy, ClockMode, FaultConfig, FaultSite, FaultStats, RejectReason, ServeError,
        ServeResponse, Server, ServerConfig, ServerStats, SloPolicy, StreamEvent, StreamTicket,
        Ticket,
    };
}

/// The workspace version, shared by all sub-crates.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
