//! Chaos suite: the serving stack under deterministic fault injection.
//!
//! Every round arms **all** fault sites (`worker_panic`, `queue_stall`,
//! `batcher_delay`) from a seeded [`FaultConfig`] and replays a seeded
//! mixed plain/streaming trace, then proves the liveness-and-typed-
//! errors contract:
//!
//! * **no hangs** — every ticket is waited with a hard
//!   [`Ticket::wait_timeout`]; a `Timeout` here is a test failure, not
//!   an accepted outcome;
//! * **typed errors only** — a faulted request resolves as
//!   `ServeError::WorkerLost`, never a panic escaping the server and
//!   never a silently dropped reply;
//! * **bit-exactness for survivors** — every `Ok` response matches a
//!   direct serial run bit-for-bit, even when the worker that served it
//!   was respawned mid-trace;
//! * **terminal stream events** — every stream ends with exactly one
//!   `Done` whose payload agrees with the ticket's outcome.
//!
//! Fault decisions come from counter-mode splitmix64 streams (no
//! wall-clock randomness), so a failing round is replayable from the
//! seed line this suite appends to `target/chaos/chaos_seeds.log` (or
//! `$TA_CHAOS_LOG`) — the file CI uploads as an artifact.

use std::io::Write as _;
use std::time::Duration;

use transitive_array::prelude::*;
use transitive_array::serve::faultpoint::quiet_injected_panics;
use transitive_array::serve::loadgen::{poisson_trace, request_for};

const WEIGHT_BITS: u32 = 4;
const ACT_BITS: u32 = 8;

/// Hard upper bound on any single wait. A healthy round resolves in
/// milliseconds; hitting this means a request hung, which is exactly
/// the bug class this suite exists to catch.
const NO_HANG: Duration = Duration::from_secs(30);

fn session(threads: usize) -> Session {
    let cfg = TransArrayConfig::builder()
        .width(4)
        .max_transrows(16)
        .weight_bits(WEIGHT_BITS)
        .units(2)
        .m_tile(4)
        .threads(threads)
        .sample_limit(0)
        .build()
        .expect("valid chaos configuration");
    Session::new(cfg).expect("session opens")
}

fn shapes() -> Vec<GemmShape> {
    vec![GemmShape::new(8, 16, 3), GemmShape::new(8, 16, 4), GemmShape::new(12, 16, 5)]
}

/// Appends one replay line per round to the chaos seed log (uploaded
/// as a CI artifact), so any failure names the exact `(seed, rate,
/// workers)` triple that reproduces it.
fn log_round(label: &str, seed: u64, rate_ppm: u32, workers: usize) {
    let path = std::env::var("TA_CHAOS_LOG")
        .unwrap_or_else(|_| "target/chaos/chaos_seeds.log".to_string());
    let path = std::path::PathBuf::from(path);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(
            f,
            "{label}: TA_FAULTS=seed={seed},rate_ppm={rate_ppm},sites=all workers={workers}"
        );
    }
}

/// One chaos round: all fault sites armed at `rate_ppm`, a seeded
/// mixed plain/streaming trace of `count` requests on `workers`
/// workers. Returns `(completed, worker_lost)`.
fn chaos_round(label: &str, seed: u64, rate_ppm: u32, workers: usize, count: usize) -> (u64, u64) {
    quiet_injected_panics();
    log_round(label, seed, rate_ppm, workers);
    let faults = FaultConfig::new(seed, rate_ppm).all_sites();
    let config = ServerConfig {
        workers,
        policy: BatchPolicy { max_batch: 4, max_delay_ns: 50_000, quantum_m: 4 },
        faults: Some(faults),
        ..ServerConfig::default()
    };
    let server = Server::start(session(workers), config);
    let direct = session(1);
    let trace = poisson_trace(seed, count, 200, 3, &shapes());

    // Mixed submission: even arrivals plain, odd arrivals streaming.
    let mut plain = Vec::new();
    let mut streaming = Vec::new();
    for (i, arrival) in trace.iter().enumerate() {
        let request = request_for(arrival, WEIGHT_BITS, ACT_BITS);
        if i % 2 == 0 {
            plain.push((arrival, server.submit(arrival.tenant, request).expect("valid request")));
        } else {
            let st =
                server.submit_streaming(arrival.tenant, request).expect("valid stream request");
            streaming.push((arrival, st));
        }
    }

    let (mut completed, mut worker_lost) = (0u64, 0u64);
    let mut check = |arrival: &transitive_array::serve::loadgen::Arrival,
                     outcome: Result<ServeResponse, ServeError>|
     -> bool {
        match outcome {
            Ok(resp) => {
                let want = direct
                    .run_serial(request_for(arrival, WEIGHT_BITS, ACT_BITS))
                    .expect("direct run succeeds");
                assert_eq!(
                    resp.response.output, want.output,
                    "{label}: surviving response must stay bit-identical at {arrival:?}"
                );
                completed += 1;
                true
            }
            Err(ServeError::WorkerLost) => {
                worker_lost += 1;
                false
            }
            Err(ServeError::Timeout { waited_ns }) => {
                panic!("{label}: request hung for {waited_ns} ns — liveness violated")
            }
            Err(e) => panic!("{label}: untyped/unexpected outcome {e}"),
        }
    };

    for (arrival, mut ticket) in plain {
        check(arrival, ticket.wait_timeout(NO_HANG));
    }
    for (arrival, mut st) in streaming {
        let ok = check(arrival, st.ticket.wait_timeout(NO_HANG));
        // The ticket resolved, so the terminal event is already sent
        // (streams resolve before the reply on every server path).
        let events: Vec<_> = st.events.try_iter().collect();
        let terminal: Vec<_> =
            events.iter().filter(|e| matches!(e, StreamEvent::Done(_))).collect();
        assert_eq!(terminal.len(), 1, "{label}: exactly one terminal Done per stream");
        match (ok, terminal[0]) {
            (true, StreamEvent::Done(Ok(()))) => {}
            (false, StreamEvent::Done(Err(ServeError::WorkerLost))) => {}
            (got, other) => {
                panic!("{label}: stream terminal {other:?} disagrees with ticket ok={got}")
            }
        }
    }

    let fault_stats = server.fault_stats();
    assert_eq!(
        fault_stats.decisions(FaultSite::WorkerPanic),
        count as u64,
        "{label}: one worker-panic decision per executed request"
    );
    assert_eq!(
        fault_stats.fired(FaultSite::WorkerPanic),
        worker_lost,
        "{label}: every fired worker panic is a typed WorkerLost"
    );
    let stats = server.shutdown();
    assert_eq!(stats.completed, completed, "{label}: completion accounting");
    assert_eq!(stats.worker_lost, worker_lost, "{label}: loss accounting");
    assert_eq!(completed + worker_lost, count as u64, "{label}: every request resolves");
    assert!(stats.respawned <= worker_lost, "{label}: at most one respawn per lost request");
    assert!(worker_lost == 0 || stats.respawned >= 1, "{label}: losses must respawn workers");
    (completed, worker_lost)
}

#[test]
fn chaos_all_sites_one_worker() {
    let (completed, lost) = chaos_round("chaos_w1", 0xC4A0_5001, 250_000, 1, 24);
    assert!(completed > 0 && lost > 0, "25% must mix outcomes (completed={completed} lost={lost})");
}

#[test]
fn chaos_all_sites_two_workers() {
    let (completed, lost) = chaos_round("chaos_w2", 0xC4A0_5002, 250_000, 2, 24);
    assert!(completed > 0 && lost > 0, "25% must mix outcomes (completed={completed} lost={lost})");
}

#[test]
fn chaos_all_sites_eight_workers() {
    let (completed, lost) = chaos_round("chaos_w8", 0xC4A0_5008, 250_000, 8, 32);
    assert!(completed > 0 && lost > 0, "25% must mix outcomes (completed={completed} lost={lost})");
}

#[test]
fn chaos_full_rate_loses_everything_yet_never_hangs() {
    // Every decision fires: every request is a WorkerLost, the pool
    // respawns continuously, and nothing hangs or escapes untyped.
    let (completed, lost) = chaos_round("chaos_full_rate", 0xC4A0_50FF, 1_000_000, 2, 16);
    assert_eq!((completed, lost), (0, 16));
}

#[test]
fn chaos_shutdown_mid_storm_resolves_every_ticket() {
    // Shutdown while faulted requests are still in flight: stop() must
    // drain the queue and every ticket must still resolve as a typed
    // outcome (served or WorkerLost), never a hang or dropped reply.
    quiet_injected_panics();
    log_round("chaos_shutdown", 0xC4A0_5D0D, 500_000, 2);
    let faults = FaultConfig::new(0xC4A0_5D0D, 500_000).all_sites();
    let config = ServerConfig {
        workers: 2,
        policy: BatchPolicy { max_batch: 2, max_delay_ns: 20_000, quantum_m: 1 },
        faults: Some(faults),
        ..ServerConfig::default()
    };
    let server = Server::start(session(2), config);
    let direct = session(1);
    let trace = poisson_trace(0xC4A0_5D0D, 16, 100, 2, &shapes());
    let tickets: Vec<_> = trace
        .iter()
        .map(|a| (a, server.submit(a.tenant, request_for(a, WEIGHT_BITS, ACT_BITS)).unwrap()))
        .collect();
    let stats = server.shutdown();
    assert_eq!(stats.completed + stats.worker_lost, 16, "shutdown must drain the storm");
    for (arrival, mut ticket) in tickets {
        match ticket.wait_timeout(NO_HANG) {
            Ok(resp) => {
                let want = direct.run_serial(request_for(arrival, WEIGHT_BITS, ACT_BITS)).unwrap();
                assert_eq!(resp.response.output, want.output, "drained response diverged");
            }
            Err(ServeError::WorkerLost) => {}
            Err(e) => panic!("untyped outcome after shutdown: {e}"),
        }
    }
}

#[test]
fn chaos_rounds_replay_identically_from_their_seed() {
    // The whole point of seeded injection: the same (seed, rate,
    // workers, trace) round lands the same worker-panic fault count.
    let a = chaos_round("chaos_replay_a", 0xC4A0_5EED, 250_000, 1, 24);
    let b = chaos_round("chaos_replay_b", 0xC4A0_5EED, 250_000, 1, 24);
    assert_eq!(a, b, "same seed must produce identical (completed, lost) counts");
}
