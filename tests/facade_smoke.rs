//! Workspace smoke test: every `transitive_array` facade re-export resolves
//! and the cross-crate pipeline the README advertises actually runs.
//!
//! This is deliberately shallow — deep behaviour is covered by each crate's
//! own tests and the other integration suites. What this guards is the
//! facade wiring itself: a sub-crate dropped from `src/lib.rs` (or a renamed
//! re-export) fails here even if the sub-crate's tests still pass.

use transitive_array::baselines::Baseline;
use transitive_array::bitslice::BitSlicedMatrix;
use transitive_array::core::{GemmShape, TransArrayConfig, TransitiveArray};
use transitive_array::hasse::{Scoreboard, ScoreboardConfig};
use transitive_array::models::resnet18_layers;
use transitive_array::quant::{gemm_i32, MatI32};
use transitive_array::sim::{BenesNetwork, EnergyModel};

#[test]
fn version_constant_resolves() {
    assert!(!transitive_array::VERSION.is_empty());
}

#[test]
fn every_subcrate_is_reachable_through_the_facade() {
    // quant: dense integer reference GEMM.
    let w = MatI32::from_fn(4, 8, |r, c| (r as i32 * 3 + c as i32) % 7 - 3);
    let x = MatI32::from_fn(8, 2, |r, c| (r as i32 - c as i32) * 2);
    let dense = gemm_i32(&w, &x);
    assert_eq!(dense.rows(), 4);
    assert_eq!(dense.cols(), 2);

    // bitslice: slice/reconstruct round-trip.
    let sliced = BitSlicedMatrix::slice(&w, 4);
    assert_eq!(sliced.reconstruct(), w);

    // hasse: a Scoreboard builds from a handful of patterns.
    let sb = Scoreboard::build(ScoreboardConfig::with_width(4), [0b1010u16, 0b0110, 0b1111]);
    assert!(sb.active_nodes().count() > 0);

    // sim: the Benes network routes the identity permutation.
    let net = BenesNetwork::new(8);
    let perm: Vec<usize> = (0..8).collect();
    let routing = net.route(&perm);
    assert_eq!(net.apply(&routing, &perm), perm);

    // core: the accelerator agrees with the dense reference.
    let cfg = TransArrayConfig {
        width: 4,
        max_transrows: 8,
        weight_bits: 4,
        m_tile: 2,
        sample_limit: 0,
        ..TransArrayConfig::paper_w8()
    };
    let (out, report) = TransitiveArray::new(cfg).execute_gemm(&w, &x);
    assert_eq!(out, dense);
    assert!(report.density <= 1.0 + 1e-9);

    // baselines: a named baseline simulates a small shape.
    let shape = GemmShape { n: 16, k: 16, m: 16 };
    let rep = Baseline::bitfusion().simulate_gemm(shape, 8, 8, &EnergyModel::paper_28nm());
    assert!(rep.cycles > 0);

    // models: the ResNet-18 roster is non-empty.
    assert!(!resnet18_layers().is_empty());
}
