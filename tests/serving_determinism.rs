//! The serving frontend's headline guarantee, tested end to end: a
//! request served through the full stack (admission queue → tenant
//! round-robin → shape-bucketing batcher → continuous-batching worker
//! pool) returns the **same bits** as calling the session directly —
//! output matrix and full `GemmReport` — across every combination of
//! worker count and batching budget.
//!
//! Arrival traces are seeded (`ta_serve::loadgen`), so every run
//! replays the identical workload; nothing here depends on timing.

use transitive_array::prelude::*;
use transitive_array::serve::loadgen::{bursty_trace, poisson_trace, request_for};

const WEIGHT_BITS: u32 = 4;
const ACT_BITS: u32 = 8;

fn session(threads: usize) -> Session {
    let cfg = TransArrayConfig::builder()
        .width(4)
        .max_transrows(16)
        .weight_bits(WEIGHT_BITS)
        .units(2)
        .m_tile(4)
        .threads(threads)
        .sample_limit(0)
        .build()
        .expect("valid test configuration");
    Session::new(cfg).expect("session opens")
}

fn shapes() -> Vec<GemmShape> {
    vec![
        GemmShape::new(8, 16, 3),
        GemmShape::new(8, 16, 4),
        GemmShape::new(12, 16, 5),
        GemmShape::new(16, 32, 2),
    ]
}

/// Served responses must equal direct execution bit-for-bit — output
/// *and* full report — for every (worker count, batch budget) combo.
#[test]
fn served_equals_direct_across_threads_and_batch_budgets() {
    let direct = session(1);
    let shapes = shapes();
    for threads in [1usize, 2, 8] {
        for max_batch in [1usize, 2, 8] {
            let policy = BatchPolicy { max_batch, max_delay_ns: 50_000, quantum_m: 1 };
            let server = Server::start(
                session(threads),
                ServerConfig { workers: threads, policy, ..ServerConfig::default() },
            );
            let trace = poisson_trace(0xD5 + max_batch as u64, 20, 200, 3, &shapes);
            let tickets: Vec<_> = trace
                .iter()
                .map(|a| {
                    server
                        .submit(a.tenant, request_for(a, WEIGHT_BITS, ACT_BITS))
                        .expect("trace requests are valid")
                })
                .collect();
            for (ticket, arrival) in tickets.into_iter().zip(&trace) {
                let served = ticket.wait().expect("server answers every request");
                let want = direct
                    .run_serial(request_for(arrival, WEIGHT_BITS, ACT_BITS))
                    .expect("direct run succeeds");
                assert_eq!(
                    served.response, want,
                    "threads={threads} max_batch={max_batch} arrival={arrival:?}"
                );
            }
            let stats = server.shutdown();
            assert_eq!(stats.completed, 20);
            assert_eq!(stats.padded, 0, "quantum 1 must never pad");
        }
    }
}

/// Same guarantee under a bursty arrival pattern with width-quantized
/// buckets: outputs still match the direct run exactly (padding is
/// sliced back off), and at least one request was actually padded so
/// the exactness claim is exercised, not vacuous.
#[test]
fn bursty_padded_serving_stays_exact() {
    let direct = session(1);
    let shapes = shapes();
    let policy = BatchPolicy { max_batch: 4, max_delay_ns: 20_000, quantum_m: 4 };
    let server =
        Server::start(session(2), ServerConfig { workers: 2, policy, ..ServerConfig::default() });
    let trace = bursty_trace(0xB0B, 24, 500, 6, 2, &shapes);
    let tickets: Vec<_> = trace
        .iter()
        .map(|a| server.submit(a.tenant, request_for(a, WEIGHT_BITS, ACT_BITS)).unwrap())
        .collect();
    for (ticket, arrival) in tickets.into_iter().zip(&trace) {
        let served = ticket.wait().unwrap();
        let want = direct.run_serial(request_for(arrival, WEIGHT_BITS, ACT_BITS)).unwrap();
        assert_eq!(
            served.response.output, want.output,
            "padded serving changed output bits for {arrival:?}"
        );
        assert_eq!(served.response.output.as_ref().unwrap().cols(), arrival.shape.m);
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 24);
    assert!(stats.padded > 0, "m=3/m=5 shapes under quantum 4 must pad");
}

/// Streaming a served request changes nothing: the final response is
/// bit-identical and the streamed chunks reassemble consistently.
#[test]
fn streamed_serving_is_bit_identical_too() {
    let direct = session(1);
    let shapes = shapes();
    let server = Server::start(session(2), ServerConfig::default());
    let trace = poisson_trace(0x57A, 8, 100, 2, &shapes);
    for arrival in &trace {
        let st = server
            .submit_streaming(arrival.tenant, request_for(arrival, WEIGHT_BITS, ACT_BITS))
            .unwrap();
        let served = st.ticket.wait().unwrap();
        let want = direct.run_serial(request_for(arrival, WEIGHT_BITS, ACT_BITS)).unwrap();
        assert_eq!(served.response, want, "streaming diverged for {arrival:?}");
        let events: Vec<_> = st.events.try_iter().collect();
        let chunks: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::Chunk(c) => Some(c),
                StreamEvent::Done(_) => None,
            })
            .collect();
        assert!(!chunks.is_empty(), "execute requests must stream chunks");
        assert!(chunks.iter().all(|c| c.values.len() == arrival.shape.m));
        assert_eq!(
            events.last(),
            Some(&StreamEvent::Done(Ok(()))),
            "streams must end with a terminal Done"
        );
    }
    server.shutdown();
}
