//! Cross-crate integration: the comparative claims of the evaluation
//! must hold when the TransArray simulator and the baseline models run
//! the same workloads.

use transitive_array::baselines::{bit_sparsity_density, Baseline};
use transitive_array::core::{GemmShape, PatternSource, TransArrayConfig, TransitiveArray};
use transitive_array::models::{LlamaConfig, QuantGaussianSource, UniformBitSource, PAPER_SEQ_LEN};
use transitive_array::sim::EnergyModel;

fn ta(cfg: TransArrayConfig, sample: usize) -> TransitiveArray {
    TransitiveArray::new(TransArrayConfig { sample_limit: sample, ..cfg })
}

#[test]
fn ta8_beats_every_baseline_on_llama_fc() {
    let em = EnergyModel::paper_28nm();
    let layer = LlamaConfig::l1_7b().fc_layers(PAPER_SEQ_LEN)[0];
    let shape = GemmShape::new(layer.shape.n, layer.shape.k, layer.shape.m);

    let accel = ta(TransArrayConfig::paper_w8(), 256);
    let mut src = QuantGaussianSource::new(8, 8, accel.config().n_tile(), 3);
    let ta_rep = accel.simulate_layer(shape, &mut src);

    for b in Baseline::roster() {
        // Iso-precision (8-bit weights; Tender shown at its 4-bit config
        // elsewhere).
        let rep = b.simulate_gemm(shape, 8, 8, &em);
        assert!(
            ta_rep.cycles < rep.cycles,
            "TA-8bit ({}) must beat {} ({})",
            ta_rep.cycles,
            b.name(),
            rep.cycles
        );
    }
}

#[test]
fn ta4_speedup_over_olive_in_paper_band() {
    // Paper: 7.46× over Olive at iso-accuracy (W4 vs Olive's W8).
    let em = EnergyModel::paper_28nm();
    let layer = LlamaConfig::l1_7b().fc_layers(PAPER_SEQ_LEN)[0];
    let shape = GemmShape::new(layer.shape.n, layer.shape.k, layer.shape.m);
    let accel = ta(TransArrayConfig::paper_w4(), 256);
    let mut src = QuantGaussianSource::new(8, 4, accel.config().n_tile(), 5);
    let ta_rep = accel.simulate_layer(shape, &mut src);
    let olive = Baseline::olive().simulate_gemm(shape, 8, 8, &em);
    let speedup = olive.cycles as f64 / ta_rep.cycles as f64;
    assert!((5.0..9.5).contains(&speedup), "TA-4bit vs Olive speedup {speedup} (paper: 7.46)");
}

#[test]
fn transitive_density_beats_bit_sparsity_by_about_4x() {
    // §5.5: 8× over dense and 4× over bit sparsity at 8-bit.
    let accel = ta(TransArrayConfig::paper_w8(), 128);
    let mut src = UniformBitSource::new(8, 256, 17);
    let rep = accel.simulate_layer(GemmShape::new(1024, 1024, 64), &mut src);
    let mut src2 = UniformBitSource::new(8, 256, 17);
    let mut bit_density = 0.0;
    for t in 0..32 {
        bit_density += bit_sparsity_density(&src2.subtile_patterns(t, 0), 8);
    }
    bit_density /= 32.0;
    let ratio = bit_density / rep.density;
    assert!((3.0..5.0).contains(&ratio), "bit/transitive density ratio {ratio} (paper: ~4x)");
}

#[test]
fn attention_unsupported_baselines_are_flagged() {
    // §5.7: Olive, Tender and BitVert cannot run attention.
    for b in Baseline::roster() {
        let expected = matches!(b.name(), "BitFusion" | "ANT");
        assert_eq!(b.supports_attention(), expected, "{}", b.name());
    }
}

#[test]
fn memory_bound_layers_converge_across_accelerators() {
    // A GEMV-like decode shape (M=1) streams the whole weight matrix per
    // output element: DRAM-bound for everyone, so cycles differ by
    // bandwidth, not PEs — the ratio must collapse toward 1.
    let em = EnergyModel::paper_28nm();
    let shape = GemmShape::new(8192, 16384, 1);
    let ant = Baseline::ant().simulate_gemm(shape, 8, 8, &em);
    let olive = Baseline::olive().simulate_gemm(shape, 8, 8, &em);
    let ratio = olive.cycles as f64 / ant.cycles as f64;
    assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    assert!(ant.dram_cycles >= ant.compute_cycles);
}
