//! Integration tests pinning the reproduction to the paper's *printed
//! numbers* — the quantitative anchors of the evaluation section.

use transitive_array::bitslice::{bitonic_depth, BitSlicedMatrix};
use transitive_array::core::PatternSource;
use transitive_array::hasse::{Scoreboard, ScoreboardConfig, StaticSi, TileStats};
use transitive_array::models::UniformBitSource;
use transitive_array::quant::MatI32;
use transitive_array::sim::{transarray_area, BenesNetwork, EnergyModel};

#[test]
fn fig1_motivating_example_op_counts() {
    // Fig. 1: rows 1011, 1111, 0011, 0010 — dense GEMM 16 ops, bit
    // sparsity 10 ops, transitive sparsity 4 ops.
    let patterns = [0b1011u16, 0b1111, 0b0011, 0b0010];
    let dense: u64 = 4 * 4;
    let bits: u64 = patterns.iter().map(|p| p.count_ones() as u64).sum();
    let sb = Scoreboard::build(ScoreboardConfig::with_width(4), patterns);
    let trans = TileStats::from_scoreboard(&sb).total_ops;
    assert_eq!(dense, 16);
    assert_eq!(bits, 10);
    assert_eq!(trans, 4);
}

#[test]
fn abstract_speedup_claim_8x_over_dense() {
    // "transitive sparsity theoretically reduces overall computations by
    // 8× (i.e., 87.5% sparsity)" for 8-bit at the paper's tile size.
    let mut src = UniformBitSource::new(8, 256, 9);
    let mut total: Option<TileStats> = None;
    for t in 0..16 {
        let sb = Scoreboard::build(ScoreboardConfig::with_width(8), src.subtile_patterns(t, 0));
        let s = TileStats::from_scoreboard(&sb);
        match &mut total {
            None => total = Some(s),
            Some(acc) => acc.merge(&s),
        }
    }
    let density = total.unwrap().density();
    assert!(
        (0.118..0.135).contains(&density),
        "density {density} should be ≈ 1/8 (87.5% sparsity)"
    );
}

#[test]
fn si_storage_is_512_bytes_at_8bit() {
    // §3.2: "When T = 8, the SI needs only 512 Bytes of memory."
    let si = StaticSi::from_patterns(ScoreboardConfig::with_width(8), [1u16, 2, 3]);
    assert_eq!(si.storage_bits() / 8, 512);
}

#[test]
fn parallelism_levels_match_section_2_4() {
    // §2.4: level S/2 parallelism is C(4,2)=6 for 4-bit, C(8,4)=70 for
    // 8-bit; the chosen granularity is level 1: 4 and 8 lanes.
    use transitive_array::bitslice::binomial;
    assert_eq!(binomial(4, 2), 6);
    assert_eq!(binomial(8, 4), 70);
    let sb4 = ScoreboardConfig::with_width(4);
    let sb8 = ScoreboardConfig::with_width(8);
    assert_eq!(sb4.effective_lanes(), 4);
    assert_eq!(sb8.effective_lanes(), 8);
}

#[test]
fn table2_core_areas() {
    // TransArray core 0.443 mm² (6 units), smallest in the roster.
    let a = transarray_area(6, 8, 32, 480.0);
    assert!((a.core_mm2() - 0.443).abs() < 0.015, "{}", a.core_mm2());
}

#[test]
fn benes_depth_quoted_by_paper() {
    // §4.4: "only 2 log(N) + 1 levels" counting terminal stages — our
    // switch-stage count for the 8-way net is 2·3−1 = 5 (+2 terminal
    // wiring levels = the paper's 7 for N=8).
    let net = BenesNetwork::new(8);
    assert_eq!(net.depth(), 5);
    assert_eq!(net.depth() + 2, 2 * 3 + 1);
}

#[test]
fn scoreboard_throughput_bound_section_4_6() {
    // min(n, 2^T)/T < n/T for n > 2^T: with 512 rows at T=8 the
    // Scoreboard needs 32 cycle-groups, half of the 64 PPE/APE would use.
    let patterns: Vec<u16> = (0..512u32).map(|i| (i % 256) as u16).collect();
    let sb = Scoreboard::build(ScoreboardConfig::with_width(8), patterns);
    let stats = TileStats::from_scoreboard(&sb);
    assert_eq!(stats.scoreboard_cycles, 32);
    assert!(stats.scoreboard_cycles <= stats.ape_cycles());
    // And the sorter depth for 256-row tiles is 36 stages.
    assert_eq!(bitonic_depth(256), 36);
}

#[test]
fn distance_gt1_rows_are_rare_at_design_point() {
    // §4.6: "only approximately 1.67% of TransRows in our design have
    // distances greater than 1" (8-bit, 256-row tiles).
    let mut src = UniformBitSource::new(8, 256, 31);
    let mut gt1 = 0u64;
    let mut rows = 0u64;
    for t in 0..32 {
        let sb = Scoreboard::build(ScoreboardConfig::with_width(8), src.subtile_patterns(t, 0));
        let s = TileStats::from_scoreboard(&sb);
        gt1 += s.distance_rows[2..].iter().sum::<u64>() + s.outlier_rows as u64;
        rows += s.rows as u64;
    }
    let frac = gt1 as f64 / rows as f64;
    assert!(frac < 0.05, "distance>1 fraction {frac} (paper: ~1.67%)");
}

#[test]
fn energy_model_motivates_multiplication_free() {
    // The architectural pitch: a 12-bit adder is far cheaper than the
    // baselines' multipliers.
    let e = EnergyModel::paper_28nm();
    assert!(e.mult_pj(8) / e.add_pj(12) > 4.0);
}

#[test]
fn quantized_llama_like_matrix_round_trips_at_scale() {
    // A bigger slice-reconstruct at int8 (the Fig. 2 pipeline).
    let w = MatI32::from_fn(64, 96, |r, c| (((r * 96 + c) as i64 * 2654435761 % 255) - 127) as i32);
    let sliced = BitSlicedMatrix::slice(&w, 8);
    assert_eq!(sliced.reconstruct(), w);
    assert_eq!(sliced.binary_rows(), 512);
}
