//! Edge-shape integration tests: the tiling engine must stay exact when
//! dimensions don't divide the tile sizes — skinny K, tall N, single
//! columns, and the paper's full 8-bit width on tiny matrices.

use transitive_array::core::{ScoreboardMode, TransArrayConfig, TransitiveArray};
use transitive_array::models::StreamRng;
use transitive_array::quant::{gemm_i32, MatI32};

fn gauss_mat(rows: usize, cols: usize, bits: u32, seed: u64) -> MatI32 {
    let qmax = (1i32 << (bits - 1)) - 1;
    let mut rng = StreamRng::new(seed);
    MatI32::from_fn(rows, cols, |_, _| {
        ((rng.next_gaussian() * qmax as f32 / 3.0).round() as i32).clamp(-qmax - 1, qmax)
    })
}

fn paper_cfg(weight_bits: u32, mode: ScoreboardMode) -> TransArrayConfig {
    // The real T=8 design point, small unit count for test speed.
    TransArrayConfig {
        weight_bits,
        units: 2,
        sample_limit: 0,
        scoreboard_mode: mode,
        ..if weight_bits == 4 { TransArrayConfig::paper_w4() } else { TransArrayConfig::paper_w8() }
    }
}

#[test]
fn k_smaller_than_transrow_width() {
    // K = 3 < T = 8: every sub-tile is column-padded.
    let w = gauss_mat(5, 3, 8, 1);
    let x = gauss_mat(3, 4, 8, 2);
    let ta = TransitiveArray::new(paper_cfg(8, ScoreboardMode::Dynamic));
    let (out, _) = ta.execute_gemm(&w, &x);
    assert_eq!(out, gemm_i32(&w, &x));
}

#[test]
fn n_smaller_than_weight_tile() {
    // N = 3 < n_tile = 32: row padding.
    let w = gauss_mat(3, 20, 8, 3);
    let x = gauss_mat(20, 5, 8, 4);
    let ta = TransitiveArray::new(paper_cfg(8, ScoreboardMode::Dynamic));
    let (out, _) = ta.execute_gemm(&w, &x);
    assert_eq!(out, gemm_i32(&w, &x));
}

#[test]
fn single_column_gemv() {
    // M = 1 (decode-style GEMV).
    let w = gauss_mat(40, 24, 4, 5);
    let x = gauss_mat(24, 1, 8, 6);
    let ta = TransitiveArray::new(paper_cfg(4, ScoreboardMode::Dynamic));
    let (out, _) = ta.execute_gemm(&w, &x);
    assert_eq!(out, gemm_i32(&w, &x));
}

#[test]
fn one_by_one_matrix() {
    let w = MatI32::from_rows(&[&[-8]]);
    let x = MatI32::from_rows(&[&[127]]);
    let ta = TransitiveArray::new(paper_cfg(4, ScoreboardMode::Dynamic));
    let (out, _) = ta.execute_gemm(&w, &x);
    assert_eq!(out.get(0, 0), -8 * 127);
}

#[test]
fn full_width_static_mode_with_ragged_dims() {
    // Static SI at T=8 with dimensions that divide nothing.
    let w = gauss_mat(37, 53, 8, 7);
    let x = gauss_mat(53, 11, 8, 8);
    let ta = TransitiveArray::new(paper_cfg(8, ScoreboardMode::Static));
    let (out, rep) = ta.execute_gemm(&w, &x);
    assert_eq!(out, gemm_i32(&w, &x));
    assert!(rep.si_misses > 0 || rep.total_ops > 0);
}

#[test]
fn extreme_values_saturate_without_overflow() {
    // All-extreme int8 weights × all-extreme int8 inputs at K large
    // enough to stress the accumulators but not i32.
    let w = MatI32::from_fn(4, 64, |_, c| if c % 2 == 0 { -128 } else { 127 });
    let x = MatI32::from_fn(64, 3, |r, _| if r % 2 == 0 { 127 } else { -128 });
    let ta = TransitiveArray::new(paper_cfg(8, ScoreboardMode::Dynamic));
    let (out, _) = ta.execute_gemm(&w, &x);
    assert_eq!(out, gemm_i32(&w, &x));
}

#[test]
fn all_same_pattern_tile_hits_the_density_floor() {
    // A rank-deficient weight (identical rows) turns almost every row
    // into an FR after the first — but FR rows still cost one accumulate
    // each, so density sits exactly at the paper's 1/T floor ("we must
    // perform at least one accumulation operation for every T-bit
    // element", §5.2) instead of below it.
    let row: Vec<i32> = (0..32).map(|c| ((c * 7) % 255) - 127).collect();
    let w = MatI32::from_fn(32, 32, |_, c| row[c]);
    let x = gauss_mat(32, 8, 8, 9);
    let ta = TransitiveArray::new(paper_cfg(8, ScoreboardMode::Dynamic));
    let (out, rep) = ta.execute_gemm(&w, &x);
    assert_eq!(out, gemm_i32(&w, &x));
    assert!(
        (0.120..0.132).contains(&rep.density),
        "density {} should pin to 1/T = 0.125",
        rep.density
    );
}
