//! Cross-crate integration: the complete pipeline FP32 → quantize →
//! bit-slice → Scoreboard → Transitive Array must be lossless at the
//! integer level and match the FP32 reference within quantization error.

use transitive_array::core::{ScoreboardMode, TransArrayConfig, TransitiveArray};
use transitive_array::models::{llm_activation_matrix, llm_weight_matrix, StreamRng};
use transitive_array::quant::{
    calibrate, dequantize, gemm_f32, gemm_i32, nmse, quantize, Granularity, MatF32, MatI32,
    QuantScheme,
};

fn small_cfg(weight_bits: u32, mode: ScoreboardMode) -> TransArrayConfig {
    TransArrayConfig {
        width: 4,
        max_transrows: weight_bits as usize * 4,
        weight_bits,
        units: 2,
        m_tile: 8,
        sample_limit: 0,
        scoreboard_mode: mode,
        ..TransArrayConfig::paper_w8()
    }
}

#[test]
fn fp32_to_accelerator_end_to_end() {
    // LLM-like FP32 tensors.
    let w_f = llm_weight_matrix(24, 40, 1);
    let a_f = llm_activation_matrix(40, 12, 2);

    // Quantize both sides at W8A8 per-channel (plain PTQ; the W4 recipe
    // needs the SmoothQuant migration — see ta-quant's TaQuant — which is
    // exercised by the Table 3 tests).
    let w_scheme = QuantScheme::new(8, Granularity::PerChannel);
    let a_scheme = QuantScheme::new(8, Granularity::PerChannel);
    let wp = calibrate(&w_f, w_scheme);
    let ap = calibrate(&a_f, a_scheme);
    let w_q = quantize(&w_f, &wp);
    let a_q = quantize(&a_f, &ap);

    // Integer losslessness on the accelerator.
    let ta = TransitiveArray::new(small_cfg(8, ScoreboardMode::Dynamic));
    let (out, report) = ta.execute_gemm(&w_q, &a_q);
    assert_eq!(out, gemm_i32(&w_q, &a_q), "accelerator must be bit-exact");
    assert!(report.density < 0.6, "density {}", report.density);

    // The dequantized result approximates the FP32 GEMM: compare against
    // the fake-quantized reference (the quantizer's own error bound).
    let w_hat = dequantize(&w_q, &wp);
    let a_hat = dequantize(&a_q, &ap);
    let fq_reference = gemm_f32(&w_hat, &a_hat);
    let fp_reference = gemm_f32(&w_f, &a_f);
    // The accelerator output, rescaled, must be (near) identical to the
    // fake-quant reference…
    let out_f = MatF32::from_fn(out.rows(), out.cols(), |r, c| {
        // Per-channel w scale × per-feature a scales do not factor out of
        // the sum exactly, so compare the integer path against the same
        // integer path computed densely instead.
        out.get(r, c) as f32
    });
    let dense_int = gemm_i32(&w_q, &a_q);
    let dense_f =
        MatF32::from_fn(dense_int.rows(), dense_int.cols(), |r, c| dense_int.get(r, c) as f32);
    assert_eq!(out_f.as_slice(), dense_f.as_slice());
    // …and the fake-quant reference is close to FP32 (sanity on the
    // quantization substrate itself).
    let e = nmse(&fp_reference, &fq_reference);
    assert!(e < 0.05, "quantization pipeline error too large: {e}");
}

#[test]
fn both_modes_agree_on_every_seed() {
    for seed in 0..8u64 {
        let mut rng = StreamRng::new(seed);
        let w = MatI32::from_fn(12, 20, |_, _| {
            ((rng.next_gaussian() * 3.0).round() as i32).clamp(-8, 7)
        });
        let x = MatI32::from_fn(20, 6, |_, _| {
            ((rng.next_gaussian() * 40.0).round() as i32).clamp(-128, 127)
        });
        let dynamic = TransitiveArray::new(small_cfg(4, ScoreboardMode::Dynamic));
        let static_ = TransitiveArray::new(small_cfg(4, ScoreboardMode::Static));
        let (d, _) = dynamic.execute_gemm(&w, &x);
        let (s, _) = static_.execute_gemm(&w, &x);
        let reference = gemm_i32(&w, &x);
        assert_eq!(d, reference, "dynamic seed {seed}");
        assert_eq!(s, reference, "static seed {seed}");
    }
}

#[test]
fn eight_bit_weights_wide_activations() {
    let mut rng = StreamRng::new(77);
    let w = MatI32::from_fn(9, 33, |_, _| {
        ((rng.next_gaussian() * 39.0).round() as i32).clamp(-128, 127)
    });
    let x = MatI32::from_fn(33, 17, |_, _| {
        ((rng.next_gaussian() * 39.0).round() as i32).clamp(-128, 127)
    });
    let cfg = TransArrayConfig {
        width: 8,
        max_transrows: 64,
        weight_bits: 8,
        units: 3,
        m_tile: 4,
        sample_limit: 0,
        ..TransArrayConfig::paper_w8()
    };
    let ta = TransitiveArray::new(cfg);
    let (out, report) = ta.execute_gemm(&w, &x);
    assert_eq!(out, gemm_i32(&w, &x));
    // 8-bit TranSparsity on Gaussian data sits well below bit sparsity.
    assert!(report.density < 0.40, "density {}", report.density);
}
