//! Cross-crate integration: the complete pipeline FP32 → quantize →
//! bit-slice → Scoreboard → Transitive Array must be lossless at the
//! integer level and match the FP32 reference within quantization error.

use transitive_array::core::{GemmShape, ScoreboardMode, TransArrayConfig, TransitiveArray};
use transitive_array::models::{
    llm_activation_matrix, llm_weight_matrix, QuantGaussianSource, StreamRng, UniformBitSource,
};
use transitive_array::quant::{
    calibrate, dequantize, gemm_f32, gemm_i32, nmse, quantize, Granularity, MatF32, MatI32,
    QuantScheme,
};

fn small_cfg(weight_bits: u32, mode: ScoreboardMode) -> TransArrayConfig {
    TransArrayConfig {
        width: 4,
        max_transrows: weight_bits as usize * 4,
        weight_bits,
        units: 2,
        m_tile: 8,
        sample_limit: 0,
        scoreboard_mode: mode,
        ..TransArrayConfig::paper_w8()
    }
}

#[test]
fn fp32_to_accelerator_end_to_end() {
    // LLM-like FP32 tensors.
    let w_f = llm_weight_matrix(24, 40, 1);
    let a_f = llm_activation_matrix(40, 12, 2);

    // Quantize both sides at W8A8 per-channel (plain PTQ; the W4 recipe
    // needs the SmoothQuant migration — see ta-quant's TaQuant — which is
    // exercised by the Table 3 tests).
    let w_scheme = QuantScheme::new(8, Granularity::PerChannel);
    let a_scheme = QuantScheme::new(8, Granularity::PerChannel);
    let wp = calibrate(&w_f, w_scheme);
    let ap = calibrate(&a_f, a_scheme);
    let w_q = quantize(&w_f, &wp);
    let a_q = quantize(&a_f, &ap);

    // Integer losslessness on the accelerator.
    let ta = TransitiveArray::new(small_cfg(8, ScoreboardMode::Dynamic));
    let (out, report) = ta.execute_gemm(&w_q, &a_q);
    assert_eq!(out, gemm_i32(&w_q, &a_q), "accelerator must be bit-exact");
    assert!(report.density < 0.6, "density {}", report.density);

    // The dequantized result approximates the FP32 GEMM: compare against
    // the fake-quantized reference (the quantizer's own error bound).
    let w_hat = dequantize(&w_q, &wp);
    let a_hat = dequantize(&a_q, &ap);
    let fq_reference = gemm_f32(&w_hat, &a_hat);
    let fp_reference = gemm_f32(&w_f, &a_f);
    // The accelerator output, rescaled, must be (near) identical to the
    // fake-quant reference…
    let out_f = MatF32::from_fn(out.rows(), out.cols(), |r, c| {
        // Per-channel w scale × per-feature a scales do not factor out of
        // the sum exactly, so compare the integer path against the same
        // integer path computed densely instead.
        out.get(r, c) as f32
    });
    let dense_int = gemm_i32(&w_q, &a_q);
    let dense_f =
        MatF32::from_fn(dense_int.rows(), dense_int.cols(), |r, c| dense_int.get(r, c) as f32);
    assert_eq!(out_f.as_slice(), dense_f.as_slice());
    // …and the fake-quant reference is close to FP32 (sanity on the
    // quantization substrate itself).
    let e = nmse(&fp_reference, &fq_reference);
    assert!(e < 0.05, "quantization pipeline error too large: {e}");
}

#[test]
fn both_modes_agree_on_every_seed() {
    for seed in 0..8u64 {
        let mut rng = StreamRng::new(seed);
        let w = MatI32::from_fn(12, 20, |_, _| {
            ((rng.next_gaussian() * 3.0).round() as i32).clamp(-8, 7)
        });
        let x = MatI32::from_fn(20, 6, |_, _| {
            ((rng.next_gaussian() * 40.0).round() as i32).clamp(-128, 127)
        });
        let dynamic = TransitiveArray::new(small_cfg(4, ScoreboardMode::Dynamic));
        let static_ = TransitiveArray::new(small_cfg(4, ScoreboardMode::Static));
        let (d, _) = dynamic.execute_gemm(&w, &x);
        let (s, _) = static_.execute_gemm(&w, &x);
        let reference = gemm_i32(&w, &x);
        assert_eq!(d, reference, "dynamic seed {seed}");
        assert_eq!(s, reference, "static seed {seed}");
    }
}

/// Determinism suite (tile-execution runtime contract): `execute_gemm`
/// output **and** the full `GemmReport` — including the floating-point
/// density/energy/seconds fields — must be bit-identical for
/// `threads = 1, 2, 8` in both Scoreboard modes.
#[test]
fn parallel_execute_gemm_bit_identical_across_thread_counts() {
    let mut rng = StreamRng::new(2024);
    // Large enough for several weight tiles and k-chunks per shard.
    let w =
        MatI32::from_fn(40, 36, |_, _| ((rng.next_gaussian() * 3.0).round() as i32).clamp(-8, 7));
    let x = MatI32::from_fn(36, 9, |_, _| {
        ((rng.next_gaussian() * 40.0).round() as i32).clamp(-128, 127)
    });
    for mode in [ScoreboardMode::Dynamic, ScoreboardMode::Static] {
        let reference = {
            let ta = TransitiveArray::new(small_cfg(4, mode));
            ta.execute_gemm(&w, &x)
        };
        assert_eq!(reference.0, gemm_i32(&w, &x), "{mode:?} serial must be lossless");
        for threads in [2usize, 8] {
            let cfg = TransArrayConfig { threads, ..small_cfg(4, mode) };
            let (out, report) = TransitiveArray::new(cfg).execute_gemm(&w, &x);
            assert_eq!(out, reference.0, "{mode:?} threads={threads}: output must be bit-exact");
            assert_eq!(
                report, reference.1,
                "{mode:?} threads={threads}: GemmReport must be bit-identical"
            );
        }
    }
}

/// Same contract for at-scale simulation with sampling enabled: sharded
/// `simulate_layer` must reproduce the serial report bit-for-bit across
/// thread counts, modes, and synthetic sources.
#[test]
fn parallel_simulate_layer_bit_identical_across_thread_counts() {
    let shape = GemmShape::new(512, 256, 128);
    for mode in [ScoreboardMode::Dynamic, ScoreboardMode::Static] {
        for sample_limit in [0usize, 24] {
            let run = |threads: usize| {
                let cfg = TransArrayConfig {
                    sample_limit,
                    threads,
                    scoreboard_mode: mode,
                    ..TransArrayConfig::paper_w8()
                };
                let ta = TransitiveArray::new(cfg);
                let n_tile = ta.config().n_tile();
                let mut quant = QuantGaussianSource::new(8, 8, n_tile, 7);
                let quant_rep = ta.simulate_layer(shape, &mut quant);
                let mut uniform = UniformBitSource::new(8, n_tile * 8, 7);
                let uniform_rep = ta.simulate_layer(shape, &mut uniform);
                (quant_rep, uniform_rep)
            };
            let reference = run(1);
            for threads in [2usize, 8] {
                let got = run(threads);
                assert_eq!(
                    got, reference,
                    "{mode:?} sample_limit={sample_limit} threads={threads}: reports must be bit-identical"
                );
            }
        }
    }
}

/// Plan-cache determinism contract: enabling the memoized plan cache
/// must leave every `GemmReport` — including the floating-point
/// density/energy/seconds fields — bit-identical to the uncached run,
/// across thread counts, Scoreboard modes, and both entry points, while
/// actually hitting (a cache that never hits proves nothing).
#[test]
fn plan_cache_bit_identical_across_thread_counts() {
    let shape = GemmShape::new(512, 256, 128);
    for mode in [ScoreboardMode::Dynamic, ScoreboardMode::Static] {
        let cfg_for = |threads: usize, plan_cache: usize| TransArrayConfig {
            sample_limit: 24,
            threads,
            plan_cache,
            scoreboard_mode: mode,
            ..TransArrayConfig::paper_w8()
        };
        let reference = {
            let ta = TransitiveArray::new(cfg_for(1, 0));
            let mut src = QuantGaussianSource::new(8, 8, ta.config().n_tile(), 7);
            ta.simulate_layer(shape, &mut src)
        };
        for threads in [1usize, 2, 8] {
            let ta = TransitiveArray::new(cfg_for(threads, 512));
            let run = |ta: &TransitiveArray| {
                let mut src = QuantGaussianSource::new(8, 8, ta.config().n_tile(), 7);
                ta.simulate_layer(shape, &mut src)
            };
            let cold = run(&ta);
            let warm = run(&ta);
            assert_eq!(cold, reference, "{mode:?} threads={threads}: cold cached run differs");
            assert_eq!(warm, reference, "{mode:?} threads={threads}: warm cached run differs");
            let stats = ta.plan_cache_stats().expect("cache enabled");
            assert!(stats.insertions > 0, "{mode:?} threads={threads}: cache unused: {stats:?}");
            if mode == ScoreboardMode::Dynamic {
                // Static mode correctly misses across calls: each
                // simulate_layer builds a fresh SI table and cached
                // entries are scoped to the SI instance that produced
                // them. Dynamic plans carry no such scope, so the warm
                // replay must reuse every one.
                assert!(
                    stats.hits > 0,
                    "{mode:?} threads={threads}: warm replay must hit: {stats:?}"
                );
            }
        }
    }
}

/// Shard-count invariance: the sharded cache must be a pure concurrency
/// optimization. `plan_cache_shards = 1` reproduces the old
/// single-mutex layout, so comparing it against 8 shards and the auto
/// default proves reports never depend on shard routing or on which
/// shard a CLOCK eviction sweeps — across thread counts, Scoreboard
/// modes, and both entry points.
#[test]
fn plan_cache_shard_count_never_changes_a_report() {
    let shape = GemmShape::new(512, 256, 128);
    let mut rng = StreamRng::new(8192);
    let w =
        MatI32::from_fn(40, 36, |_, _| ((rng.next_gaussian() * 3.0).round() as i32).clamp(-8, 7));
    let x = MatI32::from_fn(36, 9, |_, _| {
        ((rng.next_gaussian() * 40.0).round() as i32).clamp(-128, 127)
    });
    for mode in [ScoreboardMode::Dynamic, ScoreboardMode::Static] {
        // simulate_layer entry point, at-scale config.
        let layer_run = |threads: usize, shards: usize| {
            let cfg = TransArrayConfig {
                sample_limit: 24,
                threads,
                plan_cache: 512,
                plan_cache_shards: shards,
                scoreboard_mode: mode,
                ..TransArrayConfig::paper_w8()
            };
            let ta = TransitiveArray::new(cfg);
            let mut src = QuantGaussianSource::new(8, 8, ta.config().n_tile(), 7);
            ta.simulate_layer(shape, &mut src)
        };
        // execute_gemm entry point, small exact config. The tiny cache
        // (8 entries) keeps the CLOCK sweep active during the run.
        let gemm_run = |threads: usize, shards: usize| {
            let cfg = TransArrayConfig {
                threads,
                plan_cache: 8,
                plan_cache_shards: shards,
                ..small_cfg(4, mode)
            };
            TransitiveArray::new(cfg).execute_gemm(&w, &x)
        };
        for threads in [1usize, 2, 8] {
            let layer_ref = layer_run(threads, 1);
            let gemm_ref = gemm_run(threads, 1);
            assert_eq!(gemm_ref.0, gemm_i32(&w, &x), "{mode:?} threads={threads}: lossless");
            for shards in [8usize, 0] {
                assert_eq!(
                    layer_run(threads, shards),
                    layer_ref,
                    "{mode:?} threads={threads} shards={shards}: simulate_layer report differs"
                );
                assert_eq!(
                    gemm_run(threads, shards),
                    gemm_ref,
                    "{mode:?} threads={threads} shards={shards}: execute_gemm result differs"
                );
            }
        }
    }
}

/// The same contract for the exact functional engine: cached
/// `execute_gemm` output and report equal the uncached serial run at
/// threads 1/2/8.
#[test]
fn plan_cache_execute_gemm_bit_identical_across_thread_counts() {
    let mut rng = StreamRng::new(4096);
    let w =
        MatI32::from_fn(40, 36, |_, _| ((rng.next_gaussian() * 3.0).round() as i32).clamp(-8, 7));
    let x = MatI32::from_fn(36, 9, |_, _| {
        ((rng.next_gaussian() * 40.0).round() as i32).clamp(-128, 127)
    });
    for mode in [ScoreboardMode::Dynamic, ScoreboardMode::Static] {
        let reference = TransitiveArray::new(small_cfg(4, mode)).execute_gemm(&w, &x);
        assert_eq!(reference.0, gemm_i32(&w, &x), "{mode:?}: reference must be lossless");
        for threads in [1usize, 2, 8] {
            let cfg = TransArrayConfig { threads, plan_cache: 128, ..small_cfg(4, mode) };
            let (out, report) = TransitiveArray::new(cfg).execute_gemm(&w, &x);
            assert_eq!(out, reference.0, "{mode:?} threads={threads}: cached output differs");
            assert_eq!(report, reference.1, "{mode:?} threads={threads}: cached report differs");
        }
    }
}

/// Fused-path contract: the arena-backed engine behind `execute_gemm`
/// (`evaluate_subtile_into` over a reused, dirty `ExecScratch`) produces
/// row results bit-identical to the nested-`Vec` oracle
/// (`evaluate_subtile`) for random sub-tiles in both Scoreboard modes —
/// and the end-to-end fused GEMM stays lossless and report-identical at
/// threads 1/2/8 with the plan cache on and off.
#[test]
fn fused_engine_matches_oracle_and_stays_deterministic() {
    use ta_bitslice::TileView;
    use ta_hasse::{ExecScratch, ScoreboardConfig, StaticSi};
    use transitive_array::core::{evaluate_subtile, evaluate_subtile_into};

    // Per-sub-tile oracle equivalence with one scratch reused (dirty)
    // across every tile, mode, and shape.
    let mut scratch = ExecScratch::new();
    let mut rng = StreamRng::new(515);
    for (m, rows) in [(1usize, 24usize), (3, 40), (7, 64)] {
        let patterns: Vec<u16> = (0..rows).map(|_| (rng.next_u64() & 0xF) as u16).collect();
        let inputs: Vec<Vec<i64>> =
            (0..4).map(|_| (0..m).map(|_| (rng.next_gaussian() * 30.0) as i64).collect()).collect();
        let staged: Vec<i64> = inputs.iter().flat_map(|r| r.iter().copied()).collect();
        let view = TileView::new(&staged, 4, m, m);
        let si = StaticSi::from_patterns(ScoreboardConfig::with_width(4), patterns.iter().copied());
        for mode in [ScoreboardMode::Dynamic, ScoreboardMode::Static] {
            let cfg = small_cfg(4, mode);
            let si_opt = (mode == ScoreboardMode::Static).then_some(&si);
            let want = evaluate_subtile(&cfg, si_opt, &patterns, &inputs);
            evaluate_subtile_into(&cfg, si_opt, &patterns, view, &mut scratch);
            for (r, (&p, want_row)) in patterns.iter().zip(&want).enumerate() {
                if p == 0 {
                    assert!(want_row.iter().all(|&v| v == 0), "{mode:?} row {r}");
                } else {
                    assert_eq!(
                        scratch.result(p),
                        Some(want_row.as_slice()),
                        "{mode:?} m={m} row {r}"
                    );
                }
            }
        }
    }

    // End-to-end: the fused engine at threads 1/2/8 × modes × cache
    // settings agrees with the dense reference and the serial report.
    let w = MatI32::from_fn(37, 29, |r, c| (((r * 29 + c) as i64 * 2654435761 % 15) - 7) as i32);
    let x = MatI32::from_fn(29, 11, |r, c| (((r * 11 + c) as i64 * 40503 % 255) - 127) as i32);
    let reference = gemm_i32(&w, &x);
    for mode in [ScoreboardMode::Dynamic, ScoreboardMode::Static] {
        let serial = TransitiveArray::new(small_cfg(4, mode)).execute_gemm(&w, &x);
        assert_eq!(serial.0, reference, "{mode:?}: fused serial engine must be lossless");
        for threads in [1usize, 2, 8] {
            for plan_cache in [0usize, 64] {
                let cfg = TransArrayConfig { threads, plan_cache, ..small_cfg(4, mode) };
                let (out, report) = TransitiveArray::new(cfg).execute_gemm(&w, &x);
                assert_eq!(out, reference, "{mode:?} threads={threads} cache={plan_cache}");
                assert_eq!(
                    report, serial.1,
                    "{mode:?} threads={threads} cache={plan_cache}: report must be bit-identical"
                );
            }
        }
    }
}

/// Word-parallel kernel contract: with every hot loop routed through
/// `ta_bitslice::kernels` (word-granular extraction, slab row-adds,
/// fused weighted accumulation), the pipeline must stay lossless and the
/// full `GemmReport` bit-identical at threads 1/2/8 in both Scoreboard
/// modes. K = 70 forces a non-word-multiple tail so the masked tail
/// path of every kernel sits on the execution path, not just in unit
/// tests.
#[test]
fn word_parallel_kernels_keep_reports_bit_identical() {
    let mut rng = StreamRng::new(6464);
    let w =
        MatI32::from_fn(41, 70, |_, _| ((rng.next_gaussian() * 3.0).round() as i32).clamp(-8, 7));
    let x = MatI32::from_fn(70, 13, |_, _| {
        ((rng.next_gaussian() * 40.0).round() as i32).clamp(-128, 127)
    });
    let reference = gemm_i32(&w, &x);
    for mode in [ScoreboardMode::Dynamic, ScoreboardMode::Static] {
        let serial = TransitiveArray::new(small_cfg(4, mode)).execute_gemm(&w, &x);
        assert_eq!(serial.0, reference, "{mode:?}: kernel path must be lossless");
        for threads in [1usize, 2, 8] {
            let cfg = TransArrayConfig { threads, ..small_cfg(4, mode) };
            let (out, report) = TransitiveArray::new(cfg).execute_gemm(&w, &x);
            assert_eq!(out, reference, "{mode:?} threads={threads}: output must be bit-exact");
            assert_eq!(
                report, serial.1,
                "{mode:?} threads={threads}: GemmReport must be bit-identical"
            );
        }
    }
}

#[test]
fn eight_bit_weights_wide_activations() {
    let mut rng = StreamRng::new(77);
    let w = MatI32::from_fn(9, 33, |_, _| {
        ((rng.next_gaussian() * 39.0).round() as i32).clamp(-128, 127)
    });
    let x = MatI32::from_fn(33, 17, |_, _| {
        ((rng.next_gaussian() * 39.0).round() as i32).clamp(-128, 127)
    });
    let cfg = TransArrayConfig {
        width: 8,
        max_transrows: 64,
        weight_bits: 8,
        units: 3,
        m_tile: 4,
        sample_limit: 0,
        ..TransArrayConfig::paper_w8()
    };
    let ta = TransitiveArray::new(cfg);
    let (out, report) = ta.execute_gemm(&w, &x);
    assert_eq!(out, gemm_i32(&w, &x));
    // 8-bit TranSparsity on Gaussian data sits well below bit sparsity.
    assert!(report.density < 0.40, "density {}", report.density);
}
