//! # ta-bench — the experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation
//! (§5). Each artifact has a binary (`cargo run -p ta-bench --release
//! --bin fig9` …) and a library entry point under [`experiments`]; the
//! `all` binary runs the complete battery and writes CSVs to
//! `target/experiments/`.
//!
//! | Binary  | Paper artifact |
//! |---------|----------------|
//! | `table1`| Table 1 — TransArray unit spec |
//! | `table2`| Table 2 — area comparison |
//! | `table3`| Table 3 — model accuracy (quantization-quality proxy) |
//! | `fig9`  | Fig. 9 — design-space exploration (4 panels) |
//! | `fig10` | Fig. 10 — FC-layer runtime & energy |
//! | `fig11` | Fig. 11 — energy breakdown |
//! | `fig12` | Fig. 12 — attention-layer speedups |
//! | `fig13` | Fig. 13 — static vs dynamic Scoreboard |
//! | `fig14` | Fig. 14 — ResNet-18 per-layer speedups |
//!
//! Set `TA_SCALE=quick` for smoke-scale runs.
//!
//! The `bench_smoke` binary additionally runs the [`perf`] suite —
//! serial vs parallel tile execution on a full-scale LLaMA-7B layer —
//! writes a machine-readable `BENCH_<sha>.json`, and gates against the
//! committed `BENCH_baseline.json` (>20% regressions fail CI).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc_count;
pub mod experiments;
pub mod perf;
mod report;

pub use report::{experiments_dir, fmt3, geomean, Table};
// The run-size policy moved to `ta-workloads` with the rest of the
// workload definitions; re-export it so `ta_bench::Scale` and
// `crate::scale::Scale` keep resolving.
pub use ta_workloads::scale;
pub use ta_workloads::Scale;

/// Prints a set of tables and writes each as CSV **and** JSON under
/// `target/experiments/`, reporting any I/O problem to stderr without
/// failing the run.
pub fn emit(tables: &[Table]) {
    let dir = experiments_dir();
    for t in tables {
        t.print();
        match t.write_csv(&dir) {
            Ok(path) => println!("[csv] {}", path.display()),
            Err(e) => eprintln!("[csv] failed to write {}: {e}", t.title),
        }
        match t.write_json(&dir) {
            Ok(path) => println!("[json] {}\n", path.display()),
            Err(e) => eprintln!("[json] failed to write {}: {e}", t.title),
        }
    }
}
