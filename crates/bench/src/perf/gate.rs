//! The CI regression gate: compares a run against a baseline report and
//! produces hard failures plus informational notes. Which metrics gate,
//! at what tolerance, and when a gate self-disables (host-shape
//! mismatch, stale baseline schema, small host, no counting allocator)
//! is all decided here.

use crate::perf::{ContentionPoint, PerfReport};

/// Result of comparing a run against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateOutcome {
    /// Hard failures (CI exits non-zero when non-empty).
    pub failures: Vec<String>,
    /// Informational notes (improvements, skipped checks).
    pub notes: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn check_ratio(
    out: &mut GateOutcome,
    workload: &str,
    metric: &str,
    baseline: f64,
    current: f64,
    higher_is_worse: bool,
    tolerance: f64,
) {
    if baseline <= 0.0 {
        // The baseline marks this metric not-applicable for the workload
        // (e.g. the Fig. 9 design point has no cycle model).
        return;
    }
    if current <= 0.0 {
        // A metric the baseline measured cannot legitimately collapse to
        // zero — that is a broken simulator, not an improvement.
        out.failures
            .push(format!("{workload}/{metric} collapsed to zero (baseline {baseline:.4e})"));
        return;
    }
    let ratio = current / baseline;
    // Thresholds are reciprocal-symmetric: "worse" is past 1+tolerance
    // in the bad direction, "better" past 1/(1+tolerance) in the good
    // one. (A subtractive `1 - tolerance` bound would stop working the
    // moment a widened tolerance reaches 100% — the check could never
    // trip for lower-is-worse metrics.)
    let upper = 1.0 + tolerance;
    let (regressed, improved) = if higher_is_worse {
        (ratio > upper, ratio * upper < 1.0)
    } else {
        (ratio * upper < 1.0, ratio > upper)
    };
    if regressed {
        out.failures.push(format!(
            "{workload}/{metric} regressed {:.1}% past the {:.0}% gate ({baseline:.4e} -> {current:.4e})",
            (ratio - 1.0).abs() * 100.0,
            tolerance * 100.0,
        ));
    } else if improved {
        out.notes.push(format!(
            "{workload}/{metric} improved ({baseline:.4e} -> {current:.4e}) — consider refreshing the baseline"
        ));
    }
}

/// Extra slack for wall-clock metrics: `wall_norm` gates at
/// `tolerance × WALL_TOLERANCE_FACTOR` (20% × 5 = double-or-worse
/// fails). Shared CI hosts show minute-scale contention swings of
/// 30–60% that survive even best-of-batches sampling and the start/end
/// calibration min, while the regressions this arm exists to catch (an
/// allocator creeping back onto the execute path, an accidentally
/// quadratic loop) cost 2–3× — past the widened gate. Deterministic
/// model metrics keep the full-strength tolerance; they, not wall
/// clocks, carry the gate's precision.
const WALL_TOLERANCE_FACTOR: f64 = 5.0;

/// Compares `current` against `baseline` at `tolerance` (relative).
///
/// Deterministic model metrics (`cycles`, `total_ops`, `density`,
/// `macs_per_cycle`) always gate hard. `wall_norm` gates only when the
/// two runs saw the same core count — the calibration loop cancels
/// clock-speed differences but not microarchitectural ones, so a
/// baseline from a different machine shape would flake — and at the
/// widened `WALL_TOLERANCE_FACTOR` (5×) tolerance. The parallel speedup
/// additionally requires ≥4 cores on both sides (a 1-core runner cannot
/// show a speedup, only overhead).
pub fn compare(baseline: &PerfReport, current: &PerfReport, tolerance: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    if baseline.scale != current.scale {
        out.failures.push(format!(
            "scale mismatch: baseline '{}' vs current '{}' — regenerate the baseline at the gate's scale",
            baseline.scale, current.scale
        ));
        return out;
    }
    for base in &baseline.workloads {
        let Some(cur) = current.workloads.iter().find(|w| w.name == base.name) else {
            out.failures.push(format!("workload '{}' missing from current run", base.name));
            continue;
        };
        check_ratio(
            &mut out,
            &base.name,
            "cycles",
            base.cycles as f64,
            cur.cycles as f64,
            true,
            tolerance,
        );
        check_ratio(
            &mut out,
            &base.name,
            "total_ops",
            base.total_ops as f64,
            cur.total_ops as f64,
            true,
            tolerance,
        );
        check_ratio(&mut out, &base.name, "density", base.density, cur.density, true, tolerance);
        check_ratio(
            &mut out,
            &base.name,
            "macs_per_cycle",
            base.macs_per_cycle,
            cur.macs_per_cycle,
            false,
            tolerance,
        );
        if baseline.host_cores == current.host_cores {
            check_ratio(
                &mut out,
                &base.name,
                "wall_norm",
                base.wall_norm,
                cur.wall_norm,
                true,
                tolerance * WALL_TOLERANCE_FACTOR,
            );
        }
    }
    if baseline.host_cores != current.host_cores {
        out.notes.push(format!(
            "wall_norm gate skipped (baseline host_cores {}, current host_cores {}; refresh the baseline from a machine of the runner's shape to arm it)",
            baseline.host_cores, current.host_cores
        ));
    }
    // The per-workload loop above joins on baseline names, so a schema
    // ≤ 5 baseline (no `kernel_micro_*` records) silently ignores the
    // current run's kernel microbenchmarks — make the self-disable
    // explicit so the CI log says why the new arm is dark.
    let has_kernel_micro =
        |r: &PerfReport| r.workloads.iter().any(|w| w.name.starts_with("kernel_micro_"));
    if !has_kernel_micro(baseline) && has_kernel_micro(current) {
        out.notes.push(
            "kernel_micro gate skipped (baseline predates the kernel_micro workloads; refresh it)"
                .to_string(),
        );
    }
    // Deterministic by construction (warm-replay counter deltas), so it
    // gates on every run: a drop past tolerance — and in particular a
    // collapse to zero — means the plan cache disengaged or thrashes.
    if baseline.plan_cache_hit_rate > 0.0 {
        check_ratio(
            &mut out,
            "l7b_qproj_cached",
            "plan_cache_hit_rate",
            baseline.plan_cache_hit_rate,
            current.plan_cache_hit_rate,
            false,
            tolerance,
        );
    } else {
        out.notes.push(
            "plan_cache_hit_rate gate skipped (baseline predates the plan cache; refresh it)"
                .to_string(),
        );
    }
    // Allocation-count gate (absolute, not ratio — the healthy value is
    // exactly zero): a run that starts allocating per sub-tile on the
    // steady-state exec path regressed the arena design, whatever the
    // wall clock says. Unmeasured runs/baselines (-1.0 sentinel,
    // schema ≤ 2 or no counting allocator) self-disable the check.
    if baseline.exec_allocs_per_subtile >= 0.0 {
        if current.exec_allocs_per_subtile < 0.0 {
            out.notes.push(
                "exec_allocs_per_subtile gate skipped (current run has no counting allocator)"
                    .to_string(),
            );
        } else if current.exec_allocs_per_subtile > baseline.exec_allocs_per_subtile + 0.5 {
            out.failures.push(format!(
                "exec_allocs_per_subtile regressed: {} -> {} (steady-state exec must not allocate)",
                baseline.exec_allocs_per_subtile, current.exec_allocs_per_subtile
            ));
        }
    } else {
        out.notes.push(
            "exec_allocs_per_subtile gate skipped (baseline predates the allocation audit; refresh it)"
                .to_string(),
        );
    }
    // Parallel speedup is a machine-shape fact: it only gates when the
    // two runs saw the *same* core count (never silently comparing
    // across shapes) and the shape is big enough to show a speedup.
    if baseline.host_cores != current.host_cores {
        out.notes.push(format!(
            "speedup gate skipped (host core count changed: baseline {}, current {} — parallel speedups are not comparable across machine shapes)",
            baseline.host_cores, current.host_cores
        ));
    } else if baseline.host_cores < 4 {
        out.notes.push(format!(
            "speedup gate skipped (baseline cores {}, current cores {}; needs >= 4 on both)",
            baseline.host_cores, current.host_cores
        ));
    } else {
        check_ratio(
            &mut out,
            "l7b_qproj",
            "speedup_parallel",
            baseline.speedup_parallel,
            current.speedup_parallel,
            false,
            tolerance,
        );
    }
    // Hit-path contention gate: per-thread-count throughput plus the
    // max-threads/1-thread scaling ratio, both at the widened wall
    // tolerance (they are wall-clock metrics). Same self-disable rules
    // as the speedup gate — core-count mismatch or a small host logs an
    // explicit note instead of silently comparing 1-core numbers.
    if baseline.contention.is_empty() {
        out.notes.push(
            "contention gate skipped (baseline predates the plan_cache_contention workload; refresh it)"
                .to_string(),
        );
    } else if current.contention.is_empty() {
        out.failures.push("plan_cache_contention workload missing from current run".to_string());
    } else if baseline.host_cores != current.host_cores {
        out.notes.push(format!(
            "contention gate skipped (host core count changed: baseline {}, current {} — hit-path scaling is not comparable across machine shapes)",
            baseline.host_cores, current.host_cores
        ));
    } else if baseline.host_cores < 4 {
        out.notes.push(format!(
            "contention gate skipped ({}-core host cannot demonstrate hit-path scaling; needs >= 4 cores)",
            baseline.host_cores
        ));
    } else {
        for base_pt in &baseline.contention {
            let Some(cur_pt) = current.contention.iter().find(|p| p.threads == base_pt.threads)
            else {
                out.failures.push(format!(
                    "plan_cache_contention point for {} threads missing from current run",
                    base_pt.threads
                ));
                continue;
            };
            check_ratio(
                &mut out,
                &format!("plan_cache_contention_t{}", base_pt.threads),
                "mlookups_per_s",
                base_pt.mlookups_per_s,
                cur_pt.mlookups_per_s,
                false,
                tolerance * WALL_TOLERANCE_FACTOR,
            );
        }
        let scaling = |pts: &[ContentionPoint]| -> Option<f64> {
            let t1 = pts.iter().find(|p| p.threads == 1)?;
            let tmax = pts.iter().max_by_key(|p| p.threads)?;
            (t1.mlookups_per_s > 0.0 && tmax.threads > 1)
                .then(|| tmax.mlookups_per_s / t1.mlookups_per_s)
        };
        if let (Some(base_scaling), Some(cur_scaling)) =
            (scaling(&baseline.contention), scaling(&current.contention))
        {
            check_ratio(
                &mut out,
                "plan_cache_contention",
                "hit_path_scaling",
                base_scaling,
                cur_scaling,
                false,
                tolerance * WALL_TOLERANCE_FACTOR,
            );
        }
    }
    // Serving-frontend gate. The trace is seeded, so the request count
    // must match exactly and the padded count gates at full strength;
    // throughput/latency are wall-clock metrics — widened tolerance,
    // same-shape hosts only (batch count is timing-dependent and is
    // recorded but never gated). The `serve_open_loop` PerfRecord's
    // deterministic cycle/op sums already gate through the per-workload
    // loop above.
    match (&baseline.serve, &current.serve) {
        (None, _) => out.notes.push(
            "serve gate skipped (baseline predates the serve_open_loop workload; refresh it)"
                .to_string(),
        ),
        (Some(_), None) => {
            out.failures.push("serve_open_loop stats missing from current run".to_string());
        }
        (Some(base), Some(cur)) => {
            if base.requests != cur.requests {
                out.failures.push(format!(
                    "serve_open_loop/requests changed: {} -> {} (the trace is seeded; the count is exact)",
                    base.requests, cur.requests
                ));
            }
            if base.padded != cur.padded {
                out.failures.push(format!(
                    "serve_open_loop/padded changed: {} -> {} (padding depends only on shape and quantum)",
                    base.padded, cur.padded
                ));
            }
            if baseline.host_cores == current.host_cores {
                let wall_tol = tolerance * WALL_TOLERANCE_FACTOR;
                check_ratio(
                    &mut out,
                    "serve_open_loop",
                    "throughput_rps",
                    base.throughput_rps,
                    cur.throughput_rps,
                    false,
                    wall_tol,
                );
                check_ratio(
                    &mut out,
                    "serve_open_loop",
                    "p50_latency_ns",
                    base.p50_latency_ns,
                    cur.p50_latency_ns,
                    true,
                    wall_tol,
                );
                check_ratio(
                    &mut out,
                    "serve_open_loop",
                    "p99_latency_ns",
                    base.p99_latency_ns,
                    cur.p99_latency_ns,
                    true,
                    wall_tol,
                );
            } else {
                out.notes.push(format!(
                    "serve throughput/latency gate skipped (baseline host_cores {}, current host_cores {})",
                    baseline.host_cores, current.host_cores
                ));
            }
        }
    }
    // Overload gate. Every counter is scripted on the virtual clock —
    // the storm trace, the SLO knobs, and the fault-injection stream
    // are all seeded — so every field (goodput's f64 division included)
    // must match the baseline exactly. Any drift means admission
    // control, shedding, fault injection, or worker recovery changed
    // behavior. The `serve_overload` PerfRecord's cycle/op sums gate
    // through the per-workload loop above.
    match (&baseline.overload, &current.overload) {
        (None, _) => out.notes.push(
            "overload gate skipped (baseline predates the serve_overload workload; refresh it)"
                .to_string(),
        ),
        (Some(_), None) => {
            out.failures.push("serve_overload stats missing from current run".to_string());
        }
        (Some(base), Some(cur)) => {
            let exact_u64 = [
                ("submitted", base.submitted, cur.submitted),
                ("rejected", base.rejected, cur.rejected),
                ("shed", base.shed, cur.shed),
                ("worker_lost", base.worker_lost, cur.worker_lost),
                ("completed", base.completed, cur.completed),
                ("workers", base.workers as u64, cur.workers as u64),
                ("respawned", base.respawned, cur.respawned),
            ];
            for (metric, b, c) in exact_u64 {
                if b != c {
                    out.failures.push(format!(
                        "serve_overload/{metric} changed: {b} -> {c} (the overload protocol is scripted; every counter is exact)"
                    ));
                }
            }
            if base.goodput != cur.goodput {
                out.failures.push(format!(
                    "serve_overload/goodput changed: {} -> {} (deterministic ratio of exact counters)",
                    base.goodput, cur.goodput
                ));
            }
        }
    }
    out
}

/// Collapses a [`GateOutcome`]'s "gate skipped" notes into one explicit
/// `self-disabled gates:` line naming every dark gate with the category
/// of its reason (host shape changed, stale baseline schema, host too
/// small, no counting allocator). Returns `None` when every gate armed.
/// The individual notes stay in [`GateOutcome::notes`] for the full
/// wording; this line exists so a CI log scan answers "what was NOT
/// checked on this run?" in one place.
pub fn disabled_summary(outcome: &GateOutcome) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    for note in &outcome.notes {
        let Some(idx) = note.find(" gate skipped") else { continue };
        let gate = &note[..idx];
        let reason = if note.contains("predates") {
            "stale baseline schema"
        } else if note.contains("core count changed") || note.contains("host_cores") {
            "host shape changed"
        } else if note.contains("needs >= 4") || note.contains("cannot demonstrate") {
            "host too small"
        } else if note.contains("no counting allocator") {
            "no counting allocator"
        } else {
            "see notes"
        };
        parts.push(format!("{gate} ({reason})"));
    }
    if parts.is_empty() {
        None
    } else {
        Some(format!("self-disabled gates: {}", parts.join(", ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::test_fixture::sample_report;
    use crate::perf::GATE_TOLERANCE;

    #[test]
    fn gate_passes_identical_reports() {
        let r = sample_report();
        let outcome = compare(&r, &r, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
    }

    #[test]
    fn gate_trips_on_injected_slowdown() {
        let base = sample_report();
        let mut slow = base.clone();
        for w in &mut slow.workloads {
            w.wall_s *= 3.0;
            w.wall_norm *= 3.0;
        }
        let outcome = compare(&base, &slow, GATE_TOLERANCE);
        assert!(!outcome.passed());
        assert!(
            outcome.failures.iter().any(|f| f.contains("wall_norm")),
            "failures: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn gate_trips_on_cycle_regression_and_missing_workload() {
        let base = sample_report();
        let mut worse = base.clone();
        worse.workloads[0].cycles = (base.workloads[0].cycles as f64 * 1.3) as u64;
        worse.workloads.pop();
        let outcome = compare(&base, &worse, GATE_TOLERANCE);
        assert!(outcome.failures.iter().any(|f| f.contains("cycles")));
        assert!(outcome.failures.iter().any(|f| f.contains("missing")));
    }

    #[test]
    fn gate_ignores_small_jitter_and_notes_improvements() {
        let base = sample_report();
        let mut jitter = base.clone();
        jitter.workloads[0].wall_norm *= 1.1; // within 20%
        jitter.workloads[0].macs_per_cycle *= 1.5; // improvement
        let outcome = compare(&base, &jitter, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(outcome.notes.iter().any(|n| n.contains("improved")));
    }

    #[test]
    fn wall_norm_gates_at_widened_tolerance_only() {
        let base = sample_report();
        // +60% wall: a shared-host contention swing, inside the widened
        // wall gate (20% × 5 = 100%) — must pass.
        let mut burst = base.clone();
        for w in &mut burst.workloads {
            w.wall_norm *= 1.6;
        }
        let outcome = compare(&base, &burst, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        // +150% wall (e.g. the 3× inject-slowdown self-test): past even
        // the widened gate — must fail.
        let mut slow = base.clone();
        for w in &mut slow.workloads {
            w.wall_norm *= 2.5;
        }
        let outcome = compare(&base, &slow, GATE_TOLERANCE);
        assert!(outcome.failures.iter().any(|f| f.contains("wall_norm")));
        // Deterministic metrics keep the full-strength 20%: +60% cycles
        // fails even though the same ratio passed for wall_norm.
        let mut cyc = base.clone();
        cyc.workloads[0].cycles = (base.workloads[0].cycles as f64 * 1.6) as u64;
        let outcome = compare(&base, &cyc, GATE_TOLERANCE);
        assert!(outcome.failures.iter().any(|f| f.contains("cycles")));
    }

    #[test]
    fn gate_skips_speedup_on_small_hosts() {
        let mut base = sample_report();
        base.host_cores = 1;
        let mut cur = base.clone();
        cur.speedup_parallel = 0.5; // would fail on a >= 4-core pair
        let outcome = compare(&base, &cur, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(outcome.notes.iter().any(|n| n.contains("speedup gate skipped")));
        // The contention gate self-disables on a small host too, with
        // its own logged reason.
        assert!(
            outcome.notes.iter().any(|n| n.contains("contention gate skipped")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn gate_skips_speedup_and_contention_on_core_count_mismatch() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.host_cores = 64; // both ≥ 4, but shapes differ
        cur.speedup_parallel = 0.1; // would fail on matching shapes
        cur.contention[1].mlookups_per_s = 0.1; // would fail on matching shapes
        let outcome = compare(&base, &cur, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome.notes.iter().any(
                |n| n.contains("speedup gate skipped") && n.contains("host core count changed")
            ),
            "notes: {:?}",
            outcome.notes
        );
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("contention gate skipped")
                    && n.contains("host core count changed")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn gate_fails_when_measured_metric_collapses_to_zero() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.workloads[0].cycles = 0;
        let outcome = compare(&base, &cur, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("collapsed to zero")),
            "failures: {:?}",
            outcome.failures
        );
        // But a metric the *baseline* marks not-applicable stays skipped
        // (the fig9 record has cycles 0 on both sides).
        assert!(!outcome.failures.iter().any(|f| f.contains("fig9")));
    }

    #[test]
    fn gate_skips_wall_norm_across_machine_shapes() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.host_cores = 4; // baseline recorded 8 cores
        cur.workloads[0].wall_norm *= 10.0; // would trip on matching shapes
        let outcome = compare(&base, &cur, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(outcome.notes.iter().any(|n| n.contains("wall_norm gate skipped")));
    }

    #[test]
    fn gate_trips_when_hit_rate_collapses() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.plan_cache_hit_rate = 0.0;
        let outcome = compare(&base, &cur, GATE_TOLERANCE);
        assert!(
            outcome
                .failures
                .iter()
                .any(|f| f.contains("plan_cache_hit_rate") && f.contains("collapsed to zero")),
            "failures: {:?}",
            outcome.failures
        );
        // A mild dip inside tolerance passes.
        let mut dip = base.clone();
        dip.plan_cache_hit_rate = 0.9;
        assert!(compare(&base, &dip, GATE_TOLERANCE).passed());
        // A drop past tolerance fails.
        let mut drop = base.clone();
        drop.plan_cache_hit_rate = 0.5;
        assert!(!compare(&base, &drop, GATE_TOLERANCE).passed());
    }

    #[test]
    fn contention_gate_trips_on_throughput_collapse() {
        let base = sample_report();
        // The 8-thread point flattens back to mutex-like throughput:
        // past even the widened (5×20% = 100%) gate — both the absolute
        // point and the scaling ratio must fail.
        let mut flat = base.clone();
        flat.contention[1].mlookups_per_s = 8.0;
        let outcome = compare(&base, &flat, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("plan_cache_contention_t8")),
            "failures: {:?}",
            outcome.failures
        );
        assert!(
            outcome.failures.iter().any(|f| f.contains("hit_path_scaling")),
            "failures: {:?}",
            outcome.failures
        );
        // Jitter inside the widened gate passes.
        let mut jitter = base.clone();
        jitter.contention[1].mlookups_per_s = 30.0;
        assert!(compare(&base, &jitter, GATE_TOLERANCE).passed());
        // A current run that dropped the workload entirely fails.
        let mut missing = base.clone();
        missing.contention.clear();
        let outcome = compare(&base, &missing, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("missing from current run")),
            "failures: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn gate_trips_on_alloc_regression_only_past_slack() {
        let base = sample_report();
        // Within the ±0.5 absolute slack: passes (occasional one-off
        // growth of a warm buffer is not a design regression).
        let mut mild = base.clone();
        mild.exec_allocs_per_subtile = 0.3;
        assert!(compare(&base, &mild, GATE_TOLERANCE).passed());
        // A real per-sub-tile allocation rate fails.
        let mut bad = base.clone();
        bad.exec_allocs_per_subtile = 2.0;
        let outcome = compare(&base, &bad, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("exec_allocs_per_subtile")),
            "failures: {:?}",
            outcome.failures
        );
        // Current run without a counting allocator: note, not failure.
        let mut unmeasured = base.clone();
        unmeasured.exec_allocs_per_subtile = -1.0;
        let outcome = compare(&base, &unmeasured, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(outcome.notes.iter().any(|n| n.contains("no counting allocator")));
    }

    #[test]
    fn serve_gate_requires_exact_deterministic_counts() {
        let base = sample_report();
        // A current run that dropped the serving stats entirely fails.
        let mut missing = base.clone();
        missing.serve = None;
        let outcome = compare(&base, &missing, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_open_loop stats missing")),
            "failures: {:?}",
            outcome.failures
        );
        // The trace is seeded: a changed request count is a hard fail.
        let mut drifted = base.clone();
        drifted.serve.as_mut().unwrap().requests = 47;
        let outcome = compare(&base, &drifted, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_open_loop/requests changed")),
            "failures: {:?}",
            outcome.failures
        );
        // Padding depends only on shape and quantum: also exact.
        let mut padded = base.clone();
        padded.serve.as_mut().unwrap().padded = 31;
        let outcome = compare(&base, &padded, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_open_loop/padded changed")),
            "failures: {:?}",
            outcome.failures
        );
        // Batch count is timing-dependent — never gated.
        let mut batches = base.clone();
        batches.serve.as_mut().unwrap().batches = 48;
        assert!(compare(&base, &batches, GATE_TOLERANCE).passed());
    }

    #[test]
    fn serve_wall_metrics_gate_at_widened_tolerance_and_matching_shape_only() {
        let base = sample_report();
        // -40% throughput: inside the widened (100%) wall gate — passes.
        let mut jitter = base.clone();
        jitter.serve.as_mut().unwrap().throughput_rps *= 0.6;
        assert!(compare(&base, &jitter, GATE_TOLERANCE).passed());
        // Throughput halved-and-worse plus p99 tripled: both fail.
        let mut slow = base.clone();
        {
            let s = slow.serve.as_mut().unwrap();
            s.throughput_rps /= 2.5;
            s.p99_latency_ns *= 3.0;
        }
        let outcome = compare(&base, &slow, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_open_loop/throughput_rps")),
            "failures: {:?}",
            outcome.failures
        );
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_open_loop/p99_latency_ns")),
            "failures: {:?}",
            outcome.failures
        );
        // Across machine shapes the wall metrics skip with a note; the
        // deterministic counts still gate.
        let mut other_host = slow.clone();
        other_host.host_cores = 64;
        let outcome = compare(&base, &other_host, GATE_TOLERANCE);
        assert!(
            !outcome.failures.iter().any(|f| f.contains("throughput_rps")),
            "failures: {:?}",
            outcome.failures
        );
        assert!(
            outcome.notes.iter().any(|n| n.contains("serve throughput/latency gate skipped")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn overload_gate_requires_exact_counters() {
        let base = sample_report();
        // A current run that dropped the overload stats entirely fails.
        let mut missing = base.clone();
        missing.overload = None;
        let outcome = compare(&base, &missing, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_overload stats missing")),
            "failures: {:?}",
            outcome.failures
        );
        // Every counter is scripted: off-by-one anywhere is a hard fail.
        for (field, mutate) in [
            ("rejected", (|o: &mut crate::perf::OverloadStats| o.rejected += 1) as fn(&mut _)),
            ("shed", |o| o.shed -= 1),
            ("worker_lost", |o| o.worker_lost += 1),
            ("completed", |o| o.completed -= 1),
            ("respawned", |o| o.respawned += 1),
        ] {
            let mut drifted = base.clone();
            mutate(drifted.overload.as_mut().unwrap());
            let outcome = compare(&base, &drifted, GATE_TOLERANCE);
            assert!(
                outcome.failures.iter().any(|f| f.contains(&format!("serve_overload/{field}"))),
                "{field} drift must fail; failures: {:?}",
                outcome.failures
            );
        }
        // Goodput is a deterministic ratio of exact counters — any f64
        // difference (not a tolerance band) fails.
        let mut good = base.clone();
        good.overload.as_mut().unwrap().goodput += 1e-9;
        let outcome = compare(&base, &good, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_overload/goodput")),
            "failures: {:?}",
            outcome.failures
        );
        // An exact match passes (covered by gate_passes_identical_reports
        // too, but assert the arm stays quiet here).
        let outcome = compare(&base, &base, GATE_TOLERANCE);
        assert!(outcome.passed() && !outcome.notes.iter().any(|n| n.contains("overload")));
    }

    #[test]
    fn schema6_baseline_skips_overload_gate_with_a_note() {
        let mut old = sample_report();
        old.schema = 6;
        old.overload = None;
        let outcome = compare(&old, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("overload gate skipped") && n.contains("predates")),
            "notes: {:?}",
            outcome.notes
        );
        let line = disabled_summary(&outcome).expect("stale baseline darkens the overload gate");
        assert!(line.contains("overload (stale baseline schema)"), "{line}");
    }

    #[test]
    fn gate_rejects_scale_mismatch() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.scale = "full".into();
        assert!(!compare(&base, &cur, GATE_TOLERANCE).passed());
    }

    #[test]
    fn disabled_summary_names_every_dark_gate_with_a_reason() {
        let mut base = sample_report();
        base.host_cores = 1;
        let mut cur = base.clone();
        cur.exec_allocs_per_subtile = -1.0;
        let outcome = compare(&base, &cur, GATE_TOLERANCE);
        let line = disabled_summary(&outcome).expect("small-host gates must be dark");
        assert!(line.starts_with("self-disabled gates: "), "{line}");
        assert!(line.contains("speedup (host too small)"), "{line}");
        assert!(line.contains("contention (host too small)"), "{line}");
        assert!(line.contains("exec_allocs_per_subtile (no counting allocator)"), "{line}");
        // Host-shape mismatches classify distinctly.
        let mut other = sample_report();
        other.host_cores = 64;
        let line = disabled_summary(&compare(&sample_report(), &other, GATE_TOLERANCE))
            .expect("shape mismatch darkens gates");
        assert!(line.contains("wall_norm (host shape changed)"), "{line}");
        assert!(line.contains("speedup (host shape changed)"), "{line}");
        // A same-shape, fully-measured pair has no dark gates.
        let all_armed = compare(&sample_report(), &sample_report(), GATE_TOLERANCE);
        assert!(disabled_summary(&all_armed).is_none());
    }
}
