//! The perf report's JSON micro-codec (serde is unavailable offline):
//! emission and parsing of exactly the subset [`PerfReport::to_json`]
//! writes, plus back-compat parsing of every older baseline schema.

use crate::perf::{ContentionPoint, OverloadStats, PerfRecord, PerfReport, ServeStats};
use std::fmt::Write as _;

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

/// Quotes and escapes a string for JSON output (shared with the figure
/// tables' JSON writer).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl ContentionPoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"lookups\": {}, \"wall_s\": {}, \"ns_per_lookup\": {}, \"mlookups_per_s\": {}}}",
            self.threads,
            self.lookups,
            json_f64(self.wall_s),
            json_f64(self.ns_per_lookup),
            json_f64(self.mlookups_per_s),
        )
    }
}

impl ServeStats {
    fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"batches\": {}, \"padded\": {}, \"workers\": {}, \"throughput_rps\": {}, \"p50_latency_ns\": {}, \"p99_latency_ns\": {}}}",
            self.requests,
            self.batches,
            self.padded,
            self.workers,
            json_f64(self.throughput_rps),
            json_f64(self.p50_latency_ns),
            json_f64(self.p99_latency_ns),
        )
    }
}

impl OverloadStats {
    fn to_json(&self) -> String {
        format!(
            "{{\"submitted\": {}, \"rejected\": {}, \"shed\": {}, \"worker_lost\": {}, \"completed\": {}, \"goodput\": {}, \"workers\": {}, \"respawned\": {}}}",
            self.submitted,
            self.rejected,
            self.shed,
            self.worker_lost,
            self.completed,
            json_f64(self.goodput),
            self.workers,
            self.respawned,
        )
    }
}

impl PerfRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\": {}, \"cycles\": {}, \"total_ops\": {}, \"density\": {}, \"macs_per_cycle\": {}, \"wall_s\": {}, \"wall_norm\": {}}}",
            json_str(&self.name),
            self.cycles,
            self.total_ops,
            json_f64(self.density),
            json_f64(self.macs_per_cycle),
            json_f64(self.wall_s),
            json_f64(self.wall_norm),
        )
    }
}

impl PerfReport {
    /// Serializes the report as pretty-ish JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"sha\": {},", json_str(&self.sha));
        let _ = writeln!(out, "  \"scale\": {},", json_str(&self.scale));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"host_cores\": {},", self.host_cores);
        let _ = writeln!(out, "  \"calibration_wall_s\": {},", json_f64(self.calibration_wall_s));
        let _ = writeln!(out, "  \"speedup_parallel\": {},", json_f64(self.speedup_parallel));
        let _ = writeln!(out, "  \"plan_cache_hit_rate\": {},", json_f64(self.plan_cache_hit_rate));
        let _ = writeln!(out, "  \"speedup_cached\": {},", json_f64(self.speedup_cached));
        let _ = writeln!(out, "  \"dram_requests\": {},", self.dram_requests);
        let _ = writeln!(out, "  \"dram_bursts\": {},", self.dram_bursts);
        let _ = writeln!(
            out,
            "  \"exec_allocs_per_subtile\": {},",
            json_f64(self.exec_allocs_per_subtile)
        );
        // Schema-5 field, one line so older tooling can strip it; omitted
        // entirely when absent (the parser defaults to `None`).
        if let Some(serve) = &self.serve {
            let _ = writeln!(out, "  \"serve\": {},", serve.to_json());
        }
        // Schema-7 field, same one-line/omit-when-absent convention.
        if let Some(overload) = &self.overload {
            let _ = writeln!(out, "  \"serve_overload\": {},", overload.to_json());
        }
        let _ = writeln!(out, "  \"plan_cache_contention\": [");
        for (i, c) in self.contention.iter().enumerate() {
            let comma = if i + 1 < self.contention.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{comma}", c.to_json());
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"workloads\": [");
        for (i, w) in self.workloads.iter().enumerate() {
            let comma = if i + 1 < self.workloads.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{comma}", w.to_json());
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a report emitted by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on malformed input or missing
    /// fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = JsonParser::new(text).parse()?;
        let obj = value.as_obj("top level")?;
        let workloads = obj
            .get("workloads")?
            .as_arr("workloads")?
            .iter()
            .map(|w| {
                let o = w.as_obj("workload")?;
                Ok(PerfRecord {
                    name: o.get("name")?.as_str("name")?.to_string(),
                    cycles: o.get("cycles")?.as_u64("cycles")?,
                    total_ops: o.get("total_ops")?.as_u64("total_ops")?,
                    density: o.get("density")?.as_f64("density")?,
                    macs_per_cycle: o.get("macs_per_cycle")?.as_f64("macs_per_cycle")?,
                    wall_s: o.get("wall_s")?.as_f64("wall_s")?,
                    wall_norm: o.get("wall_norm")?.as_f64("wall_norm")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            schema: obj.get("schema")?.as_u64("schema")?,
            sha: obj.get("sha")?.as_str("sha")?.to_string(),
            scale: obj.get("scale")?.as_str("scale")?.to_string(),
            threads: obj.get("threads")?.as_u64("threads")? as usize,
            // Schema-4 renamed `cores` to `host_cores` (the satellite
            // gate fix); either key parses.
            host_cores: match obj.get_opt("host_cores") {
                Some(v) => v.as_u64("host_cores")? as usize,
                None => obj.get("cores")?.as_u64("cores")? as usize,
            },
            calibration_wall_s: obj.get("calibration_wall_s")?.as_f64("calibration_wall_s")?,
            speedup_parallel: obj.get("speedup_parallel")?.as_f64("speedup_parallel")?,
            // Schema-1 reports predate the plan cache; default the new
            // fields so an old baseline still parses (the hit-rate gate
            // then self-disables via the `baseline <= 0` rule).
            plan_cache_hit_rate: match obj.get_opt("plan_cache_hit_rate") {
                Some(v) => v.as_f64("plan_cache_hit_rate")?,
                None => 0.0,
            },
            speedup_cached: match obj.get_opt("speedup_cached") {
                Some(v) => v.as_f64("speedup_cached")?,
                None => 0.0,
            },
            dram_requests: match obj.get_opt("dram_requests") {
                Some(v) => v.as_u64("dram_requests")?,
                None => 0,
            },
            dram_bursts: match obj.get_opt("dram_bursts") {
                Some(v) => v.as_u64("dram_bursts")?,
                None => 0,
            },
            // Schema-2 reports predate the allocation audit; the -1.0
            // sentinel marks it unmeasured and self-disables the gate.
            exec_allocs_per_subtile: match obj.get_opt("exec_allocs_per_subtile") {
                Some(v) => v.as_f64("exec_allocs_per_subtile")?,
                None => -1.0,
            },
            // Schema ≤ 3 reports predate the contention sweep; an empty
            // vec self-disables the contention gate with a note.
            contention: match obj.get_opt("plan_cache_contention") {
                Some(v) => v
                    .as_arr("plan_cache_contention")?
                    .iter()
                    .map(|c| {
                        let o = c.as_obj("contention point")?;
                        Ok(ContentionPoint {
                            threads: o.get("threads")?.as_u64("threads")? as usize,
                            lookups: o.get("lookups")?.as_u64("lookups")?,
                            wall_s: o.get("wall_s")?.as_f64("wall_s")?,
                            ns_per_lookup: o.get("ns_per_lookup")?.as_f64("ns_per_lookup")?,
                            mlookups_per_s: o.get("mlookups_per_s")?.as_f64("mlookups_per_s")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                None => Vec::new(),
            },
            // Schema ≤ 4 reports predate the serving frontend; `None`
            // self-disables the serve gate with a note.
            serve: match obj.get_opt("serve") {
                Some(v) => {
                    let o = v.as_obj("serve")?;
                    Some(ServeStats {
                        requests: o.get("requests")?.as_u64("requests")?,
                        batches: o.get("batches")?.as_u64("batches")?,
                        padded: o.get("padded")?.as_u64("padded")?,
                        workers: o.get("workers")?.as_u64("workers")? as usize,
                        throughput_rps: o.get("throughput_rps")?.as_f64("throughput_rps")?,
                        p50_latency_ns: o.get("p50_latency_ns")?.as_f64("p50_latency_ns")?,
                        p99_latency_ns: o.get("p99_latency_ns")?.as_f64("p99_latency_ns")?,
                    })
                }
                None => None,
            },
            // Schema ≤ 6 reports predate the overload workload; `None`
            // self-disables the overload gate with a note.
            overload: match obj.get_opt("serve_overload") {
                Some(v) => {
                    let o = v.as_obj("serve_overload")?;
                    Some(OverloadStats {
                        submitted: o.get("submitted")?.as_u64("submitted")?,
                        rejected: o.get("rejected")?.as_u64("rejected")?,
                        shed: o.get("shed")?.as_u64("shed")?,
                        worker_lost: o.get("worker_lost")?.as_u64("worker_lost")?,
                        completed: o.get("completed")?.as_u64("completed")?,
                        goodput: o.get("goodput")?.as_f64("goodput")?,
                        workers: o.get("workers")?.as_u64("workers")? as usize,
                        respawned: o.get("respawned")?.as_u64("respawned")?,
                    })
                }
                None => None,
            },
            workloads,
        })
    }
}

/// Minimal JSON value (the subset [`PerfReport::to_json`] emits).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct JsonObj<'a>(&'a [(String, Json)]);

impl<'a> JsonObj<'a> {
    fn get(&self, key: &str) -> Result<&'a Json, String> {
        self.get_opt(key).ok_or_else(|| format!("missing field '{key}'"))
    }

    fn get_opt(&self, key: &str) -> Option<&'a Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

impl Json {
    fn as_obj(&self, ctx: &str) -> Result<JsonObj<'_>, String> {
        match self {
            Json::Obj(fields) => Ok(JsonObj(fields)),
            other => Err(format!("{ctx}: expected object, got {other:?}")),
        }
    }

    fn as_arr(&self, ctx: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("{ctx}: expected array, got {other:?}")),
        }
    }

    fn as_str(&self, ctx: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{ctx}: expected string, got {other:?}")),
        }
    }

    fn as_f64(&self, ctx: &str) -> Result<f64, String> {
        match self {
            Json::Num(v) => Ok(*v),
            other => Err(format!("{ctx}: expected number, got {other:?}")),
        }
    }

    fn as_u64(&self, ctx: &str) -> Result<u64, String> {
        let v = self.as_f64(ctx)?;
        if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
            return Err(format!("{ctx}: expected non-negative integer, got {v}"));
        }
        Ok(v as u64)
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing garbage at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got '{}'", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got '{}'", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u{code:04x}"))?,
                            );
                        }
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                b => {
                    // Multi-byte UTF-8 continuation: copy the raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    if b >= 0x80 {
                        while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        self.pos = end;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end.max(start + 1)])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use crate::perf::test_fixture::sample_report;
    use crate::perf::{compare, PerfReport, GATE_TOLERANCE};

    #[test]
    fn json_roundtrip_is_exact() {
        let report = sample_report();
        let parsed = PerfReport::from_json(&report.to_json()).expect("roundtrip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(PerfReport::from_json("not json").is_err());
        assert!(PerfReport::from_json("{}").is_err(), "missing fields must error");
        assert!(PerfReport::from_json("{\"schema\": 1} trailing").is_err());
    }

    #[test]
    fn schema3_baseline_parses_with_legacy_cores_and_skips_contention_gate() {
        // A schema-3 baseline has `cores` (not `host_cores`) and no
        // `plan_cache_contention` array.
        let mut old = sample_report();
        old.schema = 3;
        old.contention.clear();
        old.serve = None;
        old.overload = None;
        let text = old
            .to_json()
            .lines()
            .filter(|l| *l != "  \"plan_cache_contention\": [" && *l != "  ],")
            .map(|l| {
                if l.starts_with("  \"host_cores\"") {
                    format!("  \"cores\": {},", old.host_cores)
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = PerfReport::from_json(&text).expect("schema-3 baseline must parse");
        assert_eq!(parsed.host_cores, old.host_cores, "legacy `cores` key must map over");
        assert!(parsed.contention.is_empty());
        let outcome = compare(&parsed, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("contention gate skipped") && n.contains("predates")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn schema1_baseline_parses_and_skips_hit_rate_gate() {
        // A pre-plan-cache baseline lacks the schema-2 fields entirely.
        let mut old = sample_report();
        old.schema = 1;
        old.serve = None;
        old.overload = None;
        let mut text = old.to_json();
        for field in [
            "plan_cache_hit_rate",
            "speedup_cached",
            "dram_requests",
            "dram_bursts",
            "exec_allocs_per_subtile",
        ] {
            let needle = format!("  \"{field}\"");
            text = text.lines().filter(|l| !l.starts_with(&needle)).collect::<Vec<_>>().join("\n");
        }
        let parsed = PerfReport::from_json(&text).expect("schema-1 baseline must parse");
        assert_eq!(parsed.plan_cache_hit_rate, 0.0);
        assert_eq!(parsed.speedup_cached, 0.0);
        assert_eq!(parsed.dram_requests, 0);
        assert_eq!(parsed.exec_allocs_per_subtile, -1.0);
        let outcome = compare(&parsed, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome.notes.iter().any(|n| n.contains("plan_cache_hit_rate gate skipped")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn schema2_baseline_parses_and_skips_alloc_gate() {
        // A schema-2 baseline (pre flat-buffer engine) lacks the
        // allocation-audit field but keeps everything else.
        let mut old = sample_report();
        old.schema = 2;
        old.serve = None;
        old.overload = None;
        let needle = "  \"exec_allocs_per_subtile\"";
        let text =
            old.to_json().lines().filter(|l| !l.starts_with(needle)).collect::<Vec<_>>().join("\n");
        let parsed = PerfReport::from_json(&text).expect("schema-2 baseline must parse");
        assert_eq!(parsed.exec_allocs_per_subtile, -1.0);
        assert_eq!(parsed.plan_cache_hit_rate, 1.0, "schema-2 fields still parse");
        let outcome = compare(&parsed, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome.notes.iter().any(|n| n.contains("exec_allocs_per_subtile gate skipped")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn schema4_baseline_parses_and_skips_serve_gate() {
        // A schema-4 baseline predates the serving frontend: no `serve`
        // object (and no `serve_open_loop` workload). It must parse,
        // and the serve gate must self-disable with a note instead of
        // failing on the missing stats.
        let mut old = sample_report();
        old.schema = 4;
        old.serve = None;
        old.overload = None;
        let text = old.to_json();
        assert!(!text.contains("\"serve\""), "None must omit the serve line entirely");
        let parsed = PerfReport::from_json(&text).expect("schema-4 baseline must parse");
        assert_eq!(parsed, old);
        let outcome = compare(&parsed, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("serve gate skipped") && n.contains("predates")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn schema6_baseline_parses_and_skips_overload_gate() {
        // A schema-6 baseline predates the overload workload: no
        // `serve_overload` object or record. It must parse with
        // `overload: None`, and the overload gate must self-disable
        // with a note instead of failing on the missing stats.
        let mut old = sample_report();
        old.schema = 6;
        old.overload = None;
        old.workloads.retain(|w| w.name != "serve_overload");
        let text = old.to_json();
        assert!(!text.contains("\"serve_overload\""), "None must omit the overload line");
        let parsed = PerfReport::from_json(&text).expect("schema-6 baseline must parse");
        assert_eq!(parsed, old);
        let outcome = compare(&parsed, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("overload gate skipped") && n.contains("predates")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn schema5_baseline_parses_and_skips_kernel_micro_gate() {
        // A schema-5 baseline predates the kernel_micro workloads: same
        // report shape, just no `kernel_micro_*` records. It must parse,
        // gate everything it does carry, and log that the kernel arm is
        // dark instead of failing (the gate only joins on baseline
        // workload names).
        let mut old = sample_report();
        old.schema = 5;
        old.overload = None;
        old.workloads.retain(|w| !w.name.starts_with("kernel_micro_"));
        let parsed = PerfReport::from_json(&old.to_json()).expect("schema-5 baseline must parse");
        assert_eq!(parsed, old);
        let outcome = compare(&parsed, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("kernel_micro gate skipped") && n.contains("predates")),
            "notes: {:?}",
            outcome.notes
        );
        // With kernel_micro on both sides the note disappears and the
        // deterministic column gates at full strength.
        let base = sample_report();
        let mut drift = base.clone();
        drift.workloads.last_mut().unwrap().total_ops *= 2;
        let outcome = compare(&base, &drift, GATE_TOLERANCE);
        assert!(
            outcome
                .failures
                .iter()
                .any(|f| f.contains("kernel_micro_popcount") && f.contains("total_ops")),
            "failures: {:?}",
            outcome.failures
        );
        assert!(!compare(&base, &base, GATE_TOLERANCE)
            .notes
            .iter()
            .any(|n| n.contains("kernel_micro gate skipped")));
    }
}
