//! The measurement half of the perf suite: pilot-sized best-of-N
//! timing, the calibration loop, and the workload-roster runner. The
//! workload *definitions* (shapes, configs, pattern sources, traces,
//! contention cache) live in `ta-workloads`; this module owns only how
//! they are timed and assembled into a [`PerfReport`].

use crate::alloc_count;
use crate::perf::{ContentionPoint, OverloadStats, PerfRecord, PerfReport, ServeStats};
use std::hint::black_box;
use std::time::Instant;
use ta_bitslice::{BitSlicedMatrix, RowMajor, TileView};
use ta_core::{
    runtime, GemmReport, GemmShape, PatternSource, SlicedSource, TransArrayConfig, TransitiveArray,
};
use ta_hasse::{ExecScratch, ExecutionPlan, NullSink, Scoreboard, StaticSi};
use ta_quant::gemm_i32;
use ta_serve::{ServeError, Server, ServerConfig};
use ta_sim::DramModel;
use ta_workloads::{contention, fig9, kernel, l7b, serve, Scale};

/// Minimum wall time one timing sample must span. Sub-millisecond
/// workloads are repeated until a sample reaches this floor — a single
/// 100 µs run carries far more than the gate's 20% tolerance in timer
/// and scheduler noise.
const MIN_SAMPLE_S: f64 = 0.05;

/// Timing samples per workload (the minimum is reported). Shared CI
/// hosts show contention windows longer than one batch; best-of-7 keeps
/// a slow outlier batch from ever being the reported time.
const SAMPLES: usize = 7;

/// Times `f`: a pilot run sizes an iteration batch spanning at least
/// [`MIN_SAMPLE_S`], then the best per-iteration time over [`SAMPLES`]
/// batches is returned along with `f`'s (deterministic) result.
fn measure<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let start = Instant::now();
    let mut out = f();
    let pilot = start.elapsed().as_secs_f64();
    let iters = if pilot >= MIN_SAMPLE_S {
        1
    } else {
        ((MIN_SAMPLE_S / pilot.max(1e-9)).ceil() as usize).min(100_000)
    };
    // A single run cannot measure faster than the true cost, so the
    // pilot participates in the minimum.
    let mut best = pilot;
    for _ in 0..SAMPLES.saturating_sub(1) {
        let start = Instant::now();
        for _ in 0..iters {
            out = f();
        }
        let per_iter = start.elapsed().as_secs_f64() / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
    }
    (out, best)
}

/// One simulation of `shape` on `ta` (plan cache required), returning
/// the report, the run's wall seconds, and the run's cache hit rate
/// from counter deltas — the single definition of the warm-replay
/// protocol shared by [`run_suite`] and the criterion benches. Call it
/// once to warm the cache, then again for the warm-replay numbers (1.0
/// hit rate when healthy).
///
/// # Panics
///
/// Panics if `ta` has no plan cache.
pub fn cached_replay(ta: &TransitiveArray, shape: GemmShape, seed: u64) -> (GemmReport, f64, f64) {
    let before = ta.plan_cache_stats().expect("cached_replay requires an enabled plan cache");
    let n_tile = ta.config().n_tile();
    let start = Instant::now();
    let mut src = l7b::pattern_source_seeded(n_tile, seed);
    let rep = ta.simulate_layer(shape, &mut src);
    let wall = start.elapsed().as_secs_f64();
    let after = ta.plan_cache_stats().expect("cached_replay requires an enabled plan cache");
    (rep, wall, after.delta(&before).hit_rate())
}

/// Times the dense integer reference GEMM the suite normalizes against.
fn calibration_loop() -> f64 {
    let (w, x) = l7b::calibration_operands();
    let (_, wall) = measure(|| gemm_i32(&w, &x));
    wall
}

/// Hammers the pre-warmed [`contention`] cache from 1/2/8/16 threads at
/// a forced 1.0 hit rate and reports per-point throughput — the pure
/// hit-path cost (key hash + shard read lock + referenced-bit store +
/// `Arc` clone), with key construction hoisted out of the loop. On a
/// multi-core host the sharded cache's throughput scales with threads;
/// the old global-mutex design flatlined here.
///
/// `shards` is the `plan_cache_shards` knob (`0` = auto); cache sizing
/// and the residency contract live in [`contention::prewarmed_cache`].
///
/// # Panics
///
/// Panics if pre-warm evicts (capacity sizing broke) or if any sweep
/// point records a miss — the workload exists to measure the hit path,
/// and a miss means the cache or routing broke.
pub fn contention_workload(shards: usize) -> Vec<ContentionPoint> {
    let (cache, keys) = contention::prewarmed_cache(shards);
    contention::THREADS
        .iter()
        .map(|&threads| {
            let before = cache.stats();
            let start = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let (cache, keys) = (&cache, &keys);
                    scope.spawn(move || {
                        for i in 0..contention::LOOKUPS_PER_THREAD {
                            let k = &keys[(i as usize + t) % keys.len()];
                            assert!(cache.get(k).is_some(), "contention workload must never miss");
                        }
                    });
                }
            });
            let wall_s = start.elapsed().as_secs_f64();
            let delta = cache.stats().delta(&before);
            let lookups = threads as u64 * contention::LOOKUPS_PER_THREAD;
            assert_eq!(delta.misses, 0, "forced hit-rate 1.0 violated: {delta}");
            assert_eq!(delta.lookups(), lookups, "lookup counter conservation violated");
            ContentionPoint {
                threads,
                lookups,
                wall_s,
                ns_per_lookup: if lookups > 0 {
                    wall_s * 1e9 * threads as f64 / lookups as f64
                } else {
                    0.0
                },
                mlookups_per_s: if wall_s > 0.0 { lookups as f64 / wall_s / 1e6 } else { 0.0 },
            }
        })
        .collect()
}

/// The `serve_open_loop` workload: replays the seeded Poisson arrival
/// trace through a full `ta-serve` frontend (2 workers, width-quantized
/// buckets so padding is actually exercised), then checks every served
/// output bit-for-bit against a direct serial run. The PerfRecord's
/// `cycles`/`total_ops` are the deterministic sums over all served
/// responses — any drift is a behavior change in the serving stack or
/// the simulator, and gates at full strength; the wall-clock
/// throughput/latency figures ride in [`ServeStats`] under the widened
/// wall tolerance.
///
/// # Panics
///
/// Panics if any served output differs from the direct run — the
/// serving determinism contract is part of what this workload guards.
fn serve_open_loop(scale: Scale) -> (PerfRecord, ServeStats) {
    let count = serve::request_count(scale);
    let trace = serve::trace(scale);
    let ((responses, stats), wall) = measure(|| {
        let server = Server::start(
            serve::session(),
            ServerConfig {
                workers: serve::WORKERS,
                policy: serve::policy(),
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<_> = trace
            .iter()
            .map(|a| server.submit(a.tenant, serve::request(a)).expect("trace requests are valid"))
            .collect();
        let responses: Vec<_> =
            tickets.into_iter().map(|t| t.wait().expect("server answers every request")).collect();
        let stats = server.shutdown();
        (responses, stats)
    });
    assert_eq!(stats.completed as usize, count, "open loop must serve the whole trace");

    // Bit-equality through the whole stack, outside the timed region.
    // Outputs must match exactly; the *report* of a padded request
    // legitimately differs (the modelled GEMM is wider), so the
    // deterministic cycle/op sums below are taken from the served
    // responses themselves.
    let direct = serve::session();
    let (mut served_cycles, mut served_ops) = (0u64, 0u64);
    let mut latencies: Vec<u64> = Vec::with_capacity(responses.len());
    for (resp, arrival) in responses.iter().zip(&trace) {
        let want = direct.run_serial(serve::request(arrival)).expect("direct run succeeds");
        assert_eq!(
            resp.response.output, want.output,
            "serving determinism violation: served output differs from direct at {arrival:?}"
        );
        served_cycles += resp.response.report.cycles;
        served_ops += resp.response.report.total_ops;
        latencies.push(resp.latency_ns());
    }
    latencies.sort_unstable();
    let record = PerfRecord {
        name: "serve_open_loop".into(),
        cycles: served_cycles,
        total_ops: served_ops,
        density: 0.0,
        macs_per_cycle: 0.0,
        wall_s: wall,
        wall_norm: 0.0, // assigned after the final calibration
    };
    let serve_stats = ServeStats {
        requests: stats.completed,
        batches: stats.batches,
        padded: stats.padded,
        workers: serve::WORKERS,
        throughput_rps: if wall > 0.0 { count as f64 / wall } else { 0.0 },
        p50_latency_ns: latencies[latencies.len() / 2] as f64,
        p99_latency_ns: latencies[latencies.len() * 99 / 100] as f64,
    };
    (record, serve_stats)
}

/// Spins until the server's batcher has absorbed `target` admitted
/// requests — the virtual-clock sync point: once a request is counted
/// absorbed, its batch bucket (and deadline) exists, so advancing the
/// clock afterwards is race-free.
fn spin_until_absorbed(server: &Server, target: u64) {
    while server.stats().absorbed < target {
        std::thread::yield_now();
    }
}

/// The `serve_overload` workload (schema 7): the serving stack's
/// overload and fault-tolerance behavior, scripted on the **virtual
/// clock** so every counter is deterministic (see
/// [`ta_workloads::serve::overload_config`] for the design point):
///
/// 1. **Storm** — the seeded storm trace is submitted with the clock
///    frozen, so nothing flushes and nothing releases queue depth;
///    per-tenant rejections are a pure function of the trace's tenant
///    sequence.
/// 2. **Shed** — one clock jump past the latency budget expires every
///    admitted storm request at the batcher; all of them resolve as
///    typed `Shed` errors without ever reaching a worker (so the
///    fault-injection stream is untouched).
/// 3. **Recovery** — waves of identical tenant-0 requests are served
///    under seeded worker-panic injection: one shape bucket per wave →
///    one batch job → one worker, so panic decisions land on a fixed
///    request order. Losses resolve as typed `WorkerLost`, the pool
///    respawns, and every completed response is bit-checked against a
///    direct serial run.
///
/// The PerfRecord's `cycles`/`total_ops` are the deterministic sums
/// over completed responses; the whole protocol is timed as a single
/// pass (repeating it would replay the fault stream from a different
/// offset).
///
/// # Panics
///
/// Panics if any counter disagrees with the server's own accounting,
/// if a storm request resolves as anything but `Shed`, if a recovery
/// request resolves as anything but a bit-identical response or
/// `WorkerLost`, or if the whole recovery phase completes zero
/// requests.
fn serve_overload(scale: Scale) -> (PerfRecord, OverloadStats) {
    ta_serve::faultpoint::quiet_injected_panics();
    let arrivals = serve::overload_arrivals(scale);
    let waves = serve::overload_waves(scale);
    let start = Instant::now();
    let server = Server::start(serve::session(), serve::overload_config());

    // Phase 1: storm at frozen clock — deterministic rejections.
    let mut rejected = 0u64;
    let mut storm_tickets = Vec::new();
    for a in &arrivals {
        match server.submit(a.tenant, serve::request(a)) {
            Ok(t) => storm_tickets.push(t),
            Err(ServeError::Rejected(_)) => rejected += 1,
            Err(e) => panic!("storm submission failed unexpectedly: {e}"),
        }
    }
    let admitted = storm_tickets.len() as u64;

    // Phase 2: one clock jump sheds every admitted storm request.
    spin_until_absorbed(&server, admitted);
    server.advance_clock(2 * serve::OVERLOAD_BUDGET_NS);
    let mut shed = 0u64;
    for t in storm_tickets {
        match t.wait() {
            Err(ServeError::Shed { .. }) => shed += 1,
            other => panic!("storm request must shed, resolved as {other:?}"),
        }
    }

    // Phase 3: recovery waves under worker-panic injection. Waiting
    // each wave's tickets before the next submits keeps the panic
    // decision order (and the per-tenant depth) deterministic.
    let direct = serve::session();
    let want = direct.run_serial(serve::overload_request()).expect("wave request is valid");
    let (mut completed, mut worker_lost) = (0u64, 0u64);
    let (mut served_cycles, mut served_ops) = (0u64, 0u64);
    for _ in 0..waves {
        let base = server.stats().absorbed;
        let tickets: Vec<_> = (0..serve::OVERLOAD_WAVE)
            .map(|_| {
                server
                    .submit(0, serve::overload_request())
                    .expect("recovery waves fit the depth limit")
            })
            .collect();
        spin_until_absorbed(&server, base + serve::OVERLOAD_WAVE as u64);
        server.advance_clock(serve::overload_config().policy.max_delay_ns);
        for t in tickets {
            match t.wait() {
                Ok(resp) => {
                    assert_eq!(
                        resp.response.output, want.output,
                        "serving determinism violation: recovery output differs from direct"
                    );
                    served_cycles += resp.response.report.cycles;
                    served_ops += resp.response.report.total_ops;
                    completed += 1;
                }
                Err(ServeError::WorkerLost) => worker_lost += 1,
                Err(e) => panic!("recovery request failed unexpectedly: {e}"),
            }
        }
    }
    let stats = server.shutdown();
    let wall = start.elapsed().as_secs_f64();

    // The driver's books and the server's must agree exactly.
    assert_eq!(stats.rejected, rejected, "admission rejection accounting drifted");
    assert_eq!(stats.shed, shed, "shed accounting drifted");
    assert_eq!(stats.worker_lost, worker_lost, "worker-loss accounting drifted");
    assert_eq!(stats.completed, completed, "completion accounting drifted");
    assert!(completed > 0, "recovery must complete at least one wave request");

    let submitted = arrivals.len() as u64 + (waves * serve::OVERLOAD_WAVE) as u64;
    let record = PerfRecord {
        name: "serve_overload".into(),
        cycles: served_cycles,
        total_ops: served_ops,
        density: 0.0,
        macs_per_cycle: 0.0,
        wall_s: wall,
        wall_norm: 0.0, // assigned after the final calibration
    };
    let overload = OverloadStats {
        submitted,
        rejected,
        shed,
        worker_lost,
        completed,
        goodput: completed as f64 / submitted as f64,
        workers: serve::WORKERS,
        respawned: stats.respawned,
    };
    (record, overload)
}

/// The `kernel_micro_*` workloads (schema 6): the three word-parallel
/// primitive families the `ta_bitslice::kernels` facade owns — row-word
/// popcount/XOR-popcount sweeps, sub-tile TransRow pattern extraction,
/// and im2col lowering — measured in isolation, so a per-bit loop
/// creeping back into any of them shows up as a standalone wall
/// regression instead of being diluted into a full-layer run. Every
/// matrix has a non-word-multiple column count, keeping the kernels'
/// masked-tail paths inside the timed region.
///
/// `total_ops` is a deterministic kernel *output* (set bits counted /
/// extracted-pattern bits / nonzero lowered elements), not a wall
/// metric — so the full-strength 20% gate arms on kernel correctness
/// drift while `wall_norm` rides the widened wall gate like every other
/// workload. `want` filters which of the three are measured.
fn kernel_micro(scale: Scale, want: &dyn Fn(&str) -> bool) -> Vec<PerfRecord> {
    let record = |name: &str, total_ops: u64, wall: f64| PerfRecord {
        name: name.into(),
        cycles: 0,
        total_ops,
        density: 0.0,
        macs_per_cycle: 0.0,
        wall_s: wall,
        wall_norm: 0.0, // assigned after the final calibration
    };
    let mut records = Vec::new();

    if want("kernel_micro_popcount") || want("kernel_micro_extract") {
        let planes = kernel::plane_matrix(scale);
        if want("kernel_micro_popcount") {
            let (pop_bits, pop_wall) = measure(|| black_box(kernel::popcount_total(&planes)));
            records.push(record("kernel_micro_popcount", pop_bits, pop_wall));
        }
        if want("kernel_micro_extract") {
            let mut patterns: Vec<u16> = Vec::new();
            let (ext_bits, ext_wall) =
                measure(|| black_box(kernel::extract_total(&planes, &mut patterns)));
            records.push(record("kernel_micro_extract", ext_bits, ext_wall));
        }
    }

    if want("kernel_micro_im2col") {
        let (shape, input) = kernel::conv_case(scale);
        let (im_nonzero, im_wall) = measure(|| black_box(kernel::im2col_nonzeros(&shape, &input)));
        records.push(record("kernel_micro_im2col", im_nonzero, im_wall));
    }
    records
}

/// Runs the full bench-smoke workload roster at `scale` — see
/// [`run_suite_filtered`] for the parameters and panics.
pub fn run_suite(
    scale: Scale,
    threads: usize,
    plan_cache: usize,
    plan_cache_shards: usize,
) -> PerfReport {
    run_suite_filtered(scale, threads, plan_cache, plan_cache_shards, None)
}

/// Runs the bench-smoke workload roster at `scale` with `threads`
/// parallel workers (`0` = one per core), a plan cache of `plan_cache`
/// entries for the cached LLaMA-7B workload, and `plan_cache_shards`
/// shards (`0` = auto) for the cache and the contention sweep, and
/// returns the report (`sha` is left empty for the caller to fill in).
///
/// `only` restricts the roster to the named workloads (`bench_smoke
/// --only`); `None` runs everything. The serial LLaMA-7B run is the
/// family's bit-equality reference and the DRAM-traffic source, so it
/// runs whenever any of `l7b_qproj_{serial,parallel,cached}` is
/// selected (its record is only emitted when selected itself). Summary
/// metrics whose workload was filtered out take their "unmeasured"
/// value: `0.0` ratios, `-1.0` allocation audit, empty contention,
/// `None` serve stats.
///
/// # Panics
///
/// Panics if the parallel **or plan-cached** LLaMA-7B run is not
/// bit-identical to the serial run — that is a determinism-contract
/// violation, which the CI gate must surface loudly. Also panics if
/// `plan_cache` is zero (the suite exists to keep the cache measured; a
/// run without it cannot produce the gated hit rate).
pub fn run_suite_filtered(
    scale: Scale,
    threads: usize,
    plan_cache: usize,
    plan_cache_shards: usize,
    only: Option<&[String]>,
) -> PerfReport {
    assert!(plan_cache > 0, "run_suite requires a non-zero plan-cache capacity");
    let want = |name: &str| match only {
        None => true,
        Some(filter) => filter.iter().any(|n| n == name),
    };
    let host_cores = runtime::available_cores();
    let resolved_threads = runtime::Runtime::new(threads).threads();
    // Calibrate at suite start AND end, taking the min: host load drifts
    // at minute scale, and a calibration sample that caught a slow window
    // deflates every norm, so the best (fastest) estimate of machine
    // speed is the stable denominator. Norms are filled in at the end.
    let calibration_start = calibration_loop();
    let mut workloads = Vec::new();

    // Fig. 9 design point: Scoreboard-only, the DSE hot path.
    if want("fig9_dse_t8_r256") {
        let (stats, wall) = measure(|| fig9::suite_point(scale.tiles));
        workloads.push(PerfRecord {
            name: "fig9_dse_t8_r256".into(),
            cycles: 0,
            total_ops: stats.total_ops,
            density: stats.density(),
            macs_per_cycle: 0.0,
            wall_s: wall,
            wall_norm: 0.0, // assigned after the final calibration below
        });
    }

    // Full-scale LLaMA-7B q_proj, serial then parallel (same config
    // except the threads knob); the pair must agree bit-exactly.
    let shape = l7b::qproj_shape();
    let run_layer = |threads: usize| {
        let ta = TransitiveArray::new(l7b::layer_config(scale, threads));
        let n_tile = ta.config().n_tile();
        measure(move || ta.simulate_layer(shape, &mut l7b::pattern_source(n_tile)))
    };
    let family = ["l7b_qproj_serial", "l7b_qproj_parallel", "l7b_qproj_cached"];
    let serial: Option<(GemmReport, f64)> =
        if family.iter().any(|n| want(n)) { Some(run_layer(1)) } else { None };
    let push_layer = |workloads: &mut Vec<PerfRecord>, name: &str, rep: &GemmReport, wall: f64| {
        workloads.push(PerfRecord {
            name: name.into(),
            cycles: rep.cycles,
            total_ops: rep.total_ops,
            density: rep.density,
            macs_per_cycle: rep.macs_per_cycle(),
            wall_s: wall,
            wall_norm: 0.0, // assigned after the final calibration below
        });
    };
    if let Some((serial_rep, serial_wall)) = &serial {
        if want("l7b_qproj_serial") {
            push_layer(&mut workloads, "l7b_qproj_serial", serial_rep, *serial_wall);
        }
    }
    let mut speedup_parallel = 0.0;
    if want("l7b_qproj_parallel") {
        let (serial_rep, serial_wall) = serial.as_ref().expect("serial reference ran");
        let (parallel_rep, parallel_wall) = run_layer(resolved_threads);
        assert_eq!(
            *serial_rep, parallel_rep,
            "determinism violation: parallel LLaMA-7B q_proj report differs from serial"
        );
        speedup_parallel = if parallel_wall > 0.0 { serial_wall / parallel_wall } else { 0.0 };
        push_layer(&mut workloads, "l7b_qproj_parallel", &parallel_rep, parallel_wall);
    }
    let mut plan_cache_hit_rate = 0.0;
    let mut speedup_cached = 0.0;
    if want("l7b_qproj_cached") {
        let (serial_rep, serial_wall) = serial.as_ref().expect("serial reference ran");
        // Plan-cached run: one accelerator constructed outside the
        // timing loop, so its shared cache persists across the
        // measurement repeats — modeling repeated inference over the
        // same static weights, which is exactly the cross-call reuse the
        // cache exists for. The best sample is therefore a warm-cache
        // time; the uncached serial wall is the denominator of
        // `speedup_cached`.
        let cached_ta = TransitiveArray::new(TransArrayConfig {
            plan_cache,
            plan_cache_shards,
            ..l7b::layer_config(scale, 1)
        });
        let n_tile = cached_ta.config().n_tile();
        let (cached_rep, cached_wall) =
            measure(|| cached_ta.simulate_layer(shape, &mut l7b::pattern_source(n_tile)));
        assert_eq!(
            *serial_rep, cached_rep,
            "determinism violation: plan-cached LLaMA-7B q_proj report differs from uncached"
        );
        // Deterministic warm-replay hit rate: one more simulation of the
        // same layer, measured by counter deltas ([`cached_replay`]).
        // (The timing loop's aggregate rate would depend on how many
        // iterations the pilot sized — a machine-speed artifact the gate
        // must not see.)
        let (replay_rep, _, hit_rate) = cached_replay(&cached_ta, shape, l7b::PATTERN_SEED);
        assert_eq!(*serial_rep, replay_rep, "warm plan-cached replay must stay bit-identical");
        plan_cache_hit_rate = hit_rate;
        speedup_cached = if cached_wall > 0.0 { serial_wall / cached_wall } else { 0.0 };
        push_layer(&mut workloads, "l7b_qproj_cached", &cached_rep, cached_wall);
    }
    // Functional-path workload: the exact bit-level execution engine on
    // an LLM-like integer GEMM (scaled `q_proj` shape). Guards both the
    // engine's wall time and its losslessness.
    let mut exec_ran = false;
    if want("l7b_qproj_exec") {
        let (exec_w, exec_x) = l7b::exec_operands(scale);
        let exec_reference = gemm_i32(&exec_w, &exec_x);
        let exec_ta = TransitiveArray::new(l7b::layer_config(scale, 1));
        let ((exec_out, exec_rep), exec_wall) = measure(|| exec_ta.execute_gemm(&exec_w, &exec_x));
        assert_eq!(exec_out, exec_reference, "functional execution engine must stay bit-exact");
        exec_ran = true;
        push_layer(&mut workloads, "l7b_qproj_exec", &exec_rep, exec_wall);
    }

    // Serving frontend: the full ta-serve stack under a seeded
    // open-loop trace, bit-checked against direct execution.
    let mut serve_stats = None;
    if want("serve_open_loop") {
        let (serve_record, stats) = serve_open_loop(scale);
        workloads.push(serve_record);
        serve_stats = Some(stats);
    }

    // Scripted overload: admission control, shedding, and worker fault
    // isolation on the virtual clock (schema-7 workload).
    let mut overload_stats = None;
    if want("serve_overload") {
        let (overload_record, stats) = serve_overload(scale);
        workloads.push(overload_record);
        overload_stats = Some(stats);
    }

    // Word-parallel kernel microbenchmarks (schema-6 workloads).
    workloads.extend(kernel_micro(scale, &want));

    // Surface the layer's DRAM traffic as requests vs bursts (one
    // request per weight/input/output stream of the shared tiling
    // policy, 64 B bursts).
    let (mut dram_requests, mut dram_bursts) = (0u64, 0u64);
    if let Some((serial_rep, _)) = &serial {
        let mut dram = DramModel::paper_default();
        dram.transfer(serial_rep.traffic.weight_bytes);
        dram.transfer(serial_rep.traffic.input_bytes);
        dram.transfer(serial_rep.traffic.output_bytes);
        dram_requests = dram.requests();
        dram_bursts = dram.bursts();
    }

    let calibration = calibration_start.min(calibration_loop());
    for w in &mut workloads {
        w.wall_norm = if calibration > 0.0 { w.wall_s / calibration } else { 0.0 };
    }

    PerfReport {
        schema: 7,
        sha: String::new(),
        scale: scale.name().to_string(),
        threads: resolved_threads,
        host_cores,
        calibration_wall_s: calibration,
        speedup_parallel,
        plan_cache_hit_rate,
        speedup_cached,
        dram_requests,
        dram_bursts,
        exec_allocs_per_subtile: if exec_ran { measure_exec_allocs() } else { -1.0 },
        contention: if want("plan_cache_contention") {
            contention_workload(plan_cache_shards)
        } else {
            Vec::new()
        },
        serve: serve_stats,
        overload: overload_stats,
        workloads,
    }
}

/// Steady-state allocation audit of the flat execution engine: builds the
/// plans, staged inputs, arena, and accumulator for a batch of
/// representative sub-tiles **outside** the measured region, warms every
/// buffer with one full pass, then counts heap allocations across many
/// replay passes of the engine's per-sub-tile work: pattern staging
/// (`subtile_patterns_into` into a reused buffer, as `execute_gemm`'s
/// worker loop does) + `evaluate_into` (dynamic) +
/// `evaluate_tile_functional_into` (static) + the fused per-row
/// accumulation. A healthy engine measures exactly `0.0` allocations per
/// sub-tile evaluation.
///
/// Deliberately **excluded**: Scoreboard/plan construction and plan-cache
/// key building — those allocate by design (a fresh plan is built once
/// per distinct pattern multiset and amortized by the plan cache); the
/// zero-allocation contract this audit enforces is scoped to the
/// *execution* path that runs for every sub-tile.
///
/// Returns `-1.0` when no counting global allocator is installed (see
/// [`crate::alloc_count`]) — the figure binaries and library tests run on
/// the plain system allocator.
fn measure_exec_allocs() -> f64 {
    if !alloc_count::counting_enabled() {
        return -1.0;
    }
    const M: usize = 32;
    const REPLAYS: u64 = 8;
    let cfg = TransArrayConfig { sample_limit: 0, ..TransArrayConfig::paper_w8() };
    let t = cfg.width as usize;
    let w = l7b::audit_weights(&cfg);
    let sliced = BitSlicedMatrix::slice(&w, 8);
    let mut src = SlicedSource::new(&sliced, cfg.n_tile(), cfg.width);
    let (n_tiles, k_chunks) = (2usize, 8usize);

    // Pre-built dynamic plans (the post-Scoreboard product the plan
    // cache would hand a warm worker), one per (n_tile, k_chunk).
    let mut plans: Vec<ExecutionPlan> = Vec::new();
    let mut all_patterns: Vec<u16> = Vec::new();
    for nt in 0..n_tiles {
        for kc in 0..k_chunks {
            let patterns = src.subtile_patterns(nt, kc);
            let sb = Scoreboard::build(cfg.scoreboard_config(), patterns.iter().copied());
            all_patterns.extend_from_slice(&patterns);
            plans.push(ExecutionPlan::from_scoreboard(&sb));
        }
    }
    let rows_per_tile = src.rows_per_subtile();
    let si = StaticSi::from_patterns(cfg.scoreboard_config(), all_patterns);

    let mut staged = RowMajor::<i64>::zeros(k_chunks * t, M);
    for r in 0..k_chunks * t {
        for (c, v) in staged.row_mut(r).iter_mut().enumerate() {
            *v = (r as i64 * 31 + c as i64 * 7) % 41 - 20;
        }
    }
    let mut acc = RowMajor::<i64>::zeros(rows_per_tile, M);
    let mut scratch = ExecScratch::new();
    let mut patterns: Vec<u16> = Vec::new();

    // One pass = execute_gemm's per-worker steady state: re-stage each
    // sub-tile's patterns through the production source path, then run
    // both engines with the fused accumulation.
    let mut pass = |scratch: &mut ExecScratch, acc: &mut RowMajor<i64>, patterns: &mut Vec<u16>| {
        for (i, plan) in plans.iter().enumerate() {
            let (nt, kc) = (i / k_chunks, i % k_chunks);
            src.subtile_patterns_into(nt, kc, patterns);
            let inputs: TileView<'_> = staged.view_rows(kc * t, t);
            // Dynamic engine + fused accumulate.
            plan.evaluate_into(inputs, scratch, &mut NullSink);
            for (r, &p) in patterns.iter().enumerate() {
                if p == 0 {
                    continue;
                }
                let result = scratch.result(p).expect("pattern computed");
                for (a, &v) in acc.row_mut(r).iter_mut().zip(result) {
                    *a += v;
                }
            }
            // Static engine (chain materialization path).
            si.evaluate_tile_functional_into(patterns, inputs, scratch, &mut NullSink);
        }
    };
    // Warm the arena, sort buffer, pattern buffer, and accumulator.
    pass(&mut scratch, &mut acc, &mut patterns);
    let before = alloc_count::allocations();
    for _ in 0..REPLAYS {
        pass(&mut scratch, &mut acc, &mut patterns);
    }
    let delta = alloc_count::allocations() - before;
    // Two engine evaluations (dynamic + static) per tile per replay.
    delta as f64 / (REPLAYS * 2 * plans.len() as u64) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{CONTENTION_THREADS, DEFAULT_PLAN_CACHE_ENTRIES};

    #[test]
    fn contention_workload_forces_full_hit_rate() {
        // Small direct run of the sweep itself: every point must record
        // the exact lookup count and a positive throughput.
        let points = contention_workload(4);
        assert_eq!(points.len(), CONTENTION_THREADS.len());
        for (p, &threads) in points.iter().zip(CONTENTION_THREADS.iter()) {
            assert_eq!(p.threads, threads);
            assert_eq!(p.lookups, threads as u64 * 20_000);
            assert!(p.wall_s > 0.0 && p.mlookups_per_s > 0.0 && p.ns_per_lookup > 0.0);
        }
    }

    #[test]
    fn contention_workload_survives_many_shards() {
        // Regression test for the shard-count/capacity interaction: 256
        // shards is the auto count of a 64-core host. With a fixed total
        // capacity that meant 1-entry shards, where pre-warm hash
        // collisions evicted warm keys and the sweep's never-miss assert
        // panicked — nondeterministically by host shape. Capacity now
        // scales with the shard count, so this must hold on any host.
        for p in contention_workload(256) {
            assert!(p.mlookups_per_s > 0.0);
        }
    }

    #[test]
    fn suite_runs_at_tiny_scale_and_is_deterministic() {
        let tiny = Scale { tiles: 2, sample_limit: 4, accuracy_dim: 16 };
        let report = run_suite(tiny, 2, DEFAULT_PLAN_CACHE_ENTRIES, 0);
        assert_eq!(report.workloads.len(), 10);
        assert_eq!(report.schema, 7);
        assert_eq!(report.contention.len(), CONTENTION_THREADS.len());
        for p in &report.contention {
            assert!(p.mlookups_per_s > 0.0, "contention sweep must measure real throughput");
        }
        assert!(report.host_cores >= 1);
        let serial = report.workloads.iter().find(|w| w.name == "l7b_qproj_serial").unwrap();
        let parallel = report.workloads.iter().find(|w| w.name == "l7b_qproj_parallel").unwrap();
        let cached = report.workloads.iter().find(|w| w.name == "l7b_qproj_cached").unwrap();
        let exec = report.workloads.iter().find(|w| w.name == "l7b_qproj_exec").unwrap();
        assert_eq!(serial.cycles, parallel.cycles, "parallel must be bit-exact");
        assert_eq!(serial.total_ops, parallel.total_ops);
        assert_eq!(serial.cycles, cached.cycles, "plan cache must be bit-exact");
        assert_eq!(serial.total_ops, cached.total_ops);
        assert!(serial.cycles > 0);
        assert!(exec.cycles > 0 && exec.total_ops > 0, "exec workload reports a real run");
        assert!(exec.density > 0.0 && exec.density < 1.0);
        assert!(report.speedup_parallel > 0.0);
        assert_eq!(
            report.plan_cache_hit_rate, 1.0,
            "a warm replay under an adequate capacity must hit every sub-tile"
        );
        assert!(report.speedup_cached > 0.0);
        assert_eq!(report.dram_requests, 3, "one request per W/I/O stream");
        assert!(report.dram_bursts > report.dram_requests, "bursts decompose requests");
        assert_eq!(
            report.exec_allocs_per_subtile, -1.0,
            "library tests run without the counting allocator"
        );
        let served = report.workloads.iter().find(|w| w.name == "serve_open_loop").unwrap();
        assert!(served.cycles > 0 && served.total_ops > 0, "serve workload sums real runs");
        let serve = report.serve.as_ref().expect("schema-5 suite always measures serving");
        assert_eq!(serve.requests, 32, "tiny scale serves tiles.max(2) * 16 requests");
        assert!(serve.padded > 0, "width-quantized buckets must pad the off-quantum shapes");
        assert!(serve.batches > 0 && serve.batches <= serve.requests);
        assert!(serve.throughput_rps > 0.0);
        assert!(serve.p50_latency_ns > 0.0 && serve.p99_latency_ns >= serve.p50_latency_ns);
        let overloaded = report.workloads.iter().find(|w| w.name == "serve_overload").unwrap();
        assert!(overloaded.cycles > 0 && overloaded.total_ops > 0, "recovery sums real runs");
        let ov = report.overload.as_ref().expect("schema-7 suite always scripts overload");
        assert!(ov.rejected > 0, "the storm must blow at least one tenant's queue depth");
        assert!(ov.shed > 0, "every admitted storm request must shed");
        assert!(ov.worker_lost > 0, "a 25% panic rate must hit some recovery request");
        assert!(ov.respawned > 0 && ov.respawned <= ov.worker_lost);
        assert_eq!(ov.submitted, ov.rejected + ov.shed + ov.worker_lost + ov.completed);
        assert!(ov.goodput > 0.0 && ov.goodput < 1.0);
        assert_eq!(ov.workers, 2);
        for name in ["kernel_micro_popcount", "kernel_micro_extract", "kernel_micro_im2col"] {
            let k = report.workloads.iter().find(|w| w.name == name).unwrap();
            assert!(k.total_ops > 0, "{name} must report a deterministic kernel output");
            assert!(k.wall_s > 0.0 && k.wall_norm > 0.0, "{name} must be timed");
        }
    }

    #[test]
    fn filtered_suite_runs_only_selected_workloads() {
        let tiny = Scale { tiles: 2, sample_limit: 4, accuracy_dim: 16 };
        let only = vec!["l7b_qproj_parallel".to_string(), "kernel_micro_popcount".to_string()];
        let report = run_suite_filtered(tiny, 2, DEFAULT_PLAN_CACHE_ENTRIES, 0, Some(&only));
        let names: Vec<&str> = report.workloads.iter().map(|w| w.name.as_str()).collect();
        // The serial reference ran (speedup + DRAM prove it) but its
        // record is not emitted — only the selected workloads are.
        assert_eq!(names, ["l7b_qproj_parallel", "kernel_micro_popcount"]);
        assert!(report.speedup_parallel > 0.0);
        assert_eq!(report.dram_requests, 3);
        // Everything filtered out reports its "unmeasured" value.
        assert!(report.serve.is_none());
        assert!(report.overload.is_none());
        assert!(report.contention.is_empty());
        assert_eq!(report.plan_cache_hit_rate, 0.0);
        assert_eq!(report.speedup_cached, 0.0);
        assert_eq!(report.exec_allocs_per_subtile, -1.0);
    }

    #[test]
    fn kernel_micro_total_ops_are_deterministic() {
        // The gate treats kernel_micro `total_ops` as a full-strength
        // deterministic metric, so two runs at the same scale must agree
        // exactly (only the wall columns may differ).
        let tiny = Scale { tiles: 2, sample_limit: 4, accuracy_dim: 16 };
        let a = kernel_micro(tiny, &|_| true);
        let b = kernel_micro(tiny, &|_| true);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.total_ops, y.total_ops, "{} total_ops drifted across runs", x.name);
        }
    }

    #[test]
    fn serve_overload_counters_are_deterministic() {
        // The gate requires exact matches on every overload counter
        // (goodput included), so two runs at the same scale must agree
        // bit-for-bit — only the wall columns may differ.
        let tiny = Scale { tiles: 2, sample_limit: 4, accuracy_dim: 16 };
        let (rec_a, ov_a) = serve_overload(tiny);
        let (rec_b, ov_b) = serve_overload(tiny);
        assert_eq!(ov_a, ov_b, "overload counters drifted across runs");
        assert_eq!(rec_a.cycles, rec_b.cycles, "recovery cycle sums drifted across runs");
        assert_eq!(rec_a.total_ops, rec_b.total_ops);
    }

    #[test]
    #[should_panic(expected = "non-zero plan-cache capacity")]
    fn suite_rejects_zero_plan_cache() {
        let tiny = Scale { tiles: 2, sample_limit: 4, accuracy_dim: 16 };
        let _ = run_suite(tiny, 1, 0, 0);
    }
}
