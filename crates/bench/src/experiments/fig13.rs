//! Fig. 13 — static vs dynamic Scoreboard on real-like vs uniform random
//! data, 8-bit TranSparsity, densities vs tiling row size, with the
//! bit-sparsity reference line.

use crate::report::{fmt3, Table};
use crate::scale::Scale;
use ta_baselines::bit_sparsity_density;
use ta_core::PatternSource;
use ta_hasse::{Scoreboard, ScoreboardConfig, StaticSi, TileStats};
use ta_workloads::sources::{fig13_random_source, fig13_real_source};

/// The paper's row-size sweep for this figure.
pub const ROW_SIZES: [usize; 5] = [64, 128, 256, 512, 1024];

/// Densities of one (source, row size) design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig13Point {
    /// Dynamic-Scoreboard density.
    pub dynamic: f64,
    /// Static-Scoreboard density (tensor-level SI, per-tile misses).
    pub static_: f64,
    /// Plain bit-sparsity density.
    pub bit: f64,
    /// SI misses per non-zero row under the static SI.
    pub miss_rate: f64,
}

/// Measures one design point: `calib_tiles` tiles calibrate the static
/// SI; `eval_tiles` further tiles are executed under both Scoreboards.
pub fn measure(
    source: &mut dyn PatternSource,
    row_size: usize,
    calib_tiles: usize,
    eval_tiles: usize,
) -> Fig13Point {
    let cfg = ScoreboardConfig::with_width(8);
    // Tensor-level calibration (offline pass, §3.3). The tile row count
    // matters only for evaluation; calibration sees the union.
    let mut calib = Vec::new();
    for t in 0..calib_tiles {
        calib.extend(chunked_patterns(source, t, row_size));
    }
    let si = StaticSi::from_patterns(cfg, calib.iter().copied());

    let mut dyn_ops = 0u64;
    let mut sta_ops = 0u64;
    let mut bit_acc = 0.0f64;
    let mut dense = 0u64;
    let mut misses = 0u64;
    let mut nonzero = 0u64;
    for t in 0..eval_tiles {
        let patterns = chunked_patterns(source, calib_tiles + t, row_size);
        let sb = Scoreboard::build(cfg, patterns.iter().copied());
        dyn_ops += TileStats::from_scoreboard(&sb).total_ops;
        let rep = si.evaluate_tile(&patterns);
        sta_ops += rep.total_ops;
        misses += rep.si_misses;
        nonzero += (rep.rows - rep.zero_rows) as u64;
        bit_acc += bit_sparsity_density(&patterns, 8) * patterns.len() as f64 * 8.0;
        dense += patterns.len() as u64 * 8;
    }
    Fig13Point {
        dynamic: dyn_ops as f64 / dense as f64,
        static_: sta_ops as f64 / dense as f64,
        bit: bit_acc / dense as f64,
        miss_rate: if nonzero == 0 { 0.0 } else { misses as f64 / nonzero as f64 },
    }
}

/// Pulls `row_size` patterns for tile index `t` from a source whose
/// sub-tile granularity may differ — stitches sub-tiles as needed.
fn chunked_patterns(source: &mut dyn PatternSource, t: usize, row_size: usize) -> Vec<u16> {
    let per = source.rows_per_subtile();
    let needed = row_size.div_ceil(per);
    let mut out = Vec::with_capacity(needed * per);
    for i in 0..needed {
        out.extend(source.subtile_patterns(t * needed + i, 0));
    }
    out.truncate(row_size);
    out
}

/// Runs the figure: one table per data distribution.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for (label, real) in [("real (quantized-Gaussian)", true), ("random (uniform bits)", false)] {
        let mut t = Table::new(
            format!("Fig 13 density % vs tiling row size — {label}"),
            &["row_size", "bit_sparsity", "dynamic", "static", "si_miss_rate"],
        );
        for &rows in &ROW_SIZES {
            let mut real_src;
            let mut rand_src;
            let src: &mut dyn PatternSource = if real {
                real_src = fig13_real_source();
                &mut real_src
            } else {
                rand_src = fig13_random_source();
                &mut rand_src
            };
            let p = measure(src, rows, scale.tiles.max(2), scale.tiles.max(2));
            t.push_row(vec![
                rows.to_string(),
                fmt3(100.0 * p.bit),
                fmt3(100.0 * p.dynamic),
                fmt3(100.0 * p.static_),
                fmt3(p.miss_rate),
            ]);
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_workloads::sources::dse_source;

    #[test]
    fn dynamic_beats_static_at_small_tiles() {
        // §5.8: dynamic achieves significantly lower density than static
        // for small row sizes…
        let mut src = dse_source(8, 256, 3);
        let p64 = measure(&mut src, 64, 6, 6);
        assert!(
            p64.static_ > p64.dynamic * 1.1,
            "static {} vs dynamic {}",
            p64.static_,
            p64.dynamic
        );
        // …with a real miss rate behind it.
        assert!(p64.miss_rate > 0.0);
    }

    #[test]
    fn static_converges_to_dynamic_at_large_tiles() {
        let mut src = dse_source(8, 256, 3);
        let p1024 = measure(&mut src, 1024, 4, 4);
        assert!(
            (p1024.static_ - p1024.dynamic).abs() / p1024.dynamic < 0.10,
            "static {} vs dynamic {}",
            p1024.static_,
            p1024.dynamic
        );
    }

    #[test]
    fn both_beat_bit_sparsity() {
        // "the static Scoreboard remains significantly more efficient
        // than bit sparsity" (§5.8).
        let mut src = dse_source(8, 256, 9);
        for rows in [64usize, 256, 1024] {
            let p = measure(&mut src, rows, 4, 4);
            assert!(p.dynamic < p.bit * 0.8, "rows {rows}: dyn {} bit {}", p.dynamic, p.bit);
            assert!(p.static_ < p.bit * 0.9, "rows {rows}: sta {} bit {}", p.static_, p.bit);
        }
    }

    #[test]
    fn real_data_slightly_better_than_random() {
        // §5.9: slightly better performance on real data.
        let mut real = fig13_real_source();
        let mut rand = fig13_random_source();
        let pr = measure(&mut real, 256, 6, 6);
        let pu = measure(&mut rand, 256, 6, 6);
        assert!(
            pr.dynamic <= pu.dynamic * 1.01,
            "real {} should be ≤ random {}",
            pr.dynamic,
            pu.dynamic
        );
    }

    #[test]
    fn run_emits_two_tables() {
        let tables = run(Scale::quick());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), ROW_SIZES.len());
    }
}
