//! Fig. 14 — per-layer speedups on ResNet-18 (ImageNet, im2col-lowered):
//! BitFusion, ANT, TransArray. TransArray runs 4-bit weights except the
//! first conv and the FC (8-bit), per §5.10.

use crate::report::{fmt3, Table};
use crate::scale::Scale;
use ta_baselines::Baseline;
use ta_core::{GemmShape, TransArrayConfig, TransitiveArray};
use ta_models::resnet18_layers;
use ta_sim::EnergyModel;
use ta_workloads::sources::fig14_layer_source;

/// Per-layer cycles for the three accelerators.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCycles {
    /// Layer index (1..=21).
    pub index: usize,
    /// Layer name.
    pub name: String,
    /// BitFusion cycles (8-bit path, its accuracy-safe CNN config).
    pub bitfusion: u64,
    /// ANT cycles (mixed 4/8-bit weights as the layer allows).
    pub ant: u64,
    /// TransArray cycles (4-bit weights, 8-bit first/last).
    pub transarray: u64,
}

/// Simulates every ResNet-18 layer.
pub fn simulate(scale: Scale) -> Vec<LayerCycles> {
    let em = EnergyModel::paper_28nm();
    let bf = Baseline::bitfusion();
    let ant = Baseline::ant();
    let mut out = Vec::new();
    for layer in resnet18_layers() {
        let shape = layer.gemm;
        // BitFusion runs the 8-bit path (its 4-bit PTQ accuracy is not
        // viable on ImageNet without QAT); ANT's adaptive types allow the
        // layer's mixed precision.
        let bf_cycles = bf.simulate_gemm(shape, 8, 8, &em).cycles;
        let ant_cycles = ant.simulate_gemm(shape, layer.weight_bits, 8, &em).cycles;
        let cfg = if layer.weight_bits == 4 {
            TransArrayConfig::paper_w4()
        } else {
            TransArrayConfig::paper_w8()
        };
        let ta = TransitiveArray::new(TransArrayConfig { sample_limit: scale.sample_limit, ..cfg });
        let mut src = fig14_layer_source(layer.weight_bits, ta.config().n_tile(), layer.index);
        let ta_cycles =
            ta.simulate_layer(GemmShape::new(shape.n, shape.k, shape.m), &mut src).cycles;
        out.push(LayerCycles {
            index: layer.index,
            name: layer.name.to_string(),
            bitfusion: bf_cycles,
            ant: ant_cycles,
            transarray: ta_cycles,
        });
    }
    out
}

/// Builds the per-layer speedup table (normalized to BitFusion) plus the
/// Total row the figure annotates.
pub fn run(scale: Scale) -> Vec<Table> {
    let layers = simulate(scale);
    let mut t = Table::new(
        "Fig 14 ResNet-18 speedup over BitFusion",
        &["layer", "name", "BitFusion", "ANT", "TransArray"],
    );
    for l in &layers {
        t.push_row(vec![
            l.index.to_string(),
            l.name.clone(),
            "1.000".to_string(),
            fmt3(l.bitfusion as f64 / l.ant as f64),
            fmt3(l.bitfusion as f64 / l.transarray as f64),
        ]);
    }
    let total_bf: u64 = layers.iter().map(|l| l.bitfusion).sum();
    let total_ant: u64 = layers.iter().map(|l| l.ant).sum();
    let total_ta: u64 = layers.iter().map(|l| l.transarray).sum();
    t.push_row(vec![
        "Total".to_string(),
        "resnet18".to_string(),
        "1.000".to_string(),
        fmt3(total_bf as f64 / total_ant as f64),
        fmt3(total_bf as f64 / total_ta as f64),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transarray_fastest_overall() {
        // Paper: TA = 4.26× BitFusion, 2.21× ANT on the network total.
        let layers = simulate(Scale::quick());
        let bf: u64 = layers.iter().map(|l| l.bitfusion).sum();
        let ant: u64 = layers.iter().map(|l| l.ant).sum();
        let ta: u64 = layers.iter().map(|l| l.transarray).sum();
        let vs_bf = bf as f64 / ta as f64;
        let vs_ant = ant as f64 / ta as f64;
        assert!((2.0..6.5).contains(&vs_bf), "TA vs BitFusion {vs_bf}");
        assert!((1.3..3.5).contains(&vs_ant), "TA vs ANT {vs_ant}");
    }

    #[test]
    fn every_layer_reported() {
        let layers = simulate(Scale::quick());
        assert_eq!(layers.len(), 21);
        assert!(layers.iter().all(|l| l.transarray > 0));
    }

    #[test]
    fn table_ends_with_total() {
        let t = &run(Scale::quick())[0];
        assert_eq!(t.rows.len(), 22);
        assert_eq!(t.rows.last().unwrap()[0], "Total");
    }
}
