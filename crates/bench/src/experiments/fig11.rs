//! Fig. 11 — TransArray energy breakdown on the first FC layer of
//! LLaMA-1-7B (q_proj, 4096×4096×2048).

use crate::report::{fmt3, Table};
use crate::scale::Scale;
use ta_core::{GemmShape, TransArrayConfig, TransitiveArray};
use ta_models::{LlamaConfig, PAPER_SEQ_LEN};
use ta_sim::EnergyBreakdown;
use ta_workloads::sources::fig11_source;

/// Simulates the first FC layer and returns the breakdown.
pub fn breakdown(scale: Scale) -> EnergyBreakdown {
    let ta = TransitiveArray::new(TransArrayConfig {
        sample_limit: scale.sample_limit,
        ..TransArrayConfig::paper_w8()
    });
    let layer = LlamaConfig::l1_7b().fc_layers(PAPER_SEQ_LEN)[0];
    let mut src = fig11_source(ta.config().n_tile());
    let rep =
        ta.simulate_layer(GemmShape::new(layer.shape.n, layer.shape.k, layer.shape.m), &mut src);
    rep.energy
}

/// Renders the breakdown as Fig. 11's slices (percent of total).
pub fn run(scale: Scale) -> Vec<Table> {
    let b = breakdown(scale);
    let total = b.total();
    let pct = |x: f64| fmt3(100.0 * x / total);
    let mut t = Table::new(
        "Fig 11 TransArray energy breakdown (LLaMA-1-7B first FC)",
        &["slice", "percent", "paper_percent"],
    );
    // Paper slice values from Fig. 11 for side-by-side comparison.
    t.push_row(vec!["DRAM dynamic".into(), pct(b.dram_dynamic), "21.1".into()]);
    t.push_row(vec!["DRAM static".into(), pct(b.dram_static), "9.9".into()]);
    t.push_row(vec!["Core (+leak)".into(), pct(b.core + b.core_static), "12.7".into()]);
    t.push_row(vec!["Weight buffer".into(), pct(b.weight_buf), "5.1".into()]);
    t.push_row(vec!["Input buffer".into(), pct(b.input_buf), "5.1".into()]);
    t.push_row(vec!["Prefix buffer".into(), pct(b.prefix_buf), "29.0".into()]);
    t.push_row(vec![
        "Output (+double) buffer".into(),
        pct(b.output_buf + b.double_buf),
        "17.2".into(),
    ]);
    t.push_row(vec!["Buffer total".into(), pct(b.buffer_total()), "56.4".into()]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_dominates_breakdown() {
        // The paper's headline observation (§5.6): buffers take the
        // majority of the energy, dominated by the prefix buffer.
        let b = breakdown(Scale::quick());
        let total = b.total();
        assert!(b.buffer_total() / total > 0.35, "buffer {}", b.buffer_total() / total);
        assert!(
            b.prefix_buf >= b.weight_buf && b.prefix_buf >= b.input_buf,
            "prefix buffer must be the biggest buffer slice"
        );
        // DRAM dynamic is significant but not dominant.
        let dd = b.dram_dynamic / total;
        assert!((0.05..0.50).contains(&dd), "DRAM-D {dd}");
    }

    #[test]
    fn table_slices_sum_near_100() {
        let tables = run(Scale::quick());
        let t = &tables[0];
        // All slices except the "Buffer total" summary row.
        let sum: f64 =
            t.rows[..t.rows.len() - 1].iter().map(|r| r[1].parse::<f64>().unwrap()).sum();
        assert!((sum - 100.0).abs() < 1.0, "sum {sum}");
    }
}
