//! One module per paper artifact — each exposes `run(Scale) -> Vec<Table>`
//! so binaries, the `all` runner, integration tests, and the Criterion
//! benches share the exact same code paths.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig9;
pub mod tables;
