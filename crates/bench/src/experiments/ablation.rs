//! Ablation studies — quantifying the design choices DESIGN.md §9 calls
//! out: the distance cap, the lane count, the workload-counter balancer,
//! and the static-Scoreboard area trade (§5.8's "~25%" remark).

use crate::report::{fmt3, Table};
use crate::scale::Scale;
use ta_core::PatternSource;
use ta_hasse::{BalancePolicy, Scoreboard, ScoreboardConfig, TileStats};
use ta_sim::{table2, transarray_area};
use ta_workloads::sources::dse_source;

/// Aggregated Scoreboard stats for one config over `tiles` random tiles.
fn sweep(cfg: ScoreboardConfig, rows: usize, tiles: usize, seed: u64) -> TileStats {
    let mut src = dse_source(cfg.width, rows, seed);
    let mut total: Option<TileStats> = None;
    for t in 0..tiles.max(1) {
        let sb = Scoreboard::build(cfg, src.subtile_patterns(t, 0));
        let s = TileStats::from_scoreboard(&sb);
        match &mut total {
            None => total = Some(s),
            Some(acc) => acc.merge(&s),
        }
    }
    total.expect("at least one tile")
}

/// Distance-cap sweep at the T=8 / 256-row design point: density and
/// outlier fraction vs cap (the paper deploys 4; Fig. 6 stores bitmaps
/// for distances 1–4).
pub fn distance_cap(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation: distance cap at T=8, 256-row tiles",
        &["cap", "density_%", "outlier_rows_%", "transit_ops_%"],
    );
    for cap in 1u8..=8 {
        let cfg = ScoreboardConfig { max_distance: cap.min(9), ..ScoreboardConfig::with_width(8) };
        let s = sweep(cfg, 256, scale.tiles, 77);
        t.push_row(vec![
            cap.to_string(),
            fmt3(100.0 * s.density()),
            fmt3(100.0 * s.outlier_rows as f64 / s.rows as f64),
            fmt3(100.0 * s.transit_ops as f64 / s.rows as f64),
        ]);
    }
    t
}

/// Lane-count sweep at T=8: PPE cycles per tile vs lanes — parallelism
/// saturates at the level-1 granularity the paper picks (§2.4).
pub fn lane_count(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation: lane count at T=8, 256-row tiles",
        &["lanes", "ppe_cycles_per_tile", "speedup_vs_1_lane", "balance_efficiency"],
    );
    let tiles = scale.tiles;
    let base = {
        let cfg = ScoreboardConfig { lanes: 1, ..ScoreboardConfig::with_width(8) };
        sweep(cfg, 256, tiles, 5).ppe_cycles() as f64 / tiles as f64
    };
    for lanes in [1u32, 2, 4, 8, 12, 16] {
        let cfg = ScoreboardConfig { lanes, ..ScoreboardConfig::with_width(8) };
        let s = sweep(cfg, 256, tiles, 5);
        let ppe = s.ppe_cycles() as f64 / tiles as f64;
        t.push_row(vec![
            lanes.to_string(),
            fmt3(ppe),
            fmt3(base / ppe),
            fmt3(s.balance_efficiency()),
        ]);
    }
    t
}

/// Balanced vs unbalanced forest: what the workload counter buys.
pub fn balance_policy(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation: lane balancing policy at T=8, 256-row tiles",
        &["policy", "ppe_cycles_per_tile", "balance_efficiency"],
    );
    for (name, policy) in [
        ("workload counter (paper)", BalancePolicy::WorkloadCounter),
        ("first candidate (none)", BalancePolicy::FirstCandidate),
    ] {
        let cfg = ScoreboardConfig { balance: policy, ..ScoreboardConfig::with_width(8) };
        let s = sweep(cfg, 256, scale.tiles, 9);
        t.push_row(vec![
            name.to_string(),
            fmt3(s.ppe_cycles() as f64 / scale.tiles.max(1) as f64),
            fmt3(s.balance_efficiency()),
        ]);
    }
    t
}

/// Static-vs-dynamic Scoreboard area trade (§5.8: dropping the hardware
/// Scoreboard unit saves core area at the price of SI misses).
pub fn scoreboard_area() -> Table {
    let with = transarray_area(6, 8, 32, 480.0);
    let core_with = with.core_mm2();
    let core_without = core_with - table2::SCOREBOARD_UM2 / 1.0e6;
    let mut t = Table::new(
        "Ablation: dynamic Scoreboard area cost",
        &["configuration", "core_mm2", "saving_%"],
    );
    t.push_row(vec!["dynamic (with Scoreboard unit)".into(), fmt3(core_with), "0".into()]);
    t.push_row(vec![
        "static (no Scoreboard unit)".into(),
        fmt3(core_without),
        fmt3(100.0 * (core_with - core_without) / core_with),
    ]);
    t
}

/// Runs all ablations.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![distance_cap(scale), lane_count(scale), balance_policy(scale), scoreboard_area()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_sweep_saturates_by_four() {
        let t = distance_cap(Scale::quick());
        let density = |row: usize| t.rows[row][1].parse::<f64>().unwrap();
        // Cap 1 ≈ no reuse (high density); cap 3 ≈ cap 8 (saturation).
        assert!(density(0) > 1.5 * density(3), "{} vs {}", density(0), density(3));
        assert!((density(2) - density(7)).abs() < 1.0);
    }

    #[test]
    fn lanes_scale_then_saturate() {
        let t = lane_count(Scale::quick());
        let speedup = |row: usize| t.rows[row][2].parse::<f64>().unwrap();
        // 8 lanes ≈ 7-8x over 1 lane; 16 lanes barely better than 8.
        assert!(speedup(3) > 5.0, "8-lane speedup {}", speedup(3));
        assert!(speedup(5) < speedup(3) * 1.35, "16 lanes should saturate");
    }

    #[test]
    fn balancing_buys_cycles() {
        let t = balance_policy(Scale::quick());
        let balanced: f64 = t.rows[0][1].parse().unwrap();
        let unbalanced: f64 = t.rows[1][1].parse().unwrap();
        assert!(
            unbalanced > balanced * 1.05,
            "unbalanced {unbalanced} should cost ≥5% over balanced {balanced}"
        );
    }

    #[test]
    fn scoreboard_area_saving_in_paper_band() {
        let t = scoreboard_area();
        let saving: f64 = t.rows[1][2].parse().unwrap();
        // §5.8 quotes ~25% (relative to a smaller single-unit core); our
        // 6-unit chip amortizes it to ~20%.
        assert!((10.0..30.0).contains(&saving), "saving {saving}%");
    }
}
