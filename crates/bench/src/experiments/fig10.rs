//! Fig. 10 — runtime (cycles) and energy on the FC layers of the LLaMA
//! family, across the full accelerator roster: BitFusion*, ANT, Olive,
//! Tender*, BitVert, TA-8bit, TA-4bit (* = reference only, broken PPL).

use crate::report::{fmt3, geomean, Table};
use crate::scale::Scale;
use ta_baselines::Baseline;
use ta_core::{GemmShape, TransArrayConfig, TransitiveArray};
use ta_models::{LlamaConfig, PAPER_SEQ_LEN};
use ta_sim::EnergyModel;
use ta_workloads::sources::fig10_fc_source;

/// One accelerator's totals over a model's FC layers.
#[derive(Debug, Clone, PartialEq)]
pub struct FcResult {
    /// Accelerator label (paper's legend).
    pub accel: String,
    /// Model label.
    pub model: String,
    /// Total cycles over the block's 7 FC GEMMs.
    pub cycles: u64,
    /// Total energy (nJ).
    pub energy_nj: f64,
}

/// Simulates every (model, accelerator) pair of Fig. 10.
pub fn simulate(scale: Scale) -> Vec<FcResult> {
    let em = EnergyModel::paper_28nm();
    let mut out = Vec::new();
    for model in LlamaConfig::roster() {
        let layers = model.fc_layers(PAPER_SEQ_LEN);

        // Baselines at their Fig. 10 precisions: BitFusion 8-bit (ref),
        // ANT 8, Olive 8, Tender 4 (ref), BitVert 8.
        let roster: [(Baseline, u32); 5] = [
            (Baseline::bitfusion(), 8),
            (Baseline::ant(), 8),
            (Baseline::olive(), 8),
            (Baseline::tender(), 4),
            (Baseline::bitvert(), 8),
        ];
        for (b, wbits) in roster {
            let mut cycles = 0u64;
            let mut energy = 0.0f64;
            for l in &layers {
                let rep = b.simulate_gemm(l.shape, wbits, 8, &em);
                cycles += rep.cycles;
                energy += rep.energy_nj();
            }
            out.push(FcResult {
                accel: format!("{}-{}bit", b.name(), wbits),
                model: model.name.to_string(),
                cycles,
                energy_nj: energy,
            });
        }

        // TransArray at 8-bit and 4-bit weights.
        for (label, cfg, wbits) in [
            ("TA-8bit", TransArrayConfig::paper_w8(), 8u32),
            ("TA-4bit", TransArrayConfig::paper_w4(), 4u32),
        ] {
            let ta =
                TransitiveArray::new(TransArrayConfig { sample_limit: scale.sample_limit, ..cfg });
            let n_tile = ta.config().n_tile();
            let mut cycles = 0u64;
            let mut energy = 0.0f64;
            for (i, l) in layers.iter().enumerate() {
                let mut src = fig10_fc_source(wbits, n_tile, i);
                let rep =
                    ta.simulate_layer(GemmShape::new(l.shape.n, l.shape.k, l.shape.m), &mut src);
                cycles += rep.cycles;
                energy += rep.energy_nj();
            }
            out.push(FcResult {
                accel: label.to_string(),
                model: model.name.to_string(),
                cycles,
                energy_nj: energy,
            });
        }
    }
    out
}

/// The accelerator labels in plotting order.
pub fn accel_order() -> Vec<&'static str> {
    vec![
        "BitFusion-8bit",
        "ANT-8bit",
        "Olive-8bit",
        "Tender-4bit",
        "BitVert-8bit",
        "TA-8bit",
        "TA-4bit",
    ]
}

/// Builds the cycles table, the normalized-speedup table (vs Olive-8bit,
/// with a GeoMean row), and the energy tables.
pub fn run(scale: Scale) -> Vec<Table> {
    let results = simulate(scale);
    let models: Vec<String> = LlamaConfig::roster().iter().map(|m| m.name.to_string()).collect();
    let accels = accel_order();
    let get = |model: &str, accel: &str| -> &FcResult {
        results.iter().find(|r| r.model == model && r.accel == accel).expect("result present")
    };

    let mut headers = vec!["model".to_string()];
    headers.extend(accels.iter().map(|s| s.to_string()));
    let hs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut cycles = Table::new("Fig 10 cycles on LLaMA FC layers", &hs);
    let mut speedup = Table::new("Fig 10 speedup (normalized to Olive-8bit)", &hs);
    let mut energy = Table::new("Fig 10 energy (nJ) on LLaMA FC layers", &hs);
    let mut eff = Table::new("Fig 10 energy efficiency (normalized to Olive-8bit)", &hs);

    let mut per_accel_speedups: Vec<Vec<f64>> = vec![Vec::new(); accels.len()];
    let mut per_accel_effs: Vec<Vec<f64>> = vec![Vec::new(); accels.len()];
    for model in &models {
        let base = get(model, "Olive-8bit");
        let (bc, be) = (base.cycles as f64, base.energy_nj);
        let mut c_row = vec![model.clone()];
        let mut s_row = vec![model.clone()];
        let mut e_row = vec![model.clone()];
        let mut f_row = vec![model.clone()];
        for (ai, accel) in accels.iter().enumerate() {
            let r = get(model, accel);
            c_row.push(r.cycles.to_string());
            e_row.push(fmt3(r.energy_nj));
            let sp = bc / r.cycles as f64;
            let ef = be / r.energy_nj;
            s_row.push(fmt3(sp));
            f_row.push(fmt3(ef));
            per_accel_speedups[ai].push(sp);
            per_accel_effs[ai].push(ef);
        }
        cycles.push_row(c_row);
        speedup.push_row(s_row);
        energy.push_row(e_row);
        eff.push_row(f_row);
    }
    let mut geo_s = vec!["GeoMean".to_string()];
    let mut geo_f = vec!["GeoMean".to_string()];
    for ai in 0..accels.len() {
        geo_s.push(fmt3(geomean(&per_accel_speedups[ai])));
        geo_f.push(fmt3(geomean(&per_accel_effs[ai])));
    }
    speedup.push_row(geo_s);
    eff.push_row(geo_f);

    vec![cycles, speedup, energy, eff]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> Vec<FcResult> {
        simulate(Scale::quick())
    }

    #[test]
    fn fig10_headline_ratios() {
        // Paper §5.5: TA-4bit ≈ 4.91× ANT, 7.46× Olive, 3.97× BitVert;
        // TA-8bit ≈ 2.47× ANT, 3.75× Olive, 1.99× BitVert. Check the
        // 7B geomeans stay in generous bands around those factors.
        let rs = results();
        let cycles = |accel: &str| -> f64 {
            let v: Vec<f64> =
                rs.iter().filter(|r| r.accel == accel).map(|r| r.cycles as f64).collect();
            geomean(&v)
        };
        let ta4 = cycles("TA-4bit");
        let ta8 = cycles("TA-8bit");
        let ant = cycles("ANT-8bit");
        let olive = cycles("Olive-8bit");
        let bv = cycles("BitVert-8bit");
        assert!((3.2..7.0).contains(&(ant / ta4)), "TA4/ANT {}", ant / ta4);
        assert!((5.0..10.0).contains(&(olive / ta4)), "TA4/Olive {}", olive / ta4);
        assert!((2.5..5.5).contains(&(bv / ta4)), "TA4/BV {}", bv / ta4);
        assert!((1.7..3.3).contains(&(ant / ta8)), "TA8/ANT {}", ant / ta8);
        assert!((2.6..4.8).contains(&(olive / ta8)), "TA8/Olive {}", olive / ta8);
    }

    #[test]
    fn ta4_energy_beats_olive() {
        // Paper: 2.31× energy reduction vs Olive, 1.65× vs ANT.
        let rs = results();
        let energy = |accel: &str| -> f64 {
            let v: Vec<f64> = rs.iter().filter(|r| r.accel == accel).map(|r| r.energy_nj).collect();
            geomean(&v)
        };
        let ratio_olive = energy("Olive-8bit") / energy("TA-4bit");
        let ratio_ant = energy("ANT-8bit") / energy("TA-4bit");
        assert!(ratio_olive > 1.3, "Olive/TA4 energy {ratio_olive}");
        assert!(ratio_ant > 1.1, "ANT/TA4 energy {ratio_ant}");
    }

    #[test]
    fn tables_have_geomean_row() {
        let tables = run(Scale::quick());
        assert_eq!(tables.len(), 4);
        let speedup = &tables[1];
        assert_eq!(speedup.rows.last().unwrap()[0], "GeoMean");
        assert_eq!(speedup.rows.len(), LlamaConfig::roster().len() + 1);
    }
}
