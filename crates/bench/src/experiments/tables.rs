//! Tables 1–3: the TransArray unit specification, the area comparison,
//! and the model-accuracy study (quantization-quality proxy).

use crate::report::{fmt3, Table};
use crate::scale::Scale;
use ta_baselines::Baseline;
use ta_core::TransArrayConfig;
use ta_models::LlamaConfig;
use ta_quant::{evaluate_method, pseudo_perplexity, table3_roster};
use ta_sim::transarray_area;
use ta_workloads::sources::table3_tensors;

/// Table 1 — specifications of one TransArray unit.
pub fn table1() -> Vec<Table> {
    let w8 = TransArrayConfig::paper_w8();
    let w4 = TransArrayConfig::paper_w4();
    let mut t = Table::new("Table 1 TransArray unit specification", &["field", "value"]);
    t.push_row(vec!["Bit-width".into(), format!("T = {}-bit TranSparsity", w8.width)]);
    t.push_row(vec!["TransRow number".into(), format!("max {} 1-bit TransRows", w8.max_transrows)]);
    t.push_row(vec![
        "Weight tiling".into(),
        format!("N = {} for 8-bit wgt; N = {} for 4-bit wgt", w8.n_tile(), w4.n_tile()),
    ]);
    t.push_row(vec!["Input tiling".into(), format!("M = {} for 8-bit input", w8.m_tile)]);
    t.push_row(vec!["PPE array".into(), format!("{} x {} 12-bit adders", w8.width, w8.m_tile)]);
    t.push_row(vec!["APE array".into(), format!("{} x {} 24-bit adders", w8.width, w8.m_tile)]);
    t.push_row(vec!["NoC".into(), format!("an {}-way Benes net and crossbar", w8.width)]);
    t.push_row(vec![
        "Scoreboard".into(),
        format!("two {}-way {}-entry tables; a sorter", w8.width, 1 << w8.width),
    ]);
    t.push_row(vec![
        "Buffer size".into(),
        format!(
            "{} KB = {} wgt + {} in + {} out + {} prefix + {} double",
            w8.unit_buffer_kb(),
            w8.weight_buf_kb,
            w8.input_buf_kb,
            w8.output_buf_kb,
            w8.prefix_buf_kb,
            w8.double_buf_kb
        ),
    ]);
    vec![t]
}

/// Table 2 — core/buffer areas of TransArray and the baselines.
pub fn table2() -> Vec<Table> {
    let mut t = Table::new(
        "Table 2 area comparison (28nm)",
        &["architecture", "core_mm2", "paper_core_mm2", "buffer_kb"],
    );
    let cfg = TransArrayConfig::paper_w8();
    let ta = transarray_area(
        cfg.units as u64,
        cfg.width as u64,
        cfg.m_tile as u64,
        cfg.total_buffer_kb(),
    );
    t.push_row(vec![
        format!("TransArray ({} units)", cfg.units),
        fmt3(ta.core_mm2()),
        "0.443".into(),
        fmt3(cfg.total_buffer_kb()),
    ]);
    let paper_core = [0.491, 0.484, 0.489, 0.474, 0.473];
    for (b, paper) in Baseline::roster().into_iter().zip(paper_core) {
        t.push_row(vec![
            b.name().to_string(),
            fmt3(b.core_mm2()),
            fmt3(paper),
            fmt3(b.buffer_kb()),
        ]);
    }
    vec![t]
}

/// Paper Table 3 FP16 perplexities per model (the pseudo-PPL anchor).
const FP16_PPL: [(&str, f64); 7] = [
    ("L-1 7B", 5.68),
    ("L-1 13B", 5.09),
    ("L-1 30B", 4.10),
    ("L-1 65B", 3.53),
    ("L-2 7B", 5.47),
    ("L-2 13B", 4.88),
    ("L-3 8B", 6.14),
];

/// Spread constant of the pseudo-perplexity mapping (see
/// [`ta_quant::pseudo_perplexity`]), fitted so the per-tensor INT8
/// baseline (BF) lands near its paper PPL. A single α cannot match every
/// method because PPL damage depends on error *structure* (structured
/// activation clipping ≫ white W4 noise at equal NMSE) — EXPERIMENTS.md
/// discusses the residual deviations.
const PPL_ALPHA: f64 = 2.5;

/// Table 3 — quantization-quality proxy: per model, each method's output
/// SQNR and pseudo-perplexity on synthetic LLM-like tensors (the
/// substitution of DESIGN.md §3 — real Wikitext PPL needs checkpoints).
pub fn table3(scale: Scale) -> Vec<Table> {
    let methods = table3_roster();
    let mut headers = vec!["model".to_string(), "metric".to_string()];
    headers.extend(methods.iter().map(|m| m.name().to_string()));
    let hs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Table 3 model accuracy proxy (pseudo-PPL / output SQNR dB)", &hs);
    let dim = scale.accuracy_dim;
    for (i, (model, base_ppl)) in FP16_PPL.iter().enumerate() {
        // Model size scales the feature dimension mildly so bigger models
        // are measured on bigger tensors (and different seeds).
        let hidden = LlamaConfig::roster()[i].hidden;
        let (w, a) = table3_tensors(dim, hidden, i);
        let mut ppl_row = vec![model.to_string(), "pseudo-PPL".to_string()];
        let mut sqnr_row = vec![model.to_string(), "SQNR dB".to_string()];
        for m in &methods {
            let rep = evaluate_method(m.as_ref(), &w, &a);
            ppl_row.push(fmt3(pseudo_perplexity(*base_ppl, PPL_ALPHA, rep.output_nmse)));
            sqnr_row.push(fmt3(rep.output_sqnr_db.min(99.0)));
        }
        t.push_row(ppl_row);
        t.push_row(sqnr_row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_fields_match_paper() {
        let t = &table1()[0];
        let rendered = t.render();
        assert!(rendered.contains("T = 8-bit"));
        assert!(rendered.contains("max 256"));
        assert!(rendered.contains("N = 32 for 8-bit wgt; N = 64 for 4-bit"));
        assert!(rendered.contains("80 KB"));
    }

    #[test]
    fn table2_transarray_core_is_smallest() {
        let t = &table2()[0];
        let core: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let ta = core[0];
        assert!(core[1..].iter().all(|&c| c > ta), "TA core {ta} must be smallest");
        // Within 5% of the paper's published value.
        let paper: f64 = t.rows[0][2].parse().unwrap();
        assert!((ta - paper).abs() / paper < 0.05);
    }

    #[test]
    fn table3_ordering_matches_paper() {
        let t = &table3(Scale::quick())[0];
        // For every model: TD-4 pseudo-PPL is catastrophic (worst), BF is
        // clearly worse than FP16, TA columns are near FP16.
        let names = &t.headers;
        let col = |name: &str| names.iter().position(|h| h == name).unwrap();
        for row in t.rows.iter().filter(|r| r[1] == "pseudo-PPL") {
            let get = |name: &str| row[col(name)].parse::<f64>().unwrap();
            assert!(get("TD-4") > get("BF"), "{row:?}");
            assert!(get("BF") > get("FP16") + 0.2, "{row:?}");
            assert!(get("TA-W8A8") < get("BF"), "{row:?}");
            assert!(get("OL") < get("BF"), "{row:?}");
        }
    }
}
