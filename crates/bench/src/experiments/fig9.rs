//! Fig. 9 — design-space exploration of TranSparsity on a uniform random
//! 0-1 matrix: (a) density vs tiling row size across bit widths, (b)
//! node-type percentages vs bit width at row size 256, (c) node-type
//! percentages vs row size at 8-bit, (d) distance histograms vs row size
//! at 8-bit.

use crate::report::{fmt3, Table};
use crate::scale::Scale;
// The design point itself (sweep axes + Scoreboard aggregation) is a
// workload definition and lives in `ta-workloads`; these re-exports
// keep `crate::experiments::fig9::design_point` and the figure benches
// resolving while this module owns only the table rendering.
pub use ta_workloads::fig9::{design_point, BIT_WIDTHS, ROW_SIZES};

/// Runs all four panels.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![panel_a(scale), panel_b(scale), panel_c(scale), panel_d(scale)]
}

/// Panel (a): overall density (%) vs tiling row size for every bit width.
pub fn panel_a(scale: Scale) -> Table {
    let mut headers = vec!["row_size".to_string()];
    headers.extend(BIT_WIDTHS.iter().map(|t| format!("{t}-bit")));
    let mut table = Table::new(
        "Fig 9(a) overall density % vs tiling row size (uniform random)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for &rows in &ROW_SIZES {
        let mut cells = vec![rows.to_string()];
        for &t in &BIT_WIDTHS {
            let s = design_point(t, rows, scale.tiles, 42 + t as u64);
            cells.push(fmt3(100.0 * s.density()));
        }
        table.push_row(cells);
    }
    table
}

/// Panel (b): node-type percentages vs bit width at row size 256.
pub fn panel_b(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig 9(b) node type % vs TranSparsity bit-width (row size 256)",
        &["bit_width", "ZR_sparsity", "TR_density", "FR_density", "PR_density", "total_density"],
    );
    for &t in &BIT_WIDTHS {
        let s = design_point(t, 256, scale.tiles, 7 + t as u64);
        table.push_row(vec![
            t.to_string(),
            fmt3(100.0 * s.zr_sparsity()),
            fmt3(100.0 * s.tr_density()),
            fmt3(100.0 * s.fr_density()),
            fmt3(100.0 * s.pr_density()),
            fmt3(100.0 * s.density()),
        ]);
    }
    table
}

/// Panel (c): node-type percentages vs row size at 8-bit TranSparsity.
pub fn panel_c(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig 9(c) node type % vs tiling row size (8-bit TranSparsity)",
        &["row_size", "ZR_sparsity", "TR_density", "FR_density", "PR_density", "total_density"],
    );
    for &rows in &ROW_SIZES {
        let s = design_point(8, rows, scale.tiles, 11);
        table.push_row(vec![
            rows.to_string(),
            fmt3(100.0 * s.zr_sparsity()),
            fmt3(100.0 * s.tr_density()),
            fmt3(100.0 * s.fr_density()),
            fmt3(100.0 * s.pr_density()),
            fmt3(100.0 * s.density()),
        ]);
    }
    table
}

/// Panel (d): rows per prefix distance vs row size at 8-bit (Dis-1…Dis-5;
/// distances ≥ 5 bucketed into Dis-5, matching the figure's legend).
pub fn panel_d(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig 9(d) rows per distance vs tiling row size (8-bit)",
        &["row_size", "Dis-1", "Dis-2", "Dis-3", "Dis-4", "Dis-5+"],
    );
    for &rows in &ROW_SIZES {
        let s = design_point(8, rows, scale.tiles, 23);
        let d5plus: u64 = s.distance_rows[5..].iter().sum();
        table.push_row(vec![
            rows.to_string(),
            s.distance_rows[1].to_string(),
            s.distance_rows[2].to_string(),
            s.distance_rows[3].to_string(),
            s.distance_rows[4].to_string(),
            d5plus.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_a_reproduces_paper_anchors() {
        // Fig. 9(a) prints 23.43 (T=4), 12.57 (T=8) at row size 256.
        let s4 = design_point(4, 256, 4, 46);
        let s8 = design_point(8, 256, 4, 50);
        assert!((100.0 * s4.density() - 23.43).abs() < 1.2, "{}", 100.0 * s4.density());
        assert!((100.0 * s8.density() - 12.57).abs() < 0.8, "{}", 100.0 * s8.density());
    }

    #[test]
    fn density_u_shape_over_bit_width() {
        // Density falls to the 8/10-bit Pareto point then rises again.
        let d: Vec<f64> =
            [2u32, 8, 16].iter().map(|&t| design_point(t, 256, 3, 9).density()).collect();
        assert!(d[0] > d[1], "2-bit {} vs 8-bit {}", d[0], d[1]);
        assert!(d[2] > d[1], "16-bit {} vs 8-bit {}", d[2], d[1]);
    }

    #[test]
    fn density_stabilizes_beyond_256_rows() {
        // §5.2: beyond 256 rows the 8-bit density stabilizes.
        let d256 = design_point(8, 256, 3, 1).density();
        let d1024 = design_point(8, 1024, 3, 1).density();
        assert!((d256 - d1024).abs() < 0.01, "{d256} vs {d1024}");
    }

    #[test]
    fn fig9d_distance_structure() {
        // At row size 256 nearly every pattern is present → distances
        // overwhelmingly 1, no Dis-4.
        let s = design_point(8, 256, 3, 2);
        assert!(s.distance_rows[1] > 50 * s.distance_rows[3].max(1));
        assert_eq!(s.distance_rows[4], 0);
    }

    #[test]
    fn run_produces_four_tables() {
        let tables = run(Scale::quick());
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].rows.len(), ROW_SIZES.len());
        assert_eq!(tables[1].rows.len(), BIT_WIDTHS.len());
    }
}
