//! Fig. 12 — attention-layer speedups on LLaMA-1-7B / LLaMA-2-7B /
//! LLaMA-3-8B, sequence length 2048: BitFusion-16bit (baseline),
//! ANT/BitFusion-8bit, TransArray-8bit.
//!
//! Attention interleaves per-head `QKᵀ` and `PV` GEMMs with softmax on
//! the shared VPU; only accelerators with on-the-fly quantization can run
//! it at all (§5.7) — Olive/Tender/BitVert are absent by design. The K/V
//! caches are treated as weight tensors; the TransArray's dynamic
//! Scoreboard builds their SI at runtime.

use crate::report::{fmt3, geomean, Table};
use crate::scale::Scale;
use ta_baselines::Baseline;
use ta_core::{GemmShape, TransArrayConfig, TransitiveArray};
use ta_models::{LlamaConfig, PAPER_SEQ_LEN};
use ta_sim::{EnergyModel, VpuModel};
use ta_workloads::sources::fig12_attention_source;

/// One attention-stack simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct AttnResult {
    /// Accelerator label.
    pub accel: String,
    /// Model label.
    pub model: String,
    /// Total cycles (all heads' GEMMs + softmax on the VPU).
    pub cycles: u64,
}

/// The Fig. 12 model roster.
pub fn models() -> Vec<LlamaConfig> {
    vec![LlamaConfig::l1_7b(), LlamaConfig::l2_7b(), LlamaConfig::l3_8b()]
}

/// Simulates the attention stack of one model on every accelerator.
pub fn simulate(scale: Scale) -> Vec<AttnResult> {
    let em = EnergyModel::paper_28nm();
    let vpu = VpuModel::paper_default();
    let seq = PAPER_SEQ_LEN;
    let mut out = Vec::new();
    for model in models() {
        let gemms = model.attention_gemms(seq);
        let softmax_per_head_8 = vpu.softmax_cycles(seq, seq, 8);
        let softmax_per_head_16 = vpu.softmax_cycles(seq, seq, 16);
        let heads = model.heads as u64;

        // BitFusion at 16-bit (the paper keeps attention FP16-ish there).
        let bf = Baseline::bitfusion();
        let mut c = heads * softmax_per_head_16;
        for (g, count) in &gemms {
            c += bf.simulate_gemm(g.shape, 16, 16, &em).cycles * *count as u64;
        }
        out.push(AttnResult {
            accel: "BitFusion-16bit".into(),
            model: model.name.into(),
            cycles: c,
        });

        // ANT at 8-bit group-wise.
        let ant = Baseline::ant();
        let mut c = heads * softmax_per_head_8;
        for (g, count) in &gemms {
            c += ant.simulate_gemm(g.shape, 8, 8, &em).cycles * *count as u64;
        }
        out.push(AttnResult { accel: "ANT-8bit".into(), model: model.name.into(), cycles: c });

        // TransArray at 8-bit with the dynamic Scoreboard (the K/V caches
        // are dynamic activations — no offline pass is possible).
        let ta = TransitiveArray::new(TransArrayConfig {
            sample_limit: scale.sample_limit,
            ..TransArrayConfig::paper_w8()
        });
        let n_tile = ta.config().n_tile();
        let mut c = heads * softmax_per_head_8;
        for (i, (g, count)) in gemms.iter().enumerate() {
            let mut src = fig12_attention_source(n_tile, i);
            let rep = ta.simulate_layer(GemmShape::new(g.shape.n, g.shape.k, g.shape.m), &mut src);
            c += rep.cycles * *count as u64;
        }
        out.push(AttnResult {
            accel: "TransArray-8bit".into(),
            model: model.name.into(),
            cycles: c,
        });
    }
    out
}

/// Builds the speedup table (BitFusion-16bit = 1.0) with a Geomean row.
pub fn run(scale: Scale) -> Vec<Table> {
    let results = simulate(scale);
    let accels = ["BitFusion-16bit", "ANT-8bit", "TransArray-8bit"];
    let mut headers = vec!["model".to_string()];
    headers.extend(accels.iter().map(|s| s.to_string()));
    let hs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Fig 12 attention speedup over BitFusion-16bit", &hs);
    let mut per_accel: Vec<Vec<f64>> = vec![Vec::new(); accels.len()];
    for model in models() {
        let base = results
            .iter()
            .find(|r| r.model == model.name && r.accel == "BitFusion-16bit")
            .unwrap()
            .cycles as f64;
        let mut row = vec![model.name.to_string()];
        for (ai, accel) in accels.iter().enumerate() {
            let r = results.iter().find(|r| r.model == model.name && r.accel == *accel).unwrap();
            let sp = base / r.cycles as f64;
            row.push(fmt3(sp));
            per_accel[ai].push(sp);
        }
        t.push_row(row);
    }
    let mut geo = vec!["Geomean".to_string()];
    for v in &per_accel {
        geo.push(fmt3(geomean(v)));
    }
    t.push_row(geo);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_speedup_structure() {
        // Paper geomeans: ANT-8bit ≈ 2.58×, TransArray-8bit ≈ 3.97× over
        // BitFusion-16bit; TA/ANT ≈ 1.54×, compressed by the shared
        // softmax VPU time.
        let rs = simulate(Scale::quick());
        let gm = |accel: &str| {
            let mut v = Vec::new();
            for m in models() {
                let base = rs
                    .iter()
                    .find(|r| r.model == m.name && r.accel == "BitFusion-16bit")
                    .unwrap()
                    .cycles as f64;
                let c = rs.iter().find(|r| r.model == m.name && r.accel == accel).unwrap().cycles
                    as f64;
                v.push(base / c);
            }
            geomean(&v)
        };
        let ant = gm("ANT-8bit");
        let ta = gm("TransArray-8bit");
        assert!((1.8..3.6).contains(&ant), "ANT geomean {ant}");
        assert!((2.6..5.2).contains(&ta), "TA geomean {ta}");
        let ratio = ta / ant;
        assert!(
            (1.2..2.2).contains(&ratio),
            "TA/ANT on attention should compress toward ~1.5, got {ratio}"
        );
    }

    #[test]
    fn table_has_geomean() {
        let t = &run(Scale::quick())[0];
        assert_eq!(t.rows.last().unwrap()[0], "Geomean");
        assert_eq!(t.rows.len(), models().len() + 1);
    }
}
