//! Heap-allocation counting for the execution-engine bench.
//!
//! The library side is just an atomic event counter — `unsafe` is banned
//! here, so the actual `GlobalAlloc` wrapper lives in the `bench_smoke`
//! **binary**, which installs a `#[global_allocator]` forwarding to
//! `System`, calls [`mark_installed`] at the top of `main`, and calls
//! [`record_alloc`] on every `alloc`/`realloc`. [`allocations`] then
//! reads the process-wide count, and [`counting_enabled`] reports
//! whether a counting allocator was declared — library tests and figure
//! binaries run on the plain system allocator, where the perf suite
//! records the allocation metric as "unmeasured" instead of a fake
//! zero.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Process-wide allocation-event count (alloc + realloc calls).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Whether a counting global allocator declared itself installed.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Records one allocation event. Called by the counting global allocator
/// installed in `bench_smoke`; a no-op burden of one relaxed atomic add.
#[inline]
pub fn record_alloc() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Declares that a counting global allocator is installed in this
/// process. Call once from the installing binary's `main`, next to the
/// `#[global_allocator]` item.
pub fn mark_installed() {
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Total allocation events recorded so far (0 forever when no counting
/// allocator is installed). Measure a region by differencing.
#[inline]
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Whether a counting global allocator declared itself installed via
/// [`mark_installed`].
pub fn counting_enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_records_and_reads() {
        let before = allocations();
        record_alloc();
        record_alloc();
        assert!(allocations() >= before + 2);
    }

    // `counting_enabled` flips only via `mark_installed`, which only the
    // installing binary calls — asserting it false here would couple this
    // test to process-wide state other tests could legitimately change,
    // so the flag's effect is exercised end-to-end in `bench_smoke`
    // (exec_allocs_per_subtile is measured there and `-1.0` everywhere
    // else, asserted by the perf-suite test).
}
