//! Regenerates Fig. 12 (attention-layer speedups).
fn main() {
    let scale = ta_bench::Scale::from_env();
    ta_bench::emit(&ta_bench::experiments::fig12::run(scale));
}
