//! Regenerates Table 3 (model accuracy) as a quantization-quality proxy.
fn main() {
    let scale = ta_bench::Scale::from_env();
    ta_bench::emit(&ta_bench::experiments::tables::table3(scale));
}
