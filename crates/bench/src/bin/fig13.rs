//! Regenerates Fig. 13 (static vs dynamic Scoreboard, real vs random).
fn main() {
    let scale = ta_bench::Scale::from_env();
    ta_bench::emit(&ta_bench::experiments::fig13::run(scale));
}
