//! The quantization × sparsity sweep: the eight ta-quant methods ×
//! three TransArray precisions (W4A4/W4A8/W8A8) × three weight
//! densities (dense, 0.75 unstructured, 0.5 structured 2:4), every row
//! carrying the STA-style 2:4 structured-sparsity baseline column.
//! Emits one figure-style table (stdout + CSV + JSON under
//! `target/experiments/`).
//!
//! `--quick`/`--smoke` (or `TA_SCALE=quick`) shrink the tensors;
//! `--reduced` additionally cuts the grid for CI smoke runs (four
//! methods, dense + 2:4 densities only).

use ta_bench::{emit, fmt3, Scale, Table};
use ta_workloads::sweep;

fn main() {
    let mut reduced = false;
    let scale_args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--reduced" {
                reduced = true;
                false
            } else {
                true
            }
        })
        .collect();
    let scale = Scale::resolve(scale_args, std::env::var("TA_SCALE")).unwrap_or_else(|msg| {
        eprintln!("error: {msg}; `sweep` additionally accepts --reduced");
        std::process::exit(2);
    });
    let rows = sweep::grid(scale, reduced);

    let mut table = Table::new(
        "Quant x sparsity sweep",
        &[
            "method",
            "precision",
            "weight_bits",
            "act_bits",
            "density_target",
            "structure",
            "weight_density",
            "output_nmse",
            "output_sqnr_db",
            "ta_cycles",
            "ta_density",
            "sta24_cycles",
            "ta_speedup_vs_sta24",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.method.clone(),
            r.precision.to_string(),
            r.weight_bits.to_string(),
            r.act_bits.to_string(),
            fmt3(r.density_target),
            r.structure.to_string(),
            fmt3(r.weight_density),
            format!("{:.3e}", r.output_nmse),
            fmt3(r.output_sqnr_db),
            r.ta_cycles.to_string(),
            fmt3(r.ta_density),
            r.sta24_cycles.to_string(),
            fmt3(r.ta_speedup_vs_sta24),
        ]);
    }
    println!(
        "sweep: {} rows at scale {}{}",
        rows.len(),
        scale.name(),
        if reduced { " (reduced grid)" } else { "" }
    );
    emit(&[table]);
}
