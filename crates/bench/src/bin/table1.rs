//! Regenerates Table 1 (TransArray unit specification).
fn main() {
    ta_bench::emit(&ta_bench::experiments::tables::table1());
}
