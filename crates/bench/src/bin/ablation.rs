//! Runs the ablation studies (distance cap, lane count, balance policy,
//! Scoreboard area trade).
fn main() {
    let scale = ta_bench::Scale::from_env();
    ta_bench::emit(&ta_bench::experiments::ablation::run(scale));
}
