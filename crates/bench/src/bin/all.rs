//! Runs the complete evaluation battery (every table and figure) and
//! writes CSVs to `target/experiments/`.
use ta_bench::{emit, experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("=== Transitive Array reproduction — full evaluation ===\n");
    println!("--- Table 1 ---");
    emit(&experiments::tables::table1());
    println!("--- Table 2 ---");
    emit(&experiments::tables::table2());
    println!("--- Table 3 (proxy) ---");
    emit(&experiments::tables::table3(scale));
    println!("--- Fig 9 ---");
    emit(&experiments::fig9::run(scale));
    println!("--- Fig 10 ---");
    emit(&experiments::fig10::run(scale));
    println!("--- Fig 11 ---");
    emit(&experiments::fig11::run(scale));
    println!("--- Fig 12 ---");
    emit(&experiments::fig12::run(scale));
    println!("--- Fig 13 ---");
    emit(&experiments::fig13::run(scale));
    println!("--- Fig 14 ---");
    emit(&experiments::fig14::run(scale));
    println!("--- Ablations ---");
    emit(&experiments::ablation::run(scale));
    println!("Done. CSVs under target/experiments/.");
}
