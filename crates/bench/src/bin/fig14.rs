//! Regenerates Fig. 14 (ResNet-18 per-layer speedups).
fn main() {
    let scale = ta_bench::Scale::from_env();
    ta_bench::emit(&ta_bench::experiments::fig14::run(scale));
}
