//! Regenerates Fig. 9 (design-space exploration, panels a-d).
fn main() {
    let scale = ta_bench::Scale::from_env();
    ta_bench::emit(&ta_bench::experiments::fig9::run(scale));
}
