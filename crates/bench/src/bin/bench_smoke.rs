//! CI bench-smoke driver: runs the perf suite (serial + parallel +
//! plan-cached tile execution on a full-scale LLaMA-7B layer, a Fig. 9
//! design point, plus the exact functional-execution engine on a scaled
//! `q_proj` GEMM), writes `BENCH_<sha>.json`, and fails on >20%
//! regression against a committed baseline — or on a plan-cache hit
//! rate that collapsed to zero (the cache must not silently disengage),
//! or on a flat exec engine that allocates per sub-tile in steady state
//! (this binary installs a counting global allocator to audit that).
//!
//! ```text
//! bench_smoke [--smoke|--quick] [--list] [--only <workload>]...
//!             [--baseline <path>] [--output <path>]
//!             [--write-baseline <path>] [--require-baseline]
//! ```
//!
//! * `--list` prints the workload registry (every `ta-workloads` entry,
//!   gated or not) and exits;
//! * `--only <workload>` (repeatable) restricts the run to the named
//!   gated workloads; a filtered run skips the baseline gate — its
//!   summary metrics are deliberately unmeasured;
//! * scale: `--smoke`/`--quick` or `TA_SCALE=quick|full` (default full;
//!   unknown values are rejected);
//! * threads: `TA_THREADS` (default `0` = one worker per core);
//! * plan cache: `TA_PLAN_CACHE` overrides the cached workload's
//!   capacity (default 4096 entries; `0` is rejected — the suite gates
//!   the cache, so it cannot run without one);
//! * plan-cache shards: `TA_PLAN_CACHE_SHARDS` overrides the shard
//!   count used by the cached workload and the `plan_cache_contention`
//!   sweep (default `0` = auto: ~4× cores, power of two);
//! * `TA_BENCH_INJECT_SLOWDOWN=<factor>` multiplies the measured wall
//!   times — a self-test hook that lets CI (or a reviewer) confirm the
//!   gate actually trips; never set it in a real run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::Command;
use ta_bench::perf::{self, PerfReport, GATE_TOLERANCE};
use ta_bench::Scale;
use ta_core::runtime;

/// Counting global allocator: forwards every call to `System`, recording
/// alloc/realloc events in `ta_bench::alloc_count` so the perf suite can
/// audit the flat execution engine's steady-state allocation rate
/// (`exec_allocs_per_subtile`). Installed only in this binary — the
/// library stays `forbid(unsafe_code)`.
struct CountingAllocator;

// SAFETY: pure forwarding to `System` (same layout contract); the
// counter update is a relaxed atomic add with no allocator interaction.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ta_bench::alloc_count::record_alloc();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ta_bench::alloc_count::record_alloc();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ta_bench::alloc_count::record_alloc();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTING_ALLOCATOR: CountingAllocator = CountingAllocator;

fn resolve_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    if let Ok(out) = Command::new("git").args(["rev-parse", "--short=12", "HEAD"]).output() {
        if out.status.success() {
            let sha = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !sha.is_empty() {
                return sha;
            }
        }
    }
    "local".to_string()
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

struct Args {
    scale: Scale,
    list: bool,
    only: Vec<String>,
    baseline: Option<String>,
    output: Option<String>,
    write_baseline: Option<String>,
    require_baseline: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: match std::env::var("TA_SCALE") {
            Err(_) => Scale::full(),
            Ok(v) => Scale::parse(&v).unwrap_or_else(|e| fail(&e)),
        },
        list: false,
        only: Vec::new(),
        baseline: None,
        output: None,
        write_baseline: None,
        require_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires an argument")));
        match arg.as_str() {
            "--smoke" | "--quick" => args.scale = Scale::quick(),
            "--list" => args.list = true,
            "--only" => args.only.push(value("--only")),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--output" => args.output = Some(value("--output")),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")),
            "--require-baseline" => args.require_baseline = true,
            other => fail(&format!(
                "unrecognized argument '{other}' (expected --smoke, --list, --only, --baseline, --output, --write-baseline, or --require-baseline)"
            )),
        }
    }
    for name in &args.only {
        match ta_workloads::find(name) {
            None => fail(&format!(
                "--only {name}: unknown workload (try --list; registered: {})",
                ta_workloads::names().join(", ")
            )),
            Some(w) if !w.gated() => fail(&format!(
                "--only {name}: not part of the gated bench roster (it runs via the registry conformance suite and the zoo drivers, not bench_smoke)"
            )),
            Some(_) => {}
        }
    }
    args
}

/// `--list`: the registry dump, one row per workload.
fn list_workloads(scale: Scale) {
    println!("{:<24} {:>5} {:>11} {:>6}  description", "workload", "gated", "cycle_model", "gemms");
    for w in ta_workloads::registry() {
        println!(
            "{:<24} {:>5} {:>11} {:>6}  {}",
            w.name(),
            if w.gated() { "yes" } else { "no" },
            if w.has_cycle_model() { "yes" } else { "no" },
            w.shapes(scale).len(),
            w.description()
        );
    }
}

fn main() {
    // Let the perf suite know the counting allocator above is live (the
    // allocation audit self-disables in processes without one).
    ta_bench::alloc_count::mark_installed();
    let args = parse_args();
    if args.list {
        list_workloads(args.scale);
        return;
    }
    let threads = match runtime::threads_from_env() {
        Ok(t) => t.unwrap_or(0),
        Err(e) => fail(&e),
    };
    let plan_cache = match runtime::plan_cache_from_env() {
        Ok(Some(0)) => fail(
            "TA_PLAN_CACHE=0 would disable the gated cached workload; unset it or pass a positive capacity",
        ),
        Ok(Some(n)) => n,
        Ok(None) => perf::DEFAULT_PLAN_CACHE_ENTRIES,
        Err(e) => fail(&e),
    };
    let plan_cache_shards = match runtime::plan_cache_shards_from_env() {
        Ok(Some(n)) => n,
        Ok(None) => 0,
        Err(e) => fail(&e),
    };

    println!(
        "bench_smoke: scale={} threads={} cores={} plan_cache={} plan_cache_shards={}",
        args.scale.name(),
        threads,
        runtime::available_cores(),
        plan_cache,
        plan_cache_shards
    );
    let only = if args.only.is_empty() { None } else { Some(args.only.as_slice()) };
    if let Some(filter) = only {
        println!("  running only: {}", filter.join(", "));
    }
    let mut report =
        perf::run_suite_filtered(args.scale, threads, plan_cache, plan_cache_shards, only);
    report.sha = resolve_sha();

    // Gate self-test hook: scale the measured wall times so a reviewer
    // can watch the gate trip without slowing the simulator down.
    match std::env::var("TA_BENCH_INJECT_SLOWDOWN") {
        Err(_) => {}
        Ok(v) => match v.trim().parse::<f64>() {
            Ok(factor) if factor.is_finite() && factor > 0.0 => {
                if args.write_baseline.is_some() {
                    fail("refusing --write-baseline while TA_BENCH_INJECT_SLOWDOWN is set: a self-test run must not become the baseline");
                }
                eprintln!("warning: TA_BENCH_INJECT_SLOWDOWN={factor} is scaling wall times — this run is a gate self-test, not a measurement");
                for w in &mut report.workloads {
                    w.wall_s *= factor;
                    w.wall_norm *= factor;
                }
                report.speedup_parallel /= factor.max(f64::MIN_POSITIVE);
                if let Some(serve) = &mut report.serve {
                    serve.throughput_rps /= factor.max(f64::MIN_POSITIVE);
                    serve.p50_latency_ns *= factor;
                    serve.p99_latency_ns *= factor;
                }
            }
            _ => {
                fail(&format!("invalid TA_BENCH_INJECT_SLOWDOWN '{v}': expected a positive number"))
            }
        },
    }

    for w in &report.workloads {
        println!(
            "  {:<24} cycles {:>14}  macs/cycle {:>10.1}  wall {:>9.4}s  norm {:>9.1}",
            w.name, w.cycles, w.macs_per_cycle, w.wall_s, w.wall_norm
        );
    }
    println!(
        "  serial/parallel speedup: {:.2}x at {} threads ({} cores)",
        report.speedup_parallel, report.threads, report.host_cores
    );
    println!(
        "  plan cache: warm-replay hit rate {:.3}, cached-vs-uncached speedup {:.2}x",
        report.plan_cache_hit_rate, report.speedup_cached
    );
    println!(
        "  dram traffic: {} requests over {} bursts (64 B)",
        report.dram_requests, report.dram_bursts
    );
    println!(
        "  exec engine: {:.4} steady-state allocs/sub-tile (0 healthy)",
        report.exec_allocs_per_subtile
    );
    for p in &report.contention {
        println!(
            "  plan-cache contention: {:>2} threads  {:>8} lookups  {:>8.1} ns/lookup  {:>8.2} Mlookups/s",
            p.threads, p.lookups, p.ns_per_lookup, p.mlookups_per_s
        );
    }
    if let Some(s) = &report.serve {
        println!(
            "  serving: {} requests / {} batches / {} padded on {} workers  {:>8.0} req/s  p50 {:.1} us  p99 {:.1} us",
            s.requests,
            s.batches,
            s.padded,
            s.workers,
            s.throughput_rps,
            s.p50_latency_ns / 1e3,
            s.p99_latency_ns / 1e3
        );
    }
    // Every overload counter is scripted on the virtual clock — no wall
    // fields here, so TA_BENCH_INJECT_SLOWDOWN deliberately leaves it
    // alone (only `serve_overload`'s PerfRecord wall columns scale).
    if let Some(o) = &report.overload {
        println!(
            "  overload: {} submitted -> {} rejected / {} shed / {} lost / {} completed on {} workers ({} respawns)  goodput {:.3}",
            o.submitted,
            o.rejected,
            o.shed,
            o.worker_lost,
            o.completed,
            o.workers,
            o.respawned,
            o.goodput
        );
    }

    // The run's own JSON is written first so a failing run still leaves
    // a debuggable artifact.
    let output = args.output.unwrap_or_else(|| format!("BENCH_{}.json", report.sha));
    if let Err(e) = std::fs::write(&output, report.to_json()) {
        fail(&format!("failed to write {output}: {e}"));
    }
    println!("[json] {output}");

    // The plan cache silently disengaging is a hard failure regardless
    // of any baseline: the cached workload ran with a capacity sized to
    // hold the layer's sampled sub-tiles, so a warm replay that misses
    // everything means the cache is broken, not cold. Checked *before*
    // any baseline refresh — a broken-cache run must never become the
    // baseline (a zero-hit-rate baseline would disable this gate's
    // compare() arm forever).
    let selected = |name: &str| match only {
        None => true,
        Some(filter) => filter.iter().any(|n| n == name),
    };
    if selected("l7b_qproj_cached") && report.plan_cache_hit_rate <= 0.0 {
        eprintln!(
            "gate FAILURE: plan-cache warm-replay hit rate collapsed to {} on l7b_qproj_cached",
            report.plan_cache_hit_rate
        );
        std::process::exit(1);
    }

    // The flat execution engine must not allocate in steady state — this
    // binary installs the counting allocator, so the audit always runs,
    // and any nonzero per-sub-tile rate is a design regression regardless
    // of the baseline. (±0 exactly is the healthy value; the audit warms
    // every buffer before measuring.)
    if selected("l7b_qproj_exec") {
        if report.exec_allocs_per_subtile < 0.0 {
            eprintln!(
                "gate FAILURE: exec allocation audit did not run despite the counting allocator"
            );
            std::process::exit(1);
        }
        if report.exec_allocs_per_subtile > 0.0 {
            eprintln!(
                "gate FAILURE: flat exec engine allocates {:.4} times per sub-tile in steady state (must be 0)",
                report.exec_allocs_per_subtile
            );
            std::process::exit(1);
        }
    }

    if let Some(path) = &args.write_baseline {
        if only.is_some() {
            fail("refusing --write-baseline with --only: a filtered run's summary metrics are unmeasured and must not become the baseline");
        }
        if let Err(e) = std::fs::write(path, report.to_json()) {
            fail(&format!("failed to write {path}: {e}"));
        }
        println!("[json] {path} (baseline refreshed)");
    }

    if let Some(filter) = only {
        println!(
            "gate: skipped — --only restricted the run to {} of the gated roster; the baseline compares whole suites only",
            filter.join(", ")
        );
        return;
    }

    let baseline_path = args.baseline.unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) if args.require_baseline => {
            fail(&format!("baseline {baseline_path} unreadable: {e}"))
        }
        Err(_) => {
            println!("no baseline at {baseline_path}; skipping the regression gate");
            return;
        }
    };
    let baseline = PerfReport::from_json(&baseline_text)
        .unwrap_or_else(|e| fail(&format!("malformed baseline {baseline_path}: {e}")));
    let outcome = perf::compare(&baseline, &report, GATE_TOLERANCE);
    for note in &outcome.notes {
        println!("note: {note}");
    }
    // One-line honesty summary: which gates quietly disarmed themselves
    // this run, and why (stale baseline schema, host shape, …).
    if let Some(summary) = perf::disabled_summary(&outcome) {
        println!("{summary}");
    }
    if outcome.passed() {
        println!(
            "gate: PASS vs {} ({} workloads, {:.0}% tolerance)",
            baseline_path,
            baseline.workloads.len(),
            GATE_TOLERANCE * 100.0
        );
    } else {
        for failure in &outcome.failures {
            eprintln!("gate FAILURE: {failure}");
        }
        eprintln!(
            "gate: FAIL vs {} — {} regression(s) past the {:.0}% tolerance",
            baseline_path,
            outcome.failures.len(),
            GATE_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
}
