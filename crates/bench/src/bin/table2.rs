//! Regenerates Table 2 (area comparison at 28 nm).
fn main() {
    ta_bench::emit(&ta_bench::experiments::tables::table2());
}
