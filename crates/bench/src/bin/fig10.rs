//! Regenerates Fig. 10 (FC-layer runtime and energy on LLaMA).
fn main() {
    let scale = ta_bench::Scale::from_env();
    ta_bench::emit(&ta_bench::experiments::fig10::run(scale));
}
