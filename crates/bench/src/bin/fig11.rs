//! Regenerates Fig. 11 (TransArray energy breakdown).
fn main() {
    let scale = ta_bench::Scale::from_env();
    ta_bench::emit(&ta_bench::experiments::fig11::run(scale));
}
