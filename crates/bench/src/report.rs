//! Table formatting and CSV output for the experiment harness.
//!
//! Every figure/table binary prints an aligned text table (the paper's
//! rows/series) and writes the same data as CSV under
//! `target/experiments/` so plots can be regenerated externally.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple experiment table: named columns, stringly-typed cells.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Table title (used as the CSV file stem).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity disagrees with the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch in {}", self.title);
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// File stem derived from the title (shared by CSV and JSON output).
    fn file_stem(&self) -> String {
        self.title
            .chars()
            .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect()
    }

    /// Writes the table as CSV into `dir` (created if needed), returning
    /// the file path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.file_stem()));
        let mut body = String::new();
        let _ = writeln!(body, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(body, "{}", row.join(","));
        }
        fs::write(&path, body)?;
        Ok(path)
    }

    /// Writes the table as machine-readable JSON (an array of
    /// header-keyed string objects) into `dir`, returning the file path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        use crate::perf::json_str;
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.file_stem()));
        let mut body = String::new();
        let _ = writeln!(body, "{{");
        let _ = writeln!(body, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(body, "  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let fields: Vec<String> = self
                .headers
                .iter()
                .zip(row)
                .map(|(h, cell)| format!("{}: {}", json_str(h), json_str(cell)))
                .collect();
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(body, "    {{{}}}{comma}", fields.join(", "));
        }
        let _ = writeln!(body, "  ]");
        let _ = writeln!(body, "}}");
        fs::write(&path, body)?;
        Ok(path)
    }
}

/// The default experiment-output directory (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

/// Geometric mean of a slice (1.0 for an empty slice).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a float with 3 significant-ish decimals.
pub fn fmt3(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "12345".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("alpha"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_written() {
        let mut t = Table::new("Fig 9(a) demo", &["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("ta_bench_test_csv");
        let path = t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,y\n1,2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fmt3_ranges() {
        assert_eq!(fmt3(0.0), "0");
        assert_eq!(fmt3(1234.5), "1234");
        assert_eq!(fmt3(12.34), "12.3");
        assert_eq!(fmt3(1.2345), "1.234");
    }
}
