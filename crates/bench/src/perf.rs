//! Machine-readable performance records and the CI regression gate.
//!
//! The `bench_smoke` binary runs [`run_suite`] — a fixed workload roster
//! (a Fig. 9 design point plus a full-scale LLaMA-7B `q_proj` layer
//! simulated serially and in parallel) — and writes the result as
//! `BENCH_<sha>.json`. CI compares that against the committed
//! `BENCH_baseline.json` with [`compare`] and fails on >20% regressions.
//!
//! Two measurement choices keep the gate portable across machines:
//!
//! * **normalized wall time** (`wall_norm`): every workload's wall time
//!   is divided by an in-process dense-GEMM calibration loop timed the
//!   same way, so "this runner is 2× slower than the baseline machine"
//!   cancels out while "this commit made the simulator 2× slower" does
//!   not;
//! * **model metrics** (`cycles`, `total_ops`, `density`,
//!   `macs_per_cycle`) are deterministic simulator outputs — any drift
//!   is a behavior change, not noise, and the serial/parallel pair is
//!   additionally checked for bit-equality on every run.
//!
//! JSON is emitted and parsed by a purpose-built micro-codec below
//! (serde is unavailable offline); it round-trips exactly the subset
//! this module writes.

use crate::alloc_count;
use crate::scale::Scale;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use ta_bitslice::{kernels, BinaryMatrix, BitSlicedMatrix, ConvShape, RowMajor, TileView};
use ta_core::{
    runtime, GemmReport, GemmShape, PatternSource, Session, SlicedSource, TransArrayConfig,
    TransitiveArray,
};
use ta_hasse::{
    CachedPlan, ExecScratch, ExecutionPlan, NullSink, PlanKey, Scoreboard, ScoreboardConfig,
    SharedPlanCache, StaticSi,
};
use ta_models::{llm_activation_matrix_int, llm_weight_matrix_int, QuantGaussianSource};
use ta_quant::{gemm_i32, MatI32};
use ta_serve::loadgen::{poisson_trace, request_for};
use ta_serve::{BatchPolicy, Server, ServerConfig};
use ta_sim::DramModel;

/// One measured workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Workload name (stable across runs; the gate joins on it).
    pub name: String,
    /// Modeled end-to-end cycles (0 for workloads without a cycle model).
    pub cycles: u64,
    /// Modeled accumulate ops (0 when not applicable).
    pub total_ops: u64,
    /// Transitive density (0 when not applicable).
    pub density: f64,
    /// Dense-equivalent MACs per modeled cycle (0 when not applicable).
    pub macs_per_cycle: f64,
    /// Host wall-clock seconds (best of the measurement repeats).
    pub wall_s: f64,
    /// `wall_s` normalized by the calibration loop (machine-portable).
    pub wall_norm: f64,
}

/// One point of the `plan_cache_contention` workload: `threads` workers
/// hammering a pre-warmed sharded plan cache at a forced 1.0 hit rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionPoint {
    /// Concurrent lookup threads.
    pub threads: usize,
    /// Total lookups across all threads (every one a hit, by
    /// construction — the suite panics otherwise).
    pub lookups: u64,
    /// Wall seconds for all threads to complete.
    pub wall_s: f64,
    /// Mean lock-hold-plus-lookup latency per hit (nanoseconds of
    /// aggregate thread time per lookup).
    pub ns_per_lookup: f64,
    /// Aggregate hit throughput (million lookups per wall second) — the
    /// scaling metric the gate compares across thread counts.
    pub mlookups_per_s: f64,
}

/// Stats from the `serve_open_loop` workload: the whole serving stack
/// (admission queue → tenant round-robin → shape-bucketing batcher →
/// continuous-batching worker pool) under a seeded open-loop Poisson
/// trace. `requests` and `padded` are deterministic (the trace is
/// seeded and padding depends only on each request's shape and the
/// bucket quantum); `batches` depends on scheduler timing and is
/// recorded but not gated; the throughput/latency figures are
/// wall-clock metrics gated at the widened wall tolerance, same-shape
/// hosts only.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests served (the gate requires an exact match).
    pub requests: u64,
    /// Batches dispatched to workers (informational — timing-dependent).
    pub batches: u64,
    /// Requests zero-padded to their bucket width (deterministic).
    pub padded: u64,
    /// Worker threads the workload ran with.
    pub workers: usize,
    /// Served requests per wall second (open-loop, best measured pass).
    pub throughput_rps: f64,
    /// Median submit-to-complete latency in nanoseconds.
    pub p50_latency_ns: f64,
    /// 99th-percentile submit-to-complete latency in nanoseconds.
    pub p99_latency_ns: f64,
}

/// One full bench-smoke run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// JSON schema version.
    pub schema: u64,
    /// Commit the run measured.
    pub sha: String,
    /// Scale name (`quick`/`full`) — baselines only compare at equal scale.
    pub scale: String,
    /// Resolved parallel worker count used by the `*_parallel` workloads.
    pub threads: usize,
    /// Available host cores. The parallel-speedup and contention gates
    /// self-disable (with a logged note) when baseline and current runs
    /// saw different core counts — those metrics are machine-shape
    /// facts, not portable ratios. Written as `host_cores` in schema-4
    /// JSON (`cores` in older schemas; both parse).
    pub host_cores: usize,
    /// Wall seconds of the dense-GEMM calibration loop.
    pub calibration_wall_s: f64,
    /// Serial wall / parallel wall for the LLaMA-7B layer.
    pub speedup_parallel: f64,
    /// Plan-cache hit rate of a deterministic warm replay of the
    /// LLaMA-7B layer (1.0 when every sub-tile plan is reused; a
    /// collapse to 0 means the cache silently disengaged and is a hard
    /// `bench_smoke` failure).
    pub plan_cache_hit_rate: f64,
    /// Uncached serial wall / plan-cached wall for the LLaMA-7B layer
    /// (the cached-vs-uncached ratio; ≥1 when the cache wins).
    pub speedup_cached: f64,
    /// DRAM transfer requests of the LLaMA-7B layer's traffic (one per
    /// weight/input/output stream under the shared tiling policy).
    pub dram_requests: u64,
    /// Burst beats those requests decompose into (64 B granularity).
    pub dram_bursts: u64,
    /// Steady-state heap allocations per sub-tile evaluation on the flat
    /// execution engine (`evaluate_into` + fused row accumulation over a
    /// warm [`ExecScratch`]). Healthy value: exactly `0.0`. `-1.0` marks
    /// "unmeasured" — no counting global allocator was installed (the
    /// `bench_smoke` binary installs one; library tests don't).
    pub exec_allocs_per_subtile: f64,
    /// Hit-path lock-contention sweep over the sharded plan cache
    /// (threads 1/2/8/16 at forced hit rate 1.0). Empty on schema ≤ 3
    /// baselines, which self-disables the contention gate.
    pub contention: Vec<ContentionPoint>,
    /// Serving-frontend stats from the `serve_open_loop` workload.
    /// `None` on schema ≤ 4 baselines, which self-disables the serve
    /// gate with a logged note.
    pub serve: Option<ServeStats>,
    /// Measured workloads.
    pub workloads: Vec<PerfRecord>,
}

/// Relative regression tolerance of the CI gate (>20% fails).
pub const GATE_TOLERANCE: f64 = 0.20;

/// Default plan-cache capacity for the cached LLaMA-7B workload — must
/// exceed the layer's sampled sub-tile count at every scale, or LRU
/// thrashing would zero the warm-replay hit rate.
pub const DEFAULT_PLAN_CACHE_ENTRIES: usize = 4096;

// ---------------------------------------------------------------------------
// Suite
// ---------------------------------------------------------------------------

/// The full-scale LLaMA-7B `q_proj` GEMM (hidden 4096, prefill 2048).
pub fn l7b_qproj_shape() -> GemmShape {
    GemmShape::new(4096, 4096, 2048)
}

/// Minimum wall time one timing sample must span. Sub-millisecond
/// workloads are repeated until a sample reaches this floor — a single
/// 100 µs run carries far more than the gate's 20% tolerance in timer
/// and scheduler noise.
const MIN_SAMPLE_S: f64 = 0.05;

/// Timing samples per workload (the minimum is reported). Shared CI
/// hosts show contention windows longer than one batch; best-of-7 keeps
/// a slow outlier batch from ever being the reported time.
const SAMPLES: usize = 7;

/// Times `f`: a pilot run sizes an iteration batch spanning at least
/// [`MIN_SAMPLE_S`], then the best per-iteration time over [`SAMPLES`]
/// batches is returned along with `f`'s (deterministic) result.
fn measure<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let start = Instant::now();
    let mut out = f();
    let pilot = start.elapsed().as_secs_f64();
    let iters = if pilot >= MIN_SAMPLE_S {
        1
    } else {
        ((MIN_SAMPLE_S / pilot.max(1e-9)).ceil() as usize).min(100_000)
    };
    // A single run cannot measure faster than the true cost, so the
    // pilot participates in the minimum.
    let mut best = pilot;
    for _ in 0..SAMPLES.saturating_sub(1) {
        let start = Instant::now();
        for _ in 0..iters {
            out = f();
        }
        let per_iter = start.elapsed().as_secs_f64() / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
    }
    (out, best)
}

/// One simulation of `shape` on `ta` (plan cache required), returning
/// the report, the run's wall seconds, and the run's cache hit rate
/// from counter deltas — the single definition of the warm-replay
/// protocol shared by [`run_suite`] and the criterion benches. Call it
/// once to warm the cache, then again for the warm-replay numbers (1.0
/// hit rate when healthy).
///
/// # Panics
///
/// Panics if `ta` has no plan cache.
pub fn cached_replay(ta: &TransitiveArray, shape: GemmShape, seed: u64) -> (GemmReport, f64, f64) {
    let before = ta.plan_cache_stats().expect("cached_replay requires an enabled plan cache");
    let n_tile = ta.config().n_tile();
    let start = Instant::now();
    let mut src = QuantGaussianSource::new(8, 8, n_tile, seed);
    let rep = ta.simulate_layer(shape, &mut src);
    let wall = start.elapsed().as_secs_f64();
    let after = ta.plan_cache_stats().expect("cached_replay requires an enabled plan cache");
    (rep, wall, after.delta(&before).hit_rate())
}

/// Times the dense integer reference GEMM the suite normalizes against.
fn calibration_loop() -> f64 {
    let w = MatI32::from_fn(96, 96, |r, c| (((r * 96 + c) as i64 * 40503 % 255) - 127) as i32);
    let x = MatI32::from_fn(96, 96, |r, c| (((r * 96 + c) as i64 * 9973 % 255) - 127) as i32);
    let (_, wall) = measure(|| gemm_i32(&w, &x));
    wall
}

/// Thread counts the `plan_cache_contention` workload sweeps.
pub const CONTENTION_THREADS: [usize; 4] = [1, 2, 8, 16];

/// Lookups each contention thread performs per sweep point.
const CONTENTION_LOOKUPS_PER_THREAD: u64 = 20_000;

/// Distinct keys the contention workload pre-warms. The cache below is
/// sized so **every shard** can hold all of them, so residency never
/// depends on how the hash spreads keys across shards.
const CONTENTION_KEYS: usize = 64;

/// Hammers a pre-warmed [`SharedPlanCache`] from 1/2/8/16 threads at a
/// forced 1.0 hit rate and reports per-point throughput — the pure
/// hit-path cost (key hash + shard read lock + referenced-bit store +
/// `Arc` clone), with key construction hoisted out of the loop. On a
/// multi-core host the sharded cache's throughput scales with threads;
/// the old global-mutex design flatlined here.
///
/// `shards` is the `plan_cache_shards` knob (`0` = auto). The cache
/// capacity is `shard count × CONTENTION_KEYS`, giving each shard
/// exactly `CONTENTION_KEYS` slots: even if the hash routed every key
/// to one shard, nothing can evict, so the forced 1.0 hit rate holds on
/// any host shape (per-shard capacity is what matters — a fixed total
/// capacity divided by an auto shard count of ~4× cores left 1-slot
/// shards on big hosts, where pre-warm collisions evicted warm keys).
///
/// # Panics
///
/// Panics if pre-warm evicts (capacity sizing broke) or if any sweep
/// point records a miss — the workload exists to measure the hit path,
/// and a miss means the cache or routing broke.
pub fn contention_workload(shards: usize) -> Vec<ContentionPoint> {
    let cfg = ScoreboardConfig::with_width(8);
    // Mirror `with_shards`'s rounding so capacity is sized for the
    // shard count the cache will actually use.
    let shard_count = match shards {
        0 => SharedPlanCache::default_shard_count(),
        n => n.next_power_of_two(),
    };
    let cache = SharedPlanCache::with_shards(shard_count * CONTENTION_KEYS, shard_count);
    let keys: Vec<PlanKey> = (0..CONTENTION_KEYS as u16)
        .map(|i| {
            let patterns = [i, i.wrapping_mul(37) % 256, 255 - i, (i * 3) % 256];
            let key = PlanKey::new(&cfg, None, &patterns);
            cache.insert(
                key.clone(),
                std::sync::Arc::new(CachedPlan::build_dynamic(&cfg, &patterns, false)),
            );
            key
        })
        .collect();
    let warm = cache.stats();
    assert_eq!(warm.evictions, 0, "pre-warm must not evict: {warm}");
    assert_eq!(cache.len(), CONTENTION_KEYS, "every pre-warmed key must be resident");
    CONTENTION_THREADS
        .iter()
        .map(|&threads| {
            let before = cache.stats();
            let start = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let (cache, keys) = (&cache, &keys);
                    scope.spawn(move || {
                        for i in 0..CONTENTION_LOOKUPS_PER_THREAD {
                            let k = &keys[(i as usize + t) % keys.len()];
                            assert!(cache.get(k).is_some(), "contention workload must never miss");
                        }
                    });
                }
            });
            let wall_s = start.elapsed().as_secs_f64();
            let delta = cache.stats().delta(&before);
            let lookups = threads as u64 * CONTENTION_LOOKUPS_PER_THREAD;
            assert_eq!(delta.misses, 0, "forced hit-rate 1.0 violated: {delta}");
            assert_eq!(delta.lookups(), lookups, "lookup counter conservation violated");
            ContentionPoint {
                threads,
                lookups,
                wall_s,
                ns_per_lookup: if lookups > 0 {
                    wall_s * 1e9 * threads as f64 / lookups as f64
                } else {
                    0.0
                },
                mlookups_per_s: if wall_s > 0.0 { lookups as f64 / wall_s / 1e6 } else { 0.0 },
            }
        })
        .collect()
}

/// Weight precision of the serving workload's requests.
const SERVE_WEIGHT_BITS: u32 = 4;
/// Activation precision of the serving workload's requests.
const SERVE_ACT_BITS: u32 = 8;
/// Worker threads behind the serving workload's frontend.
const SERVE_WORKERS: usize = 2;

/// The small design point the serving workload runs on — sized so one
/// request is cheap enough to serve hundreds per pass at every scale.
fn serve_session() -> Session {
    let cfg = TransArrayConfig::builder()
        .width(4)
        .max_transrows(16)
        .weight_bits(SERVE_WEIGHT_BITS)
        .units(2)
        .m_tile(4)
        .sample_limit(0)
        .build()
        .expect("serve workload config is valid");
    Session::new(cfg).expect("serve workload session opens")
}

/// The `serve_open_loop` workload: replays a seeded Poisson arrival
/// trace through a full `ta-serve` frontend (2 workers, width-quantized
/// buckets so padding is actually exercised), then checks every served
/// output bit-for-bit against a direct serial run. The PerfRecord's
/// `cycles`/`total_ops` are the deterministic sums over all served
/// responses — any drift is a behavior change in the serving stack or
/// the simulator, and gates at full strength; the wall-clock
/// throughput/latency figures ride in [`ServeStats`] under the widened
/// wall tolerance.
///
/// # Panics
///
/// Panics if any served output differs from the direct run — the
/// serving determinism contract is part of what this workload guards.
fn serve_open_loop(scale: Scale) -> (PerfRecord, ServeStats) {
    let shapes = [
        GemmShape::new(8, 16, 3),
        GemmShape::new(8, 16, 4),
        GemmShape::new(12, 16, 5),
        GemmShape::new(16, 32, 2),
    ];
    // Scale the trace off the existing tile knob: 32 requests at the
    // tiny test scale, 48 at quick, 256 at full.
    let count = scale.tiles.max(2) * 16;
    let trace = poisson_trace(0x5E_12_7E, count, 200, 4, &shapes);
    let policy = BatchPolicy { max_batch: 8, max_delay_ns: 50_000, quantum_m: 4 };
    let ((responses, stats), wall) = measure(|| {
        let server =
            Server::start(serve_session(), ServerConfig { workers: SERVE_WORKERS, policy });
        let tickets: Vec<_> = trace
            .iter()
            .map(|a| {
                server
                    .submit(a.tenant, request_for(a, SERVE_WEIGHT_BITS, SERVE_ACT_BITS))
                    .expect("trace requests are valid")
            })
            .collect();
        let responses: Vec<_> =
            tickets.into_iter().map(|t| t.wait().expect("server answers every request")).collect();
        let stats = server.shutdown();
        (responses, stats)
    });
    assert_eq!(stats.completed as usize, count, "open loop must serve the whole trace");

    // Bit-equality through the whole stack, outside the timed region.
    // Outputs must match exactly; the *report* of a padded request
    // legitimately differs (the modelled GEMM is wider), so the
    // deterministic cycle/op sums below are taken from the served
    // responses themselves.
    let direct = serve_session();
    let (mut served_cycles, mut served_ops) = (0u64, 0u64);
    let mut latencies: Vec<u64> = Vec::with_capacity(responses.len());
    for (resp, arrival) in responses.iter().zip(&trace) {
        let want = direct
            .run_serial(request_for(arrival, SERVE_WEIGHT_BITS, SERVE_ACT_BITS))
            .expect("direct run succeeds");
        assert_eq!(
            resp.response.output, want.output,
            "serving determinism violation: served output differs from direct at {arrival:?}"
        );
        served_cycles += resp.response.report.cycles;
        served_ops += resp.response.report.total_ops;
        latencies.push(resp.latency_ns());
    }
    latencies.sort_unstable();
    let record = PerfRecord {
        name: "serve_open_loop".into(),
        cycles: served_cycles,
        total_ops: served_ops,
        density: 0.0,
        macs_per_cycle: 0.0,
        wall_s: wall,
        wall_norm: 0.0, // assigned after the final calibration
    };
    let serve = ServeStats {
        requests: stats.completed,
        batches: stats.batches,
        padded: stats.padded,
        workers: SERVE_WORKERS,
        throughput_rps: if wall > 0.0 { count as f64 / wall } else { 0.0 },
        p50_latency_ns: latencies[latencies.len() / 2] as f64,
        p99_latency_ns: latencies[latencies.len() * 99 / 100] as f64,
    };
    (record, serve)
}

/// The `kernel_micro_*` workloads (schema 6): the three word-parallel
/// primitive families the `ta_bitslice::kernels` facade owns — row-word
/// popcount/XOR-popcount sweeps, sub-tile TransRow pattern extraction,
/// and im2col lowering — measured in isolation, so a per-bit loop
/// creeping back into any of them shows up as a standalone wall
/// regression instead of being diluted into a full-layer run. Every
/// matrix has a non-word-multiple column count, keeping the kernels'
/// masked-tail paths inside the timed region.
///
/// `total_ops` is a deterministic kernel *output* (set bits counted /
/// extracted-pattern bits / nonzero lowered elements), not a wall
/// metric — so the full-strength 20% gate arms on kernel correctness
/// drift while `wall_norm` rides the widened wall gate like every other
/// workload.
fn kernel_micro(scale: Scale) -> Vec<PerfRecord> {
    let n = 16 * scale.tiles.max(2);
    let record = |name: &str, total_ops: u64, wall: f64| PerfRecord {
        name: name.into(),
        cycles: 0,
        total_ops,
        density: 0.0,
        macs_per_cycle: 0.0,
        wall_s: wall,
        wall_norm: 0.0, // assigned after the final calibration
    };

    // Popcount sweep: per-row counts plus adjacent-row XOR distances
    // (the diff-bit metric the Scoreboard orders rows by).
    let rows = 4 * n;
    let cols = 8 * n + 37;
    let planes =
        BinaryMatrix::from_fn(rows, cols, |r, c| (r.wrapping_mul(31) ^ c.wrapping_mul(7)) % 5 == 0);
    let (pop_bits, pop_wall) = measure(|| {
        let mut total = 0u64;
        for r in 0..rows {
            total += kernels::popcount_words(planes.words(r));
        }
        for r in 1..rows {
            total += kernels::xor_popcount_words(planes.words(r - 1), planes.words(r));
        }
        black_box(total)
    });

    // TransRow extraction: every width-8 sub-tile of the plane matrix
    // through `extract_subtile_patterns_into` over one reused buffer,
    // including the ragged final column window.
    let width = 8usize;
    let mut patterns: Vec<u16> = Vec::new();
    let (ext_bits, ext_wall) = measure(|| {
        let mut total = 0u64;
        for row0 in (0..rows).step_by(width) {
            for k0 in (0..cols).step_by(width) {
                kernels::extract_subtile_patterns_into(
                    &planes,
                    row0,
                    width,
                    k0,
                    width.min(cols - k0) as u32,
                    &mut patterns,
                );
                total += patterns.iter().map(|p| p.count_ones() as u64).sum::<u64>();
            }
        }
        black_box(total)
    });

    // im2col lowering: a ResNet-style 3×3 stride-1 pad-1 layer whose
    // feature map width is not a multiple of anything convenient.
    let shape = ConvShape {
        in_c: 8,
        out_c: 8,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
        in_h: n / 4,
        in_w: n / 4 + 3,
    };
    let input = MatI32::from_fn(shape.in_c, shape.in_h * shape.in_w, |r, c| {
        ((r * 131 + c * 17) % 19) as i32 - 9
    });
    let (im_nonzero, im_wall) = measure(|| {
        let patches = kernels::im2col_lower(&shape, &input);
        black_box(patches.as_slice().iter().filter(|&&v| v != 0).count() as u64)
    });

    vec![
        record("kernel_micro_popcount", pop_bits, pop_wall),
        record("kernel_micro_extract", ext_bits, ext_wall),
        record("kernel_micro_im2col", im_nonzero, im_wall),
    ]
}

/// Runs the bench-smoke workload roster at `scale` with `threads`
/// parallel workers (`0` = one per core), a plan cache of `plan_cache`
/// entries for the cached LLaMA-7B workload, and `plan_cache_shards`
/// shards (`0` = auto) for the cache and the contention sweep, and
/// returns the report (`sha` is left empty for the caller to fill in).
///
/// # Panics
///
/// Panics if the parallel **or plan-cached** LLaMA-7B run is not
/// bit-identical to the serial run — that is a determinism-contract
/// violation, which the CI gate must surface loudly. Also panics if
/// `plan_cache` is zero (the suite exists to keep the cache measured; a
/// run without it cannot produce the gated hit rate).
pub fn run_suite(
    scale: Scale,
    threads: usize,
    plan_cache: usize,
    plan_cache_shards: usize,
) -> PerfReport {
    assert!(plan_cache > 0, "run_suite requires a non-zero plan-cache capacity");
    let host_cores = runtime::available_cores();
    let resolved_threads = runtime::Runtime::new(threads).threads();
    // Calibrate at suite start AND end, taking the min: host load drifts
    // at minute scale, and a calibration sample that caught a slow window
    // deflates every norm, so the best (fastest) estimate of machine
    // speed is the stable denominator. Norms are filled in at the end.
    let calibration_start = calibration_loop();
    let mut workloads = Vec::new();

    // Fig. 9 design point: Scoreboard-only, the DSE hot path.
    let (stats, wall) =
        measure(|| crate::experiments::fig9::design_point(8, 256, scale.tiles.max(2), 42));
    workloads.push(PerfRecord {
        name: "fig9_dse_t8_r256".into(),
        cycles: 0,
        total_ops: stats.total_ops,
        density: stats.density(),
        macs_per_cycle: 0.0,
        wall_s: wall,
        wall_norm: 0.0, // assigned after the final calibration below
    });

    // Full-scale LLaMA-7B q_proj, serial then parallel (same config
    // except the threads knob); the pair must agree bit-exactly.
    let shape = l7b_qproj_shape();
    let layer_cfg = |threads: usize| TransArrayConfig {
        sample_limit: scale.sample_limit,
        threads,
        ..TransArrayConfig::paper_w8()
    };
    let run_layer = |threads: usize| {
        let ta = TransitiveArray::new(layer_cfg(threads));
        let n_tile = ta.config().n_tile();
        measure(move || {
            let mut src = QuantGaussianSource::new(8, 8, n_tile, 1234);
            ta.simulate_layer(shape, &mut src)
        })
    };
    let (serial_rep, serial_wall) = run_layer(1);
    let (parallel_rep, parallel_wall) = run_layer(resolved_threads);
    assert_eq!(
        serial_rep, parallel_rep,
        "determinism violation: parallel LLaMA-7B q_proj report differs from serial"
    );

    // Plan-cached run: one accelerator constructed outside the timing
    // loop, so its shared cache persists across the measurement repeats
    // — modeling repeated inference over the same static weights, which
    // is exactly the cross-call reuse the cache exists for. The best
    // sample is therefore a warm-cache time; the uncached serial wall is
    // the denominator of `speedup_cached`.
    let cached_ta =
        TransitiveArray::new(TransArrayConfig { plan_cache, plan_cache_shards, ..layer_cfg(1) });
    let n_tile = cached_ta.config().n_tile();
    let (cached_rep, cached_wall) = measure(|| {
        let mut src = QuantGaussianSource::new(8, 8, n_tile, 1234);
        cached_ta.simulate_layer(shape, &mut src)
    });
    assert_eq!(
        serial_rep, cached_rep,
        "determinism violation: plan-cached LLaMA-7B q_proj report differs from uncached"
    );
    // Deterministic warm-replay hit rate: one more simulation of the
    // same layer, measured by counter deltas ([`cached_replay`]). (The
    // timing loop's aggregate rate would depend on how many iterations
    // the pilot sized — a machine-speed artifact the gate must not see.)
    let (replay_rep, _, plan_cache_hit_rate) = cached_replay(&cached_ta, shape, 1234);
    assert_eq!(serial_rep, replay_rep, "warm plan-cached replay must stay bit-identical");

    // Functional-path workload: the exact bit-level execution engine on
    // an LLM-like integer GEMM (scaled `q_proj` shape). Guards both the
    // engine's wall time and its losslessness.
    let (en, ek, em) = scale.exec_shape();
    let exec_w = llm_weight_matrix_int(en, ek, 8, 2024);
    let exec_x = llm_activation_matrix_int(ek, em, 8, 2025);
    let exec_reference = gemm_i32(&exec_w, &exec_x);
    let exec_ta = TransitiveArray::new(layer_cfg(1));
    let ((exec_out, exec_rep), exec_wall) = measure(|| exec_ta.execute_gemm(&exec_w, &exec_x));
    assert_eq!(exec_out, exec_reference, "functional execution engine must stay bit-exact");

    for (name, rep, wall) in [
        ("l7b_qproj_serial", &serial_rep, serial_wall),
        ("l7b_qproj_parallel", &parallel_rep, parallel_wall),
        ("l7b_qproj_cached", &cached_rep, cached_wall),
        ("l7b_qproj_exec", &exec_rep, exec_wall),
    ] {
        workloads.push(PerfRecord {
            name: name.into(),
            cycles: rep.cycles,
            total_ops: rep.total_ops,
            density: rep.density,
            macs_per_cycle: rep.macs_per_cycle(),
            wall_s: wall,
            wall_norm: 0.0, // assigned after the final calibration below
        });
    }

    // Serving frontend: the full ta-serve stack under a seeded
    // open-loop trace, bit-checked against direct execution.
    let (serve_record, serve_stats) = serve_open_loop(scale);
    workloads.push(serve_record);

    // Word-parallel kernel microbenchmarks (schema-6 workloads).
    workloads.extend(kernel_micro(scale));

    // Surface the layer's DRAM traffic as requests vs bursts (one
    // request per weight/input/output stream of the shared tiling
    // policy, 64 B bursts).
    let mut dram = DramModel::paper_default();
    dram.transfer(serial_rep.traffic.weight_bytes);
    dram.transfer(serial_rep.traffic.input_bytes);
    dram.transfer(serial_rep.traffic.output_bytes);

    let calibration = calibration_start.min(calibration_loop());
    for w in &mut workloads {
        w.wall_norm = if calibration > 0.0 { w.wall_s / calibration } else { 0.0 };
    }

    let speedup = if parallel_wall > 0.0 { serial_wall / parallel_wall } else { 0.0 };
    PerfReport {
        schema: 6,
        sha: String::new(),
        scale: scale.name().to_string(),
        threads: resolved_threads,
        host_cores,
        calibration_wall_s: calibration,
        speedup_parallel: speedup,
        plan_cache_hit_rate,
        speedup_cached: if cached_wall > 0.0 { serial_wall / cached_wall } else { 0.0 },
        dram_requests: dram.requests(),
        dram_bursts: dram.bursts(),
        exec_allocs_per_subtile: measure_exec_allocs(),
        contention: contention_workload(plan_cache_shards),
        serve: Some(serve_stats),
        workloads,
    }
}

/// Steady-state allocation audit of the flat execution engine: builds the
/// plans, staged inputs, arena, and accumulator for a batch of
/// representative sub-tiles **outside** the measured region, warms every
/// buffer with one full pass, then counts heap allocations across many
/// replay passes of the engine's per-sub-tile work: pattern staging
/// (`subtile_patterns_into` into a reused buffer, as `execute_gemm`'s
/// worker loop does) + `evaluate_into` (dynamic) +
/// `evaluate_tile_functional_into` (static) + the fused per-row
/// accumulation. A healthy engine measures exactly `0.0` allocations per
/// sub-tile evaluation.
///
/// Deliberately **excluded**: Scoreboard/plan construction and plan-cache
/// key building — those allocate by design (a fresh plan is built once
/// per distinct pattern multiset and amortized by the plan cache); the
/// zero-allocation contract this audit enforces is scoped to the
/// *execution* path that runs for every sub-tile.
///
/// Returns `-1.0` when no counting global allocator is installed (see
/// [`crate::alloc_count`]) — the figure binaries and library tests run on
/// the plain system allocator.
fn measure_exec_allocs() -> f64 {
    if !alloc_count::counting_enabled() {
        return -1.0;
    }
    const M: usize = 32;
    const REPLAYS: u64 = 8;
    let cfg = TransArrayConfig { sample_limit: 0, ..TransArrayConfig::paper_w8() };
    let t = cfg.width as usize;
    let w = llm_weight_matrix_int(2 * cfg.n_tile(), 8 * t, 8, 99);
    let sliced = BitSlicedMatrix::slice(&w, 8);
    let mut src = SlicedSource::new(&sliced, cfg.n_tile(), cfg.width);
    let (n_tiles, k_chunks) = (2usize, 8usize);

    // Pre-built dynamic plans (the post-Scoreboard product the plan
    // cache would hand a warm worker), one per (n_tile, k_chunk).
    let mut plans: Vec<ExecutionPlan> = Vec::new();
    let mut all_patterns: Vec<u16> = Vec::new();
    for nt in 0..n_tiles {
        for kc in 0..k_chunks {
            let patterns = src.subtile_patterns(nt, kc);
            let sb = Scoreboard::build(cfg.scoreboard_config(), patterns.iter().copied());
            all_patterns.extend_from_slice(&patterns);
            plans.push(ExecutionPlan::from_scoreboard(&sb));
        }
    }
    let rows_per_tile = src.rows_per_subtile();
    let si = StaticSi::from_patterns(cfg.scoreboard_config(), all_patterns);

    let mut staged = RowMajor::<i64>::zeros(k_chunks * t, M);
    for r in 0..k_chunks * t {
        for (c, v) in staged.row_mut(r).iter_mut().enumerate() {
            *v = (r as i64 * 31 + c as i64 * 7) % 41 - 20;
        }
    }
    let mut acc = RowMajor::<i64>::zeros(rows_per_tile, M);
    let mut scratch = ExecScratch::new();
    let mut patterns: Vec<u16> = Vec::new();

    // One pass = execute_gemm's per-worker steady state: re-stage each
    // sub-tile's patterns through the production source path, then run
    // both engines with the fused accumulation.
    let mut pass = |scratch: &mut ExecScratch, acc: &mut RowMajor<i64>, patterns: &mut Vec<u16>| {
        for (i, plan) in plans.iter().enumerate() {
            let (nt, kc) = (i / k_chunks, i % k_chunks);
            src.subtile_patterns_into(nt, kc, patterns);
            let inputs: TileView<'_> = staged.view_rows(kc * t, t);
            // Dynamic engine + fused accumulate.
            plan.evaluate_into(inputs, scratch, &mut NullSink);
            for (r, &p) in patterns.iter().enumerate() {
                if p == 0 {
                    continue;
                }
                let result = scratch.result(p).expect("pattern computed");
                for (a, &v) in acc.row_mut(r).iter_mut().zip(result) {
                    *a += v;
                }
            }
            // Static engine (chain materialization path).
            si.evaluate_tile_functional_into(patterns, inputs, scratch, &mut NullSink);
        }
    };
    // Warm the arena, sort buffer, pattern buffer, and accumulator.
    pass(&mut scratch, &mut acc, &mut patterns);
    let before = alloc_count::allocations();
    for _ in 0..REPLAYS {
        pass(&mut scratch, &mut acc, &mut patterns);
    }
    let delta = alloc_count::allocations() - before;
    // Two engine evaluations (dynamic + static) per tile per replay.
    delta as f64 / (REPLAYS * 2 * plans.len() as u64) as f64
}

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

/// Result of comparing a run against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateOutcome {
    /// Hard failures (CI exits non-zero when non-empty).
    pub failures: Vec<String>,
    /// Informational notes (improvements, skipped checks).
    pub notes: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn check_ratio(
    out: &mut GateOutcome,
    workload: &str,
    metric: &str,
    baseline: f64,
    current: f64,
    higher_is_worse: bool,
    tolerance: f64,
) {
    if baseline <= 0.0 {
        // The baseline marks this metric not-applicable for the workload
        // (e.g. the Fig. 9 design point has no cycle model).
        return;
    }
    if current <= 0.0 {
        // A metric the baseline measured cannot legitimately collapse to
        // zero — that is a broken simulator, not an improvement.
        out.failures
            .push(format!("{workload}/{metric} collapsed to zero (baseline {baseline:.4e})"));
        return;
    }
    let ratio = current / baseline;
    // Thresholds are reciprocal-symmetric: "worse" is past 1+tolerance
    // in the bad direction, "better" past 1/(1+tolerance) in the good
    // one. (A subtractive `1 - tolerance` bound would stop working the
    // moment a widened tolerance reaches 100% — the check could never
    // trip for lower-is-worse metrics.)
    let upper = 1.0 + tolerance;
    let (regressed, improved) = if higher_is_worse {
        (ratio > upper, ratio * upper < 1.0)
    } else {
        (ratio * upper < 1.0, ratio > upper)
    };
    if regressed {
        out.failures.push(format!(
            "{workload}/{metric} regressed {:.1}% past the {:.0}% gate ({baseline:.4e} -> {current:.4e})",
            (ratio - 1.0).abs() * 100.0,
            tolerance * 100.0,
        ));
    } else if improved {
        out.notes.push(format!(
            "{workload}/{metric} improved ({baseline:.4e} -> {current:.4e}) — consider refreshing the baseline"
        ));
    }
}

/// Extra slack for wall-clock metrics: `wall_norm` gates at
/// `tolerance × WALL_TOLERANCE_FACTOR` (20% × 5 = double-or-worse
/// fails). Shared CI hosts show minute-scale contention swings of
/// 30–60% that survive even best-of-[`SAMPLES`] batching and the
/// start/end calibration min, while the regressions this arm exists to
/// catch (an allocator creeping back onto the execute path, an
/// accidentally quadratic loop) cost 2–3× — past the widened gate.
/// Deterministic model metrics keep the full-strength tolerance; they,
/// not wall clocks, carry the gate's precision.
const WALL_TOLERANCE_FACTOR: f64 = 5.0;

/// Compares `current` against `baseline` at `tolerance` (relative).
///
/// Deterministic model metrics (`cycles`, `total_ops`, `density`,
/// `macs_per_cycle`) always gate hard. `wall_norm` gates only when the
/// two runs saw the same core count — the calibration loop cancels
/// clock-speed differences but not microarchitectural ones, so a
/// baseline from a different machine shape would flake — and at the
/// widened `WALL_TOLERANCE_FACTOR` (5×) tolerance. The parallel speedup
/// additionally requires ≥4 cores on both sides (a 1-core runner cannot
/// show a speedup, only overhead).
pub fn compare(baseline: &PerfReport, current: &PerfReport, tolerance: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    if baseline.scale != current.scale {
        out.failures.push(format!(
            "scale mismatch: baseline '{}' vs current '{}' — regenerate the baseline at the gate's scale",
            baseline.scale, current.scale
        ));
        return out;
    }
    for base in &baseline.workloads {
        let Some(cur) = current.workloads.iter().find(|w| w.name == base.name) else {
            out.failures.push(format!("workload '{}' missing from current run", base.name));
            continue;
        };
        check_ratio(
            &mut out,
            &base.name,
            "cycles",
            base.cycles as f64,
            cur.cycles as f64,
            true,
            tolerance,
        );
        check_ratio(
            &mut out,
            &base.name,
            "total_ops",
            base.total_ops as f64,
            cur.total_ops as f64,
            true,
            tolerance,
        );
        check_ratio(&mut out, &base.name, "density", base.density, cur.density, true, tolerance);
        check_ratio(
            &mut out,
            &base.name,
            "macs_per_cycle",
            base.macs_per_cycle,
            cur.macs_per_cycle,
            false,
            tolerance,
        );
        if baseline.host_cores == current.host_cores {
            check_ratio(
                &mut out,
                &base.name,
                "wall_norm",
                base.wall_norm,
                cur.wall_norm,
                true,
                tolerance * WALL_TOLERANCE_FACTOR,
            );
        }
    }
    if baseline.host_cores != current.host_cores {
        out.notes.push(format!(
            "wall_norm gate skipped (baseline host_cores {}, current host_cores {}; refresh the baseline from a machine of the runner's shape to arm it)",
            baseline.host_cores, current.host_cores
        ));
    }
    // The per-workload loop above joins on baseline names, so a schema
    // ≤ 5 baseline (no `kernel_micro_*` records) silently ignores the
    // current run's kernel microbenchmarks — make the self-disable
    // explicit so the CI log says why the new arm is dark.
    let has_kernel_micro =
        |r: &PerfReport| r.workloads.iter().any(|w| w.name.starts_with("kernel_micro_"));
    if !has_kernel_micro(baseline) && has_kernel_micro(current) {
        out.notes.push(
            "kernel_micro gate skipped (baseline predates the kernel_micro workloads; refresh it)"
                .to_string(),
        );
    }
    // Deterministic by construction (warm-replay counter deltas), so it
    // gates on every run: a drop past tolerance — and in particular a
    // collapse to zero — means the plan cache disengaged or thrashes.
    if baseline.plan_cache_hit_rate > 0.0 {
        check_ratio(
            &mut out,
            "l7b_qproj_cached",
            "plan_cache_hit_rate",
            baseline.plan_cache_hit_rate,
            current.plan_cache_hit_rate,
            false,
            tolerance,
        );
    } else {
        out.notes.push(
            "plan_cache_hit_rate gate skipped (baseline predates the plan cache; refresh it)"
                .to_string(),
        );
    }
    // Allocation-count gate (absolute, not ratio — the healthy value is
    // exactly zero): a run that starts allocating per sub-tile on the
    // steady-state exec path regressed the arena design, whatever the
    // wall clock says. Unmeasured runs/baselines (-1.0 sentinel,
    // schema ≤ 2 or no counting allocator) self-disable the check.
    if baseline.exec_allocs_per_subtile >= 0.0 {
        if current.exec_allocs_per_subtile < 0.0 {
            out.notes.push(
                "exec_allocs_per_subtile gate skipped (current run has no counting allocator)"
                    .to_string(),
            );
        } else if current.exec_allocs_per_subtile > baseline.exec_allocs_per_subtile + 0.5 {
            out.failures.push(format!(
                "exec_allocs_per_subtile regressed: {} -> {} (steady-state exec must not allocate)",
                baseline.exec_allocs_per_subtile, current.exec_allocs_per_subtile
            ));
        }
    } else {
        out.notes.push(
            "exec_allocs_per_subtile gate skipped (baseline predates the allocation audit; refresh it)"
                .to_string(),
        );
    }
    // Parallel speedup is a machine-shape fact: it only gates when the
    // two runs saw the *same* core count (never silently comparing
    // across shapes) and the shape is big enough to show a speedup.
    if baseline.host_cores != current.host_cores {
        out.notes.push(format!(
            "speedup gate skipped (host core count changed: baseline {}, current {} — parallel speedups are not comparable across machine shapes)",
            baseline.host_cores, current.host_cores
        ));
    } else if baseline.host_cores < 4 {
        out.notes.push(format!(
            "speedup gate skipped (baseline cores {}, current cores {}; needs >= 4 on both)",
            baseline.host_cores, current.host_cores
        ));
    } else {
        check_ratio(
            &mut out,
            "l7b_qproj",
            "speedup_parallel",
            baseline.speedup_parallel,
            current.speedup_parallel,
            false,
            tolerance,
        );
    }
    // Hit-path contention gate: per-thread-count throughput plus the
    // max-threads/1-thread scaling ratio, both at the widened wall
    // tolerance (they are wall-clock metrics). Same self-disable rules
    // as the speedup gate — core-count mismatch or a small host logs an
    // explicit note instead of silently comparing 1-core numbers.
    if baseline.contention.is_empty() {
        out.notes.push(
            "contention gate skipped (baseline predates the plan_cache_contention workload; refresh it)"
                .to_string(),
        );
    } else if current.contention.is_empty() {
        out.failures.push("plan_cache_contention workload missing from current run".to_string());
    } else if baseline.host_cores != current.host_cores {
        out.notes.push(format!(
            "contention gate skipped (host core count changed: baseline {}, current {} — hit-path scaling is not comparable across machine shapes)",
            baseline.host_cores, current.host_cores
        ));
    } else if baseline.host_cores < 4 {
        out.notes.push(format!(
            "contention gate skipped ({}-core host cannot demonstrate hit-path scaling; needs >= 4 cores)",
            baseline.host_cores
        ));
    } else {
        for base_pt in &baseline.contention {
            let Some(cur_pt) = current.contention.iter().find(|p| p.threads == base_pt.threads)
            else {
                out.failures.push(format!(
                    "plan_cache_contention point for {} threads missing from current run",
                    base_pt.threads
                ));
                continue;
            };
            check_ratio(
                &mut out,
                &format!("plan_cache_contention_t{}", base_pt.threads),
                "mlookups_per_s",
                base_pt.mlookups_per_s,
                cur_pt.mlookups_per_s,
                false,
                tolerance * WALL_TOLERANCE_FACTOR,
            );
        }
        let scaling = |pts: &[ContentionPoint]| -> Option<f64> {
            let t1 = pts.iter().find(|p| p.threads == 1)?;
            let tmax = pts.iter().max_by_key(|p| p.threads)?;
            (t1.mlookups_per_s > 0.0 && tmax.threads > 1)
                .then(|| tmax.mlookups_per_s / t1.mlookups_per_s)
        };
        if let (Some(base_scaling), Some(cur_scaling)) =
            (scaling(&baseline.contention), scaling(&current.contention))
        {
            check_ratio(
                &mut out,
                "plan_cache_contention",
                "hit_path_scaling",
                base_scaling,
                cur_scaling,
                false,
                tolerance * WALL_TOLERANCE_FACTOR,
            );
        }
    }
    // Serving-frontend gate. The trace is seeded, so the request count
    // must match exactly and the padded count gates at full strength;
    // throughput/latency are wall-clock metrics — widened tolerance,
    // same-shape hosts only (batch count is timing-dependent and is
    // recorded but never gated). The `serve_open_loop` PerfRecord's
    // deterministic cycle/op sums already gate through the per-workload
    // loop above.
    match (&baseline.serve, &current.serve) {
        (None, _) => out.notes.push(
            "serve gate skipped (baseline predates the serve_open_loop workload; refresh it)"
                .to_string(),
        ),
        (Some(_), None) => {
            out.failures.push("serve_open_loop stats missing from current run".to_string());
        }
        (Some(base), Some(cur)) => {
            if base.requests != cur.requests {
                out.failures.push(format!(
                    "serve_open_loop/requests changed: {} -> {} (the trace is seeded; the count is exact)",
                    base.requests, cur.requests
                ));
            }
            if base.padded != cur.padded {
                out.failures.push(format!(
                    "serve_open_loop/padded changed: {} -> {} (padding depends only on shape and quantum)",
                    base.padded, cur.padded
                ));
            }
            if baseline.host_cores == current.host_cores {
                let wall_tol = tolerance * WALL_TOLERANCE_FACTOR;
                check_ratio(
                    &mut out,
                    "serve_open_loop",
                    "throughput_rps",
                    base.throughput_rps,
                    cur.throughput_rps,
                    false,
                    wall_tol,
                );
                check_ratio(
                    &mut out,
                    "serve_open_loop",
                    "p50_latency_ns",
                    base.p50_latency_ns,
                    cur.p50_latency_ns,
                    true,
                    wall_tol,
                );
                check_ratio(
                    &mut out,
                    "serve_open_loop",
                    "p99_latency_ns",
                    base.p99_latency_ns,
                    cur.p99_latency_ns,
                    true,
                    wall_tol,
                );
            } else {
                out.notes.push(format!(
                    "serve throughput/latency gate skipped (baseline host_cores {}, current host_cores {})",
                    baseline.host_cores, current.host_cores
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// JSON micro-codec
// ---------------------------------------------------------------------------

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

/// Quotes and escapes a string for JSON output (shared with the figure
/// tables' JSON writer).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl ContentionPoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"lookups\": {}, \"wall_s\": {}, \"ns_per_lookup\": {}, \"mlookups_per_s\": {}}}",
            self.threads,
            self.lookups,
            json_f64(self.wall_s),
            json_f64(self.ns_per_lookup),
            json_f64(self.mlookups_per_s),
        )
    }
}

impl ServeStats {
    fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"batches\": {}, \"padded\": {}, \"workers\": {}, \"throughput_rps\": {}, \"p50_latency_ns\": {}, \"p99_latency_ns\": {}}}",
            self.requests,
            self.batches,
            self.padded,
            self.workers,
            json_f64(self.throughput_rps),
            json_f64(self.p50_latency_ns),
            json_f64(self.p99_latency_ns),
        )
    }
}

impl PerfRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\": {}, \"cycles\": {}, \"total_ops\": {}, \"density\": {}, \"macs_per_cycle\": {}, \"wall_s\": {}, \"wall_norm\": {}}}",
            json_str(&self.name),
            self.cycles,
            self.total_ops,
            json_f64(self.density),
            json_f64(self.macs_per_cycle),
            json_f64(self.wall_s),
            json_f64(self.wall_norm),
        )
    }
}

impl PerfReport {
    /// Serializes the report as pretty-ish JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"sha\": {},", json_str(&self.sha));
        let _ = writeln!(out, "  \"scale\": {},", json_str(&self.scale));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"host_cores\": {},", self.host_cores);
        let _ = writeln!(out, "  \"calibration_wall_s\": {},", json_f64(self.calibration_wall_s));
        let _ = writeln!(out, "  \"speedup_parallel\": {},", json_f64(self.speedup_parallel));
        let _ = writeln!(out, "  \"plan_cache_hit_rate\": {},", json_f64(self.plan_cache_hit_rate));
        let _ = writeln!(out, "  \"speedup_cached\": {},", json_f64(self.speedup_cached));
        let _ = writeln!(out, "  \"dram_requests\": {},", self.dram_requests);
        let _ = writeln!(out, "  \"dram_bursts\": {},", self.dram_bursts);
        let _ = writeln!(
            out,
            "  \"exec_allocs_per_subtile\": {},",
            json_f64(self.exec_allocs_per_subtile)
        );
        // Schema-5 field, one line so older tooling can strip it; omitted
        // entirely when absent (the parser defaults to `None`).
        if let Some(serve) = &self.serve {
            let _ = writeln!(out, "  \"serve\": {},", serve.to_json());
        }
        let _ = writeln!(out, "  \"plan_cache_contention\": [");
        for (i, c) in self.contention.iter().enumerate() {
            let comma = if i + 1 < self.contention.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{comma}", c.to_json());
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"workloads\": [");
        for (i, w) in self.workloads.iter().enumerate() {
            let comma = if i + 1 < self.workloads.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{comma}", w.to_json());
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a report emitted by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on malformed input or missing
    /// fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = JsonParser::new(text).parse()?;
        let obj = value.as_obj("top level")?;
        let workloads = obj
            .get("workloads")?
            .as_arr("workloads")?
            .iter()
            .map(|w| {
                let o = w.as_obj("workload")?;
                Ok(PerfRecord {
                    name: o.get("name")?.as_str("name")?.to_string(),
                    cycles: o.get("cycles")?.as_u64("cycles")?,
                    total_ops: o.get("total_ops")?.as_u64("total_ops")?,
                    density: o.get("density")?.as_f64("density")?,
                    macs_per_cycle: o.get("macs_per_cycle")?.as_f64("macs_per_cycle")?,
                    wall_s: o.get("wall_s")?.as_f64("wall_s")?,
                    wall_norm: o.get("wall_norm")?.as_f64("wall_norm")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            schema: obj.get("schema")?.as_u64("schema")?,
            sha: obj.get("sha")?.as_str("sha")?.to_string(),
            scale: obj.get("scale")?.as_str("scale")?.to_string(),
            threads: obj.get("threads")?.as_u64("threads")? as usize,
            // Schema-4 renamed `cores` to `host_cores` (the satellite
            // gate fix); either key parses.
            host_cores: match obj.get_opt("host_cores") {
                Some(v) => v.as_u64("host_cores")? as usize,
                None => obj.get("cores")?.as_u64("cores")? as usize,
            },
            calibration_wall_s: obj.get("calibration_wall_s")?.as_f64("calibration_wall_s")?,
            speedup_parallel: obj.get("speedup_parallel")?.as_f64("speedup_parallel")?,
            // Schema-1 reports predate the plan cache; default the new
            // fields so an old baseline still parses (the hit-rate gate
            // then self-disables via the `baseline <= 0` rule).
            plan_cache_hit_rate: match obj.get_opt("plan_cache_hit_rate") {
                Some(v) => v.as_f64("plan_cache_hit_rate")?,
                None => 0.0,
            },
            speedup_cached: match obj.get_opt("speedup_cached") {
                Some(v) => v.as_f64("speedup_cached")?,
                None => 0.0,
            },
            dram_requests: match obj.get_opt("dram_requests") {
                Some(v) => v.as_u64("dram_requests")?,
                None => 0,
            },
            dram_bursts: match obj.get_opt("dram_bursts") {
                Some(v) => v.as_u64("dram_bursts")?,
                None => 0,
            },
            // Schema-2 reports predate the allocation audit; the -1.0
            // sentinel marks it unmeasured and self-disables the gate.
            exec_allocs_per_subtile: match obj.get_opt("exec_allocs_per_subtile") {
                Some(v) => v.as_f64("exec_allocs_per_subtile")?,
                None => -1.0,
            },
            // Schema ≤ 3 reports predate the contention sweep; an empty
            // vec self-disables the contention gate with a note.
            contention: match obj.get_opt("plan_cache_contention") {
                Some(v) => v
                    .as_arr("plan_cache_contention")?
                    .iter()
                    .map(|c| {
                        let o = c.as_obj("contention point")?;
                        Ok(ContentionPoint {
                            threads: o.get("threads")?.as_u64("threads")? as usize,
                            lookups: o.get("lookups")?.as_u64("lookups")?,
                            wall_s: o.get("wall_s")?.as_f64("wall_s")?,
                            ns_per_lookup: o.get("ns_per_lookup")?.as_f64("ns_per_lookup")?,
                            mlookups_per_s: o.get("mlookups_per_s")?.as_f64("mlookups_per_s")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                None => Vec::new(),
            },
            // Schema ≤ 4 reports predate the serving frontend; `None`
            // self-disables the serve gate with a note.
            serve: match obj.get_opt("serve") {
                Some(v) => {
                    let o = v.as_obj("serve")?;
                    Some(ServeStats {
                        requests: o.get("requests")?.as_u64("requests")?,
                        batches: o.get("batches")?.as_u64("batches")?,
                        padded: o.get("padded")?.as_u64("padded")?,
                        workers: o.get("workers")?.as_u64("workers")? as usize,
                        throughput_rps: o.get("throughput_rps")?.as_f64("throughput_rps")?,
                        p50_latency_ns: o.get("p50_latency_ns")?.as_f64("p50_latency_ns")?,
                        p99_latency_ns: o.get("p99_latency_ns")?.as_f64("p99_latency_ns")?,
                    })
                }
                None => None,
            },
            workloads,
        })
    }
}

/// Minimal JSON value (the subset [`PerfReport::to_json`] emits).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct JsonObj<'a>(&'a [(String, Json)]);

impl<'a> JsonObj<'a> {
    fn get(&self, key: &str) -> Result<&'a Json, String> {
        self.get_opt(key).ok_or_else(|| format!("missing field '{key}'"))
    }

    fn get_opt(&self, key: &str) -> Option<&'a Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

impl Json {
    fn as_obj(&self, ctx: &str) -> Result<JsonObj<'_>, String> {
        match self {
            Json::Obj(fields) => Ok(JsonObj(fields)),
            other => Err(format!("{ctx}: expected object, got {other:?}")),
        }
    }

    fn as_arr(&self, ctx: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("{ctx}: expected array, got {other:?}")),
        }
    }

    fn as_str(&self, ctx: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{ctx}: expected string, got {other:?}")),
        }
    }

    fn as_f64(&self, ctx: &str) -> Result<f64, String> {
        match self {
            Json::Num(v) => Ok(*v),
            other => Err(format!("{ctx}: expected number, got {other:?}")),
        }
    }

    fn as_u64(&self, ctx: &str) -> Result<u64, String> {
        let v = self.as_f64(ctx)?;
        if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
            return Err(format!("{ctx}: expected non-negative integer, got {v}"));
        }
        Ok(v as u64)
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing garbage at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got '{}'", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got '{}'", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u{code:04x}"))?,
                            );
                        }
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                b => {
                    // Multi-byte UTF-8 continuation: copy the raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    if b >= 0x80 {
                        while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        self.pos = end;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end.max(start + 1)])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PerfReport {
        PerfReport {
            schema: 6,
            sha: "abc123".into(),
            scale: "quick".into(),
            threads: 4,
            host_cores: 8,
            calibration_wall_s: 0.00125,
            speedup_parallel: 2.5,
            plan_cache_hit_rate: 1.0,
            speedup_cached: 1.8,
            dram_requests: 3,
            dram_bursts: 544_768,
            exec_allocs_per_subtile: 0.0,
            contention: vec![
                ContentionPoint {
                    threads: 1,
                    lookups: 20_000,
                    wall_s: 0.002,
                    ns_per_lookup: 100.0,
                    mlookups_per_s: 10.0,
                },
                ContentionPoint {
                    threads: 8,
                    lookups: 160_000,
                    wall_s: 0.004,
                    ns_per_lookup: 200.0,
                    mlookups_per_s: 40.0,
                },
            ],
            serve: Some(ServeStats {
                requests: 48,
                batches: 12,
                padded: 30,
                workers: 2,
                throughput_rps: 5_000.0,
                p50_latency_ns: 120_000.0,
                p99_latency_ns: 900_000.0,
            }),
            workloads: vec![
                PerfRecord {
                    name: "l7b_qproj_serial".into(),
                    cycles: 123_456_789,
                    total_ops: 42_000_000,
                    density: 0.126,
                    macs_per_cycle: 512.5,
                    wall_s: 1.5,
                    wall_norm: 1200.0,
                },
                PerfRecord {
                    name: "fig9_dse_t8_r256".into(),
                    cycles: 0,
                    total_ops: 1000,
                    density: 0.1257,
                    macs_per_cycle: 0.0,
                    wall_s: 0.002,
                    wall_norm: 1.6,
                },
                PerfRecord {
                    name: "kernel_micro_popcount".into(),
                    cycles: 0,
                    total_ops: 2_600_000,
                    density: 0.0,
                    macs_per_cycle: 0.0,
                    wall_s: 0.001,
                    wall_norm: 0.8,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let report = sample_report();
        let parsed = PerfReport::from_json(&report.to_json()).expect("roundtrip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(PerfReport::from_json("not json").is_err());
        assert!(PerfReport::from_json("{}").is_err(), "missing fields must error");
        assert!(PerfReport::from_json("{\"schema\": 1} trailing").is_err());
    }

    #[test]
    fn gate_passes_identical_reports() {
        let r = sample_report();
        let outcome = compare(&r, &r, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
    }

    #[test]
    fn gate_trips_on_injected_slowdown() {
        let base = sample_report();
        let mut slow = base.clone();
        for w in &mut slow.workloads {
            w.wall_s *= 3.0;
            w.wall_norm *= 3.0;
        }
        let outcome = compare(&base, &slow, GATE_TOLERANCE);
        assert!(!outcome.passed());
        assert!(
            outcome.failures.iter().any(|f| f.contains("wall_norm")),
            "failures: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn gate_trips_on_cycle_regression_and_missing_workload() {
        let base = sample_report();
        let mut worse = base.clone();
        worse.workloads[0].cycles = (base.workloads[0].cycles as f64 * 1.3) as u64;
        worse.workloads.pop();
        let outcome = compare(&base, &worse, GATE_TOLERANCE);
        assert!(outcome.failures.iter().any(|f| f.contains("cycles")));
        assert!(outcome.failures.iter().any(|f| f.contains("missing")));
    }

    #[test]
    fn gate_ignores_small_jitter_and_notes_improvements() {
        let base = sample_report();
        let mut jitter = base.clone();
        jitter.workloads[0].wall_norm *= 1.1; // within 20%
        jitter.workloads[0].macs_per_cycle *= 1.5; // improvement
        let outcome = compare(&base, &jitter, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(outcome.notes.iter().any(|n| n.contains("improved")));
    }

    #[test]
    fn wall_norm_gates_at_widened_tolerance_only() {
        let base = sample_report();
        // +60% wall: a shared-host contention swing, inside the widened
        // wall gate (20% × 5 = 100%) — must pass.
        let mut burst = base.clone();
        for w in &mut burst.workloads {
            w.wall_norm *= 1.6;
        }
        let outcome = compare(&base, &burst, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        // +150% wall (e.g. the 3× inject-slowdown self-test): past even
        // the widened gate — must fail.
        let mut slow = base.clone();
        for w in &mut slow.workloads {
            w.wall_norm *= 2.5;
        }
        let outcome = compare(&base, &slow, GATE_TOLERANCE);
        assert!(outcome.failures.iter().any(|f| f.contains("wall_norm")));
        // Deterministic metrics keep the full-strength 20%: +60% cycles
        // fails even though the same ratio passed for wall_norm.
        let mut cyc = base.clone();
        cyc.workloads[0].cycles = (base.workloads[0].cycles as f64 * 1.6) as u64;
        let outcome = compare(&base, &cyc, GATE_TOLERANCE);
        assert!(outcome.failures.iter().any(|f| f.contains("cycles")));
    }

    #[test]
    fn gate_skips_speedup_on_small_hosts() {
        let mut base = sample_report();
        base.host_cores = 1;
        let mut cur = base.clone();
        cur.speedup_parallel = 0.5; // would fail on a >= 4-core pair
        let outcome = compare(&base, &cur, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(outcome.notes.iter().any(|n| n.contains("speedup gate skipped")));
        // The contention gate self-disables on a small host too, with
        // its own logged reason.
        assert!(
            outcome.notes.iter().any(|n| n.contains("contention gate skipped")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn gate_skips_speedup_and_contention_on_core_count_mismatch() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.host_cores = 64; // both ≥ 4, but shapes differ
        cur.speedup_parallel = 0.1; // would fail on matching shapes
        cur.contention[1].mlookups_per_s = 0.1; // would fail on matching shapes
        let outcome = compare(&base, &cur, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome.notes.iter().any(
                |n| n.contains("speedup gate skipped") && n.contains("host core count changed")
            ),
            "notes: {:?}",
            outcome.notes
        );
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("contention gate skipped")
                    && n.contains("host core count changed")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn gate_fails_when_measured_metric_collapses_to_zero() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.workloads[0].cycles = 0;
        let outcome = compare(&base, &cur, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("collapsed to zero")),
            "failures: {:?}",
            outcome.failures
        );
        // But a metric the *baseline* marks not-applicable stays skipped
        // (the fig9 record has cycles 0 on both sides).
        assert!(!outcome.failures.iter().any(|f| f.contains("fig9")));
    }

    #[test]
    fn gate_skips_wall_norm_across_machine_shapes() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.host_cores = 4; // baseline recorded 8 cores
        cur.workloads[0].wall_norm *= 10.0; // would trip on matching shapes
        let outcome = compare(&base, &cur, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(outcome.notes.iter().any(|n| n.contains("wall_norm gate skipped")));
    }

    #[test]
    fn gate_trips_when_hit_rate_collapses() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.plan_cache_hit_rate = 0.0;
        let outcome = compare(&base, &cur, GATE_TOLERANCE);
        assert!(
            outcome
                .failures
                .iter()
                .any(|f| f.contains("plan_cache_hit_rate") && f.contains("collapsed to zero")),
            "failures: {:?}",
            outcome.failures
        );
        // A mild dip inside tolerance passes.
        let mut dip = base.clone();
        dip.plan_cache_hit_rate = 0.9;
        assert!(compare(&base, &dip, GATE_TOLERANCE).passed());
        // A drop past tolerance fails.
        let mut drop = base.clone();
        drop.plan_cache_hit_rate = 0.5;
        assert!(!compare(&base, &drop, GATE_TOLERANCE).passed());
    }

    #[test]
    fn contention_gate_trips_on_throughput_collapse() {
        let base = sample_report();
        // The 8-thread point flattens back to mutex-like throughput:
        // past even the widened (5×20% = 100%) gate — both the absolute
        // point and the scaling ratio must fail.
        let mut flat = base.clone();
        flat.contention[1].mlookups_per_s = 8.0;
        let outcome = compare(&base, &flat, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("plan_cache_contention_t8")),
            "failures: {:?}",
            outcome.failures
        );
        assert!(
            outcome.failures.iter().any(|f| f.contains("hit_path_scaling")),
            "failures: {:?}",
            outcome.failures
        );
        // Jitter inside the widened gate passes.
        let mut jitter = base.clone();
        jitter.contention[1].mlookups_per_s = 30.0;
        assert!(compare(&base, &jitter, GATE_TOLERANCE).passed());
        // A current run that dropped the workload entirely fails.
        let mut missing = base.clone();
        missing.contention.clear();
        let outcome = compare(&base, &missing, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("missing from current run")),
            "failures: {:?}",
            outcome.failures
        );
    }

    #[test]
    fn contention_workload_forces_full_hit_rate() {
        // Small direct run of the sweep itself: every point must record
        // the exact lookup count and a positive throughput.
        let points = contention_workload(4);
        assert_eq!(points.len(), CONTENTION_THREADS.len());
        for (p, &threads) in points.iter().zip(CONTENTION_THREADS.iter()) {
            assert_eq!(p.threads, threads);
            assert_eq!(p.lookups, threads as u64 * 20_000);
            assert!(p.wall_s > 0.0 && p.mlookups_per_s > 0.0 && p.ns_per_lookup > 0.0);
        }
    }

    #[test]
    fn contention_workload_survives_many_shards() {
        // Regression test for the shard-count/capacity interaction: 256
        // shards is the auto count of a 64-core host. With a fixed total
        // capacity that meant 1-entry shards, where pre-warm hash
        // collisions evicted warm keys and the sweep's never-miss assert
        // panicked — nondeterministically by host shape. Capacity now
        // scales with the shard count, so this must hold on any host.
        for p in contention_workload(256) {
            assert!(p.mlookups_per_s > 0.0);
        }
    }

    #[test]
    fn schema3_baseline_parses_with_legacy_cores_and_skips_contention_gate() {
        // A schema-3 baseline has `cores` (not `host_cores`) and no
        // `plan_cache_contention` array.
        let mut old = sample_report();
        old.schema = 3;
        old.contention.clear();
        old.serve = None;
        let text = old
            .to_json()
            .lines()
            .filter(|l| *l != "  \"plan_cache_contention\": [" && *l != "  ],")
            .map(|l| {
                if l.starts_with("  \"host_cores\"") {
                    format!("  \"cores\": {},", old.host_cores)
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = PerfReport::from_json(&text).expect("schema-3 baseline must parse");
        assert_eq!(parsed.host_cores, old.host_cores, "legacy `cores` key must map over");
        assert!(parsed.contention.is_empty());
        let outcome = compare(&parsed, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("contention gate skipped") && n.contains("predates")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn schema1_baseline_parses_and_skips_hit_rate_gate() {
        // A pre-plan-cache baseline lacks the schema-2 fields entirely.
        let mut old = sample_report();
        old.schema = 1;
        old.serve = None;
        let mut text = old.to_json();
        for field in [
            "plan_cache_hit_rate",
            "speedup_cached",
            "dram_requests",
            "dram_bursts",
            "exec_allocs_per_subtile",
        ] {
            let needle = format!("  \"{field}\"");
            text = text.lines().filter(|l| !l.starts_with(&needle)).collect::<Vec<_>>().join("\n");
        }
        let parsed = PerfReport::from_json(&text).expect("schema-1 baseline must parse");
        assert_eq!(parsed.plan_cache_hit_rate, 0.0);
        assert_eq!(parsed.speedup_cached, 0.0);
        assert_eq!(parsed.dram_requests, 0);
        assert_eq!(parsed.exec_allocs_per_subtile, -1.0);
        let outcome = compare(&parsed, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome.notes.iter().any(|n| n.contains("plan_cache_hit_rate gate skipped")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn schema2_baseline_parses_and_skips_alloc_gate() {
        // A schema-2 baseline (pre flat-buffer engine) lacks the
        // allocation-audit field but keeps everything else.
        let mut old = sample_report();
        old.schema = 2;
        old.serve = None;
        let needle = "  \"exec_allocs_per_subtile\"";
        let text =
            old.to_json().lines().filter(|l| !l.starts_with(needle)).collect::<Vec<_>>().join("\n");
        let parsed = PerfReport::from_json(&text).expect("schema-2 baseline must parse");
        assert_eq!(parsed.exec_allocs_per_subtile, -1.0);
        assert_eq!(parsed.plan_cache_hit_rate, 1.0, "schema-2 fields still parse");
        let outcome = compare(&parsed, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome.notes.iter().any(|n| n.contains("exec_allocs_per_subtile gate skipped")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn gate_trips_on_alloc_regression_only_past_slack() {
        let base = sample_report();
        // Within the ±0.5 absolute slack: passes (occasional one-off
        // growth of a warm buffer is not a design regression).
        let mut mild = base.clone();
        mild.exec_allocs_per_subtile = 0.3;
        assert!(compare(&base, &mild, GATE_TOLERANCE).passed());
        // A real per-sub-tile allocation rate fails.
        let mut bad = base.clone();
        bad.exec_allocs_per_subtile = 2.0;
        let outcome = compare(&base, &bad, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("exec_allocs_per_subtile")),
            "failures: {:?}",
            outcome.failures
        );
        // Current run without a counting allocator: note, not failure.
        let mut unmeasured = base.clone();
        unmeasured.exec_allocs_per_subtile = -1.0;
        let outcome = compare(&base, &unmeasured, GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(outcome.notes.iter().any(|n| n.contains("no counting allocator")));
    }

    #[test]
    fn schema4_baseline_parses_and_skips_serve_gate() {
        // A schema-4 baseline predates the serving frontend: no `serve`
        // object (and no `serve_open_loop` workload). It must parse,
        // and the serve gate must self-disable with a note instead of
        // failing on the missing stats.
        let mut old = sample_report();
        old.schema = 4;
        old.serve = None;
        let text = old.to_json();
        assert!(!text.contains("\"serve\""), "None must omit the serve line entirely");
        let parsed = PerfReport::from_json(&text).expect("schema-4 baseline must parse");
        assert_eq!(parsed, old);
        let outcome = compare(&parsed, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("serve gate skipped") && n.contains("predates")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn schema5_baseline_parses_and_skips_kernel_micro_gate() {
        // A schema-5 baseline predates the kernel_micro workloads: same
        // report shape, just no `kernel_micro_*` records. It must parse,
        // gate everything it does carry, and log that the kernel arm is
        // dark instead of failing (the gate only joins on baseline
        // workload names).
        let mut old = sample_report();
        old.schema = 5;
        old.workloads.retain(|w| !w.name.starts_with("kernel_micro_"));
        let parsed = PerfReport::from_json(&old.to_json()).expect("schema-5 baseline must parse");
        assert_eq!(parsed, old);
        let outcome = compare(&parsed, &sample_report(), GATE_TOLERANCE);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome
                .notes
                .iter()
                .any(|n| n.contains("kernel_micro gate skipped") && n.contains("predates")),
            "notes: {:?}",
            outcome.notes
        );
        // With kernel_micro on both sides the note disappears and the
        // deterministic column gates at full strength.
        let base = sample_report();
        let mut drift = base.clone();
        drift.workloads.last_mut().unwrap().total_ops *= 2;
        let outcome = compare(&base, &drift, GATE_TOLERANCE);
        assert!(
            outcome
                .failures
                .iter()
                .any(|f| f.contains("kernel_micro_popcount") && f.contains("total_ops")),
            "failures: {:?}",
            outcome.failures
        );
        assert!(!compare(&base, &base, GATE_TOLERANCE)
            .notes
            .iter()
            .any(|n| n.contains("kernel_micro gate skipped")));
    }

    #[test]
    fn serve_gate_requires_exact_deterministic_counts() {
        let base = sample_report();
        // A current run that dropped the serving stats entirely fails.
        let mut missing = base.clone();
        missing.serve = None;
        let outcome = compare(&base, &missing, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_open_loop stats missing")),
            "failures: {:?}",
            outcome.failures
        );
        // The trace is seeded: a changed request count is a hard fail.
        let mut drifted = base.clone();
        drifted.serve.as_mut().unwrap().requests = 47;
        let outcome = compare(&base, &drifted, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_open_loop/requests changed")),
            "failures: {:?}",
            outcome.failures
        );
        // Padding depends only on shape and quantum: also exact.
        let mut padded = base.clone();
        padded.serve.as_mut().unwrap().padded = 31;
        let outcome = compare(&base, &padded, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_open_loop/padded changed")),
            "failures: {:?}",
            outcome.failures
        );
        // Batch count is timing-dependent — never gated.
        let mut batches = base.clone();
        batches.serve.as_mut().unwrap().batches = 48;
        assert!(compare(&base, &batches, GATE_TOLERANCE).passed());
    }

    #[test]
    fn serve_wall_metrics_gate_at_widened_tolerance_and_matching_shape_only() {
        let base = sample_report();
        // -40% throughput: inside the widened (100%) wall gate — passes.
        let mut jitter = base.clone();
        jitter.serve.as_mut().unwrap().throughput_rps *= 0.6;
        assert!(compare(&base, &jitter, GATE_TOLERANCE).passed());
        // Throughput halved-and-worse plus p99 tripled: both fail.
        let mut slow = base.clone();
        {
            let s = slow.serve.as_mut().unwrap();
            s.throughput_rps /= 2.5;
            s.p99_latency_ns *= 3.0;
        }
        let outcome = compare(&base, &slow, GATE_TOLERANCE);
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_open_loop/throughput_rps")),
            "failures: {:?}",
            outcome.failures
        );
        assert!(
            outcome.failures.iter().any(|f| f.contains("serve_open_loop/p99_latency_ns")),
            "failures: {:?}",
            outcome.failures
        );
        // Across machine shapes the wall metrics skip with a note; the
        // deterministic counts still gate.
        let mut other_host = slow.clone();
        other_host.host_cores = 64;
        let outcome = compare(&base, &other_host, GATE_TOLERANCE);
        assert!(
            !outcome.failures.iter().any(|f| f.contains("throughput_rps")),
            "failures: {:?}",
            outcome.failures
        );
        assert!(
            outcome.notes.iter().any(|n| n.contains("serve throughput/latency gate skipped")),
            "notes: {:?}",
            outcome.notes
        );
    }

    #[test]
    fn gate_rejects_scale_mismatch() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.scale = "full".into();
        assert!(!compare(&base, &cur, GATE_TOLERANCE).passed());
    }

    #[test]
    fn suite_runs_at_tiny_scale_and_is_deterministic() {
        let tiny = Scale { tiles: 2, sample_limit: 4, accuracy_dim: 16 };
        let report = run_suite(tiny, 2, DEFAULT_PLAN_CACHE_ENTRIES, 0);
        assert_eq!(report.workloads.len(), 9);
        assert_eq!(report.schema, 6);
        assert_eq!(report.contention.len(), CONTENTION_THREADS.len());
        for p in &report.contention {
            assert!(p.mlookups_per_s > 0.0, "contention sweep must measure real throughput");
        }
        assert!(report.host_cores >= 1);
        let serial = report.workloads.iter().find(|w| w.name == "l7b_qproj_serial").unwrap();
        let parallel = report.workloads.iter().find(|w| w.name == "l7b_qproj_parallel").unwrap();
        let cached = report.workloads.iter().find(|w| w.name == "l7b_qproj_cached").unwrap();
        let exec = report.workloads.iter().find(|w| w.name == "l7b_qproj_exec").unwrap();
        assert_eq!(serial.cycles, parallel.cycles, "parallel must be bit-exact");
        assert_eq!(serial.total_ops, parallel.total_ops);
        assert_eq!(serial.cycles, cached.cycles, "plan cache must be bit-exact");
        assert_eq!(serial.total_ops, cached.total_ops);
        assert!(serial.cycles > 0);
        assert!(exec.cycles > 0 && exec.total_ops > 0, "exec workload reports a real run");
        assert!(exec.density > 0.0 && exec.density < 1.0);
        assert!(report.speedup_parallel > 0.0);
        assert_eq!(
            report.plan_cache_hit_rate, 1.0,
            "a warm replay under an adequate capacity must hit every sub-tile"
        );
        assert!(report.speedup_cached > 0.0);
        assert_eq!(report.dram_requests, 3, "one request per W/I/O stream");
        assert!(report.dram_bursts > report.dram_requests, "bursts decompose requests");
        assert_eq!(
            report.exec_allocs_per_subtile, -1.0,
            "library tests run without the counting allocator"
        );
        let served = report.workloads.iter().find(|w| w.name == "serve_open_loop").unwrap();
        assert!(served.cycles > 0 && served.total_ops > 0, "serve workload sums real runs");
        let serve = report.serve.as_ref().expect("schema-5 suite always measures serving");
        assert_eq!(serve.requests, 32, "tiny scale serves tiles.max(2) * 16 requests");
        assert!(serve.padded > 0, "width-quantized buckets must pad the off-quantum shapes");
        assert!(serve.batches > 0 && serve.batches <= serve.requests);
        assert!(serve.throughput_rps > 0.0);
        assert!(serve.p50_latency_ns > 0.0 && serve.p99_latency_ns >= serve.p50_latency_ns);
        for name in ["kernel_micro_popcount", "kernel_micro_extract", "kernel_micro_im2col"] {
            let k = report.workloads.iter().find(|w| w.name == name).unwrap();
            assert!(k.total_ops > 0, "{name} must report a deterministic kernel output");
            assert!(k.wall_s > 0.0 && k.wall_norm > 0.0, "{name} must be timed");
        }
    }

    #[test]
    fn kernel_micro_total_ops_are_deterministic() {
        // The gate treats kernel_micro `total_ops` as a full-strength
        // deterministic metric, so two runs at the same scale must agree
        // exactly (only the wall columns may differ).
        let tiny = Scale { tiles: 2, sample_limit: 4, accuracy_dim: 16 };
        let a = kernel_micro(tiny);
        let b = kernel_micro(tiny);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.total_ops, y.total_ops, "{} total_ops drifted across runs", x.name);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero plan-cache capacity")]
    fn suite_rejects_zero_plan_cache() {
        let tiny = Scale { tiles: 2, sample_limit: 4, accuracy_dim: 16 };
        let _ = run_suite(tiny, 1, 0, 0);
    }
}
