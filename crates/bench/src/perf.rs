//! Machine-readable performance records and the CI regression gate.
//!
//! The `bench_smoke` binary runs [`run_suite`] — a fixed workload roster
//! (a Fig. 9 design point plus a full-scale LLaMA-7B `q_proj` layer
//! simulated serially and in parallel) — and writes the result as
//! `BENCH_<sha>.json`. CI compares that against the committed
//! `BENCH_baseline.json` with [`compare`] and fails on >20% regressions.
//!
//! Two measurement choices keep the gate portable across machines:
//!
//! * **normalized wall time** (`wall_norm`): every workload's wall time
//!   is divided by an in-process dense-GEMM calibration loop timed the
//!   same way, so "this runner is 2× slower than the baseline machine"
//!   cancels out while "this commit made the simulator 2× slower" does
//!   not;
//! * **model metrics** (`cycles`, `total_ops`, `density`,
//!   `macs_per_cycle`) are deterministic simulator outputs — any drift
//!   is a behavior change, not noise, and the serial/parallel pair is
//!   additionally checked for bit-equality on every run.
//!
//! The module splits three ways: `suite` measures (timing machinery
//! and roster assembly — the workload *definitions* live in
//! `ta-workloads`), `gate` compares runs against baselines, and
//! `json` is the purpose-built micro-codec (serde is unavailable
//! offline) that round-trips exactly the subset this module writes.
//! This root file keeps only the record types and the shared constants.

mod gate;
mod json;
mod suite;

pub use gate::{compare, disabled_summary, GateOutcome};
pub(crate) use json::json_str;
pub use suite::{cached_replay, contention_workload, run_suite, run_suite_filtered};

/// Default plan-cache capacity for the cached LLaMA-7B workload (see
/// [`ta_workloads::l7b`]).
pub use ta_workloads::l7b::DEFAULT_PLAN_CACHE_ENTRIES;

/// The full-scale LLaMA-7B `q_proj` GEMM (hidden 4096, prefill 2048).
pub use ta_workloads::l7b::qproj_shape as l7b_qproj_shape;

/// Thread counts the `plan_cache_contention` workload sweeps.
pub use ta_workloads::contention::THREADS as CONTENTION_THREADS;

/// Relative regression tolerance of the CI gate (>20% fails).
pub const GATE_TOLERANCE: f64 = 0.20;

/// One measured workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Workload name (stable across runs; the gate joins on it).
    pub name: String,
    /// Modeled end-to-end cycles (0 for workloads without a cycle model).
    pub cycles: u64,
    /// Modeled accumulate ops (0 when not applicable).
    pub total_ops: u64,
    /// Transitive density (0 when not applicable).
    pub density: f64,
    /// Dense-equivalent MACs per modeled cycle (0 when not applicable).
    pub macs_per_cycle: f64,
    /// Host wall-clock seconds (best of the measurement repeats).
    pub wall_s: f64,
    /// `wall_s` normalized by the calibration loop (machine-portable).
    pub wall_norm: f64,
}

/// One point of the `plan_cache_contention` workload: `threads` workers
/// hammering a pre-warmed sharded plan cache at a forced 1.0 hit rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionPoint {
    /// Concurrent lookup threads.
    pub threads: usize,
    /// Total lookups across all threads (every one a hit, by
    /// construction — the suite panics otherwise).
    pub lookups: u64,
    /// Wall seconds for all threads to complete.
    pub wall_s: f64,
    /// Mean lock-hold-plus-lookup latency per hit (nanoseconds of
    /// aggregate thread time per lookup).
    pub ns_per_lookup: f64,
    /// Aggregate hit throughput (million lookups per wall second) — the
    /// scaling metric the gate compares across thread counts.
    pub mlookups_per_s: f64,
}

/// Stats from the `serve_open_loop` workload: the whole serving stack
/// (admission queue → tenant round-robin → shape-bucketing batcher →
/// continuous-batching worker pool) under a seeded open-loop Poisson
/// trace. `requests` and `padded` are deterministic (the trace is
/// seeded and padding depends only on each request's shape and the
/// bucket quantum); `batches` depends on scheduler timing and is
/// recorded but not gated; the throughput/latency figures are
/// wall-clock metrics gated at the widened wall tolerance, same-shape
/// hosts only.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests served (the gate requires an exact match).
    pub requests: u64,
    /// Batches dispatched to workers (informational — timing-dependent).
    pub batches: u64,
    /// Requests zero-padded to their bucket width (deterministic).
    pub padded: u64,
    /// Worker threads the workload ran with.
    pub workers: usize,
    /// Served requests per wall second (open-loop, best measured pass).
    pub throughput_rps: f64,
    /// Median submit-to-complete latency in nanoseconds.
    pub p50_latency_ns: f64,
    /// 99th-percentile submit-to-complete latency in nanoseconds.
    pub p99_latency_ns: f64,
}

/// Stats from the `serve_overload` workload (schema 7): the serving
/// stack under a scripted storm on the **virtual clock** — per-tenant
/// queue depths blown by a frozen-clock storm trace (deterministic
/// rejections), every admitted storm request shed by one clock jump
/// past the latency budget (deterministic sheds), then recovery waves
/// served under seeded worker-panic injection (deterministic worker
/// losses and respawns). Every field is a pure function of the
/// workload's constants, so the gate requires exact matches — drift in
/// any of them is a behavior change in admission control, shedding,
/// fault injection, or worker recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadStats {
    /// Submission attempts (storm trace + recovery waves).
    pub submitted: u64,
    /// Admissions refused at submit (per-tenant queue depth exceeded).
    pub rejected: u64,
    /// Admitted requests dropped at the batcher for a blown budget.
    pub shed: u64,
    /// Requests lost to an injected worker panic (typed `WorkerLost`).
    pub worker_lost: u64,
    /// Requests served to completion, bit-checked against direct runs.
    pub completed: u64,
    /// `completed / submitted` — the useful fraction under overload.
    pub goodput: f64,
    /// Worker threads the workload ran with.
    pub workers: usize,
    /// Workers respawned after injected panics.
    pub respawned: u64,
}

/// One full bench-smoke run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// JSON schema version.
    pub schema: u64,
    /// Commit the run measured.
    pub sha: String,
    /// Scale name (`quick`/`full`) — baselines only compare at equal scale.
    pub scale: String,
    /// Resolved parallel worker count used by the `*_parallel` workloads.
    pub threads: usize,
    /// Available host cores. The parallel-speedup and contention gates
    /// self-disable (with a logged note) when baseline and current runs
    /// saw different core counts — those metrics are machine-shape
    /// facts, not portable ratios. Written as `host_cores` in schema-4
    /// JSON (`cores` in older schemas; both parse).
    pub host_cores: usize,
    /// Wall seconds of the dense-GEMM calibration loop.
    pub calibration_wall_s: f64,
    /// Serial wall / parallel wall for the LLaMA-7B layer.
    pub speedup_parallel: f64,
    /// Plan-cache hit rate of a deterministic warm replay of the
    /// LLaMA-7B layer (1.0 when every sub-tile plan is reused; a
    /// collapse to 0 means the cache silently disengaged and is a hard
    /// `bench_smoke` failure).
    pub plan_cache_hit_rate: f64,
    /// Uncached serial wall / plan-cached wall for the LLaMA-7B layer
    /// (the cached-vs-uncached ratio; ≥1 when the cache wins).
    pub speedup_cached: f64,
    /// DRAM transfer requests of the LLaMA-7B layer's traffic (one per
    /// weight/input/output stream under the shared tiling policy).
    pub dram_requests: u64,
    /// Burst beats those requests decompose into (64 B granularity).
    pub dram_bursts: u64,
    /// Steady-state heap allocations per sub-tile evaluation on the flat
    /// execution engine (`evaluate_into` + fused row accumulation over a
    /// warm `ExecScratch`). Healthy value: exactly `0.0`. `-1.0` marks
    /// "unmeasured" — no counting global allocator was installed (the
    /// `bench_smoke` binary installs one; library tests don't).
    pub exec_allocs_per_subtile: f64,
    /// Hit-path lock-contention sweep over the sharded plan cache
    /// (threads 1/2/8/16 at forced hit rate 1.0). Empty on schema ≤ 3
    /// baselines, which self-disables the contention gate.
    pub contention: Vec<ContentionPoint>,
    /// Serving-frontend stats from the `serve_open_loop` workload.
    /// `None` on schema ≤ 4 baselines, which self-disables the serve
    /// gate with a logged note.
    pub serve: Option<ServeStats>,
    /// Scripted-overload stats from the `serve_overload` workload.
    /// `None` on schema ≤ 6 baselines, which self-disables the
    /// overload gate with a logged note.
    pub overload: Option<OverloadStats>,
    /// Measured workloads.
    pub workloads: Vec<PerfRecord>,
}

/// Shared report fixture of the gate and codec tests.
#[cfg(test)]
pub(crate) mod test_fixture {
    use super::*;

    pub(crate) fn sample_report() -> PerfReport {
        PerfReport {
            schema: 7,
            sha: "abc123".into(),
            scale: "quick".into(),
            threads: 4,
            host_cores: 8,
            calibration_wall_s: 0.00125,
            speedup_parallel: 2.5,
            plan_cache_hit_rate: 1.0,
            speedup_cached: 1.8,
            dram_requests: 3,
            dram_bursts: 544_768,
            exec_allocs_per_subtile: 0.0,
            contention: vec![
                ContentionPoint {
                    threads: 1,
                    lookups: 20_000,
                    wall_s: 0.002,
                    ns_per_lookup: 100.0,
                    mlookups_per_s: 10.0,
                },
                ContentionPoint {
                    threads: 8,
                    lookups: 160_000,
                    wall_s: 0.004,
                    ns_per_lookup: 200.0,
                    mlookups_per_s: 40.0,
                },
            ],
            serve: Some(ServeStats {
                requests: 48,
                batches: 12,
                padded: 30,
                workers: 2,
                throughput_rps: 5_000.0,
                p50_latency_ns: 120_000.0,
                p99_latency_ns: 900_000.0,
            }),
            overload: Some(OverloadStats {
                submitted: 64,
                rejected: 4,
                shed: 28,
                worker_lost: 7,
                completed: 25,
                goodput: 25.0 / 64.0,
                workers: 2,
                respawned: 3,
            }),
            workloads: vec![
                PerfRecord {
                    name: "l7b_qproj_serial".into(),
                    cycles: 123_456_789,
                    total_ops: 42_000_000,
                    density: 0.126,
                    macs_per_cycle: 512.5,
                    wall_s: 1.5,
                    wall_norm: 1200.0,
                },
                PerfRecord {
                    name: "fig9_dse_t8_r256".into(),
                    cycles: 0,
                    total_ops: 1000,
                    density: 0.1257,
                    macs_per_cycle: 0.0,
                    wall_s: 0.002,
                    wall_norm: 1.6,
                },
                PerfRecord {
                    name: "kernel_micro_popcount".into(),
                    cycles: 0,
                    total_ops: 2_600_000,
                    density: 0.0,
                    macs_per_cycle: 0.0,
                    wall_s: 0.001,
                    wall_norm: 0.8,
                },
            ],
        }
    }
}
