//! Experiment scale control: full paper-scale runs vs quick smoke runs.

/// How much work each experiment does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Random tiles averaged per design point (Fig. 9 / Fig. 13 sweeps).
    pub tiles: usize,
    /// Sub-tile sampling cap for layer simulations (Fig. 10/12/14).
    pub sample_limit: usize,
    /// Matrix side used by the Table 3 accuracy study.
    pub accuracy_dim: usize,
}

impl Scale {
    /// Paper-scale settings.
    pub fn full() -> Self {
        Self { tiles: 16, sample_limit: 1024, accuracy_dim: 192 }
    }

    /// Smoke-test settings (CI, criterion).
    pub fn quick() -> Self {
        Self { tiles: 3, sample_limit: 96, accuracy_dim: 64 }
    }

    /// Parses a `TA_SCALE` value. Unknown values are an **error**, not a
    /// silent default: a typo'd `TA_SCALE=qiuck` used to fall through to
    /// the multi-minute full-scale run.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message listing the accepted values for
    /// anything other than `quick`/`smoke`/`full`.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.trim() {
            "quick" | "smoke" => Ok(Self::quick()),
            "full" => Ok(Self::full()),
            other => Err(format!(
                "unrecognized TA_SCALE value '{other}': expected 'quick' (alias 'smoke') or 'full'"
            )),
        }
    }

    /// The scale's canonical name (`"quick"` or `"full"`; custom scales
    /// report as `"custom"`). Recorded in bench JSON so baselines are
    /// only compared at matching scales.
    pub fn name(&self) -> &'static str {
        if *self == Self::quick() {
            "quick"
        } else if *self == Self::full() {
            "full"
        } else {
            "custom"
        }
    }

    /// Reads `TA_SCALE=quick|full` from the environment (default full). A
    /// `--smoke` or `--quick` CLI argument also selects [`Scale::quick`], so
    /// `cargo run -p ta-bench --bin fig9 -- --smoke` works without env setup.
    /// Any other argument — and any unknown `TA_SCALE` value — is rejected:
    /// the figure binaries take nothing else, and silently ignoring a typo
    /// would run the multi-minute full-scale simulation instead of the
    /// intended smoke run.
    pub fn from_env() -> Self {
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--smoke" | "--quick" => quick = true,
                other => {
                    eprintln!(
                        "error: unrecognized argument '{other}' (expected --smoke or --quick)"
                    );
                    std::process::exit(2);
                }
            }
        }
        if quick {
            return Self::quick();
        }
        match std::env::var("TA_SCALE") {
            Err(std::env::VarError::NotPresent) => Self::full(),
            Err(std::env::VarError::NotUnicode(_)) => {
                eprintln!("error: TA_SCALE is not valid unicode");
                std::process::exit(2);
            }
            Ok(value) => match Self::parse(&value) {
                Ok(scale) => scale,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    std::process::exit(2);
                }
            },
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.tiles < f.tiles);
        assert!(q.sample_limit < f.sample_limit);
        assert!(q.accuracy_dim < f.accuracy_dim);
    }

    #[test]
    fn parse_accepts_known_values() {
        assert_eq!(Scale::parse("quick"), Ok(Scale::quick()));
        assert_eq!(Scale::parse("smoke"), Ok(Scale::quick()));
        assert_eq!(Scale::parse("full"), Ok(Scale::full()));
        assert_eq!(Scale::parse("  quick "), Ok(Scale::quick()), "whitespace tolerated");
    }

    #[test]
    fn parse_rejects_unknown_values_helpfully() {
        for bad in ["qiuck", "FULL", "paper", "", "1"] {
            let err = Scale::parse(bad).expect_err(bad);
            assert!(err.contains("expected 'quick'"), "unhelpful error for '{bad}': {err}");
        }
    }

    #[test]
    fn scale_names() {
        assert_eq!(Scale::quick().name(), "quick");
        assert_eq!(Scale::full().name(), "full");
        assert_eq!(Scale { tiles: 1, sample_limit: 1, accuracy_dim: 1 }.name(), "custom");
    }
}
