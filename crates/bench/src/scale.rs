//! Experiment scale control: full paper-scale runs vs quick smoke runs.

/// How much work each experiment does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Random tiles averaged per design point (Fig. 9 / Fig. 13 sweeps).
    pub tiles: usize,
    /// Sub-tile sampling cap for layer simulations (Fig. 10/12/14).
    pub sample_limit: usize,
    /// Matrix side used by the Table 3 accuracy study.
    pub accuracy_dim: usize,
}

impl Scale {
    /// Paper-scale settings.
    pub fn full() -> Self {
        Self { tiles: 16, sample_limit: 1024, accuracy_dim: 192 }
    }

    /// Smoke-test settings (CI, criterion).
    pub fn quick() -> Self {
        Self { tiles: 3, sample_limit: 96, accuracy_dim: 64 }
    }

    /// Reads `TA_SCALE=quick|full` from the environment (default full). A
    /// `--smoke` or `--quick` CLI argument also selects [`Scale::quick`], so
    /// `cargo run -p ta-bench --bin fig9 -- --smoke` works without env setup.
    /// Any other argument is rejected — the figure binaries take nothing
    /// else, and silently ignoring a typo'd flag would run the multi-minute
    /// full-scale simulation instead of the intended smoke run.
    pub fn from_env() -> Self {
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--smoke" | "--quick" => quick = true,
                other => {
                    eprintln!(
                        "error: unrecognized argument '{other}' (expected --smoke or --quick)"
                    );
                    std::process::exit(2);
                }
            }
        }
        if quick {
            return Self::quick();
        }
        match std::env::var("TA_SCALE").as_deref() {
            Ok("quick") => Self::quick(),
            _ => Self::full(),
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.tiles < f.tiles);
        assert!(q.sample_limit < f.sample_limit);
        assert!(q.accuracy_dim < f.accuracy_dim);
    }
}
