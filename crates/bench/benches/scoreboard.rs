//! Criterion micro-benchmarks of the Scoreboard — the component whose
//! linear complexity the paper contrasts with GEMM's cubic (§1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ta_core::PatternSource;
use ta_hasse::{ExecutionPlan, Scoreboard, ScoreboardConfig, StaticSi, TileStats};
use ta_workloads::sources::dse_source;

fn patterns(rows: usize) -> Vec<u16> {
    dse_source(8, rows, 42).subtile_patterns(0, 0)
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("scoreboard_build");
    for rows in [64usize, 256, 1024] {
        let p = patterns(rows);
        g.bench_with_input(BenchmarkId::from_parameter(rows), &p, |b, p| {
            b.iter(|| {
                Scoreboard::build(ScoreboardConfig::with_width(8), black_box(p.iter().copied()))
            })
        });
    }
    g.finish();
}

fn bench_stats_and_plan(c: &mut Criterion) {
    let p = patterns(256);
    let sb = Scoreboard::build(ScoreboardConfig::with_width(8), p.iter().copied());
    c.bench_function("tile_stats_256", |b| b.iter(|| TileStats::from_scoreboard(black_box(&sb))));
    c.bench_function("execution_plan_256", |b| {
        b.iter(|| ExecutionPlan::from_scoreboard(black_box(&sb)))
    });
}

fn bench_static_si(c: &mut Criterion) {
    let calib: Vec<u16> =
        (0..8).flat_map(|t| dse_source(8, 256, 7).subtile_patterns(t, 0)).collect();
    let si = StaticSi::from_patterns(ScoreboardConfig::with_width(8), calib);
    let tile = patterns(256);
    c.bench_function("static_si_evaluate_256", |b| b.iter(|| si.evaluate_tile(black_box(&tile))));
}

criterion_group!(benches, bench_build, bench_stats_and_plan, bench_static_si);
criterion_main!(benches);
