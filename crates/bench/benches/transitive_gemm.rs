//! Criterion benchmark: the transitive GEMM engine vs the dense integer
//! reference, plus serial vs parallel tile execution (functional
//! throughput of the simulator, not the modeled hardware cycles).
//!
//! Besides the criterion smoke timings, the serial/parallel pair is
//! measured directly and written as machine-readable JSON under
//! `target/experiments/transitive_gemm_bench.json` (the same record
//! format the `bench_smoke` CI gate consumes).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;
use ta_bench::perf::{PerfRecord, PerfReport};
use ta_bench::{experiments_dir, Scale};
use ta_core::{runtime, TransArrayConfig, TransitiveArray};
use ta_quant::{gemm_i32, MatI32};
use ta_workloads::l7b;

fn mats() -> (MatI32, MatI32) {
    let w = MatI32::from_fn(64, 64, |r, c| (((r * 64 + c) as i64 * 40503 % 15) - 7) as i32);
    let x = MatI32::from_fn(64, 32, |r, c| (((r * 32 + c) as i64 * 9973 % 255) - 127) as i32);
    (w, x)
}

fn small_ta(threads: usize) -> TransitiveArray {
    TransitiveArray::new(TransArrayConfig {
        width: 4,
        max_transrows: 16,
        weight_bits: 4,
        m_tile: 32,
        units: 2,
        sample_limit: 0,
        threads,
        ..TransArrayConfig::paper_w8()
    })
}

fn bench_engines(c: &mut Criterion) {
    let (w, x) = mats();
    c.bench_function("dense_gemm_i32_64x64x32", |b| {
        b.iter(|| gemm_i32(black_box(&w), black_box(&x)))
    });
    let w4 = MatI32::from_fn(64, 64, |r, c| (((r * 64 + c) as i64 * 40503 % 15) - 7) as i32);
    let serial = small_ta(1);
    c.bench_function("transitive_gemm_64x64x32_w4_serial", |b| {
        b.iter(|| serial.execute_gemm(black_box(&w4), black_box(&x)))
    });
    let parallel = small_ta(0);
    c.bench_function("transitive_gemm_64x64x32_w4_parallel", |b| {
        b.iter(|| parallel.execute_gemm(black_box(&w4), black_box(&x)))
    });
}

/// Serial vs parallel vs plan-cached layer simulation of the full-scale
/// LLaMA-7B `q_proj` GEMM, timed directly so the speedups land in JSON.
fn bench_l7b_layer(c: &mut Criterion) {
    let scale = Scale::quick();
    let shape = l7b::qproj_shape();
    let make_ta = |threads: usize, plan_cache: usize| {
        TransitiveArray::new(TransArrayConfig {
            sample_limit: scale.sample_limit,
            threads,
            plan_cache,
            ..TransArrayConfig::paper_w8()
        })
    };
    let run_on = |ta: &TransitiveArray| {
        let n_tile = ta.config().n_tile();
        let start = Instant::now();
        let mut src = l7b::pattern_source_seeded(n_tile, 1234);
        let rep = ta.simulate_layer(shape, &mut src);
        (rep, start.elapsed().as_secs_f64())
    };
    let run = |threads: usize| run_on(&make_ta(threads, 0));
    let (serial_rep, serial_wall) = run(1);
    let (parallel_rep, parallel_wall) = run(0);
    assert_eq!(serial_rep, parallel_rep, "parallel layer simulation must be bit-exact");
    // The cached accelerator outlives its timing loop so the warm-cache
    // replay cost is what criterion sees; the one-shot wall below is the
    // warm second run.
    let cached_ta = make_ta(1, ta_bench::perf::DEFAULT_PLAN_CACHE_ENTRIES);
    let (cached_cold, _, _) = ta_bench::perf::cached_replay(&cached_ta, shape, 1234);
    assert_eq!(serial_rep, cached_cold, "plan-cached simulation must be bit-exact");
    // Second call = warm replay: its hit rate is 1.0 when healthy (the
    // cold call's compulsory misses are excluded by the counter deltas).
    let (cached_rep, cached_wall, hit_rate) =
        ta_bench::perf::cached_replay(&cached_ta, shape, 1234);
    assert_eq!(serial_rep, cached_rep, "warm plan-cached simulation must be bit-exact");

    let mut g = c.benchmark_group("l7b_qproj_quick");
    g.sample_size(10);
    g.bench_function("serial", |b| b.iter(|| run(1)));
    g.bench_function("parallel", |b| b.iter(|| run(0)));
    g.bench_function("plan_cached", |b| b.iter(|| run_on(&cached_ta)));
    g.finish();

    let record = |name: &str, wall: f64| PerfRecord {
        name: name.to_string(),
        cycles: serial_rep.cycles,
        total_ops: serial_rep.total_ops,
        density: serial_rep.density,
        macs_per_cycle: serial_rep.macs_per_cycle(),
        wall_s: wall,
        wall_norm: 0.0,
    };
    let report = PerfReport {
        schema: 5,
        sha: "bench".to_string(),
        scale: scale.name().to_string(),
        threads: runtime::Runtime::new(0).threads(),
        host_cores: runtime::available_cores(),
        calibration_wall_s: 0.0,
        speedup_parallel: if parallel_wall > 0.0 { serial_wall / parallel_wall } else { 0.0 },
        plan_cache_hit_rate: hit_rate,
        speedup_cached: if cached_wall > 0.0 { serial_wall / cached_wall } else { 0.0 },
        dram_requests: 0,
        dram_bursts: 0,
        exec_allocs_per_subtile: -1.0,
        contention: Vec::new(),
        serve: None,
        overload: None,
        workloads: vec![
            record("l7b_qproj_serial", serial_wall),
            record("l7b_qproj_parallel", parallel_wall),
            record("l7b_qproj_cached", cached_wall),
        ],
    };
    let dir = experiments_dir();
    let path = dir.join("transitive_gemm_bench.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, report.to_json())) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
    println!(
        "l7b_qproj serial {serial_wall:.3}s vs parallel {parallel_wall:.3}s -> {:.2}x at {} threads",
        report.speedup_parallel, report.threads
    );
    println!(
        "l7b_qproj plan-cached {cached_wall:.3}s -> {:.2}x vs serial (hit rate {hit_rate:.3})",
        report.speedup_cached
    );
}

criterion_group!(benches, bench_engines, bench_l7b_layer);
criterion_main!(benches);
