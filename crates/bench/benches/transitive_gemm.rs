//! Criterion benchmark: the transitive GEMM engine vs the dense integer
//! reference (functional throughput of the simulator, not the modeled
//! hardware cycles).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ta_core::{TransArrayConfig, TransitiveArray};
use ta_quant::{gemm_i32, MatI32};

fn mats() -> (MatI32, MatI32) {
    let w = MatI32::from_fn(64, 64, |r, c| (((r * 64 + c) as i64 * 40503 % 15) - 7) as i32);
    let x = MatI32::from_fn(64, 32, |r, c| (((r * 32 + c) as i64 * 9973 % 255) - 127) as i32);
    (w, x)
}

fn bench_engines(c: &mut Criterion) {
    let (w, x) = mats();
    c.bench_function("dense_gemm_i32_64x64x32", |b| {
        b.iter(|| gemm_i32(black_box(&w), black_box(&x)))
    });
    let ta = TransitiveArray::new(TransArrayConfig {
        width: 4,
        max_transrows: 16,
        weight_bits: 4,
        m_tile: 32,
        units: 2,
        sample_limit: 0,
        ..TransArrayConfig::paper_w8()
    });
    let w4 = MatI32::from_fn(64, 64, |r, c| (((r * 64 + c) as i64 * 40503 % 15) - 7) as i32);
    c.bench_function("transitive_gemm_64x64x32_w4", |b| {
        b.iter(|| ta.execute_gemm(black_box(&w4), black_box(&x)))
    });
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
