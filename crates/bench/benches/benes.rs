//! Criterion micro-benchmarks of the Benes network router (§4.4).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ta_sim::BenesNetwork;

fn bench_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("benes_route");
    for n in [8usize, 16, 32] {
        let net = BenesNetwork::new(n);
        let perm: Vec<usize> = (0..n).map(|o| (o * 5 + 3) % n).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &perm, |b, perm| {
            b.iter(|| net.route(black_box(perm)))
        });
    }
    g.finish();
}

fn bench_apply(c: &mut Criterion) {
    let net = BenesNetwork::new(8);
    let perm: Vec<usize> = vec![7, 2, 5, 0, 3, 6, 1, 4];
    let routing = net.route(&perm);
    let data: Vec<u64> = (0..8).collect();
    c.bench_function("benes_apply_8", |b| {
        b.iter(|| net.apply(black_box(&routing), black_box(&data)))
    });
}

criterion_group!(benches, bench_route, bench_apply);
criterion_main!(benches);
