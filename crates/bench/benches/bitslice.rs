//! Criterion micro-benchmarks of the bit-slicing engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ta_bitslice::{bitonic_sort_by_key, extract_subtile_transrows, BitSlicedMatrix};
use ta_quant::MatI32;

fn weight(n: usize, k: usize) -> MatI32 {
    MatI32::from_fn(n, k, |r, c| (((r * k + c) as i64 * 2654435761 % 255) - 127) as i32)
}

fn bench_slice(c: &mut Criterion) {
    let w = weight(256, 256);
    c.bench_function("bitslice_256x256_int8", |b| {
        b.iter(|| BitSlicedMatrix::slice(black_box(&w), 8))
    });
    let sliced = BitSlicedMatrix::slice(&w, 8);
    c.bench_function("reconstruct_256x256_int8", |b| b.iter(|| black_box(&sliced).reconstruct()));
    c.bench_function("extract_subtile_32x8", |b| {
        b.iter(|| extract_subtile_transrows(black_box(&sliced), 0, 32, 0, 8))
    });
}

fn bench_sorter(c: &mut Criterion) {
    let base: Vec<u16> = (0..256u32).map(|i| (i.wrapping_mul(40503) >> 8) as u16).collect();
    c.bench_function("bitonic_sort_256_by_popcount", |b| {
        b.iter(|| {
            let mut v = base.clone();
            bitonic_sort_by_key(&mut v, |x| x.count_ones());
            v
        })
    });
}

criterion_group!(benches, bench_slice, bench_sorter);
criterion_main!(benches);
