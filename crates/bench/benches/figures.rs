//! Criterion wrappers over the figure harnesses at quick scale — one
//! bench per paper artifact, so `cargo bench` exercises every
//! reproduction path end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use ta_bench::{experiments, Scale};

fn bench_figures(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut g = c.benchmark_group("figures_quick");
    g.sample_size(10);
    g.bench_function("fig9_panel_a_point", |b| {
        b.iter(|| experiments::fig9::design_point(8, 256, 2, 42))
    });
    g.bench_function("fig11_breakdown", |b| b.iter(|| experiments::fig11::breakdown(scale)));
    g.bench_function("fig13_point_row256", |b| {
        b.iter(|| {
            let mut src = ta_workloads::sources::fig13_random_source();
            experiments::fig13::measure(&mut src, 256, 2, 2)
        })
    });
    g.bench_function("table2_area", |b| b.iter(experiments::tables::table2));
    g.finish();

    let mut slow = c.benchmark_group("figures_quick_slow");
    slow.sample_size(10);
    slow.bench_function("table3_accuracy", |b| b.iter(|| experiments::tables::table3(scale)));
    slow.bench_function("fig14_resnet", |b| b.iter(|| experiments::fig14::simulate(scale)));
    slow.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
