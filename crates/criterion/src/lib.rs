//! Offline stand-in for the crates.io `criterion` benchmark harness.
//!
//! The workspace must build without network access, so the real statistical
//! harness cannot be a dependency. This crate implements the subset of the
//! criterion API used by `crates/bench/benches/`: benchmarks compile
//! unmodified, and running them executes each body a small fixed number of
//! iterations, reporting the best observed wall-clock time. See this crate's
//! `README.md` for the swap-back-to-real-criterion procedure.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark. Deliberately tiny: the goal is a smoke run that
/// proves the benchmark bodies still execute, not a statistical measurement.
const SMOKE_ITERS: u32 = 3;

/// Entry point handed to each benchmark function, mirroring
/// `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run `f` as a named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _parent: self }
    }
}

/// A named benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke harness ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the smoke harness ignores it.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Run `f` as a named benchmark within this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Run `f` with `input` as a parameterised benchmark within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (no-op in the smoke harness).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the benchmark parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Build an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

/// Timing loop handle, mirroring `criterion::Bencher`.
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping the best of a few iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..SMOKE_ITERS {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            if self.best.is_none_or(|b| elapsed < b) {
                self.best = Some(elapsed);
            }
        }
    }
}

fn run_one<F>(id: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { best: None };
    f(&mut bencher);
    match bencher.best {
        Some(best) => println!("bench {id:<48} best {best:>12.2?} (smoke, {SMOKE_ITERS} iters)"),
        None => println!("bench {id:<48} (no timing loop executed)"),
    }
}

/// Mirror of `criterion::criterion_group!`: bundles benchmark functions into
/// one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: generates `fn main` running the
/// given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, SMOKE_ITERS);
    }

    #[test]
    fn group_with_input_runs_body() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut seen = 0;
        g.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| b.iter(|| seen = n));
        g.finish();
        assert_eq!(seen, 7);
    }
}
