//! Error metrics for quantization-quality studies (Table 3 proxy).
//!
//! The paper reports Wikitext perplexity for each quantization scheme.
//! Running LLaMA checkpoints is outside the scope of this reproduction
//! (see DESIGN.md §3), so accuracy is measured as reconstruction error of
//! the quantized GEMM output against the FP32 reference, summarized by
//! NMSE / SQNR, plus a monotone pseudo-perplexity mapping.

use crate::matrix::MatF32;

/// Mean squared error between two equally shaped matrices.
///
/// # Panics
///
/// Panics if shapes differ or the matrices are empty.
pub fn mse(a: &MatF32, b: &MatF32) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    assert!(!a.is_empty(), "mse of empty matrices");
    let sum: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    sum / a.len() as f64
}

/// Normalized MSE: `‖a − b‖² / ‖a‖²` (0 when `b` reproduces `a` exactly).
///
/// Returns `f64::INFINITY` when the reference has zero energy but the
/// approximation does not.
///
/// # Panics
///
/// Panics if shapes differ or the matrices are empty.
pub fn nmse(reference: &MatF32, approx: &MatF32) -> f64 {
    let num = mse(reference, approx) * reference.len() as f64;
    let den: f64 = reference.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum();
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// Signal-to-quantization-noise ratio in dB: `10·log10(1 / NMSE)`.
///
/// Higher is better; exact reconstruction gives `f64::INFINITY`.
pub fn sqnr_db(reference: &MatF32, approx: &MatF32) -> f64 {
    let n = nmse(reference, approx);
    if n == 0.0 {
        f64::INFINITY
    } else {
        -10.0 * n.log10()
    }
}

/// Cosine similarity between the flattened matrices (1.0 = identical
/// direction).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn cosine_similarity(a: &MatF32, b: &MatF32) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 || nb == 0.0 {
        if na == nb {
            1.0
        } else {
            0.0
        }
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Maximum absolute elementwise difference.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn max_abs_err(a: &MatF32, b: &MatF32) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .fold(0.0, f64::max)
}

/// Maps a GEMM-output NMSE to a pseudo-perplexity.
///
/// **This is a documented proxy, not a perplexity measurement** (DESIGN.md
/// §3). The mapping `ppl = base · exp(α·√nmse)` is monotone in the error:
/// lossless methods report exactly `base`, small errors report slightly
/// higher values, catastrophic errors explode — the qualitative structure
/// of the paper's Table 3. `base` is the FP16 perplexity the paper lists
/// for the model; `alpha` controls the spread (we use 25.0 in the harness,
/// fitted so the 8-bit baselines land within ~0.3 of `base` as in Table 3).
pub fn pseudo_perplexity(base: f64, alpha: f64, nmse: f64) -> f64 {
    if !nmse.is_finite() {
        return f64::INFINITY;
    }
    base * (alpha * nmse.sqrt()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: &[f32]) -> MatF32 {
        MatF32::from_vec(1, v.len(), v.to_vec())
    }

    #[test]
    fn mse_basic() {
        let a = m(&[1.0, 2.0, 3.0]);
        let b = m(&[1.0, 2.0, 4.0]);
        assert!((mse(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn nmse_scale_invariant() {
        // Powers of two keep the scaling exact in f32.
        let a = m(&[2.0, 4.0]);
        let b = m(&[2.5, 4.5]);
        let a16 = m(&[32.0, 64.0]);
        let b16 = m(&[40.0, 72.0]);
        assert!((nmse(&a, &b) - nmse(&a16, &b16)).abs() < 1e-12);
    }

    #[test]
    fn nmse_zero_reference() {
        let z = m(&[0.0, 0.0]);
        assert_eq!(nmse(&z, &z), 0.0);
        assert_eq!(nmse(&z, &m(&[1.0, 0.0])), f64::INFINITY);
    }

    #[test]
    fn sqnr_ordering() {
        let a = m(&[1.0, -1.0, 2.0, -2.0]);
        let slightly = m(&[1.01, -1.0, 2.0, -2.0]);
        let very = m(&[1.5, -1.0, 2.0, -2.0]);
        assert!(sqnr_db(&a, &slightly) > sqnr_db(&a, &very));
        assert_eq!(sqnr_db(&a, &a), f64::INFINITY);
    }

    #[test]
    fn cosine_bounds() {
        let a = m(&[1.0, 0.0]);
        let b = m(&[0.0, 1.0]);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&a, &b).abs() < 1e-12);
        let z = m(&[0.0, 0.0]);
        assert_eq!(cosine_similarity(&z, &z), 1.0);
        assert_eq!(cosine_similarity(&z, &a), 0.0);
    }

    #[test]
    fn max_abs_err_basic() {
        let a = m(&[1.0, 5.0]);
        let b = m(&[2.0, 5.5]);
        assert_eq!(max_abs_err(&a, &b), 1.0);
    }

    #[test]
    fn pseudo_ppl_monotone_and_anchored() {
        let base = 5.68; // LLaMA-1-7B FP16 PPL from Table 3.
        assert_eq!(pseudo_perplexity(base, 25.0, 0.0), base);
        let small = pseudo_perplexity(base, 25.0, 1e-6);
        let big = pseudo_perplexity(base, 25.0, 1e-2);
        assert!(base < small && small < big);
        assert_eq!(pseudo_perplexity(base, 25.0, f64::INFINITY), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mse_shape_mismatch_panics() {
        let _ = mse(&m(&[1.0]), &m(&[1.0, 2.0]));
    }
}
