//! Quantization schemes: bit-width, granularity, symmetry.
//!
//! The paper's pipeline quantizes FP16 tensors to `S`-bit signed integers
//! (Fig. 2) before bit-slicing. Different baselines use different
//! granularities: per-tensor (BitFusion), per-channel, or group-wise with
//! group size 128 (the QServe-style setting TransArray uses, §4.5).

use std::fmt;

/// How scale factors are shared across a weight/activation matrix.
///
/// # Examples
///
/// ```
/// use ta_quant::Granularity;
///
/// assert_eq!(Granularity::Group(128).groups_per_row(256), 2);
/// assert_eq!(Granularity::PerTensor.groups_per_row(256), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One scale for the whole tensor.
    PerTensor,
    /// One scale per output channel (matrix row).
    PerChannel,
    /// One scale per contiguous group of `usize` elements along a row
    /// (the paper uses group size 128, §4.5).
    Group(usize),
}

impl Granularity {
    /// Number of scale groups covering a row of `row_len` elements.
    ///
    /// # Panics
    ///
    /// Panics if the group size is zero.
    pub fn groups_per_row(self, row_len: usize) -> usize {
        match self {
            Granularity::PerTensor | Granularity::PerChannel => 1,
            Granularity::Group(g) => {
                assert!(g > 0, "group size must be non-zero");
                row_len.div_ceil(g)
            }
        }
    }

    /// Index of the scale group that element `col` of a row belongs to.
    pub fn group_of(self, col: usize) -> usize {
        match self {
            Granularity::PerTensor | Granularity::PerChannel => 0,
            Granularity::Group(g) => col / g,
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Granularity::PerTensor => write!(f, "per-tensor"),
            Granularity::PerChannel => write!(f, "per-channel"),
            Granularity::Group(g) => write!(f, "group-{g}"),
        }
    }
}

/// A complete scheme: signed symmetric quantization at `bits` precision
/// with a given [`Granularity`].
///
/// Symmetric quantization maps `x` to `round(x / scale)` clamped to
/// `[-2^(bits-1) + 1, 2^(bits-1) - 1]` (restricted range, the common
/// hardware-friendly choice that keeps the representation symmetric).
///
/// # Examples
///
/// ```
/// use ta_quant::{Granularity, QuantScheme};
///
/// let s = QuantScheme::new(8, Granularity::PerTensor);
/// assert_eq!(s.qmax(), 127);
/// assert_eq!(s.qmin(), -127);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantScheme {
    bits: u32,
    granularity: Granularity,
}

impl QuantScheme {
    /// Creates a scheme.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16` (the range the bit-slicing
    /// engine supports) or if a group size is zero.
    pub fn new(bits: u32, granularity: Granularity) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16, got {bits}");
        if let Granularity::Group(g) = granularity {
            assert!(g > 0, "group size must be non-zero");
        }
        Self { bits, granularity }
    }

    /// Bit width `S`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Scale-sharing granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Largest representable quantized value, `2^(bits-1) - 1`.
    pub fn qmax(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Smallest representable quantized value in restricted range,
    /// `-(2^(bits-1) - 1)`.
    pub fn qmin(&self) -> i32 {
        -self.qmax()
    }
}

impl fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "int{}/{}", self.bits, self.granularity)
    }
}

/// Scale factors produced by calibration; one entry per (row, group).
///
/// Stored densely: `scales[row * groups_per_row + group]`. For
/// [`Granularity::PerTensor`] there is a single entry.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantParams {
    scheme: QuantScheme,
    rows: usize,
    groups_per_row: usize,
    scales: Vec<f32>,
}

impl QuantParams {
    /// Creates parameter storage.
    ///
    /// # Panics
    ///
    /// Panics if `scales.len() != rows * groups_per_row` (or `!= 1` for
    /// per-tensor schemes).
    pub fn new(scheme: QuantScheme, rows: usize, groups_per_row: usize, scales: Vec<f32>) -> Self {
        let expected = match scheme.granularity() {
            Granularity::PerTensor => 1,
            _ => rows * groups_per_row,
        };
        assert_eq!(scales.len(), expected, "scale count mismatch");
        Self { scheme, rows, groups_per_row, scales }
    }

    /// The scheme these parameters quantize for.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Scale applied to element `(row, col)`.
    #[inline]
    pub fn scale_at(&self, row: usize, col: usize) -> f32 {
        match self.scheme.granularity() {
            Granularity::PerTensor => self.scales[0],
            Granularity::PerChannel => self.scales[row],
            Granularity::Group(_) => {
                let g = self.scheme.granularity().group_of(col);
                self.scales[row * self.groups_per_row + g]
            }
        }
    }

    /// All scales (dense layout described on the type).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Number of rows the parameters were calibrated for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of scale groups per row.
    pub fn groups_per_row(&self) -> usize {
        self.groups_per_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_per_row_math() {
        assert_eq!(Granularity::Group(128).groups_per_row(128), 1);
        assert_eq!(Granularity::Group(128).groups_per_row(129), 2);
        assert_eq!(Granularity::Group(128).groups_per_row(0), 0);
        assert_eq!(Granularity::PerChannel.groups_per_row(999), 1);
    }

    #[test]
    fn group_of_math() {
        assert_eq!(Granularity::Group(4).group_of(0), 0);
        assert_eq!(Granularity::Group(4).group_of(3), 0);
        assert_eq!(Granularity::Group(4).group_of(4), 1);
        assert_eq!(Granularity::PerTensor.group_of(1000), 0);
    }

    #[test]
    fn scheme_ranges() {
        let s4 = QuantScheme::new(4, Granularity::PerTensor);
        assert_eq!(s4.qmax(), 7);
        assert_eq!(s4.qmin(), -7);
        let s8 = QuantScheme::new(8, Granularity::PerChannel);
        assert_eq!(s8.qmax(), 127);
        assert_eq!(s8.qmin(), -127);
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=16")]
    fn scheme_rejects_bad_bits() {
        let _ = QuantScheme::new(1, Granularity::PerTensor);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn scheme_rejects_zero_group() {
        let _ = QuantScheme::new(8, Granularity::Group(0));
    }

    #[test]
    fn params_scale_lookup() {
        let scheme = QuantScheme::new(8, Granularity::Group(2));
        let p = QuantParams::new(scheme, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.scale_at(0, 0), 1.0);
        assert_eq!(p.scale_at(0, 1), 1.0);
        assert_eq!(p.scale_at(0, 2), 2.0);
        assert_eq!(p.scale_at(1, 3), 4.0);
    }

    #[test]
    fn params_per_tensor_single_scale() {
        let scheme = QuantScheme::new(8, Granularity::PerTensor);
        let p = QuantParams::new(scheme, 10, 1, vec![0.5]);
        assert_eq!(p.scale_at(9, 9), 0.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(QuantScheme::new(4, Granularity::Group(128)).to_string(), "int4/group-128");
        assert_eq!(Granularity::PerTensor.to_string(), "per-tensor");
    }
}
