//! Tender's quantization: feature-dimension sub-tensors with power-of-two
//! scale factors.
//!
//! Tender (ISCA'24) "decomposes activation tensors along feature dimensions
//! into sub-tensors, with scale factors set to powers of two" so that
//! rescaling is a shift. The power-of-two restriction costs up to 2× scale
//! resolution; at 4 bits this is catastrophic on LLMs (Table 3's TD-4
//! column: PPL 23–55), at 8 bits it is benign (TD-8 ≈ the other 8-bit
//! methods) — exactly the behaviour this emulation produces.

use crate::matrix::MatF32;
use crate::methods::QuantMethod;

/// Sub-tensor (channel-group) quantization with power-of-two scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenderQuant {
    bits: u32,
    /// Number of feature channels per sub-tensor.
    subtensor: usize,
}

impl TenderQuant {
    /// Creates the method at `bits` precision with the default sub-tensor
    /// width of 16 channels.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16`.
    pub fn new(bits: u32) -> Self {
        Self::with_subtensor(bits, 16)
    }

    /// Creates the method with an explicit sub-tensor width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16` or `subtensor` is zero.
    pub fn with_subtensor(bits: u32, subtensor: usize) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        assert!(subtensor > 0, "subtensor width must be non-zero");
        Self { bits, subtensor }
    }

    fn qmax(&self) -> f32 {
        ((1i32 << (self.bits - 1)) - 1) as f32
    }

    /// Quantizes with one power-of-two scale per row-group of `subtensor`
    /// consecutive rows (the feature dimension of an activation `K×M`
    /// matrix runs along rows).
    fn quantize_rows_pow2(&self, t: &MatF32) -> MatF32 {
        let qmax = self.qmax();
        let mut out = MatF32::zeros(t.rows(), t.cols());
        let mut r0 = 0;
        while r0 < t.rows() {
            let r1 = (r0 + self.subtensor).min(t.rows());
            let mut absmax = 0.0f32;
            for r in r0..r1 {
                absmax = absmax.max(t.row(r).iter().fold(0.0f32, |m, &v| m.max(v.abs())));
            }
            let scale = pow2_scale(absmax, qmax);
            for r in r0..r1 {
                for c in 0..t.cols() {
                    let q = (t.get(r, c) / scale).round().clamp(-qmax, qmax);
                    out.set(r, c, q * scale);
                }
            }
            r0 = r1;
        }
        out
    }
}

/// Smallest power of two ≥ `absmax / qmax` (so the range still covers the
/// data, paying up to 2× in resolution). Returns 1.0 for all-zero groups.
fn pow2_scale(absmax: f32, qmax: f32) -> f32 {
    if absmax == 0.0 {
        return 1.0;
    }
    let ideal = absmax / qmax;
    let exp = ideal.log2().ceil();
    exp.exp2()
}

impl QuantMethod for TenderQuant {
    fn name(&self) -> &str {
        match self.bits {
            4 => "TD-4",
            8 => "TD-8",
            _ => "TD",
        }
    }

    fn weight_bits(&self) -> u32 {
        self.bits
    }

    fn act_bits(&self) -> u32 {
        self.bits
    }

    fn quantize_weight(&self, w: &MatF32) -> MatF32 {
        // Weights: per-channel-group along rows, same pow2 restriction.
        self.quantize_rows_pow2(w)
    }

    fn quantize_activation(&self, a: &MatF32) -> MatF32 {
        self.quantize_rows_pow2(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::nmse;

    #[test]
    fn pow2_scale_covers_range() {
        let s = pow2_scale(10.0, 7.0);
        assert!(s >= 10.0 / 7.0);
        assert!(s < 2.0 * 10.0 / 7.0);
        assert_eq!(s.log2().fract(), 0.0, "scale must be a power of two");
        assert_eq!(pow2_scale(0.0, 7.0), 1.0);
    }

    #[test]
    fn eight_bit_is_benign_four_bit_is_not() {
        let w = MatF32::from_fn(32, 32, |r, c| ((r * 31 + c * 7) as f32 * 0.1).sin() * 3.0);
        let e8 = nmse(&w, &TenderQuant::new(8).quantize_weight(&w));
        let e4 = nmse(&w, &TenderQuant::new(4).quantize_weight(&w));
        assert!(e8 < 1e-3, "TD-8 should be benign, got {e8}");
        assert!(e4 > 30.0 * e8, "TD-4 must be much worse: {e4} vs {e8}");
    }

    #[test]
    fn subtensor_groups_isolate_outliers_partially() {
        // Outlier in rows 0..16 must not affect rows 16..32 (different
        // sub-tensor), but *does* affect its own group.
        let mut a = MatF32::from_fn(32, 8, |_, _| 0.5);
        a.set(0, 0, 500.0);
        let q = TenderQuant::new(8).quantize_activation(&a);
        assert!((q.get(20, 0) - 0.5).abs() < 0.01, "other group unaffected");
        assert!((q.get(8, 0) - 0.5).abs() > 0.01, "own group degraded");
    }

    #[test]
    fn names_match_table3_columns() {
        assert_eq!(TenderQuant::new(4).name(), "TD-4");
        assert_eq!(TenderQuant::new(8).name(), "TD-8");
    }
}
