//! BitVert's quantization: per-channel integers with bi-directional
//! bit-level binary pruning.
//!
//! BitVert (the BBS paper) guarantees ≥50% bit-level sparsity by pruning
//! bit columns whose removal changes values least, in whichever direction
//! (toward 0 or toward ±max) costs less. Table 3 only reports its
//! LLaMA-3-8B perplexity (6.24, close to the 8-bit methods). We emulate:
//! per-channel int8 body, then for each value prune its least-significant
//! set bit whenever that bit is "lonely" (fewer than half of its bit
//! column set in the channel) — a faithful, conservative stand-in for
//! binary pruning's small, structured rounding noise.

use crate::matrix::MatF32;
use crate::methods::QuantMethod;

/// Per-channel int8 plus bit-level binary pruning noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitVertQuant {
    bits: u32,
}

impl BitVertQuant {
    /// Creates the 8-bit method Table 3 reports.
    pub fn new() -> Self {
        Self { bits: 8 }
    }

    fn qmax(&self) -> f32 {
        ((1i32 << (self.bits - 1)) - 1) as f32
    }
}

impl Default for BitVertQuant {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantMethod for BitVertQuant {
    fn name(&self) -> &str {
        "BV"
    }

    fn weight_bits(&self) -> u32 {
        self.bits
    }

    fn act_bits(&self) -> u32 {
        self.bits
    }

    fn quantize_weight(&self, w: &MatF32) -> MatF32 {
        let qmax = self.qmax();
        let mut out = MatF32::zeros(w.rows(), w.cols());
        for r in 0..w.rows() {
            let row = w.row(r);
            let absmax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if absmax == 0.0 { 1.0 } else { absmax / qmax };
            // First pass: plain per-channel quantization.
            let q: Vec<i32> =
                row.iter().map(|&v| (v / scale).round().clamp(-qmax, qmax) as i32).collect();
            // Bit-column popularity within the channel.
            let mut col_pop = [0usize; 8];
            for &v in &q {
                let mag = v.unsigned_abs();
                for (b, pop) in col_pop.iter_mut().enumerate() {
                    if mag & (1 << b) != 0 {
                        *pop += 1;
                    }
                }
            }
            let half = q.len() / 2;
            for (c, &v) in q.iter().enumerate() {
                let mut mag = v.unsigned_abs();
                // Prune the LSB column where it is lonely (<50% populated)
                // — one quantization level of rounding noise per pruned
                // value, the "binary pruning" trade BBS makes to guarantee
                // bit-column sparsity.
                if mag & 1 == 1 && col_pop[0] < half {
                    mag &= !1;
                }
                let signed = if v < 0 { -(mag as i32) } else { mag as i32 };
                out.set(r, c, signed as f32 * scale);
            }
        }
        out
    }

    fn quantize_activation(&self, a: &MatF32) -> MatF32 {
        // Activations are kept at plain per-channel int8 (pruning applies
        // to the pre-processed weight side in BBS).
        let qmax = self.qmax();
        let mut out = MatF32::zeros(a.rows(), a.cols());
        for r in 0..a.rows() {
            let row = a.row(r);
            let absmax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if absmax == 0.0 { 1.0 } else { absmax / qmax };
            for (c, &v) in row.iter().enumerate() {
                let q = (v / scale).round().clamp(-qmax, qmax);
                out.set(r, c, q * scale);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::nmse;

    #[test]
    fn pruning_noise_is_small() {
        let w = MatF32::from_fn(16, 128, |r, c| ((r * 128 + c) as f32 * 0.017).sin() * 2.0);
        let q = BitVertQuant::new().quantize_weight(&w);
        let e = nmse(&w, &q);
        assert!(e > 0.0, "pruning should perturb something");
        assert!(e < 5e-3, "but stay near-lossless, got {e}");
    }

    #[test]
    fn pruning_only_lowers_magnitude() {
        let w = MatF32::from_fn(4, 64, |r, c| ((r + 7 * c) as f32 * 0.13).cos() * 3.0);
        let q = BitVertQuant::new().quantize_weight(&w);
        for (orig, pruned) in w.as_slice().iter().zip(q.as_slice()) {
            // |pruned| can differ from a plain int8 rounding by at most one
            // pruned bit, and pruning rounds toward zero.
            assert!(pruned.abs() <= orig.abs() + orig.abs() / 64.0 + 0.2);
        }
    }

    #[test]
    fn activation_path_is_plain_int8() {
        let a = MatF32::from_fn(8, 8, |r, c| (r as f32 - c as f32) * 0.4);
        let q = BitVertQuant::new().quantize_activation(&a);
        assert!(nmse(&a, &q) < 1e-4);
    }
}
