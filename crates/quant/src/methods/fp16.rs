//! FP16 reference "method": rounds `f32` to IEEE-754 binary16 precision.
//!
//! This is Table 3's FP16 column — the accuracy floor every quantization
//! method is measured against.

use crate::matrix::MatF32;
use crate::methods::QuantMethod;

/// Rounds every element to the nearest representable `f16` value
/// (round-to-nearest-even), then widens back to `f32`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fp16Reference;

impl Fp16Reference {
    /// Creates the FP16 reference method.
    pub fn new() -> Self {
        Self
    }
}

/// Converts an `f32` to the nearest `f16` and back, entirely in software
/// (no `half` dependency). Handles normals, subnormals, overflow to ±inf,
/// and preserves NaN.
pub fn f32_to_f16_round_trip(x: f32) -> f32 {
    let bits = x.to_bits();
    let sign = bits & 0x8000_0000;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN pass through.
        return x;
    }

    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        // Overflows f16 → ±inf.
        return f32::from_bits(sign | 0x7F80_0000);
    }
    if e >= -14 {
        // Normal f16: keep 10 mantissa bits with round-to-nearest-even.
        let shift = 13u32;
        let lsb = 1u32 << shift;
        let round_bit = lsb >> 1;
        let mut m = mant;
        let tail = m & (lsb - 1);
        m &= !(lsb - 1);
        if tail > round_bit || (tail == round_bit && (m & lsb) != 0) {
            m += lsb;
        }
        if m > 0x007F_FFFF {
            // Mantissa rounding overflowed into the exponent.
            let new_exp = exp + 1;
            if new_exp - 127 > 15 {
                return f32::from_bits(sign | 0x7F80_0000);
            }
            return f32::from_bits(sign | ((new_exp as u32) << 23));
        }
        return f32::from_bits(sign | ((exp as u32) << 23) | m);
    }
    if e < -25 {
        // Below smallest f16 subnormal → ±0.
        return f32::from_bits(sign);
    }
    // f16 subnormal: value = m_16 · 2^-24 with m_16 in 0..1024.
    let scaled = x.abs() * (1u64 << 24) as f32;
    let m16 = (scaled + 0.5).floor() as u32; // ties handled coarsely; fine at 2^-24 granularity
    let m16 = m16.min(1024);
    let mag = m16 as f32 / (1u64 << 24) as f32;
    if sign != 0 {
        -mag
    } else {
        mag
    }
}

impl QuantMethod for Fp16Reference {
    fn name(&self) -> &str {
        "FP16"
    }

    fn weight_bits(&self) -> u32 {
        16
    }

    fn act_bits(&self) -> u32 {
        16
    }

    fn quantize_weight(&self, w: &MatF32) -> MatF32 {
        MatF32::from_fn(w.rows(), w.cols(), |r, c| f32_to_f16_round_trip(w.get(r, c)))
    }

    fn quantize_activation(&self, a: &MatF32) -> MatF32 {
        self.quantize_weight(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_survive() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25] {
            assert_eq!(f32_to_f16_round_trip(v), v, "{v}");
        }
    }

    #[test]
    fn rounding_error_bounded() {
        // Relative error of f16 normals ≤ 2^-11.
        for i in 1..2000 {
            let v = i as f32 * 0.123;
            let r = f32_to_f16_round_trip(v);
            assert!(((r - v) / v).abs() <= 1.0 / 2048.0 + 1e-7, "{v} -> {r}");
        }
    }

    #[test]
    fn overflow_to_inf() {
        assert_eq!(f32_to_f16_round_trip(1e6), f32::INFINITY);
        assert_eq!(f32_to_f16_round_trip(-1e6), f32::NEG_INFINITY);
        // 65520 rounds up to 65536 which overflows f16.
        assert_eq!(f32_to_f16_round_trip(65520.0), f32::INFINITY);
    }

    #[test]
    fn tiny_values_flush_or_subnormal() {
        // Smallest f16 subnormal is 2^-24 ≈ 5.96e-8.
        let sub = f32_to_f16_round_trip(6e-8);
        assert!(sub > 0.0 && sub < 1e-7);
        assert_eq!(f32_to_f16_round_trip(1e-9), 0.0);
        assert_eq!(f32_to_f16_round_trip(-1e-9), -0.0);
    }

    #[test]
    fn nan_preserved() {
        assert!(f32_to_f16_round_trip(f32::NAN).is_nan());
    }

    #[test]
    fn method_is_near_identity_on_moderate_data() {
        let m = MatF32::from_fn(8, 8, |r, c| (r as f32 + 1.0) * 0.37 - c as f32 * 0.11);
        let q = Fp16Reference::new().quantize_weight(&m);
        for (a, b) in m.as_slice().iter().zip(q.as_slice()) {
            assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-6);
        }
    }
}
