//! ANT's quantization with group-wise extension.
//!
//! ANT (MICRO'22) uses a fixed-length adaptive numeric type ("flint") that
//! spends bits on exponent or mantissa depending on magnitude. The paper
//! modified ANT "to support group-wise quantization for a fair comparison"
//! (§5.4). We emulate the adaptive type as: per group of channels, pick
//! the per-group scale, then encode each value either as a plain integer
//! (small values) or with one fewer mantissa bit and a power-of-two
//! exponent reach (large values) — which is the accuracy-relevant essence
//! of flint: wider dynamic range at the same bit budget.

use crate::matrix::MatF32;
use crate::methods::QuantMethod;

/// Group-wise adaptive-type quantizer (`bits` total, group along rows for
/// activations / along columns for weights as in group-wise LLM PTQ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntQuant {
    bits: u32,
    group: usize,
}

impl AntQuant {
    /// Creates the method (the paper evaluates 8-bit with group 128).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `3..=16` (flint needs at least one tag
    /// bit) or `group` is zero.
    pub fn new(bits: u32, group: usize) -> Self {
        assert!((3..=16).contains(&bits), "bits must be in 3..=16");
        assert!(group > 0, "group must be non-zero");
        Self { bits, group }
    }

    fn qmax(&self) -> f32 {
        ((1i32 << (self.bits - 1)) - 1) as f32
    }

    /// Encodes one value given the group scale: small magnitudes use the
    /// full integer grid; the top octave uses a float-ish grid with half
    /// the mantissa resolution but reaching 2× further (flint's trade).
    fn encode(&self, v: f32, scale: f32) -> f32 {
        let qmax = self.qmax();
        let x = v / scale;
        if x.abs() <= qmax {
            (x.round()).clamp(-qmax, qmax) * scale
        } else {
            // Extended octave: step doubles, range reaches 2·qmax.
            let half = ((x / 2.0).round() * 2.0).clamp(-2.0 * qmax, 2.0 * qmax);
            half * scale
        }
    }

    fn quantize_groups(&self, t: &MatF32) -> MatF32 {
        let qmax = self.qmax();
        let mut out = MatF32::zeros(t.rows(), t.cols());
        for r in 0..t.rows() {
            let row = t.row(r);
            let mut c0 = 0;
            while c0 < row.len() {
                let c1 = (c0 + self.group).min(row.len());
                let absmax = row[c0..c1].iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                // Calibrate so the group's absmax lands in the extended
                // octave: scale covers absmax/2 on the integer grid.
                let scale =
                    if absmax == 0.0 { 1.0 } else { (absmax / 2.0).max(f32::MIN_POSITIVE) / qmax };
                for c in c0..c1 {
                    out.set(r, c, self.encode(t.get(r, c), scale));
                }
                c0 = c1;
            }
        }
        out
    }
}

impl QuantMethod for AntQuant {
    fn name(&self) -> &str {
        "ANT"
    }

    fn weight_bits(&self) -> u32 {
        self.bits
    }

    fn act_bits(&self) -> u32 {
        self.bits
    }

    fn quantize_weight(&self, w: &MatF32) -> MatF32 {
        self.quantize_groups(w)
    }

    fn quantize_activation(&self, a: &MatF32) -> MatF32 {
        self.quantize_groups(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::nmse;
    use crate::methods::BitFusionQuant;

    #[test]
    fn group_isolation() {
        // An outlier in group 0 must not destroy group 1's resolution.
        let mut a = MatF32::from_fn(1, 256, |_, c| ((c as f32) * 0.05).sin() * 0.3);
        a.set(0, 0, 100.0);
        let q = AntQuant::new(8, 128).quantize_activation(&a);
        for c in 128..256 {
            assert!((q.get(0, c) - a.get(0, c)).abs() < 0.01, "col {c}");
        }
    }

    #[test]
    fn beats_per_tensor_on_outlier_data() {
        let mut w = MatF32::from_fn(8, 256, |r, c| ((r * 256 + c) as f32 * 0.031).sin());
        w.set(3, 40, 250.0);
        let ant = AntQuant::new(8, 128).quantize_weight(&w);
        let bf = BitFusionQuant::new(8).quantize_weight(&w);
        assert!(nmse(&w, &ant) < nmse(&w, &bf) / 4.0);
    }

    #[test]
    fn extended_octave_reaches_absmax() {
        let a = MatF32::from_rows(&[&[10.0, 0.1, -0.2, 0.05]]);
        let q = AntQuant::new(8, 4).quantize_activation(&a);
        // The absmax (10.0) is representable within ~1 extended step.
        assert!((q.get(0, 0) - 10.0).abs() / 10.0 < 0.02);
    }

    #[test]
    #[should_panic(expected = "group must be non-zero")]
    fn zero_group_rejected() {
        let _ = AntQuant::new(8, 0);
    }
}
