//! OliVe's quantization: outlier-victim pair encoding.
//!
//! OliVe (ISCA'23, by the same first author) quantizes the tensor body at
//! low precision and handles the rare large outliers by *sacrificing the
//! adjacent value* (the "victim"): the outlier is stored with an extended
//! (power-of-two "abfloat"-style) encoding in the two slots, and the
//! victim's value is dropped to zero. This keeps memory layout aligned and
//! hardware simple while preserving the outliers that dominate LLM
//! accuracy.
//!
//! This emulation reproduces that arithmetic: body values get per-channel
//! symmetric int quantization calibrated on the non-outlier body, outliers
//! are snapped to a power-of-two grid (sign · 2^e with e in a small range),
//! and each outlier's right neighbor is zeroed.

use crate::matrix::MatF32;
use crate::methods::QuantMethod;

/// Outlier-victim pair quantizer (8-bit body by default, as Table 3 runs
/// it on LLaMA FC layers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OliveQuant {
    bits: u32,
    /// Multiple of the body absmax above which a value counts as an
    /// outlier. OliVe finds <0.1% of values qualify on LLMs.
    outlier_threshold_sigma: f32,
}

impl OliveQuant {
    /// Creates the 8-bit outlier-victim method with the default outlier
    /// threshold (4 standard deviations of the channel body).
    pub fn new() -> Self {
        Self { bits: 8, outlier_threshold_sigma: 4.0 }
    }

    /// Creates the method at an explicit precision and threshold.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16` or the threshold is not
    /// positive.
    pub fn with_params(bits: u32, outlier_threshold_sigma: f32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        assert!(outlier_threshold_sigma > 0.0, "threshold must be positive");
        Self { bits, outlier_threshold_sigma }
    }

    fn qmax(&self) -> f32 {
        ((1i32 << (self.bits - 1)) - 1) as f32
    }

    fn quantize_rowwise(&self, t: &MatF32) -> MatF32 {
        let qmax = self.qmax();
        let mut out = MatF32::zeros(t.rows(), t.cols());
        for r in 0..t.rows() {
            let row = t.row(r);
            if row.is_empty() {
                continue;
            }
            // Channel statistics for outlier detection.
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 =
                row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
            let sigma = var.sqrt();
            let thr = self.outlier_threshold_sigma * sigma.max(f32::MIN_POSITIVE);

            // Body scale calibrated on non-outliers only.
            let body_max = row
                .iter()
                .filter(|&&v| (v - mean).abs() <= thr)
                .fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if body_max == 0.0 { 1.0 } else { body_max / qmax };

            let mut c = 0;
            while c < row.len() {
                let v = row[c];
                if (v - mean).abs() > thr {
                    // Outlier: adaptive-biased-float encoding (4-bit
                    // mantissa, wide exponent), victim (next element)
                    // zeroed.
                    out.set(r, c, abfloat_snap(v));
                    if c + 1 < row.len() {
                        out.set(r, c + 1, 0.0);
                        c += 2;
                        continue;
                    }
                } else {
                    let q = (v / scale).round().clamp(-qmax, qmax);
                    out.set(r, c, q * scale);
                }
                c += 1;
            }
        }
        out
    }
}

impl Default for OliveQuant {
    fn default() -> Self {
        Self::new()
    }
}

/// Snaps `v` onto OliVe's "adaptive biased float" grid: sign · (1 + m/8) ·
/// 2^e with a 3-bit mantissa `m` and unbounded exponent reach (relative
/// error ≤ 1/16 ≈ 6%, typically ~3%). Outliers keep almost all of their
/// magnitude, which is the whole point of the outlier-victim trade.
fn abfloat_snap(v: f32) -> f32 {
    if v == 0.0 {
        return 0.0;
    }
    let mag = v.abs();
    let e = mag.log2().floor();
    let base = e.exp2();
    let frac = mag / base; // in [1, 2)
    let m = (frac * 8.0).round() / 8.0;
    v.signum() * m * base
}

impl QuantMethod for OliveQuant {
    fn name(&self) -> &str {
        "OL"
    }

    fn weight_bits(&self) -> u32 {
        self.bits
    }

    fn act_bits(&self) -> u32 {
        self.bits
    }

    fn quantize_weight(&self, w: &MatF32) -> MatF32 {
        self.quantize_rowwise(w)
    }

    fn quantize_activation(&self, a: &MatF32) -> MatF32 {
        // Activations are quantized along feature rows too; OliVe's
        // hardware treats both symmetrically.
        self.quantize_rowwise(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::nmse;
    use crate::methods::BitFusionQuant;

    #[test]
    fn abfloat_snap_behaviour() {
        assert_eq!(abfloat_snap(0.0), 0.0);
        assert_eq!(abfloat_snap(8.0), 8.0);
        assert_eq!(abfloat_snap(-8.0), -8.0);
        // Relative error of the 3-bit-mantissa grid is ≤ 1/16.
        for v in [3.3f32, 100.0, 300.0, -77.7, 1e4] {
            let s = abfloat_snap(v);
            assert!(((s - v) / v).abs() <= 1.0 / 16.0, "{v} -> {s}");
        }
    }

    #[test]
    fn outliers_preserved_body_fine() {
        // Body large enough that per-tensor resolution loss dominates the
        // comparison (as in real layers, where outliers are <0.1%).
        let mut w = MatF32::from_fn(16, 256, |r, c| ((r * 256 + c) as f32 * 0.37).sin());
        w.set(0, 10, 300.0);
        let q = OliveQuant::new().quantize_weight(&w);
        // Outlier keeps almost all of its magnitude.
        assert!((q.get(0, 10) - 300.0).abs() <= 300.0 / 16.0);
        // Victim is zeroed.
        assert_eq!(q.get(0, 11), 0.0);
        // Body stays fine-grained: much better than per-tensor int8.
        let bf = BitFusionQuant::new(8).quantize_weight(&w);
        assert!(nmse(&w, &q) < nmse(&w, &bf) / 2.0);
    }

    #[test]
    fn clean_tensor_near_lossless() {
        let w = MatF32::from_fn(8, 32, |r, c| ((r + c) as f32 * 0.21).cos());
        let q = OliveQuant::new().quantize_weight(&w);
        assert!(nmse(&w, &q) < 1e-3);
    }

    #[test]
    fn empty_rows_no_panic() {
        let w = MatF32::zeros(3, 0);
        let q = OliveQuant::new().quantize_weight(&w);
        assert_eq!(q.rows(), 3);
        assert_eq!(q.cols(), 0);
    }
}
