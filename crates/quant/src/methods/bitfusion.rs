//! BitFusion's quantization: plain per-tensor symmetric integers.
//!
//! BitFusion (ISCA'18) composes 2-bit PEs into arbitrary precisions but
//! applies no outlier handling and no fine granularity — the paper notes
//! "due to the lack of optimization for quantization, BitFusion exhibits a
//! larger gap compared to the FP16 results" (§5.4). Per-tensor absmax
//! reproduces exactly that gap on outlier-heavy tensors.

use crate::matrix::MatF32;
use crate::methods::QuantMethod;
use crate::quantize::fake_quantize;
use crate::scheme::{Granularity, QuantScheme};

/// Per-tensor symmetric `bits`-bit quantization for both weights and
/// activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFusionQuant {
    bits: u32,
}

impl BitFusionQuant {
    /// Creates the method at the given bit width (the paper evaluates 8-bit
    /// for FC layers and 16-bit for attention).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16`.
    pub fn new(bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        Self { bits }
    }
}

impl QuantMethod for BitFusionQuant {
    fn name(&self) -> &str {
        "BF"
    }

    fn weight_bits(&self) -> u32 {
        self.bits
    }

    fn act_bits(&self) -> u32 {
        self.bits
    }

    fn quantize_weight(&self, w: &MatF32) -> MatF32 {
        fake_quantize(w, QuantScheme::new(self.bits, Granularity::PerTensor))
    }

    fn quantize_activation(&self, a: &MatF32) -> MatF32 {
        fake_quantize(a, QuantScheme::new(self.bits, Granularity::PerTensor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::nmse;

    #[test]
    fn outliers_crush_per_tensor_resolution() {
        // One 1000x outlier forces the whole tensor onto a coarse grid.
        let mut w = MatF32::from_fn(16, 16, |r, c| ((r * 16 + c) as f32).sin());
        w.set(0, 0, 1000.0);
        let q = BitFusionQuant::new(8).quantize_weight(&w);
        // Everything except the outlier collapses toward zero…
        let body_err = nmse(&w, &q);
        assert!(body_err > 1e-4, "per-tensor int8 should visibly hurt, got {body_err}");
        // …while without the outlier int8 per-tensor is near-lossless.
        let clean = MatF32::from_fn(16, 16, |r, c| ((r * 16 + c) as f32).sin());
        let qc = BitFusionQuant::new(8).quantize_weight(&clean);
        assert!(nmse(&clean, &qc) < 1e-4);
    }

    #[test]
    fn bits_reported() {
        let m = BitFusionQuant::new(16);
        assert_eq!(m.weight_bits(), 16);
        assert_eq!(m.act_bits(), 16);
        assert_eq!(m.name(), "BF");
    }
}
