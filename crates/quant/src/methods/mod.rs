//! Emulated quantization methods of the paper's accuracy study (Table 3).
//!
//! Each baseline accelerator pairs with a quantization algorithm; Table 3
//! compares their LLaMA/Wikitext perplexity. This module reproduces the
//! *algorithms* (per-tensor INT8, power-of-two sub-tensor scales,
//! outlier-victim pairs, adaptive group-wise types, QServe-style W4A8) so
//! the harness can rank them on synthetic LLM-like tensors — the proxy
//! substitution documented in DESIGN.md §3.
//!
//! All methods are *fake quantizers*: they map an FP32 tensor to the FP32
//! tensor a model would effectively see after quantize→dequantize. Accuracy
//! is then the GEMM-output error versus the unquantized reference.

mod ant;
mod bitfusion;
mod bitvert;
mod fp16;
mod olive;
mod taquant;
mod tender;

pub use ant::AntQuant;
pub use bitfusion::BitFusionQuant;
pub use bitvert::BitVertQuant;
pub use fp16::Fp16Reference;
pub use olive::OliveQuant;
pub use taquant::TaQuant;
pub use tender::TenderQuant;

use crate::error::{nmse, sqnr_db};
use crate::matrix::{gemm_f32, MatF32};

/// A fake quantization method: maps tensors to their effectively-quantized
/// versions.
///
/// The trait is object-safe so the Table 3 harness can iterate a
/// `Vec<Box<dyn QuantMethod>>`.
pub trait QuantMethod {
    /// Short display name matching the paper's column headers
    /// (e.g. `"TD-4"`, `"BF"`, `"OL"`, `"ANT"`, `"TA"`).
    fn name(&self) -> &str;

    /// Weight bit-width this method stores.
    fn weight_bits(&self) -> u32;

    /// Activation bit-width this method stores.
    fn act_bits(&self) -> u32;

    /// Fake-quantizes a weight matrix (shape `N×K`, rows = output channels).
    fn quantize_weight(&self, w: &MatF32) -> MatF32;

    /// Fake-quantizes an activation matrix (shape `K×M`).
    fn quantize_activation(&self, a: &MatF32) -> MatF32;

    /// Fake-quantizes a (weight, activation) pair jointly.
    ///
    /// The default forwards to the two independent methods. Methods that
    /// ride a smoothing/scale-migration step (QServe applies
    /// SmoothQuant-style migration before group quantization, which is the
    /// recipe TransArray uses, §5.4) override this to co-transform the pair
    /// — the transformation is exact (`w·diag(s) · diag(s)⁻¹·a = w·a`), so
    /// it changes only quantization error, never the ideal product.
    fn quantize_pair(&self, w: &MatF32, a: &MatF32) -> (MatF32, MatF32) {
        (self.quantize_weight(w), self.quantize_activation(a))
    }
}

/// Outcome of evaluating one method on one (weight, activation) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodReport {
    /// Method display name.
    pub name: String,
    /// Weight / activation bit widths.
    pub weight_bits: u32,
    /// Activation bit width.
    pub act_bits: u32,
    /// Normalized MSE of the quantized GEMM output vs FP32 reference.
    pub output_nmse: f64,
    /// SQNR (dB) of the quantized GEMM output.
    pub output_sqnr_db: f64,
    /// NMSE of the weight tensor itself.
    pub weight_nmse: f64,
}

/// Runs `method` on a (weight, activation) pair and reports output error
/// against the FP32 GEMM.
///
/// # Panics
///
/// Panics if `w.cols() != a.rows()`.
pub fn evaluate_method(method: &dyn QuantMethod, w: &MatF32, a: &MatF32) -> MethodReport {
    let reference = gemm_f32(w, a);
    let (wq, aq) = method.quantize_pair(w, a);
    let out = gemm_f32(&wq, &aq);
    MethodReport {
        name: method.name().to_owned(),
        weight_bits: method.weight_bits(),
        act_bits: method.act_bits(),
        output_nmse: nmse(&reference, &out),
        output_sqnr_db: sqnr_db(&reference, &out),
        weight_nmse: nmse(w, &wq),
    }
}

/// The full Table 3 method roster, in the paper's column order:
/// `TD-4, BF, OL, TD-8, BV, ANT, TA(W4A8), TA(W8A8), FP16`.
pub fn table3_roster() -> Vec<Box<dyn QuantMethod>> {
    vec![
        Box::new(TenderQuant::new(4)),
        Box::new(BitFusionQuant::new(8)),
        Box::new(OliveQuant::new()),
        Box::new(TenderQuant::new(8)),
        Box::new(BitVertQuant::new()),
        Box::new(AntQuant::new(8, 128)),
        Box::new(TaQuant::new(4, 8, 128)),
        Box::new(TaQuant::new(8, 8, 128)),
        Box::new(Fp16Reference::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatF32;

    /// Deterministic Gaussian-ish matrix (Irwin–Hall sum of uniforms), no
    /// external RNG needed.
    fn gaussianish(rows: usize, cols: usize, seed: u64) -> MatF32 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let mut s = 0.0f32;
            for _ in 0..4 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                s += ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
            }
            s
        };
        MatF32::from_fn(rows, cols, |_, _| next())
    }

    /// LLM-like (weight, activation) pair with the structure the PTQ
    /// literature documents (SmoothQuant §3, and this paper §5.9):
    /// activations carry a few 40× outlier *feature channels*; weights
    /// have rare mild (6σ) element outliers.
    fn llm_pair(n: usize, k: usize, m: usize) -> (MatF32, MatF32) {
        let mut w = gaussianish(n, k, 7);
        let mut a = gaussianish(k, m, 13);
        for &f in &[3usize, k / 2 + 1] {
            for c in 0..m {
                let v = a.get(f, c) * 40.0;
                a.set(f, c, v);
            }
        }
        // Rare mild weight element outliers (~0.1%, 6σ).
        let total = n * k;
        let mut idx = 17usize;
        while idx < total {
            let (r, c) = (idx / k, idx % k);
            let v = if w.get(r, c) < 0.0 { -6.0 } else { 6.0 };
            w.set(r, c, v);
            idx += 997;
        }
        (w, a)
    }

    #[test]
    fn roster_has_paper_order() {
        let names: Vec<String> = table3_roster().iter().map(|m| m.name().to_owned()).collect();
        assert_eq!(names, ["TD-4", "BF", "OL", "TD-8", "BV", "ANT", "TA-W4A8", "TA-W8A8", "FP16"]);
    }

    #[test]
    fn table3_ordering_holds_on_llmish_data() {
        let (w, a) = llm_pair(64, 64, 32);
        let reports: Vec<MethodReport> =
            table3_roster().iter().map(|m| evaluate_method(m.as_ref(), &w, &a)).collect();
        let get = |name: &str| reports.iter().find(|r| r.name == name).unwrap().output_nmse;
        // The qualitative structure of Table 3:
        // Tender-4 is catastrophic; BitFusion (per-tensor) is clearly worse
        // than the outlier-aware / group-wise 8-bit methods; FP16 is best.
        assert!(get("TD-4") > 10.0 * get("BF"), "TD-4 must be catastrophic");
        assert!(get("BF") > 3.0 * get("OL"), "BF must lag outlier-aware OL");
        assert!(get("BF") > 3.0 * get("ANT"), "BF must lag group-wise ANT");
        assert!(get("FP16") < get("ANT"), "FP16 is the floor");
        assert!(get("TA-W8A8") <= get("TA-W4A8"), "more weight bits cannot hurt");
        // 8-bit outlier-aware / group-wise methods are near-lossless.
        for name in ["OL", "ANT", "TA-W8A8"] {
            let r = reports.iter().find(|r| r.name == name).unwrap();
            assert!(r.output_sqnr_db > 25.0, "{name} sqnr={}", r.output_sqnr_db);
        }
        // 4-bit group-wise weights stay usable (the W4A8 point of QServe).
        let ta4 = reports.iter().find(|r| r.name == "TA-W4A8").unwrap();
        assert!(ta4.output_sqnr_db > 12.0, "TA-W4A8 sqnr={}", ta4.output_sqnr_db);
    }

    #[test]
    fn evaluate_reports_shape_fields() {
        let w = gaussianish(8, 8, 1);
        let a = gaussianish(8, 4, 2);
        let r = evaluate_method(&TaQuant::new(4, 8, 4), &w, &a);
        assert_eq!(r.weight_bits, 4);
        assert_eq!(r.act_bits, 8);
        assert!(r.output_nmse.is_finite());
    }
}
