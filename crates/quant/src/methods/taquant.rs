//! TransArray's quantization: QServe-style group-wise W4A8 / W8A8 with
//! SmoothQuant-style scale migration.
//!
//! The paper implements TransArray inside QServe (§5.4): weights at 4 or 8
//! bits with group-128 symmetric scales, activations at 8 bits. QServe's
//! recipe first *migrates* activation outliers into the weights via an
//! exact per-feature rescaling (`w·diag(s) , diag(s)⁻¹·a`, SmoothQuant's
//! α=0.5 rule) — without it, W4 group quantization drowns the small weight
//! columns that pair with outlier activation features. TransArray itself is
//! "generalized integer-based … without special requirements", which is
//! why it can ride the best available PTQ recipe while the datatype-bound
//! baselines cannot.

use crate::matrix::MatF32;
use crate::methods::QuantMethod;
use crate::quantize::fake_quantize;
use crate::scheme::{Granularity, QuantScheme};

/// Group-wise weight quantization + per-channel activation quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaQuant {
    weight_bits: u32,
    act_bits: u32,
    group: usize,
}

impl TaQuant {
    /// Creates the method (`weight_bits` ∈ {4, 8} in the paper, `act_bits`
    /// = 8, `group` = 128).
    ///
    /// # Panics
    ///
    /// Panics if bit widths are outside `2..=16` or `group` is zero.
    pub fn new(weight_bits: u32, act_bits: u32, group: usize) -> Self {
        assert!((2..=16).contains(&weight_bits), "weight bits must be in 2..=16");
        assert!((2..=16).contains(&act_bits), "act bits must be in 2..=16");
        assert!(group > 0, "group must be non-zero");
        Self { weight_bits, act_bits, group }
    }
}

impl QuantMethod for TaQuant {
    fn name(&self) -> &str {
        match (self.weight_bits, self.act_bits) {
            (4, 8) => "TA-W4A8",
            (8, 8) => "TA-W8A8",
            _ => "TA",
        }
    }

    fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    fn act_bits(&self) -> u32 {
        self.act_bits
    }

    fn quantize_weight(&self, w: &MatF32) -> MatF32 {
        fake_quantize(w, QuantScheme::new(self.weight_bits, Granularity::Group(self.group)))
    }

    fn quantize_activation(&self, a: &MatF32) -> MatF32 {
        fake_quantize(a, QuantScheme::new(self.act_bits, Granularity::PerChannel))
    }

    fn quantize_pair(&self, w: &MatF32, a: &MatF32) -> (MatF32, MatF32) {
        let (ws, as_) = smooth_migrate(w, a, 0.5);
        (self.quantize_weight(&ws), self.quantize_activation(&as_))
    }
}

/// SmoothQuant scale migration: for each shared feature `k`, rescale
/// `w[:,k] *= s_k` and `a[k,:] /= s_k` with
/// `s_k = absmax(a[k,:])^α / absmax(w[:,k])^(1-α)`.
///
/// The transformation is mathematically exact on the product; it only
/// redistributes dynamic range so both tensors quantize well.
///
/// # Panics
///
/// Panics if `w.cols() != a.rows()`.
pub fn smooth_migrate(w: &MatF32, a: &MatF32, alpha: f32) -> (MatF32, MatF32) {
    assert_eq!(w.cols(), a.rows(), "w/a feature dimensions must agree");
    let k = w.cols();
    let mut scales = vec![1.0f32; k];
    for (f, s) in scales.iter_mut().enumerate() {
        let amax = (0..a.cols()).fold(0.0f32, |m, c| m.max(a.get(f, c).abs()));
        let wmax = (0..w.rows()).fold(0.0f32, |m, r| m.max(w.get(r, f).abs()));
        if amax > 0.0 && wmax > 0.0 {
            *s = (amax.powf(alpha) / wmax.powf(1.0 - alpha)).max(f32::MIN_POSITIVE);
        }
    }
    let ws = MatF32::from_fn(w.rows(), w.cols(), |r, c| w.get(r, c) * scales[c]);
    let as_ = MatF32::from_fn(a.rows(), a.cols(), |r, c| a.get(r, c) / scales[r]);
    (ws, as_)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::nmse;
    use crate::methods::BitFusionQuant;

    #[test]
    fn w4_group_beats_w8_per_tensor_with_outliers() {
        let mut w = MatF32::from_fn(8, 512, |r, c| ((r * 512 + c) as f32 * 0.013).sin());
        w.set(2, 100, 200.0);
        let ta4 = TaQuant::new(4, 8, 128).quantize_weight(&w);
        let bf8 = BitFusionQuant::new(8).quantize_weight(&w);
        assert!(
            nmse(&w, &ta4) < nmse(&w, &bf8),
            "group-wise int4 should beat per-tensor int8 on outlier data"
        );
    }

    #[test]
    fn w8_group_near_lossless() {
        let w = MatF32::from_fn(8, 256, |r, c| ((r + c * 3) as f32 * 0.07).cos() * 1.5);
        let q = TaQuant::new(8, 8, 128).quantize_weight(&w);
        assert!(nmse(&w, &q) < 1e-4);
    }

    #[test]
    fn names_match_table3() {
        assert_eq!(TaQuant::new(4, 8, 128).name(), "TA-W4A8");
        assert_eq!(TaQuant::new(8, 8, 128).name(), "TA-W8A8");
    }

    #[test]
    fn smoothing_is_exact_on_product() {
        use crate::matrix::gemm_f32;
        let w = MatF32::from_fn(6, 8, |r, c| ((r * 8 + c) as f32 * 0.7).sin());
        let a = MatF32::from_fn(8, 5, |r, c| ((r * 5 + c) as f32 * 0.3).cos() * 2.0);
        let (ws, as_) = smooth_migrate(&w, &a, 0.5);
        let ref_out = gemm_f32(&w, &a);
        let smooth_out = gemm_f32(&ws, &as_);
        for (x, y) in ref_out.as_slice().iter().zip(smooth_out.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn smoothing_balances_outlier_features() {
        // Feature 2 is a 40x activation outlier with tiny weights.
        let mut w = MatF32::from_fn(4, 8, |r, c| ((r + c) as f32 * 0.31).sin());
        let mut a = MatF32::from_fn(8, 4, |r, c| ((r * 4 + c) as f32 * 0.17).cos());
        for c in 0..4 {
            let v = a.get(2, c) * 40.0;
            a.set(2, c, v);
        }
        for r in 0..4 {
            let v = w.get(r, 2) / 8.0;
            w.set(r, 2, v);
        }
        let (ws, as_) = smooth_migrate(&w, &a, 0.5);
        let a_out_max = (0..4).fold(0.0f32, |m, c| m.max(as_.get(2, c).abs()));
        let a_body_max = (0..4).fold(0.0f32, |m, c| m.max(as_.get(0, c).abs()));
        // Outlier feature magnitude comes down to the body's ballpark.
        assert!(a_out_max < 8.0 * a_body_max, "{a_out_max} vs {a_body_max}");
        assert!(ws.abs_max() < 10.0 * w.abs_max());
    }
}
