//! Calibration, quantization, and dequantization.
//!
//! Implements the symmetric absmax quantizer the paper's pipeline assumes
//! (Fig. 2: FP16 → Int4/Int8), at any [`Granularity`]. Scales are chosen so
//! the largest-magnitude element of a scale group maps to `qmax`.

use crate::matrix::{MatF32, MatI32};
use crate::scheme::{Granularity, QuantParams, QuantScheme};

/// Calibrates absmax scales for `tensor` under `scheme`.
///
/// Groups whose absmax is zero receive scale 1.0 so dequantization stays
/// well-defined.
///
/// # Examples
///
/// ```
/// use ta_quant::{calibrate, Granularity, MatF32, QuantScheme};
///
/// let w = MatF32::from_rows(&[&[1.0, -2.0], &[0.5, 0.25]]);
/// let scheme = QuantScheme::new(8, Granularity::PerChannel);
/// let params = calibrate(&w, scheme);
/// assert!((params.scale_at(0, 0) - 2.0 / 127.0).abs() < 1e-7);
/// ```
pub fn calibrate(tensor: &MatF32, scheme: QuantScheme) -> QuantParams {
    let qmax = scheme.qmax() as f32;
    match scheme.granularity() {
        Granularity::PerTensor => {
            let m = tensor.abs_max();
            let scale = if m == 0.0 { 1.0 } else { m / qmax };
            QuantParams::new(scheme, tensor.rows(), 1, vec![scale])
        }
        Granularity::PerChannel => {
            let scales = (0..tensor.rows())
                .map(|r| {
                    let m = tensor.row(r).iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    if m == 0.0 {
                        1.0
                    } else {
                        m / qmax
                    }
                })
                .collect();
            QuantParams::new(scheme, tensor.rows(), 1, scales)
        }
        Granularity::Group(g) => {
            let gpr = scheme.granularity().groups_per_row(tensor.cols());
            let mut scales = Vec::with_capacity(tensor.rows() * gpr);
            for r in 0..tensor.rows() {
                let row = tensor.row(r);
                for gi in 0..gpr {
                    let lo = gi * g;
                    let hi = ((gi + 1) * g).min(row.len());
                    let m = row[lo..hi].iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    scales.push(if m == 0.0 { 1.0 } else { m / qmax });
                }
            }
            QuantParams::new(scheme, tensor.rows(), gpr, scales)
        }
    }
}

/// Quantizes `tensor` with precomputed `params` (round-to-nearest, clamp to
/// the scheme's restricted range).
///
/// # Panics
///
/// Panics if `params` were calibrated for a different number of rows.
pub fn quantize(tensor: &MatF32, params: &QuantParams) -> MatI32 {
    assert_eq!(tensor.rows(), params.rows(), "params calibrated for different row count");
    let scheme = params.scheme();
    let (qmin, qmax) = (scheme.qmin(), scheme.qmax());
    MatI32::from_fn(tensor.rows(), tensor.cols(), |r, c| {
        let s = params.scale_at(r, c);
        let q = (tensor.get(r, c) / s).round() as i64;
        q.clamp(qmin as i64, qmax as i64) as i32
    })
}

/// Convenience: calibrate + quantize in one call.
pub fn quantize_absmax(tensor: &MatF32, scheme: QuantScheme) -> (MatI32, QuantParams) {
    let params = calibrate(tensor, scheme);
    let q = quantize(tensor, &params);
    (q, params)
}

/// Dequantizes back to `f32` (`x̂ = q · scale`).
pub fn dequantize(q: &MatI32, params: &QuantParams) -> MatF32 {
    MatF32::from_fn(q.rows(), q.cols(), |r, c| q.get(r, c) as f32 * params.scale_at(r, c))
}

/// Fake-quantization: quantize then dequantize, returning the `f32` tensor
/// a downstream consumer would effectively see. The standard tool for
/// accuracy studies (Table 3).
pub fn fake_quantize(tensor: &MatF32, scheme: QuantScheme) -> MatF32 {
    let (q, params) = quantize_absmax(tensor, scheme);
    dequantize(&q, &params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32, eps: f32) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn per_tensor_roundtrip_error_bounded() {
        let w = MatF32::from_fn(8, 8, |r, c| ((r * 8 + c) as f32 - 31.5) / 7.0);
        let scheme = QuantScheme::new(8, Granularity::PerTensor);
        let fq = fake_quantize(&w, scheme);
        let scale = w.abs_max() / 127.0;
        for (a, b) in w.as_slice().iter().zip(fq.as_slice()) {
            assert!(close(*a, *b, scale * 0.5 + 1e-6), "{a} vs {b}");
        }
    }

    #[test]
    fn absmax_maps_to_qmax() {
        let w = MatF32::from_rows(&[&[-4.0, 1.0, 2.0]]);
        let scheme = QuantScheme::new(4, Granularity::PerTensor);
        let (q, _) = quantize_absmax(&w, scheme);
        assert_eq!(q.get(0, 0), -7);
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let w = MatF32::zeros(4, 4);
        let scheme = QuantScheme::new(8, Granularity::Group(2));
        let (q, params) = quantize_absmax(&w, scheme);
        assert!(q.as_slice().iter().all(|&v| v == 0));
        assert!(params.scales().iter().all(|&s| s == 1.0));
        assert_eq!(dequantize(&q, &params).as_slice(), w.as_slice());
    }

    #[test]
    fn per_channel_isolates_rows() {
        // A huge outlier in row 0 must not affect row 1's resolution.
        let w = MatF32::from_rows(&[&[1000.0, 1.0], &[0.5, -0.5]]);
        let scheme = QuantScheme::new(8, Granularity::PerChannel);
        let fq = fake_quantize(&w, scheme);
        assert!(close(fq.get(1, 0), 0.5, 0.01));
        assert!(close(fq.get(1, 1), -0.5, 0.01));
        // With per-tensor the small row would collapse to zero.
        let fq_pt = fake_quantize(&w, QuantScheme::new(8, Granularity::PerTensor));
        assert_eq!(fq_pt.get(1, 0), 0.0);
    }

    #[test]
    fn group_scales_are_local() {
        let w = MatF32::from_rows(&[&[100.0, 100.0, 0.125, -0.125]]);
        let scheme = QuantScheme::new(8, Granularity::Group(2));
        let fq = fake_quantize(&w, scheme);
        assert!(close(fq.get(0, 2), 0.125, 0.002));
        assert!(close(fq.get(0, 3), -0.125, 0.002));
    }

    #[test]
    fn group_edge_partial_group() {
        // 5 columns with group 2 → 3 groups, last group has one element.
        let w = MatF32::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0]]);
        let scheme = QuantScheme::new(8, Granularity::Group(2));
        let params = calibrate(&w, scheme);
        assert_eq!(params.groups_per_row(), 3);
        assert!(close(params.scale_at(0, 4), 5.0 / 127.0, 1e-7));
    }

    #[test]
    fn quantized_values_fit_bits() {
        let w = MatF32::from_fn(16, 16, |r, c| ((r as f32).sin() * 3.0 + (c as f32).cos()) * 7.3);
        for bits in [2u32, 3, 4, 8, 12, 16] {
            let scheme = QuantScheme::new(bits, Granularity::PerChannel);
            let (q, _) = quantize_absmax(&w, scheme);
            assert!(q.fits_signed_bits(bits), "bits={bits}");
        }
    }

    #[test]
    #[should_panic(expected = "different row count")]
    fn quantize_with_mismatched_params_panics() {
        let w = MatF32::zeros(2, 2);
        let scheme = QuantScheme::new(8, Granularity::PerChannel);
        let params = calibrate(&w, scheme);
        let other = MatF32::zeros(3, 2);
        let _ = quantize(&other, &params);
    }
}
