//! # ta-quant — quantization substrate for the Transitive Array reproduction
//!
//! Implements the quantization layer the paper's pipeline sits on (Fig. 2):
//! FP32/FP16 tensors → `S`-bit signed integers at per-tensor, per-channel,
//! or group-wise granularity — plus the emulated quantization *methods* of
//! the accuracy study (Table 3): BitFusion, ANT, OliVe, Tender, BitVert,
//! and the QServe-style W4A8/W8A8 recipe TransArray rides.
//!
//! ## Quick example
//!
//! ```
//! use ta_quant::{quantize_absmax, dequantize, Granularity, MatF32, QuantScheme};
//!
//! let w = MatF32::from_rows(&[&[1.2, -3.4, 0.5, 2.2]]);
//! let scheme = QuantScheme::new(8, Granularity::PerChannel);
//! let (q, params) = quantize_absmax(&w, scheme);
//! let back = dequantize(&q, &params);
//! assert!((back.get(0, 1) - -3.4).abs() < 0.05);
//! ```
//!
//! The integer matrices produced here feed `ta-bitslice`, which decomposes
//! them into the binary planes the Transitive Array operates on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod matrix;
pub mod methods;
mod quantize;
mod scheme;

pub use error::{cosine_similarity, max_abs_err, mse, nmse, pseudo_perplexity, sqnr_db};
pub use matrix::{gemm_f32, gemm_i32, MatF32, MatI32};
pub use methods::{evaluate_method, table3_roster, MethodReport, QuantMethod};
pub use quantize::{calibrate, dequantize, fake_quantize, quantize, quantize_absmax};
pub use scheme::{Granularity, QuantParams, QuantScheme};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn mat_strategy(max_dim: usize) -> impl Strategy<Value = MatF32> {
        (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-100.0f32..100.0, r * c)
                .prop_map(move |v| MatF32::from_vec(r, c, v))
        })
    }

    proptest! {
        /// Quantize→dequantize error is bounded by half an LSB per element.
        #[test]
        fn quant_roundtrip_error_bounded(m in mat_strategy(12), bits in 4u32..=12) {
            let scheme = QuantScheme::new(bits, Granularity::PerChannel);
            let (q, params) = quantize_absmax(&m, scheme);
            let back = dequantize(&q, &params);
            for r in 0..m.rows() {
                let scale = params.scale_at(r, 0);
                for c in 0..m.cols() {
                    let err = (m.get(r, c) - back.get(r, c)).abs();
                    prop_assert!(err <= scale * 0.5 + 1e-5,
                        "err {err} scale {scale} bits {bits}");
                }
            }
        }

        /// Quantized values always fit the declared signed bit width.
        #[test]
        fn quant_values_fit(m in mat_strategy(10), bits in 2u32..=16) {
            let scheme = QuantScheme::new(bits, Granularity::PerTensor);
            let (q, _) = quantize_absmax(&m, scheme);
            prop_assert!(q.fits_signed_bits(bits));
        }

        /// Integer GEMM agrees with f32 GEMM when values are small ints.
        #[test]
        fn int_gemm_matches_f32(
            n in 1usize..6, k in 1usize..6, mcols in 1usize..6,
            seed in 0u64..1000
        ) {
            let val = |r: usize, c: usize, s: u64| {
                (((r as u64 * 31 + c as u64 * 7 + s) % 17) as i32) - 8
            };
            let a = MatI32::from_fn(n, k, |r, c| val(r, c, seed));
            let b = MatI32::from_fn(k, mcols, |r, c| val(r, c, seed.wrapping_add(99)));
            let ci = gemm_i32(&a, &b);
            let cf = gemm_f32(&a.to_f32(), &b.to_f32());
            for r in 0..n {
                for c in 0..mcols {
                    prop_assert_eq!(ci.get(r, c) as f32, cf.get(r, c));
                }
            }
        }

        /// NMSE of a fake-quantized tensor decreases (weakly) with more bits.
        #[test]
        fn more_bits_never_hurt(m in mat_strategy(10)) {
            let e4 = nmse(&m, &fake_quantize(&m, QuantScheme::new(4, Granularity::PerChannel)));
            let e8 = nmse(&m, &fake_quantize(&m, QuantScheme::new(8, Granularity::PerChannel)));
            prop_assert!(e8 <= e4 + 1e-9, "e8={e8} e4={e4}");
        }
    }
}
