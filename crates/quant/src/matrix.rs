//! Dense row-major matrices used throughout the reproduction.
//!
//! Two concrete element types cover every need of the paper's pipeline:
//! [`MatF32`] for pre-quantization tensors and reference GEMM, and
//! [`MatI32`] for quantized integer tensors (the bit-slicing engine in
//! `ta-bitslice` consumes `MatI32`).
//!
//! The types are deliberately small and passive (public `rows`/`cols`
//! accessors, slice access) — the heavy machinery lives in the crates above.

use std::fmt;

/// Row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use ta_quant::MatF32;
///
/// let m = MatF32::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.row(0), &[1.0, 2.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct MatF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Row-major `i32` matrix (quantized tensors, integer GEMM outputs).
///
/// # Examples
///
/// ```
/// use ta_quant::MatI32;
///
/// let m = MatI32::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert!(m.as_slice().iter().all(|&v| v == 0));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MatI32 {
    rows: usize,
    cols: usize,
    data: Vec<i32>,
}

macro_rules! impl_matrix {
    ($name:ident, $elem:ty, $zero:expr) => {
        impl $name {
            /// Creates a matrix filled with zeros.
            ///
            /// # Panics
            ///
            /// Panics if `rows * cols` overflows `usize`.
            pub fn zeros(rows: usize, cols: usize) -> Self {
                let len = rows.checked_mul(cols).expect("matrix dimensions overflow usize");
                Self { rows, cols, data: vec![$zero; len] }
            }

            /// Creates a matrix from a flat row-major vector.
            ///
            /// # Panics
            ///
            /// Panics if `data.len() != rows * cols`.
            pub fn from_vec(rows: usize, cols: usize, data: Vec<$elem>) -> Self {
                assert_eq!(
                    data.len(),
                    rows * cols,
                    "data length {} does not match {}x{}",
                    data.len(),
                    rows,
                    cols
                );
                Self { rows, cols, data }
            }

            /// Creates a matrix from row slices.
            ///
            /// # Panics
            ///
            /// Panics if rows have inconsistent lengths.
            pub fn from_rows(rows: &[&[$elem]]) -> Self {
                let r = rows.len();
                let c = rows.first().map_or(0, |row| row.len());
                let mut data = Vec::with_capacity(r * c);
                for row in rows {
                    assert_eq!(row.len(), c, "ragged rows in from_rows");
                    data.extend_from_slice(row);
                }
                Self { rows: r, cols: c, data }
            }

            /// Builds a matrix by evaluating `f(row, col)` for every element.
            pub fn from_fn(
                rows: usize,
                cols: usize,
                mut f: impl FnMut(usize, usize) -> $elem,
            ) -> Self {
                let mut data = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    for c in 0..cols {
                        data.push(f(r, c));
                    }
                }
                Self { rows, cols, data }
            }

            /// Number of rows.
            pub fn rows(&self) -> usize {
                self.rows
            }

            /// Number of columns.
            pub fn cols(&self) -> usize {
                self.cols
            }

            /// Total number of elements.
            pub fn len(&self) -> usize {
                self.data.len()
            }

            /// Returns `true` if the matrix has no elements.
            pub fn is_empty(&self) -> bool {
                self.data.is_empty()
            }

            /// Element at `(r, c)`.
            ///
            /// # Panics
            ///
            /// Panics if out of bounds.
            #[inline]
            pub fn get(&self, r: usize, c: usize) -> $elem {
                assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
                self.data[r * self.cols + c]
            }

            /// Sets the element at `(r, c)`.
            ///
            /// # Panics
            ///
            /// Panics if out of bounds.
            #[inline]
            pub fn set(&mut self, r: usize, c: usize, v: $elem) {
                assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
                self.data[r * self.cols + c] = v;
            }

            /// Borrow of row `r` as a slice.
            ///
            /// # Panics
            ///
            /// Panics if `r >= rows`.
            #[inline]
            pub fn row(&self, r: usize) -> &[$elem] {
                assert!(r < self.rows, "row {r} out of bounds");
                &self.data[r * self.cols..(r + 1) * self.cols]
            }

            /// Mutable borrow of row `r`.
            ///
            /// # Panics
            ///
            /// Panics if `r >= rows`.
            #[inline]
            pub fn row_mut(&mut self, r: usize) -> &mut [$elem] {
                assert!(r < self.rows, "row {r} out of bounds");
                &mut self.data[r * self.cols..(r + 1) * self.cols]
            }

            /// Flat row-major view of the data.
            pub fn as_slice(&self) -> &[$elem] {
                &self.data
            }

            /// Flat mutable row-major view of the data.
            pub fn as_mut_slice(&mut self) -> &mut [$elem] {
                &mut self.data
            }

            /// Consumes the matrix and returns its flat row-major data.
            pub fn into_vec(self) -> Vec<$elem> {
                self.data
            }

            /// Transposed copy of the matrix.
            pub fn transposed(&self) -> Self {
                let mut out = Self::zeros(self.cols, self.rows);
                for r in 0..self.rows {
                    for c in 0..self.cols {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
                out
            }

            /// Copies the sub-matrix starting at `(r0, c0)` of shape
            /// `(rows, cols)`, zero-padding past the source boundary.
            ///
            /// Tiling engines use this to extract edge tiles without
            /// special-casing remainders.
            pub fn tile_padded(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
                let mut out = Self::zeros(rows, cols);
                for r in 0..rows {
                    let sr = r0 + r;
                    if sr >= self.rows {
                        break;
                    }
                    for c in 0..cols {
                        let sc = c0 + c;
                        if sc >= self.cols {
                            break;
                        }
                        out.data[r * cols + c] = self.data[sr * self.cols + sc];
                    }
                }
                out
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                writeln!(f, "{} {}x{} [", stringify!($name), self.rows, self.cols)?;
                let max_rows = 8.min(self.rows);
                for r in 0..max_rows {
                    let max_cols = 12.min(self.cols);
                    write!(f, "  ")?;
                    for c in 0..max_cols {
                        write!(f, "{:?} ", self.get(r, c))?;
                    }
                    if self.cols > max_cols {
                        write!(f, "…")?;
                    }
                    writeln!(f)?;
                }
                if self.rows > max_rows {
                    writeln!(f, "  …")?;
                }
                write!(f, "]")
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::zeros(0, 0)
            }
        }
    };
}

impl_matrix!(MatF32, f32, 0.0f32);
impl_matrix!(MatI32, i32, 0i32);

impl MatI32 {
    /// Converts to `f32` elementwise.
    pub fn to_f32(&self) -> MatF32 {
        MatF32::from_vec(self.rows, self.cols, self.data.iter().map(|&v| v as f32).collect())
    }

    /// Minimum and maximum element; `(0, 0)` for an empty matrix.
    pub fn min_max(&self) -> (i32, i32) {
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if self.data.is_empty() {
            (0, 0)
        } else {
            (lo, hi)
        }
    }

    /// Returns `true` if every element fits in a signed `bits`-bit integer
    /// (2's complement range `[-2^(bits-1), 2^(bits-1) - 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32.
    pub fn fits_signed_bits(&self, bits: u32) -> bool {
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        if bits == 32 {
            return true;
        }
        let hi = (1i64 << (bits - 1)) - 1;
        let lo = -(1i64 << (bits - 1));
        self.data.iter().all(|&v| (v as i64) >= lo && (v as i64) <= hi)
    }
}

impl MatF32 {
    /// Maximum absolute value of the matrix (0 for an empty matrix).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
    }
}

/// Reference dense GEMM over `f32`: `C (n×m) = A (n×k) · B (k×m)`.
///
/// Accumulates in `f64` so it can serve as the "exact" reference for the
/// quantization-error experiments.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use ta_quant::{gemm_f32, MatF32};
///
/// let a = MatF32::from_rows(&[&[1.0, 2.0]]);
/// let b = MatF32::from_rows(&[&[3.0], &[4.0]]);
/// let c = gemm_f32(&a, &b);
/// assert_eq!(c.get(0, 0), 11.0);
/// ```
pub fn gemm_f32(a: &MatF32, b: &MatF32) -> MatF32 {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dimension mismatch");
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    let mut out = MatF32::zeros(n, m);
    for i in 0..n {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        let mut acc = vec![0.0f64; m];
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = b.row(p);
            for (j, &bv) in brow.iter().enumerate() {
                acc[j] += av as f64 * bv as f64;
            }
        }
        for (o, v) in orow.iter_mut().zip(acc) {
            *o = v as f32;
        }
    }
    out
}

/// Reference dense integer GEMM: `C (n×m) = A (n×k) · B (k×m)` with `i64`
/// accumulation, truncated to `i32` on output.
///
/// This is the functional golden model the Transitive Array must match
/// **bit-exactly** (the paper's "lossless" claim, §2.1).
///
/// # Panics
///
/// Panics if the inner dimensions disagree or if any accumulated value
/// overflows `i32` (the bit-sliced pipeline guarantees it never does for
/// the precisions the paper uses; the panic is a test oracle, not a
/// recoverable condition).
pub fn gemm_i32(a: &MatI32, b: &MatI32) -> MatI32 {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dimension mismatch");
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    let mut out = MatI32::zeros(n, m);
    for i in 0..n {
        let arow = a.row(i);
        let mut acc = vec![0i64; m];
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0 {
                continue;
            }
            let brow = b.row(p);
            for (j, &bv) in brow.iter().enumerate() {
                acc[j] += av as i64 * bv as i64;
            }
        }
        let orow = out.row_mut(i);
        for (o, v) in orow.iter_mut().zip(acc) {
            *o = i32::try_from(v).expect("integer GEMM overflowed i32 accumulation");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let m = MatF32::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert!(MatF32::zeros(0, 5).is_empty());
    }

    #[test]
    fn from_rows_and_get_set() {
        let mut m = MatI32::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(m.get(0, 2), 3);
        assert_eq!(m.get(1, 0), 4);
        m.set(1, 1, 42);
        assert_eq!(m.row(1), &[4, 42, 6]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = MatI32::from_rows(&[&[1, 2], &[3]]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = MatI32::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn from_fn_matches_formula() {
        let m = MatI32::from_fn(3, 3, |r, c| (r * 3 + c) as i32);
        assert_eq!(m.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn transpose_involution() {
        let m = MatI32::from_fn(3, 5, |r, c| (r * 31 + c * 7) as i32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn tile_padded_interior_and_edge() {
        let m = MatI32::from_fn(4, 4, |r, c| (r * 4 + c) as i32);
        let t = m.tile_padded(1, 1, 2, 2);
        assert_eq!(t.as_slice(), &[5, 6, 9, 10]);
        // Edge tile pads with zeros.
        let e = m.tile_padded(3, 3, 2, 2);
        assert_eq!(e.as_slice(), &[15, 0, 0, 0]);
        // Fully out of range gives all zeros.
        let z = m.tile_padded(10, 10, 2, 2);
        assert_eq!(z.as_slice(), &[0, 0, 0, 0]);
    }

    #[test]
    fn min_max_and_fits() {
        let m = MatI32::from_rows(&[&[-8, 7], &[0, 3]]);
        assert_eq!(m.min_max(), (-8, 7));
        assert!(m.fits_signed_bits(4));
        assert!(!m.fits_signed_bits(3));
        assert!(m.fits_signed_bits(32));
    }

    #[test]
    fn gemm_f32_small() {
        let a = MatF32::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = MatF32::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = gemm_f32(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_i32_small() {
        let a = MatI32::from_rows(&[&[1, -2], &[3, 4]]);
        let b = MatI32::from_rows(&[&[5, 6], &[-7, 8]]);
        let c = gemm_i32(&a, &b);
        assert_eq!(c.as_slice(), &[19, -10, -13, 50]);
    }

    #[test]
    fn gemm_identity() {
        let n = 6;
        let a = MatI32::from_fn(n, n, |r, c| if r == c { 1 } else { 0 });
        let b = MatI32::from_fn(n, n, |r, c| (r * 13 + c * 5) as i32 - 20);
        assert_eq!(gemm_i32(&a, &b), b);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn gemm_dim_mismatch_panics() {
        let a = MatI32::zeros(2, 3);
        let b = MatI32::zeros(2, 3);
        let _ = gemm_i32(&a, &b);
    }

    #[test]
    fn abs_max_and_norm() {
        let m = MatF32::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(m.abs_max(), 4.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = MatI32::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }
}
