//! Deterministic, seed-splittable random number generation for workload
//! synthesis.
//!
//! Every generator in this crate derives its stream from `(seed, indices)`
//! via SplitMix64 so that pattern sources are pure functions of their
//! sub-tile coordinates — the property the sampling simulator relies on.

/// SplitMix64 step: maps a state to a well-mixed 64-bit value.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Mixes a seed with up to three coordinates into one stream key.
#[inline]
pub fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    splitmix64(
        seed ^ splitmix64(a ^ 0xA076_1D64_78BD_642F)
            ^ splitmix64(b ^ 0xE703_7ED1_A0B4_28DB).rotate_left(21)
            ^ splitmix64(c ^ 0x8EBC_6AF0_9C88_C6E3).rotate_left(42),
    )
}

/// A small counter-based RNG seeded from a stream key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRng {
    key: u64,
    counter: u64,
}

impl StreamRng {
    /// Creates the stream.
    pub fn new(key: u64) -> Self {
        Self { key, counter: 0 }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.counter += 1;
        splitmix64(self.key.wrapping_add(self.counter.wrapping_mul(0x9E3779B97F4A7C15)))
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Approximately standard-normal sample (Irwin–Hall sum of 12
    /// uniforms; exact mean 0, variance 1, support ±6σ — ample for
    /// weight synthesis).
    pub fn next_gaussian(&mut self) -> f32 {
        let mut s = 0.0f32;
        for _ in 0..12 {
            s += self.next_f32();
        }
        s - 6.0
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StreamRng::new(mix(7, 1, 2, 3));
        let mut b = StreamRng::new(mix(7, 1, 2, 3));
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_coordinates_differ() {
        assert_ne!(mix(7, 1, 2, 3), mix(7, 1, 2, 4));
        assert_ne!(mix(7, 1, 2, 3), mix(8, 1, 2, 3));
        assert_ne!(mix(7, 2, 1, 3), mix(7, 1, 2, 3));
    }

    #[test]
    fn uniform_range() {
        let mut r = StreamRng::new(42);
        for _ in 0..1000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = StreamRng::new(99);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn bounded_integers() {
        let mut r = StreamRng::new(5);
        for _ in 0..100 {
            assert!(r.next_below(17) < 17);
        }
    }
}
