//! LLaMA model-family workloads (§5.1): the FC (linear) and attention
//! GEMM shapes of one Transformer block for every model size the paper
//! evaluates, at the paper's prefill sequence length of 2048.

use ta_core::GemmShape;

/// One LLaMA model's architecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LlamaConfig {
    /// Display name as used in the figures (e.g. `"L-1 7B"`).
    pub name: &'static str,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// MLP intermediate dimension.
    pub intermediate: usize,
    /// Attention heads.
    pub heads: usize,
    /// Key/value heads (GQA; equals `heads` before LLaMA-3).
    pub kv_heads: usize,
    /// Transformer blocks.
    pub layers: usize,
}

impl LlamaConfig {
    /// LLaMA-1 7B.
    pub fn l1_7b() -> Self {
        Self {
            name: "L-1 7B",
            hidden: 4096,
            intermediate: 11008,
            heads: 32,
            kv_heads: 32,
            layers: 32,
        }
    }

    /// LLaMA-1 13B.
    pub fn l1_13b() -> Self {
        Self {
            name: "L-1 13B",
            hidden: 5120,
            intermediate: 13824,
            heads: 40,
            kv_heads: 40,
            layers: 40,
        }
    }

    /// LLaMA-1 30B.
    pub fn l1_30b() -> Self {
        Self {
            name: "L-1 30B",
            hidden: 6656,
            intermediate: 17920,
            heads: 52,
            kv_heads: 52,
            layers: 60,
        }
    }

    /// LLaMA-1 65B.
    pub fn l1_65b() -> Self {
        Self {
            name: "L-1 65B",
            hidden: 8192,
            intermediate: 22016,
            heads: 64,
            kv_heads: 64,
            layers: 80,
        }
    }

    /// LLaMA-2 7B (same block shapes as LLaMA-1 7B).
    pub fn l2_7b() -> Self {
        Self { name: "L-2 7B", ..Self::l1_7b() }
    }

    /// LLaMA-2 13B.
    pub fn l2_13b() -> Self {
        Self { name: "L-2 13B", ..Self::l1_13b() }
    }

    /// LLaMA-3 8B (grouped-query attention: 8 KV heads).
    pub fn l3_8b() -> Self {
        Self {
            name: "L-3 8B",
            hidden: 4096,
            intermediate: 14336,
            heads: 32,
            kv_heads: 8,
            layers: 32,
        }
    }

    /// The Fig. 10 roster in plotting order.
    pub fn roster() -> Vec<LlamaConfig> {
        vec![
            Self::l1_7b(),
            Self::l1_13b(),
            Self::l1_30b(),
            Self::l1_65b(),
            Self::l2_7b(),
            Self::l2_13b(),
            Self::l3_8b(),
        ]
    }

    /// Head dimension (`hidden / heads`; 128 across the family).
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// KV projection width (`kv_heads × head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim()
    }

    /// The FC (linear-layer) GEMMs of one Transformer block at prefill
    /// length `seq`, in execution order: Q, K, V, O, Gate, Up, Down.
    pub fn fc_layers(&self, seq: usize) -> Vec<NamedGemm> {
        let h = self.hidden;
        let kv = self.kv_dim();
        let i = self.intermediate;
        vec![
            NamedGemm::new("q_proj", GemmShape::new(h, h, seq)),
            NamedGemm::new("k_proj", GemmShape::new(kv, h, seq)),
            NamedGemm::new("v_proj", GemmShape::new(kv, h, seq)),
            NamedGemm::new("o_proj", GemmShape::new(h, h, seq)),
            NamedGemm::new("gate_proj", GemmShape::new(i, h, seq)),
            NamedGemm::new("up_proj", GemmShape::new(i, h, seq)),
            NamedGemm::new("down_proj", GemmShape::new(h, i, seq)),
        ]
    }

    /// The attention-score GEMMs of one block at `seq` (§5.7 treats the K
    /// and V caches as weight tensors): per *query* head, `QKᵀ`
    /// (`seq × head_dim × seq`) and `PV` (`head_dim × seq × seq`).
    /// Returns (shape, instance count) pairs.
    pub fn attention_gemms(&self, seq: usize) -> Vec<(NamedGemm, usize)> {
        let d = self.head_dim();
        vec![
            (NamedGemm::new("qk^T", GemmShape::new(seq, d, seq)), self.heads),
            (NamedGemm::new("pv", GemmShape::new(d, seq, seq)), self.heads),
        ]
    }

    /// Total FC MACs of one block at `seq`.
    pub fn fc_macs(&self, seq: usize) -> u64 {
        self.fc_layers(seq).iter().map(|l| l.shape.macs()).sum()
    }
}

/// A named GEMM workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NamedGemm {
    /// Layer name.
    pub name: &'static str,
    /// GEMM shape.
    pub shape: GemmShape,
}

impl NamedGemm {
    /// Creates a named GEMM.
    pub fn new(name: &'static str, shape: GemmShape) -> Self {
        Self { name, shape }
    }
}

/// The paper's prefill sequence length (§5.1).
pub const PAPER_SEQ_LEN: usize = 2048;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_dimensions() {
        assert_eq!(LlamaConfig::l1_7b().hidden, 4096);
        assert_eq!(LlamaConfig::l1_7b().head_dim(), 128);
        assert_eq!(LlamaConfig::l1_65b().hidden, 8192);
        assert_eq!(LlamaConfig::l1_65b().head_dim(), 128);
        assert_eq!(LlamaConfig::l3_8b().kv_dim(), 1024);
        assert_eq!(LlamaConfig::l1_13b().kv_dim(), 5120);
    }

    #[test]
    fn fc_layer_shapes_7b() {
        let layers = LlamaConfig::l1_7b().fc_layers(2048);
        assert_eq!(layers.len(), 7);
        let q = &layers[0];
        assert_eq!((q.shape.n, q.shape.k, q.shape.m), (4096, 4096, 2048));
        let gate = &layers[4];
        assert_eq!((gate.shape.n, gate.shape.k), (11008, 4096));
        let down = &layers[6];
        assert_eq!((down.shape.n, down.shape.k), (4096, 11008));
    }

    #[test]
    fn gqa_shrinks_kv_projections() {
        let l3 = LlamaConfig::l3_8b().fc_layers(2048);
        assert_eq!(l3[1].shape.n, 1024, "k_proj under GQA");
        assert_eq!(l3[2].shape.n, 1024, "v_proj under GQA");
        assert_eq!(l3[0].shape.n, 4096, "q_proj full width");
    }

    #[test]
    fn attention_shapes() {
        let att = LlamaConfig::l1_7b().attention_gemms(2048);
        assert_eq!(att.len(), 2);
        let (qk, heads) = &att[0];
        assert_eq!((qk.shape.n, qk.shape.k, qk.shape.m), (2048, 128, 2048));
        assert_eq!(*heads, 32);
        let (pv, _) = &att[1];
        assert_eq!((pv.shape.n, pv.shape.k, pv.shape.m), (128, 2048, 2048));
    }

    #[test]
    fn roster_order_matches_fig10() {
        let names: Vec<&str> = LlamaConfig::roster().iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            ["L-1 7B", "L-1 13B", "L-1 30B", "L-1 65B", "L-2 7B", "L-2 13B", "L-3 8B"]
        );
    }

    #[test]
    fn macs_grow_with_model_size() {
        let roster = LlamaConfig::roster();
        let m7 = roster[0].fc_macs(2048);
        let m65 = roster[3].fc_macs(2048);
        // Per-block FC MACs scale ≈4× from 7B to 65B (hidden² quadruples,
        // MLP ratio shrinks slightly).
        assert!(m65 > 7 * m7 / 2, "{m65} vs {m7}");
    }
}
