//! Whole-network batch simulation helpers: feed every GEMM of a model
//! block to the tile-execution runtime's [`Batch`] API so layers run
//! concurrently across the worker pool, with reports identical to
//! simulating each layer alone (see `ta_core::runtime`'s determinism
//! contract).
//!
//! When the accelerator's `plan_cache` knob is on, every job of a batch
//! shares the accelerator's one plan cache: a pattern multiset planned
//! for one layer is reused by every other layer (and by later batches on
//! the same accelerator) — reports are bit-identical either way.

use crate::llama::{LlamaConfig, NamedGemm};
use crate::synth::QuantGaussianSource;
use ta_core::{Batch, BatchReport, TransitiveArray};

/// Simulates a list of named GEMM workloads concurrently on `ta`,
/// drawing each layer's weight patterns from a [`QuantGaussianSource`]
/// seeded per layer (the DESIGN.md §3 stand-in for real traces).
/// Reports come back in workload order.
pub fn simulate_gemms(ta: &TransitiveArray, layers: &[NamedGemm], seed: u64) -> BatchReport {
    let cfg = ta.config();
    let mut batch = Batch::new(ta);
    for (i, layer) in layers.iter().enumerate() {
        let layer_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        batch.push(
            layer.shape,
            QuantGaussianSource::new(cfg.width, cfg.weight_bits, cfg.n_tile(), layer_seed),
        );
    }
    batch.run()
}

/// Simulates all seven FC GEMMs of one Transformer block (Q, K, V, O,
/// Gate, Up, Down) of `model` at prefill length `seq` concurrently.
pub fn simulate_llama_block(
    ta: &TransitiveArray,
    model: &LlamaConfig,
    seq: usize,
    seed: u64,
) -> Vec<(NamedGemm, ta_core::GemmReport)> {
    let layers = model.fc_layers(seq);
    let report = simulate_gemms(ta, &layers, seed);
    layers.into_iter().zip(report.reports).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::QuantGaussianSource;
    use ta_core::{GemmShape, TransArrayConfig, TransitiveArray};

    fn tiny_ta(threads: usize) -> TransitiveArray {
        TransitiveArray::new(TransArrayConfig {
            sample_limit: 12,
            threads,
            ..TransArrayConfig::paper_w8()
        })
    }

    fn tiny_model() -> LlamaConfig {
        // A down-scaled block so the test stays fast; the helper only
        // cares about shapes, not the real 7B dimensions.
        LlamaConfig {
            name: "tiny",
            hidden: 128,
            intermediate: 256,
            heads: 4,
            kv_heads: 4,
            layers: 2,
        }
    }

    #[test]
    fn block_batch_matches_layerwise_serial_simulation() {
        let parallel = tiny_ta(4);
        let serial = tiny_ta(1);
        let got = simulate_llama_block(&parallel, &tiny_model(), 32, 99);
        assert_eq!(got.len(), 7);
        for (i, (layer, report)) in got.iter().enumerate() {
            let cfg = serial.config();
            let layer_seed = 99 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut src =
                QuantGaussianSource::new(cfg.width, cfg.weight_bits, cfg.n_tile(), layer_seed);
            let want = serial.simulate_layer(layer.shape, &mut src);
            assert_eq!(report, &want, "layer {} ({})", i, layer.name);
        }
    }

    #[test]
    fn batch_jobs_share_one_plan_cache() {
        let cached = TransitiveArray::new(TransArrayConfig {
            sample_limit: 12,
            threads: 2,
            plan_cache: 1024,
            ..TransArrayConfig::paper_w8()
        });
        let uncached = tiny_ta(1);
        let model = tiny_model();

        let first = simulate_llama_block(&cached, &model, 32, 123);
        let after_first = cached.plan_cache_stats().expect("cache enabled");
        assert!(after_first.insertions > 0);

        // Replaying the identical block must hit across batch jobs (same
        // per-layer seeds → same pattern multisets) without adding a
        // single miss, and reports must match the uncached runs exactly.
        let second = simulate_llama_block(&cached, &model, 32, 123);
        let after_second = cached.plan_cache_stats().unwrap();
        assert!(after_second.hits > after_first.hits, "replayed block must hit");
        assert_eq!(after_second.misses, after_first.misses, "replayed block must not miss");
        let want = simulate_llama_block(&uncached, &model, 32, 123);
        for (i, ((_, f), ((_, s), (_, w)))) in
            first.iter().zip(second.iter().zip(want.iter())).enumerate()
        {
            assert_eq!(f, w, "layer {i}: cold cached batch must equal uncached");
            assert_eq!(s, w, "layer {i}: warm cached batch must equal uncached");
        }
    }

    #[test]
    fn batch_report_totals_cover_all_layers() {
        let ta = tiny_ta(2);
        let layers = vec![
            NamedGemm::new("a", GemmShape::new(64, 64, 16)),
            NamedGemm::new("b", GemmShape::new(64, 128, 16)),
        ];
        let report = simulate_gemms(&ta, &layers, 7);
        assert_eq!(report.reports.len(), 2);
        assert_eq!(report.total_cycles, report.reports.iter().map(|r| r.cycles).sum::<u64>());
        assert_eq!(report.total_macs, 64 * 64 * 16 + 64 * 128 * 16);
        assert!(report.total_energy_pj > 0.0);
        assert!(report.total_seconds > 0.0);
    }
}
