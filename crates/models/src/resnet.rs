//! ResNet-18 on ImageNet (§5.10, Fig. 14): the 21 weighted layers the
//! figure's x-axis enumerates (conv1, 16 block convs, 3 downsample convs,
//! and the final FC), lowered to GEMMs via im2col.

use ta_bitslice::ConvShape;
use ta_core::GemmShape;

/// One ResNet-18 layer: a convolution (lowered with im2col) or the final
/// fully connected classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResnetLayer {
    /// Layer index (1-based, matching Fig. 14's x-axis).
    pub index: usize,
    /// Layer name.
    pub name: &'static str,
    /// Convolution shape (None for the FC layer).
    pub conv: Option<ConvShape>,
    /// GEMM this layer lowers to.
    pub gemm: GemmShape,
    /// Weight precision the paper assigns (first conv & FC at 8-bit,
    /// everything else 4-bit, §5.10).
    pub weight_bits: u32,
}

#[allow(clippy::too_many_arguments)] // mirrors the layer-table columns
fn conv_layer(
    index: usize,
    name: &'static str,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    in_hw: usize,
    weight_bits: u32,
) -> ResnetLayer {
    let conv = ConvShape { in_c, out_c, kh: k, kw: k, stride, pad, in_h: in_hw, in_w: in_hw };
    let (n, kk, m) = conv.gemm_dims();
    ResnetLayer { index, name, conv: Some(conv), gemm: GemmShape::new(n, kk, m), weight_bits }
}

/// The 21 weighted layers of ResNet-18 at 224×224 input, in Fig. 14's
/// order: conv1; layer1 (2×2 convs); layer2 (2 convs + downsample +
/// 2 convs); layer3, layer4 likewise; fc.
pub fn resnet18_layers() -> Vec<ResnetLayer> {
    // Stem: 224×224×3, 7×7/2 → 112; maxpool/2 → 56 feeds layer1.
    let mut v = vec![conv_layer(1, "conv1", 3, 64, 7, 2, 3, 224, 8)];
    // layer1: two basic blocks at 56×56, 64→64.
    v.push(conv_layer(2, "layer1.0.conv1", 64, 64, 3, 1, 1, 56, 4));
    v.push(conv_layer(3, "layer1.0.conv2", 64, 64, 3, 1, 1, 56, 4));
    v.push(conv_layer(4, "layer1.1.conv1", 64, 64, 3, 1, 1, 56, 4));
    v.push(conv_layer(5, "layer1.1.conv2", 64, 64, 3, 1, 1, 56, 4));
    // layer2: 64→128, stride 2 (56→28), with 1×1/2 downsample.
    v.push(conv_layer(6, "layer2.0.conv1", 64, 128, 3, 2, 1, 56, 4));
    v.push(conv_layer(7, "layer2.0.conv2", 128, 128, 3, 1, 1, 28, 4));
    v.push(conv_layer(8, "layer2.0.downsample", 64, 128, 1, 2, 0, 56, 4));
    v.push(conv_layer(9, "layer2.1.conv1", 128, 128, 3, 1, 1, 28, 4));
    v.push(conv_layer(10, "layer2.1.conv2", 128, 128, 3, 1, 1, 28, 4));
    // layer3: 128→256, stride 2 (28→14).
    v.push(conv_layer(11, "layer3.0.conv1", 128, 256, 3, 2, 1, 28, 4));
    v.push(conv_layer(12, "layer3.0.conv2", 256, 256, 3, 1, 1, 14, 4));
    v.push(conv_layer(13, "layer3.0.downsample", 128, 256, 1, 2, 0, 28, 4));
    v.push(conv_layer(14, "layer3.1.conv1", 256, 256, 3, 1, 1, 14, 4));
    v.push(conv_layer(15, "layer3.1.conv2", 256, 256, 3, 1, 1, 14, 4));
    // layer4: 256→512, stride 2 (14→7).
    v.push(conv_layer(16, "layer4.0.conv1", 256, 512, 3, 2, 1, 14, 4));
    v.push(conv_layer(17, "layer4.0.conv2", 512, 512, 3, 1, 1, 7, 4));
    v.push(conv_layer(18, "layer4.0.downsample", 256, 512, 1, 2, 0, 14, 4));
    v.push(conv_layer(19, "layer4.1.conv1", 512, 512, 3, 1, 1, 7, 4));
    v.push(conv_layer(20, "layer4.1.conv2", 512, 512, 3, 1, 1, 7, 4));
    // Classifier: 512 → 1000 on the pooled vector.
    v.push(ResnetLayer {
        index: 21,
        name: "fc",
        conv: None,
        gemm: GemmShape::new(1000, 512, 1),
        weight_bits: 8,
    });
    v
}

/// Total MACs of the network (≈1.8 GMACs for ResNet-18 at 224²).
pub fn resnet18_total_macs() -> u64 {
    resnet18_layers().iter().map(|l| l.gemm.macs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_21_layers() {
        let layers = resnet18_layers();
        assert_eq!(layers.len(), 21);
        for (i, l) in layers.iter().enumerate() {
            assert_eq!(l.index, i + 1);
        }
    }

    #[test]
    fn gemm_dims_of_known_layers() {
        let layers = resnet18_layers();
        // conv1: 64 × (3·7·7) × (112·112).
        assert_eq!(layers[0].gemm, GemmShape::new(64, 147, 112 * 112));
        // layer1 convs: 64 × 576 × 3136.
        assert_eq!(layers[1].gemm, GemmShape::new(64, 576, 56 * 56));
        // layer2.0.conv1 strides to 28×28.
        assert_eq!(layers[5].gemm, GemmShape::new(128, 576, 28 * 28));
        // downsample is a 1×1.
        assert_eq!(layers[7].gemm, GemmShape::new(128, 64, 28 * 28));
        // fc.
        assert_eq!(layers[20].gemm, GemmShape::new(1000, 512, 1));
    }

    #[test]
    fn total_macs_near_reference() {
        // ResNet-18 is ~1.8 GMACs; our conv-only sum (no pooling/bn) must
        // land in that ballpark.
        let macs = resnet18_total_macs() as f64 / 1.0e9;
        assert!((1.5..2.1).contains(&macs), "total {macs} GMACs");
    }

    #[test]
    fn mixed_precision_assignment() {
        let layers = resnet18_layers();
        assert_eq!(layers[0].weight_bits, 8, "first conv at 8-bit");
        assert_eq!(layers[20].weight_bits, 8, "fc at 8-bit");
        assert!(layers[1..20].iter().all(|l| l.weight_bits == 4));
    }

    #[test]
    fn conv_shapes_consistent_with_gemm() {
        for l in resnet18_layers() {
            if let Some(c) = l.conv {
                let (n, k, m) = c.gemm_dims();
                assert_eq!(l.gemm, GemmShape::new(n, k, m), "{}", l.name);
            }
        }
    }
}
