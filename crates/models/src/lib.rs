//! # ta-models — workloads for the Transitive Array evaluation
//!
//! The paper's benchmark zoo (§5.1):
//!
//! * [`LlamaConfig`] — LLaMA-1 {7,13,30,65}B, LLaMA-2 {7,13}B, LLaMA-3-8B
//!   block shapes: FC GEMMs and attention GEMMs at prefill length 2048;
//! * [`resnet18_layers`] — the 21 weighted ResNet-18 layers of Fig. 14,
//!   lowered to GEMMs via im2col;
//! * synthetic pattern sources ([`UniformBitSource`],
//!   [`QuantGaussianSource`]) and LLM-like tensor generators — the
//!   documented substitutions for proprietary traces (DESIGN.md §3);
//! * batch helpers ([`simulate_llama_block`], [`simulate_gemms`]) that
//!   run a whole block's GEMMs concurrently on the tile-execution
//!   runtime.
//!
//! ## Quick example
//!
//! ```
//! use ta_models::{LlamaConfig, PAPER_SEQ_LEN};
//!
//! let l7b = LlamaConfig::l1_7b();
//! let fc = l7b.fc_layers(PAPER_SEQ_LEN);
//! assert_eq!(fc[0].shape.n, 4096); // q_proj
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod llama;
mod resnet;
mod rng;
mod synth;

pub use batch::{simulate_gemms, simulate_llama_block};
pub use llama::{LlamaConfig, NamedGemm, PAPER_SEQ_LEN};
pub use resnet::{resnet18_layers, resnet18_total_macs, ResnetLayer};
pub use rng::{mix, splitmix64, StreamRng};
pub use synth::{
    llm_activation_matrix, llm_activation_matrix_int, llm_weight_matrix, llm_weight_matrix_int,
    seeded_span_matrix, QuantGaussianSource, UniformBitSource,
};

#[cfg(test)]
mod integration {
    use super::*;
    use ta_core::{GemmShape, PatternSource, TransArrayConfig, TransitiveArray};

    #[test]
    fn simulate_small_llama_slice_with_synthetic_source() {
        // End-to-end smoke: a down-scaled q_proj simulated from the
        // Gaussian-quantized source.
        let cfg = TransArrayConfig { sample_limit: 64, ..TransArrayConfig::paper_w8() };
        let ta = TransitiveArray::new(cfg);
        let n_tile = ta.config().n_tile();
        let mut src = QuantGaussianSource::new(8, 8, n_tile, 42);
        let shape = GemmShape::new(256, 256, 128);
        let rep = ta.simulate_layer(shape, &mut src);
        assert!(rep.density > 0.10 && rep.density < 0.30, "density {}", rep.density);
        assert!(rep.cycles > 0);
    }

    #[test]
    fn uniform_source_density_matches_fig9_anchor() {
        // 8-bit TranSparsity on uniform bits at 256 rows → ≈12.6% density.
        let cfg = TransArrayConfig { sample_limit: 128, ..TransArrayConfig::paper_w8() };
        let ta = TransitiveArray::new(cfg);
        let mut src = UniformBitSource::new(8, 256, 7);
        let shape = GemmShape::new(1024, 1024, 64);
        let rep = ta.simulate_layer(shape, &mut src);
        assert!((rep.density - 0.126).abs() < 0.012, "density {} vs Fig. 9's 12.57%", rep.density);
    }

    #[test]
    fn pattern_source_trait_object_usable() {
        let mut src: Box<dyn PatternSource> = Box::new(UniformBitSource::new(8, 16, 1));
        assert_eq!(src.width(), 8);
        assert_eq!(src.subtile_patterns(0, 0).len(), 16);
    }
}
