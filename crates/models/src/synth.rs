//! Synthetic tensor and pattern generators (the substitutions of
//! DESIGN.md §3).
//!
//! Two pattern distributions drive the performance experiments:
//!
//! * [`UniformBitSource`] — uniform random 0/1 bits, the distribution of
//!   the paper's design-space exploration (Fig. 9's "1024×1024 random 0-1
//!   matrix") and the "Rand" series of Fig. 13;
//! * [`QuantGaussianSource`] — Gaussian weights quantized then bit-sliced,
//!   the stand-in for "real data" traces (Fig. 13's "Real" series): the
//!   high bit planes carry 2's-complement sign correlation, yielding
//!   slightly fewer unique TransRows than uniform bits — exactly the
//!   effect §5.9 reports.
//!
//! Plus the LLM-like FP32 matrix generators the Table 3 accuracy study
//! uses (Gaussian body, 40× outlier feature channels on activations,
//! rare mild element outliers on weights — the SmoothQuant-documented
//! structure).

use crate::rng::{mix, StreamRng};
use ta_core::PatternSource;
use ta_quant::{MatF32, MatI32};

/// Uniform random bit patterns, deterministic per sub-tile coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformBitSource {
    width: u32,
    rows_per_subtile: usize,
    seed: u64,
}

impl UniformBitSource {
    /// Creates the source.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=16` or `rows_per_subtile` is 0.
    pub fn new(width: u32, rows_per_subtile: usize, seed: u64) -> Self {
        assert!((1..=16).contains(&width), "width must be in 1..=16");
        assert!(rows_per_subtile > 0, "rows_per_subtile must be non-zero");
        Self { width, rows_per_subtile, seed }
    }
}

impl PatternSource for UniformBitSource {
    fn width(&self) -> u32 {
        self.width
    }

    fn subtile_patterns(&mut self, n_tile: usize, k_chunk: usize) -> Vec<u16> {
        let mut rng = StreamRng::new(mix(self.seed, n_tile as u64, k_chunk as u64, 0));
        let mask = ((1u32 << self.width) - 1) as u16;
        (0..self.rows_per_subtile).map(|_| (rng.next_u64() as u16) & mask).collect()
    }

    fn rows_per_subtile(&self) -> usize {
        self.rows_per_subtile
    }

    fn fork(&self) -> Option<Box<dyn PatternSource + Send + '_>> {
        Some(Box::new(*self))
    }
}

/// Gaussian-quantized weight patterns: per sub-tile, an `n × width` block
/// of `weight_bits`-bit 2's-complement values drawn from a Gaussian
/// calibrated so the block absmax sits at the quantization ceiling, then
/// bit-sliced row-major (`row·S + level`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantGaussianSource {
    width: u32,
    weight_bits: u32,
    n_rows: usize,
    seed: u64,
    /// Quantized-domain standard deviation (absmax calibration over a
    /// group-128 context puts σ_q near `qmax/3.2`).
    sigma_q: f32,
}

impl QuantGaussianSource {
    /// Creates the source for `n_rows` weight rows per sub-tile.
    ///
    /// # Panics
    ///
    /// Panics if widths are out of range or `n_rows` is zero.
    pub fn new(width: u32, weight_bits: u32, n_rows: usize, seed: u64) -> Self {
        assert!((1..=16).contains(&width), "width must be in 1..=16");
        assert!((2..=16).contains(&weight_bits), "weight_bits in 2..=16");
        assert!(n_rows > 0, "n_rows must be non-zero");
        let qmax = ((1i32 << (weight_bits - 1)) - 1) as f32;
        Self { width, weight_bits, n_rows, seed, sigma_q: qmax / 3.2 }
    }

    /// One quantized weight value at global coordinates.
    fn value(&self, n_tile: usize, k_chunk: usize, r: usize, c: usize) -> i32 {
        let key = mix(
            self.seed,
            (n_tile * self.n_rows + r) as u64,
            (k_chunk * self.width as usize + c) as u64,
            0x51C9,
        );
        let mut rng = StreamRng::new(key);
        let qmax = (1i32 << (self.weight_bits - 1)) - 1;
        let v = (rng.next_gaussian() * self.sigma_q).round() as i32;
        v.clamp(-qmax, qmax)
    }
}

impl PatternSource for QuantGaussianSource {
    fn width(&self) -> u32 {
        self.width
    }

    fn subtile_patterns(&mut self, n_tile: usize, k_chunk: usize) -> Vec<u16> {
        let s = self.weight_bits as usize;
        let t = self.width as usize;
        let mut patterns = vec![0u16; self.n_rows * s];
        let mut vals = [0i32; 16];
        for r in 0..self.n_rows {
            for (c, v) in vals[..t].iter_mut().enumerate() {
                *v = self.value(n_tile, k_chunk, r, c);
            }
            // One set-bit-driven slicing pass per weight row instead of a
            // per-(value, level) bit test.
            ta_bitslice::kernels::slice_patterns(
                &vals[..t],
                self.weight_bits,
                &mut patterns[r * s..(r + 1) * s],
            );
        }
        patterns
    }

    fn rows_per_subtile(&self) -> usize {
        self.n_rows * self.weight_bits as usize
    }

    fn fork(&self) -> Option<Box<dyn PatternSource + Send + '_>> {
        Some(Box::new(*self))
    }
}

/// LLM-like weight matrix: Gaussian body with ~0.1% mild (6σ) element
/// outliers — the structure PTQ papers report for Transformer weights
/// (smooth bodies, rare spikes; OliVe's outlier-victim pairs target
/// exactly these).
pub fn llm_weight_matrix(n: usize, k: usize, seed: u64) -> MatF32 {
    let mut m = MatF32::from_fn(n, k, |r, c| {
        StreamRng::new(mix(seed, r as u64, c as u64, 1)).next_gaussian()
    });
    // Rare mild element outliers.
    let total = n * k;
    let mut idx = 17usize;
    while idx < total {
        let (r, c) = (idx / k, idx % k);
        let sign = if m.get(r, c) < 0.0 { -1.0 } else { 1.0 };
        m.set(r, c, sign * 6.0);
        idx += 997;
    }
    m
}

/// LLM-like activation matrix: Gaussian body with 40× outlier feature
/// rows (the SmoothQuant-documented structure, also §5.9 of the paper).
pub fn llm_activation_matrix(k: usize, mcols: usize, seed: u64) -> MatF32 {
    let mut m = MatF32::from_fn(k, mcols, |r, c| {
        StreamRng::new(mix(seed, r as u64, c as u64, 2)).next_gaussian()
    });
    for &f in &outlier_features(k) {
        for c in 0..mcols {
            let v = m.get(f, c) * 40.0;
            m.set(f, c, v);
        }
    }
    m
}

/// The outlier feature indices for a `k`-feature tensor (~1.5% of
/// features, deterministic).
fn outlier_features(k: usize) -> Vec<usize> {
    let count = (k / 64).max(1);
    (0..count).map(|i| (i * 64 + 3).min(k - 1)).collect()
}

/// Quantized integer LLM-like weights for functional runs.
pub fn llm_weight_matrix_int(n: usize, k: usize, bits: u32, seed: u64) -> MatI32 {
    let qmax = (1i32 << (bits - 1)) - 1;
    let sigma = qmax as f32 / 3.2;
    MatI32::from_fn(n, k, |r, c| {
        let g = StreamRng::new(mix(seed, r as u64, c as u64, 3)).next_gaussian();
        ((g * sigma).round() as i32).clamp(-qmax, qmax)
    })
}

/// Quantized integer LLM-like activations for functional runs: the
/// Gaussian body of [`llm_activation_matrix`] with its 40× outlier
/// feature rows saturating the integer grid — the input side of the
/// functional-execution bench workload.
pub fn llm_activation_matrix_int(k: usize, mcols: usize, bits: u32, seed: u64) -> MatI32 {
    let qmax = (1i32 << (bits - 1)) - 1;
    let sigma = qmax as f32 / 3.2;
    let outliers = outlier_features(k);
    MatI32::from_fn(k, mcols, |r, c| {
        let g = StreamRng::new(mix(seed, r as u64, c as u64, 4)).next_gaussian();
        let scale = if outliers.contains(&r) { sigma * 40.0 } else { sigma };
        ((g * scale).round() as i32).clamp(-qmax, qmax)
    })
}

/// A deterministic integer matrix with entries spanning the signed
/// `bits` range — counter-mode splitmix64 keyed on `(seed, r, c)`, so a
/// `(seed, shape)` pair maps to byte-identical operands on every replay.
/// Backs `ta-serve`'s load-generated requests.
pub fn seeded_span_matrix(rows: usize, cols: usize, bits: u32, seed: u64) -> MatI32 {
    let span = 1u64 << bits;
    let half = (1i64 << (bits - 1)) as i32;
    MatI32::from_fn(rows, cols, |r, c| {
        let x = crate::splitmix64(seed ^ (((r as u64) << 32) | c as u64));
        (x % span) as i32 - half
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uniform_source_deterministic_and_distinct() {
        let mut a = UniformBitSource::new(8, 64, 7);
        let mut b = UniformBitSource::new(8, 64, 7);
        assert_eq!(a.subtile_patterns(3, 5), b.subtile_patterns(3, 5));
        assert_ne!(a.subtile_patterns(3, 5), a.subtile_patterns(3, 6));
        assert_eq!(a.rows_per_subtile(), 64);
    }

    #[test]
    fn uniform_source_respects_width() {
        let mut s = UniformBitSource::new(5, 200, 11);
        for p in s.subtile_patterns(0, 0) {
            assert!(p < 32);
        }
    }

    #[test]
    fn uniform_bit_density_near_half() {
        let mut s = UniformBitSource::new(8, 4096, 13);
        let ones: u64 = s.subtile_patterns(0, 0).iter().map(|p| p.count_ones() as u64).sum();
        let density = ones as f64 / (4096.0 * 8.0);
        assert!((density - 0.5).abs() < 0.02, "{density}");
    }

    #[test]
    fn quant_source_shape_and_determinism() {
        let mut s = QuantGaussianSource::new(8, 8, 32, 21);
        let p = s.subtile_patterns(1, 2);
        assert_eq!(p.len(), 256);
        assert_eq!(p, s.subtile_patterns(1, 2));
    }

    #[test]
    fn synthetic_sources_fork_identically() {
        let mut uni = UniformBitSource::new(8, 32, 5);
        let mut quant = QuantGaussianSource::new(8, 8, 8, 5);
        let expected: Vec<(Vec<u16>, Vec<u16>)> = (0..6)
            .map(|i| (uni.subtile_patterns(i / 3, i % 3), quant.subtile_patterns(i / 3, i % 3)))
            .collect();
        let mut uni_fork = uni.fork().expect("uniform source must fork");
        let mut quant_fork = quant.fork().expect("quant source must fork");
        for (i, (want_uni, want_quant)) in expected.iter().enumerate() {
            assert_eq!(&uni_fork.subtile_patterns(i / 3, i % 3), want_uni);
            assert_eq!(&quant_fork.subtile_patterns(i / 3, i % 3), want_quant);
        }
    }

    #[test]
    fn real_like_has_fewer_unique_patterns_than_uniform() {
        // §5.9: real data shows *fewer* unique TransRows than uniform
        // random (162 expected for uniform 256-of-256).
        let mut uni = UniformBitSource::new(8, 256, 3);
        let mut real = QuantGaussianSource::new(8, 8, 32, 3);
        let mut uni_unique = 0usize;
        let mut real_unique = 0usize;
        for tile in 0..20 {
            uni_unique +=
                uni.subtile_patterns(tile, 0).iter().copied().collect::<HashSet<u16>>().len();
            real_unique +=
                real.subtile_patterns(tile, 0).iter().copied().collect::<HashSet<u16>>().len();
        }
        assert!(real_unique < uni_unique, "real {real_unique} should be < uniform {uni_unique}");
    }

    #[test]
    fn activation_outliers_present() {
        let a = llm_activation_matrix(256, 16, 5);
        let body: f32 = (0..16).map(|c| a.get(0, c).abs()).sum::<f32>() / 16.0;
        let outlier: f32 = (0..16).map(|c| a.get(3, c).abs()).sum::<f32>() / 16.0;
        assert!(outlier > 10.0 * body, "outlier {outlier} vs body {body}");
    }

    #[test]
    fn weight_matrix_int_fits_bits() {
        let w = llm_weight_matrix_int(16, 32, 4, 9);
        assert!(w.fits_signed_bits(4));
        let w8 = llm_weight_matrix_int(16, 32, 8, 9);
        assert!(w8.fits_signed_bits(8));
        // Distribution actually uses the range.
        let (lo, hi) = w8.min_max();
        assert!(lo < -40 && hi > 40, "{lo}..{hi}");
    }

    #[test]
    fn activation_matrix_int_fits_bits_and_keeps_outlier_rows() {
        let a = llm_activation_matrix_int(256, 16, 8, 5);
        assert!(a.fits_signed_bits(8));
        // Feature 3 is an outlier row: it saturates far more often than
        // the Gaussian body.
        let row_mean = |r: usize| (0..16).map(|c| a.get(r, c).abs()).sum::<i32>() as f64 / 16.0;
        assert!(row_mean(3) > 3.0 * row_mean(0), "{} vs {}", row_mean(3), row_mean(0));
        // Deterministic per seed.
        assert_eq!(a, llm_activation_matrix_int(256, 16, 8, 5));
        assert_ne!(a, llm_activation_matrix_int(256, 16, 8, 6));
    }

    #[test]
    fn weight_matrix_has_rare_element_outliers() {
        let w = llm_weight_matrix(32, 128, 1);
        let spikes = w.as_slice().iter().filter(|v| v.abs() >= 5.5).count();
        let total = w.len();
        let frac = spikes as f64 / total as f64;
        assert!((0.0003..0.01).contains(&frac), "element-outlier fraction {frac} should be ~0.1%");
    }
}
