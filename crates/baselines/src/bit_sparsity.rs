//! Plain bit-sparsity execution model — the reference line of Fig. 13 and
//! the mechanism BitVert-class accelerators exploit.
//!
//! A bit-sparse engine skips zero bits but reuses nothing: every set bit
//! costs one add. Density is therefore exactly the fraction of set bits
//! (~50% on uniform data, the 50–60% ceiling the paper cites in §1).

use ta_bitslice::BinaryMatrix;

/// Ops a bit-sparsity engine needs for a TransRow multiset: one add per
/// set bit.
pub fn bit_sparsity_ops(patterns: &[u16]) -> u64 {
    patterns.iter().map(|p| p.count_ones() as u64).sum()
}

/// Bit-sparsity density: set bits over `rows × width`.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn bit_sparsity_density(patterns: &[u16], width: u32) -> f64 {
    assert!(width > 0, "width must be non-zero");
    if patterns.is_empty() {
        return 0.0;
    }
    bit_sparsity_ops(patterns) as f64 / (patterns.len() as f64 * width as f64)
}

/// Ops a bit-sparsity engine needs for a whole packed binary plane
/// matrix: one add per set bit, counted word-parallel over the packed
/// row words ([`BinaryMatrix::words`]) via the kernel facade — no
/// per-pattern re-extraction.
pub fn bit_sparsity_ops_planes(planes: &BinaryMatrix) -> u64 {
    (0..planes.rows()).map(|r| ta_bitslice::kernels::popcount_words(planes.words(r))).sum()
}

/// Bit-sparsity density of a packed binary plane matrix (set bits over
/// `rows × cols`). Empty matrices have density 0.
pub fn bit_sparsity_density_planes(planes: &BinaryMatrix) -> f64 {
    let total = (planes.rows() * planes.cols()) as f64;
    if total == 0.0 {
        return 0.0;
    }
    bit_sparsity_ops_planes(planes) as f64 / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_count_set_bits() {
        assert_eq!(bit_sparsity_ops(&[0b1011, 0b0000, 0b1111]), 7);
        assert_eq!(bit_sparsity_ops(&[]), 0);
    }

    #[test]
    fn density_of_uniform_patterns() {
        // All 4-bit patterns once → exactly 50% bits set.
        let all: Vec<u16> = (0..16).collect();
        assert!((bit_sparsity_density(&all, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fig1_example_has_ten_ops() {
        // Fig. 1: rows 1011, 1111, 0011, 0010 → "10 OPs" for bit sparsity.
        assert_eq!(bit_sparsity_ops(&[0b1011, 0b1111, 0b0011, 0b0010]), 10);
    }

    #[test]
    fn empty_density_is_zero() {
        assert_eq!(bit_sparsity_density(&[], 8), 0.0);
    }

    #[test]
    fn plane_ops_match_pattern_ops() {
        // A plane matrix whose 8-bit-wide rows carry the same patterns as
        // the multiset form must count the same ops and density.
        let patterns = [0b1011u16, 0b0000, 0b1111, 0b0101_0011];
        let mut planes = BinaryMatrix::zeros(patterns.len(), 8);
        for (r, &p) in patterns.iter().enumerate() {
            planes.insert_pattern(r, 0, 8, p);
        }
        assert_eq!(bit_sparsity_ops_planes(&planes), bit_sparsity_ops(&patterns));
        let want = bit_sparsity_density(&patterns, 8);
        assert!((bit_sparsity_density_planes(&planes) - want).abs() < 1e-12);
        assert_eq!(bit_sparsity_density_planes(&BinaryMatrix::zeros(0, 0)), 0.0);
    }
}
