//! Weight pruning for the structured-sparsity comparison: 2:4 (two
//! survivors per group of four along k), unstructured magnitude pruning
//! to an arbitrary density, and the density measurement both share.
//!
//! All routines are deterministic: magnitude ties break toward the
//! lower column index, so the same tensor always prunes the same way.

use ta_quant::MatF32;

/// Fraction of nonzero elements in `m`.
pub fn density(m: &MatF32) -> f64 {
    let total = m.rows() * m.cols();
    if total == 0 {
        return 0.0;
    }
    let nonzero = (0..m.rows())
        .flat_map(|r| (0..m.cols()).map(move |c| (r, c)))
        .filter(|&(r, c)| m.get(r, c) != 0.0)
        .count();
    nonzero as f64 / total as f64
}

/// Structured 2:4 pruning along the k axis (columns): in every group of
/// four consecutive columns of a row, the two largest-magnitude weights
/// survive and the rest are zeroed. A tail group of fewer than four
/// columns keeps its top half (rounded up).
pub fn prune_2to4(w: &MatF32) -> MatF32 {
    let mut out = w.clone();
    for r in 0..w.rows() {
        let mut c0 = 0;
        while c0 < w.cols() {
            let group: Vec<usize> = (c0..(c0 + 4).min(w.cols())).collect();
            let keep = group.len().div_ceil(2);
            let mut ranked = group.clone();
            ranked.sort_by(|&a, &b| {
                w.get(r, b).abs().partial_cmp(&w.get(r, a).abs()).unwrap().then(a.cmp(&b))
            });
            for &c in &ranked[keep..] {
                out.set(r, c, 0.0);
            }
            c0 += 4;
        }
    }
    out
}

/// Unstructured global magnitude pruning: keeps the `density`-fraction
/// largest-magnitude elements of `w` and zeroes the rest.
pub fn prune_to_density(w: &MatF32, density: f64) -> MatF32 {
    let total = w.rows() * w.cols();
    let keep = ((density.clamp(0.0, 1.0) * total as f64).round() as usize).min(total);
    let mut ranked: Vec<(usize, usize)> =
        (0..w.rows()).flat_map(|r| (0..w.cols()).map(move |c| (r, c))).collect();
    ranked.sort_by(|&(ra, ca), &(rb, cb)| {
        w.get(rb, cb).abs().partial_cmp(&w.get(ra, ca).abs()).unwrap().then((ra, ca).cmp(&(rb, cb)))
    });
    let mut out = w.clone();
    for &(r, c) in &ranked[keep..] {
        out.set(r, c, 0.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> MatF32 {
        // Distinct magnitudes everywhere; sign alternates to exercise abs().
        MatF32::from_fn(rows, cols, |r, c| {
            let v = (r * cols + c + 1) as f32;
            if (r + c) % 2 == 0 {
                v
            } else {
                -v
            }
        })
    }

    #[test]
    fn two_survive_per_group_of_four() {
        let w = ramp(3, 8);
        let p = prune_2to4(&w);
        for r in 0..3 {
            for g in 0..2 {
                let alive = (0..4).filter(|&i| p.get(r, g * 4 + i) != 0.0).count();
                assert_eq!(alive, 2, "row {r} group {g}");
            }
        }
        assert!((density(&p) - 0.5).abs() < 1e-9);
        // On a rising ramp the two rightmost columns of each group win.
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(0, 1), 0.0);
        assert_eq!(p.get(0, 2), w.get(0, 2));
        assert_eq!(p.get(0, 3), w.get(0, 3));
    }

    #[test]
    fn tail_group_keeps_top_half() {
        // 6 columns: one full group (keep 2) + a 2-wide tail (keep 1).
        let p = prune_2to4(&ramp(1, 6));
        let alive = (0..6).filter(|&c| p.get(0, c) != 0.0).count();
        assert_eq!(alive, 3);
    }

    #[test]
    fn unstructured_hits_target_density() {
        let w = ramp(4, 8);
        let p = prune_to_density(&w, 0.75);
        assert!((density(&p) - 0.75).abs() < 1e-9);
        // Survivors are exactly the largest-magnitude quartile's complement.
        assert_eq!(p.get(3, 7), w.get(3, 7), "largest element survives");
        assert_eq!(p.get(0, 0), 0.0, "smallest element pruned");
    }

    #[test]
    fn pruning_is_deterministic_under_ties() {
        let w = MatF32::from_fn(2, 8, |_, _| 1.0);
        let a = prune_2to4(&w);
        let b = prune_2to4(&w);
        assert!(a == b);
        // Ties break toward the lower index: the first two of each group.
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(0, 3), 0.0);
    }
}
