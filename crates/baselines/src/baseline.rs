//! Analytic baseline accelerator models (§5.1).
//!
//! Every baseline is a precision-composable PE array with the geometry the
//! paper synthesized for Table 2, running over the *same* DRAM/tiling
//! model as the TransArray. Cycle counts derive from first principles
//! (array geometry × precision-dependent PEs-per-MAC × utilization);
//! energies from PE area × activity plus the shared buffer/DRAM/static
//! accounting.

use ta_core::{dram_traffic, GemmShape, TrafficReport};
use ta_sim::{baseline_area, table2, EnergyBreakdown, EnergyModel};

/// Dynamic energy per µm² of toggling PE logic per operation (pJ/µm²) —
/// calibrated so a BitFusion 8-bit MAC lands near the published ~0.27 pJ
/// at 28 nm.
const AREA_TO_PJ: f64 = 0.0005;

/// Shared DRAM bandwidth (bytes per cycle), identical to the TransArray's.
const DRAM_BYTES_PER_CYCLE: f64 = 256.0;

/// Result of one baseline GEMM simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Accelerator name.
    pub name: String,
    /// The GEMM simulated.
    pub shape: GemmShape,
    /// End-to-end cycles (`max(compute, DRAM)`).
    pub cycles: u64,
    /// Compute-side cycles.
    pub compute_cycles: u64,
    /// Memory-channel cycles.
    pub dram_cycles: u64,
    /// DRAM traffic.
    pub traffic: TrafficReport,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl BaselineReport {
    /// Total energy in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.energy.total() / 1000.0
    }
}

/// A precision-composable PE-array baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    name: String,
    /// Area of one *listed* PE (Table 2).
    pe_um2: f64,
    /// Listed PE array geometry (rows, cols).
    array: (u64, u64),
    /// Composable sub-unit precision (BitFusion: 2-bit bricks; ANT/Olive/
    /// Tender: 4-bit PEs; BitVert: 8-bit PEs).
    compose_bits: u32,
    /// Sub-units per listed PE.
    subunits_per_pe: u64,
    /// Fixed utilization factor (load imbalance, drain).
    utilization: f64,
    /// Sparsity speedup factor (BitVert's bit-sparsity skipping).
    sparsity_speedup: f64,
    /// On-chip buffer (KB).
    buffer_kb: f64,
    /// Whether the design can quantize attention on the fly (§5.7: only
    /// BitFusion and ANT among the baselines).
    supports_attention: bool,
}

impl Baseline {
    /// BitFusion (ISCA'18): 28×32 fusion units of 16 2-bit BitBricks.
    pub fn bitfusion() -> Self {
        Self {
            name: "BitFusion".into(),
            pe_um2: table2::BITFUSION_PE_UM2,
            array: (28, 32),
            compose_bits: 2,
            subunits_per_pe: 16,
            utilization: 1.0,
            sparsity_speedup: 1.0,
            buffer_kb: 512.0,
            supports_attention: true,
        }
    }

    /// ANT (MICRO'22): 36×64 4-bit adaptive-type PEs.
    pub fn ant() -> Self {
        Self {
            name: "ANT".into(),
            pe_um2: table2::ANT_PE_UM2,
            array: (36, 64),
            compose_bits: 4,
            subunits_per_pe: 1,
            utilization: 1.0,
            sparsity_speedup: 1.0,
            buffer_kb: 512.0,
            supports_attention: true,
        }
    }

    /// OliVe (ISCA'23): 32×48 4-bit outlier-victim PEs.
    pub fn olive() -> Self {
        Self {
            name: "Olive".into(),
            pe_um2: table2::OLIVE_PE_UM2,
            array: (32, 48),
            compose_bits: 4,
            subunits_per_pe: 1,
            utilization: 1.0,
            sparsity_speedup: 1.0,
            buffer_kb: 512.0,
            supports_attention: false,
        }
    }

    /// Tender (ISCA'24): 30×48 4-bit PEs with pow-2 rescale.
    pub fn tender() -> Self {
        Self {
            name: "Tender".into(),
            pe_um2: table2::TENDER_PE_UM2,
            array: (30, 48),
            compose_bits: 4,
            subunits_per_pe: 1,
            utilization: 1.0,
            sparsity_speedup: 1.0,
            buffer_kb: 608.0,
            supports_attention: false,
        }
    }

    /// BitVert (BBS, 2024): 16×30 8-bit PEs exploiting ≥50% bit sparsity
    /// (2× ideal skip, ~0.8 utilization from bit-column imbalance).
    pub fn bitvert() -> Self {
        Self {
            name: "BitVert".into(),
            pe_um2: table2::BITVERT_PE_UM2,
            array: (16, 30),
            compose_bits: 8,
            subunits_per_pe: 1,
            utilization: 0.8,
            sparsity_speedup: 2.0,
            buffer_kb: 512.0,
            supports_attention: false,
        }
    }

    /// STA-style 2:4 structured-sparsity baseline: a 16×32 dense 8-bit
    /// systolic array whose PEs skip the zero half of 2:4-pruned weight
    /// groups (2× ideal skip at full utilization — the weights are
    /// pruned offline, so no imbalance penalty). The sweep's
    /// structured-sparsity comparison column; deliberately **not** part
    /// of [`Baseline::roster`], which stays the Fig. 10 five.
    pub fn sta_2to4() -> Self {
        Self {
            name: "STA-2:4".into(),
            pe_um2: table2::BITVERT_PE_UM2,
            array: (16, 32),
            compose_bits: 8,
            subunits_per_pe: 1,
            utilization: 1.0,
            sparsity_speedup: 2.0,
            buffer_kb: 512.0,
            supports_attention: false,
        }
    }

    /// The full Fig. 10 roster in the paper's plotting order.
    pub fn roster() -> Vec<Baseline> {
        vec![Self::bitfusion(), Self::ant(), Self::olive(), Self::tender(), Self::bitvert()]
    }

    /// Accelerator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether attention layers are supported (§5.7).
    pub fn supports_attention(&self) -> bool {
        self.supports_attention
    }

    /// On-chip buffer budget (KB).
    pub fn buffer_kb(&self) -> f64 {
        self.buffer_kb
    }

    /// Total composable sub-units.
    fn total_subunits(&self) -> u64 {
        self.array.0 * self.array.1 * self.subunits_per_pe
    }

    /// Sub-units one `wbits × abits` MAC occupies.
    fn subunits_per_mac(&self, wbits: u32, abits: u32) -> u64 {
        let c = self.compose_bits;
        (wbits.div_ceil(c) as u64) * (abits.div_ceil(c) as u64)
    }

    /// Effective MACs per cycle at the given precisions.
    pub fn macs_per_cycle(&self, wbits: u32, abits: u32) -> f64 {
        self.total_subunits() as f64 / self.subunits_per_mac(wbits, abits) as f64
            * self.utilization
            * self.sparsity_speedup
    }

    /// Core area (mm²) from the Table 2 geometry.
    pub fn core_mm2(&self) -> f64 {
        baseline_area(&self.name, self.pe_um2, self.array.0, self.array.1, self.buffer_kb)
            .core_mm2()
    }

    /// Simulates one GEMM at `wbits × abits`.
    pub fn simulate_gemm(
        &self,
        shape: GemmShape,
        wbits: u32,
        abits: u32,
        em: &EnergyModel,
    ) -> BaselineReport {
        let macs = shape.macs() as f64;
        let compute_cycles = (macs / self.macs_per_cycle(wbits, abits)).ceil() as u64;
        let traffic = dram_traffic(shape, wbits, abits, (self.buffer_kb * 1024.0) as u64);
        let dram_cycles = (traffic.total() as f64 / DRAM_BYTES_PER_CYCLE).ceil() as u64;
        let cycles = compute_cycles.max(dram_cycles).max(1);

        let mut b = EnergyBreakdown::default();
        // Core: each MAC toggles its composed sub-units; energy tracks the
        // listed PE's area share.
        let pe_pj = self.pe_um2 * AREA_TO_PJ / self.subunits_per_pe as f64;
        let effective_macs = macs / self.sparsity_speedup;
        b.core = effective_macs * self.subunits_per_mac(wbits, abits) as f64 * pe_pj;

        // Buffers: weights stream once per output-column pass of the
        // array; inputs once per output-row pass; outputs read-modify-
        // write 32-bit psums.
        let sram_pj = em.sram_pj_per_byte(64.0); // banked 64 KB macro
        let w_bytes = shape.weight_bytes(wbits) as f64;
        let i_bytes = shape.input_bytes(abits) as f64;
        let col_passes = (shape.m as f64 / self.array.1 as f64).ceil();
        let row_passes = (shape.n as f64 / self.array.0 as f64).ceil();
        b.weight_buf = w_bytes * col_passes * sram_pj / self.sparsity_speedup;
        b.input_buf = i_bytes * row_passes * sram_pj;
        b.output_buf = shape.output_bytes() as f64 * 4.0 * 2.0 * sram_pj;

        b.dram_dynamic = em.dram_pj(traffic.total());
        b.dram_static = em.static_pj(em.dram_static_mw, cycles);
        let static_mw =
            em.core_static_mw_per_mm2 * self.core_mm2() + em.sram_static_mw_per_kb * self.buffer_kb;
        b.core_static = em.static_pj(static_mw, cycles);

        BaselineReport {
            name: self.name.clone(),
            shape,
            cycles,
            compute_cycles,
            dram_cycles,
            traffic,
            energy: b,
            seconds: em.seconds(cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_table_matches_geometry() {
        // 8×8-bit MACs/cycle from the Table 2 arrays.
        assert_eq!(Baseline::bitfusion().macs_per_cycle(8, 8), 896.0);
        assert_eq!(Baseline::ant().macs_per_cycle(8, 8), 576.0);
        assert_eq!(Baseline::olive().macs_per_cycle(8, 8), 384.0);
        assert_eq!(Baseline::tender().macs_per_cycle(8, 8), 360.0);
        // BitVert: 480 PEs × 2 (bit sparsity) × 0.8 (imbalance) = 768.
        assert_eq!(Baseline::bitvert().macs_per_cycle(8, 8), 768.0);
    }

    #[test]
    fn precision_composition() {
        let bf = Baseline::bitfusion();
        // 16-bit needs 4× the bricks of 8-bit.
        assert_eq!(bf.macs_per_cycle(16, 16), 224.0);
        // W4A8 doubles over W8A8 on 2-bit bricks.
        assert_eq!(bf.macs_per_cycle(4, 8), 1792.0);
        let ant = Baseline::ant();
        assert_eq!(ant.macs_per_cycle(4, 4), 2304.0);
        assert_eq!(ant.macs_per_cycle(4, 8), 1152.0);
    }

    #[test]
    fn paper_iso_precision_ordering() {
        // §5.5: at 8-bit, ANT and Olive are *slower* than BitFusion;
        // BitVert roughly 2× Olive.
        let bf = Baseline::bitfusion().macs_per_cycle(8, 8);
        let ant = Baseline::ant().macs_per_cycle(8, 8);
        let ol = Baseline::olive().macs_per_cycle(8, 8);
        let bv = Baseline::bitvert().macs_per_cycle(8, 8);
        assert!(bf > ant && ant > ol);
        assert!((bv / ol - 2.0).abs() < 0.2);
    }

    #[test]
    fn simulate_gemm_report_sane() {
        let em = EnergyModel::paper_28nm();
        let shape = GemmShape::new(512, 512, 256);
        let rep = Baseline::olive().simulate_gemm(shape, 8, 8, &em);
        assert!(rep.cycles >= rep.compute_cycles.min(rep.dram_cycles));
        assert!(rep.energy.total() > 0.0);
        assert!(rep.energy.core > 0.0);
        assert!(rep.seconds > 0.0);
        assert_eq!(rep.name, "Olive");
    }

    #[test]
    fn compute_bound_on_large_gemm() {
        let em = EnergyModel::paper_28nm();
        let shape = GemmShape::new(4096, 4096, 2048);
        for b in Baseline::roster() {
            let rep = b.simulate_gemm(shape, 8, 8, &em);
            assert!(
                rep.compute_cycles >= rep.dram_cycles,
                "{} should be compute-bound on a big FC layer",
                b.name()
            );
        }
    }

    #[test]
    fn sta_2to4_doubles_dense_throughput_without_joining_the_roster() {
        let sta = Baseline::sta_2to4();
        // 512 PEs × 2 (structured skip) at full utilization.
        assert_eq!(sta.macs_per_cycle(8, 8), 1024.0);
        assert_eq!(Baseline::roster().len(), 5, "roster stays the Fig. 10 five");
        assert!(Baseline::roster().iter().all(|b| b.name() != sta.name()));
    }

    #[test]
    fn attention_support_flags() {
        assert!(Baseline::bitfusion().supports_attention());
        assert!(Baseline::ant().supports_attention());
        assert!(!Baseline::olive().supports_attention());
        assert!(!Baseline::tender().supports_attention());
        assert!(!Baseline::bitvert().supports_attention());
    }

    #[test]
    fn core_areas_match_table2() {
        assert!((Baseline::bitfusion().core_mm2() - 0.491).abs() < 0.01);
        assert!((Baseline::bitvert().core_mm2() - 0.473).abs() < 0.01);
    }
}
