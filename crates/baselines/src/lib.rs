//! # ta-baselines — the accelerator roster TransArray is compared against
//!
//! Analytic models of the five baselines of §5.1 — BitFusion, ANT, OliVe,
//! Tender, BitVert — built from the PE-array geometries the paper
//! synthesized for Table 2, sharing the TransArray's DRAM/tiling model so
//! the comparison isolates the compute engines. Plus the plain
//! bit-sparsity executor that Fig. 13 uses as its reference line.
//!
//! ## Quick example
//!
//! ```
//! use ta_baselines::Baseline;
//! use ta_core::GemmShape;
//! use ta_sim::EnergyModel;
//!
//! let olive = Baseline::olive();
//! let rep = olive.simulate_gemm(GemmShape::new(4096, 4096, 2048), 8, 8,
//!                               &EnergyModel::paper_28nm());
//! assert!(rep.cycles > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod baseline;
mod bit_sparsity;
pub mod sparse24;

pub use baseline::{Baseline, BaselineReport};
pub use bit_sparsity::{
    bit_sparsity_density, bit_sparsity_density_planes, bit_sparsity_ops, bit_sparsity_ops_planes,
};

#[cfg(test)]
mod tests {
    use super::*;
    use ta_core::GemmShape;
    use ta_sim::EnergyModel;

    /// The speedup relationships the paper's Fig. 10 reports must emerge
    /// from the models: TA-8bit ideal throughput is 1536 MACs/cycle
    /// (6 units × 256), TA-4bit 3072.
    #[test]
    fn fig10_throughput_ratios_in_band() {
        let ta8 = 1536.0;
        let ta4 = 3072.0;
        let ant = Baseline::ant().macs_per_cycle(8, 8);
        let olive = Baseline::olive().macs_per_cycle(8, 8);
        let bv = Baseline::bitvert().macs_per_cycle(8, 8);
        // Paper: TA-8bit = 2.47× ANT, 3.75× Olive, 1.99× BitVert.
        assert!((2.0..3.2).contains(&(ta8 / ant)), "TA8/ANT {}", ta8 / ant);
        assert!((3.2..4.6).contains(&(ta8 / olive)), "TA8/Olive {}", ta8 / olive);
        assert!((1.6..2.4).contains(&(ta8 / bv)), "TA8/BV {}", ta8 / bv);
        // Paper: TA-4bit = 4.91× ANT, 7.46× Olive, 3.97× BitVert.
        assert!((4.2..6.2).contains(&(ta4 / ant)), "TA4/ANT {}", ta4 / ant);
        assert!((6.5..9.0).contains(&(ta4 / olive)), "TA4/Olive {}", ta4 / olive);
        assert!((3.2..4.8).contains(&(ta4 / bv)), "TA4/BV {}", ta4 / bv);
    }

    #[test]
    fn energy_ordering_on_llm_layer() {
        // On a LLaMA-7B FC layer, slower accelerators burn more static
        // energy; total energies must stay within one order of magnitude.
        let em = EnergyModel::paper_28nm();
        let shape = GemmShape::new(4096, 4096, 2048);
        let reports: Vec<_> =
            Baseline::roster().iter().map(|b| b.simulate_gemm(shape, 8, 8, &em)).collect();
        let max = reports.iter().map(|r| r.energy.total()).fold(0.0, f64::max);
        let min = reports.iter().map(|r| r.energy.total()).fold(f64::MAX, f64::min);
        assert!(max / min < 10.0, "spread {max} / {min}");
    }
}
