//! Pattern-source and tensor constructions for the figure drivers, the
//! accuracy tables, and the examples — every seed the evaluation uses,
//! in one place, so `ta-bench` and `examples/*` construct nothing
//! themselves.

use ta_models::{llm_activation_matrix, llm_weight_matrix, QuantGaussianSource, UniformBitSource};
use ta_quant::MatF32;

/// Fig. 10's per-FC-layer weight stream (`weight_bits` ∈ {4, 8}).
pub fn fig10_fc_source(weight_bits: u32, n_tile: usize, layer: usize) -> QuantGaussianSource {
    QuantGaussianSource::new(8, weight_bits, n_tile, 1000 + layer as u64)
}

/// Fig. 11's energy-breakdown layer stream (8-bit `q_proj`).
pub fn fig11_source(n_tile: usize) -> QuantGaussianSource {
    QuantGaussianSource::new(8, 8, n_tile, 11)
}

/// Fig. 12's per-model attention stream (W8A8 QKᵀ / PV).
pub fn fig12_attention_source(n_tile: usize, model: usize) -> QuantGaussianSource {
    QuantGaussianSource::new(8, 8, n_tile, 300 + model as u64)
}

/// Fig. 13's "real-distribution" stream: quantized Gaussian weights.
pub fn fig13_real_source() -> QuantGaussianSource {
    QuantGaussianSource::new(8, 8, 32, 5)
}

/// Fig. 13's uniform-random stream (the DSE's null model).
pub fn fig13_random_source() -> UniformBitSource {
    UniformBitSource::new(8, 256, 5)
}

/// Fig. 14's per-ResNet-layer weight stream at the layer's precision.
pub fn fig14_layer_source(
    weight_bits: u32,
    n_tile: usize,
    layer_index: usize,
) -> QuantGaussianSource {
    QuantGaussianSource::new(8, weight_bits, n_tile, 900 + layer_index as u64)
}

/// Uniform-random stream for the ablation sweeps (`width`/`rows` from
/// the config under test; each sweep fixes its own seed).
pub fn dse_source(width: u32, rows: usize, seed: u64) -> UniformBitSource {
    UniformBitSource::new(width, rows, seed)
}

/// Table 3's synthetic LLM tensor pair for model `i`: the feature
/// dimension scales mildly with the model's hidden size (bigger models
/// are measured on bigger tensors, different seeds).
pub fn table3_tensors(dim: usize, hidden: usize, model: usize) -> (MatF32, MatF32) {
    let k = dim + (hidden / 1024) * 8;
    let w = llm_weight_matrix(dim, k, 100 + model as u64);
    let a = llm_activation_matrix(k, dim / 2, 200 + model as u64);
    (w, a)
}

/// The `llama_layer` example's weight stream (one layer, both
/// precisions off one seed).
pub fn example_llama_source(weight_bits: u32, n_tile: usize) -> QuantGaussianSource {
    QuantGaussianSource::new(8, weight_bits, n_tile, 7)
}

/// The `transformer_block` example's per-FC-layer W4A8 stream.
pub fn block_fc_source(n_tile: usize, layer: usize) -> QuantGaussianSource {
    QuantGaussianSource::new(8, 4, n_tile, 500 + layer as u64)
}

/// The `transformer_block` example's per-attention-GEMM W8A8 stream.
pub fn block_attention_source(n_tile: usize, gemm: usize) -> QuantGaussianSource {
    QuantGaussianSource::new(8, 8, n_tile, 700 + gemm as u64)
}
