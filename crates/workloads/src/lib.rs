//! # ta-workloads — the workload registry and model zoo
//!
//! Every GEMM scenario the repo evaluates is defined **once** here: the
//! bench-smoke roster (the LLaMA-7B `q_proj` family, the Fig. 9 DSE
//! point, the kernel micros, the plan-cache contention sweep, the
//! serving trace), the figure/table/example source constructions, and
//! the grown model zoo (LLaMA block prefill/decode, ResNet conv via
//! im2col, mixture-of-experts batch). `ta-bench` keeps measurement,
//! gating, and JSON; the figure binaries keep rendering; the examples
//! keep narration — none of them construct shapes or pattern sources
//! themselves.
//!
//! The [`Workload`] trait gives each entry a stable name, its shapes at
//! a given [`Scale`], cheap construction ([`Workload::prepare`]), and a
//! bit-exact reference oracle whose fingerprint must not depend on the
//! thread count — the determinism contract the conformance suite
//! enforces across threads 1/2/8.

pub mod contention;
pub mod fig9;
pub mod kernel;
pub mod l7b;
mod registry;
pub mod scale;
pub mod serve;
pub mod sources;
pub mod sweep;
pub mod zoo;

pub use registry::{find, names, registry, Digest, Workload};
pub use scale::Scale;
