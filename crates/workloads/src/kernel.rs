//! The `kernel_micro_*` workloads: deterministic inputs and reference
//! totals for the three word-parallel primitive families the
//! `ta_bitslice::kernels` facade owns — popcount/XOR-popcount sweeps,
//! sub-tile TransRow pattern extraction, and im2col lowering. Every
//! matrix has a non-word-multiple column count, keeping the kernels'
//! masked-tail paths exercised.

use crate::Scale;
use ta_bitslice::{kernels, BinaryMatrix, ConvShape};
use ta_quant::MatI32;

/// Sub-tile extraction window width.
pub const EXTRACT_WIDTH: usize = 8;

/// The micro-workloads' base dimension (scales off the tile knob).
pub fn micro_dim(scale: Scale) -> usize {
    16 * scale.tiles.max(2)
}

/// The bit-plane matrix the popcount and extraction micros sweep:
/// `4n × (8n + 37)` so the final word of every row is a masked tail.
pub fn plane_matrix(scale: Scale) -> BinaryMatrix {
    let n = micro_dim(scale);
    BinaryMatrix::from_fn(4 * n, 8 * n + 37, |r, c| {
        (r.wrapping_mul(31) ^ c.wrapping_mul(7)) % 5 == 0
    })
}

/// The im2col micro's layer: a ResNet-style 3×3 stride-1 pad-1 conv
/// whose feature-map width is not a multiple of anything convenient,
/// plus its deterministic input feature map.
pub fn conv_case(scale: Scale) -> (ConvShape, MatI32) {
    let n = micro_dim(scale);
    let shape = ConvShape {
        in_c: 8,
        out_c: 8,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
        in_h: n / 4,
        in_w: n / 4 + 3,
    };
    let input = MatI32::from_fn(shape.in_c, shape.in_h * shape.in_w, |r, c| {
        ((r * 131 + c * 17) % 19) as i32 - 9
    });
    (shape, input)
}

/// Popcount sweep: per-row counts plus adjacent-row XOR distances (the
/// diff-bit metric the Scoreboard orders rows by). The total is a
/// deterministic kernel output — drift is correctness drift.
pub fn popcount_total(planes: &BinaryMatrix) -> u64 {
    let rows = planes.rows();
    let mut total = 0u64;
    for r in 0..rows {
        total += kernels::popcount_words(planes.words(r));
    }
    for r in 1..rows {
        total += kernels::xor_popcount_words(planes.words(r - 1), planes.words(r));
    }
    total
}

/// TransRow extraction sweep: every width-[`EXTRACT_WIDTH`] sub-tile of
/// the plane matrix through `extract_subtile_patterns_into` over the
/// caller's reused buffer, including the ragged final column window;
/// returns the total set bits across all extracted patterns.
pub fn extract_total(planes: &BinaryMatrix, patterns: &mut Vec<u16>) -> u64 {
    let (rows, cols) = (planes.rows(), planes.cols());
    let width = EXTRACT_WIDTH;
    let mut total = 0u64;
    for row0 in (0..rows).step_by(width) {
        for k0 in (0..cols).step_by(width) {
            kernels::extract_subtile_patterns_into(
                planes,
                row0,
                width,
                k0,
                width.min(cols - k0) as u32,
                patterns,
            );
            total += patterns.iter().map(|p| p.count_ones() as u64).sum::<u64>();
        }
    }
    total
}

/// im2col lowering: returns the nonzero count of the lowered patch
/// matrix (a deterministic kernel output).
pub fn im2col_nonzeros(shape: &ConvShape, input: &MatI32) -> u64 {
    let patches = kernels::im2col_lower(shape, input);
    patches.as_slice().iter().filter(|&&v| v != 0).count() as u64
}
