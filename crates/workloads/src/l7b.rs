//! The LLaMA-7B `q_proj` workload family — the bench suite's centerpiece
//! GEMM, defined once here and consumed by `ta-bench`'s `perf` suite, the
//! criterion benches, and the registry oracle.

use crate::Scale;
use ta_core::{GemmShape, TransArrayConfig};
use ta_models::{llm_activation_matrix_int, llm_weight_matrix_int, QuantGaussianSource};
use ta_quant::MatI32;

/// Seed of the layer's quant-Gaussian pattern stream (shared by the
/// serial, parallel, cached, and warm-replay runs — determinism across
/// those four is a gated contract).
pub const PATTERN_SEED: u64 = 1234;

/// Seed of the functional-execution weight matrix.
pub const EXEC_WEIGHT_SEED: u64 = 2024;

/// Seed of the functional-execution activation matrix.
pub const EXEC_ACT_SEED: u64 = 2025;

/// Seed of the allocation-audit weight matrix.
pub const AUDIT_SEED: u64 = 99;

/// Default plan-cache capacity for the cached LLaMA-7B workload — must
/// exceed the layer's sampled sub-tile count at every scale, or LRU
/// thrashing would zero the warm-replay hit rate.
pub const DEFAULT_PLAN_CACHE_ENTRIES: usize = 4096;

/// The full-scale LLaMA-7B `q_proj` GEMM (hidden 4096, prefill 2048).
pub fn qproj_shape() -> GemmShape {
    GemmShape::new(4096, 4096, 2048)
}

/// The layer's accelerator config: paper W8 design point, sub-tile
/// sampling from `scale`, worker count from `threads`.
pub fn layer_config(scale: Scale, threads: usize) -> TransArrayConfig {
    TransArrayConfig { sample_limit: scale.sample_limit, threads, ..TransArrayConfig::paper_w8() }
}

/// The layer's weight-pattern stream (one fresh stream per simulation —
/// the source is stateful).
pub fn pattern_source(n_tile: usize) -> QuantGaussianSource {
    pattern_source_seeded(n_tile, PATTERN_SEED)
}

/// The layer's pattern stream at an explicit seed — the warm-replay
/// machinery and the criterion benches replay the layer under
/// alternate seeds without re-stating the stream's precisions.
pub fn pattern_source_seeded(n_tile: usize, seed: u64) -> QuantGaussianSource {
    QuantGaussianSource::new(8, 8, n_tile, seed)
}

/// Integer operands of the functional-execution workload
/// (`l7b_qproj_exec`): an LLM-like weight × activation pair at the
/// scale's [`Scale::exec_shape`].
pub fn exec_operands(scale: Scale) -> (MatI32, MatI32) {
    let (n, k, m) = scale.exec_shape();
    (
        llm_weight_matrix_int(n, k, 8, EXEC_WEIGHT_SEED),
        llm_activation_matrix_int(k, m, 8, EXEC_ACT_SEED),
    )
}

/// Weight matrix of the steady-state allocation audit: two tiles' worth
/// of rows, eight width-chunks of columns, on `cfg`'s geometry.
pub fn audit_weights(cfg: &TransArrayConfig) -> MatI32 {
    llm_weight_matrix_int(2 * cfg.n_tile(), 8 * cfg.width as usize, 8, AUDIT_SEED)
}

/// Operands of the dense-GEMM calibration loop the perf suite normalizes
/// wall times against (not a workload itself — the denominator).
pub fn calibration_operands() -> (MatI32, MatI32) {
    let w = MatI32::from_fn(96, 96, |r, c| (((r * 96 + c) as i64 * 40503 % 255) - 127) as i32);
    let x = MatI32::from_fn(96, 96, |r, c| (((r * 96 + c) as i64 * 9973 % 255) - 127) as i32);
    (w, x)
}
