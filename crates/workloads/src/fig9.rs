//! Fig. 9 design-space exploration points: TranSparsity density of a
//! uniform random 0-1 matrix across bit widths and tiling row sizes. The
//! figure driver in `ta-bench` renders the four panels; the registry's
//! `fig9_dse_t8_r256` entry and the perf suite measure the 8-bit /
//! row-256 point.

use ta_core::PatternSource;
use ta_hasse::{Scoreboard, ScoreboardConfig, TileStats};
use ta_models::UniformBitSource;

/// The paper's bit-width sweep.
pub const BIT_WIDTHS: [u32; 7] = [2, 4, 6, 8, 10, 12, 16];

/// The paper's tiling-row-size sweep.
pub const ROW_SIZES: [usize; 7] = [16, 32, 64, 128, 256, 512, 1024];

/// Aggregated stats for one (width, row size) design point on uniform
/// random data. The DSE runs the Scoreboard *uncapped* (the figure's own
/// Dis-5 bars show chains past the hardware cap).
pub fn design_point(width: u32, row_size: usize, tiles: usize, seed: u64) -> TileStats {
    let mut src = UniformBitSource::new(width, row_size, seed);
    let cfg = ScoreboardConfig::unbounded(width);
    let mut total: Option<TileStats> = None;
    for tile in 0..tiles.max(1) {
        let patterns = src.subtile_patterns(tile, 0);
        let sb = Scoreboard::build(cfg, patterns);
        let s = TileStats::from_scoreboard(&sb);
        match &mut total {
            None => total = Some(s),
            Some(t) => t.merge(&s),
        }
    }
    total.expect("at least one tile")
}

/// The suite's gated design point: 8-bit, row size 256, seed 42.
pub fn suite_point(tiles: usize) -> TileStats {
    design_point(8, 256, tiles.max(2), 42)
}
