//! The [`Workload`] trait and the registry enumerating every workload
//! the repo evaluates — the bench roster, the figure DSE point, and the
//! grown model zoo.

use crate::{contention, fig9, kernel, l7b, serve, zoo, Scale};
use ta_bitslice::{conv_direct, flatten_weights, im2col};
use ta_core::{GemmReport, GemmShape, TransArrayConfig, TransitiveArray};
use ta_models::simulate_gemms;
use ta_quant::{gemm_i32, MatI32};

/// An order-insensitive-free (FNV-1a) fingerprint accumulator for
/// reference-oracle outputs. Floats are hashed by their exact bit
/// pattern — the oracles are bit-determinism checks, not tolerances.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    /// Fresh accumulator (FNV-1a offset basis).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs one u64.
    pub fn push_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs one f64 by bit pattern.
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Absorbs a string (oracles tag themselves with their workload
    /// name so deliberately bit-identical entries — serial vs.
    /// parallel — still fingerprint distinctly).
    pub fn push_str(&mut self, s: &str) {
        self.push_u64(s.len() as u64);
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs a full integer matrix.
    pub fn push_mat(&mut self, m: &MatI32) {
        self.push_u64(m.rows() as u64);
        self.push_u64(m.cols() as u64);
        for &v in m.as_slice() {
            self.push_u64(v as u32 as u64);
        }
    }

    /// Absorbs the deterministic fields of a simulation report.
    pub fn push_report(&mut self, rep: &GemmReport) {
        self.push_u64(rep.cycles);
        self.push_u64(rep.total_ops);
        self.push_u64(rep.dense_bit_ops);
        self.push_f64(rep.density);
    }

    /// The accumulated fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One workload the evaluation can run: a stable name, its GEMM
/// shape(s), construction of its pattern sources / operands, and a
/// deterministic reference oracle. Measurement (timing, gating, JSON)
/// stays in `ta-bench`; *what* is measured is defined here.
pub trait Workload: Send + Sync {
    /// Stable name — bench JSON, `--only` filters, and docs join on it.
    fn name(&self) -> &'static str;

    /// One-line description for `bench_smoke --list`.
    fn description(&self) -> &'static str;

    /// The GEMM shape(s) the workload runs at `scale` (empty for
    /// non-GEMM workloads such as the DSE point and the cache sweep).
    fn shapes(&self, scale: Scale) -> Vec<GemmShape>;

    /// Whether the workload produces modeled cycles (vs pure wall/DSE
    /// metrics).
    fn has_cycle_model(&self) -> bool;

    /// Whether the workload is part of the `bench_smoke` regression
    /// gate roster.
    fn gated(&self) -> bool;

    /// Constructs the workload's sources/operands/configs without
    /// running it — the cheap "does it even build at this scale" probe
    /// the conformance suite calls at quick scale.
    fn prepare(&self, scale: Scale);

    /// Runs the workload's reference path and returns a bit-exact
    /// fingerprint of its deterministic outputs. `threads` is the
    /// parallel worker knob (`0` = auto); the fingerprint must not
    /// depend on it — that is the determinism contract the conformance
    /// suite checks across threads 1/2/8.
    fn oracle(&self, scale: Scale, threads: usize) -> u64;
}

// ---------------------------------------------------------------------------
// Bench roster entries
// ---------------------------------------------------------------------------

struct Fig9Dse;

impl Workload for Fig9Dse {
    fn name(&self) -> &'static str {
        "fig9_dse_t8_r256"
    }
    fn description(&self) -> &'static str {
        "Fig. 9 DSE point: Scoreboard density of uniform random data, 8-bit, row size 256"
    }
    fn shapes(&self, _scale: Scale) -> Vec<GemmShape> {
        Vec::new()
    }
    fn has_cycle_model(&self) -> bool {
        false
    }
    fn gated(&self) -> bool {
        true
    }
    fn prepare(&self, _scale: Scale) {
        crate::sources::dse_source(8, 256, 42);
    }
    fn oracle(&self, scale: Scale, _threads: usize) -> u64 {
        let stats = fig9::suite_point(scale.tiles);
        let mut d = Digest::new();
        d.push_str(self.name());
        d.push_u64(stats.total_ops);
        d.push_f64(stats.density());
        d.finish()
    }
}

#[derive(Clone, Copy)]
enum L7bMode {
    Serial,
    Parallel,
    Cached,
    Exec,
}

struct L7bQproj(L7bMode);

impl L7bQproj {
    fn simulate(&self, cfg: TransArrayConfig) -> GemmReport {
        let ta = TransitiveArray::new(cfg);
        let mut src = l7b::pattern_source(ta.config().n_tile());
        ta.simulate_layer(l7b::qproj_shape(), &mut src)
    }
}

impl Workload for L7bQproj {
    fn name(&self) -> &'static str {
        match self.0 {
            L7bMode::Serial => "l7b_qproj_serial",
            L7bMode::Parallel => "l7b_qproj_parallel",
            L7bMode::Cached => "l7b_qproj_cached",
            L7bMode::Exec => "l7b_qproj_exec",
        }
    }
    fn description(&self) -> &'static str {
        match self.0 {
            L7bMode::Serial => "LLaMA-7B q_proj layer simulation, one worker",
            L7bMode::Parallel => "LLaMA-7B q_proj layer simulation, parallel workers",
            L7bMode::Cached => "LLaMA-7B q_proj with the shared plan cache (warm replay)",
            L7bMode::Exec => "LLaMA-7B q_proj functional bit-exact execution (scaled shape)",
        }
    }
    fn shapes(&self, scale: Scale) -> Vec<GemmShape> {
        match self.0 {
            L7bMode::Exec => {
                let (n, k, m) = scale.exec_shape();
                vec![GemmShape::new(n, k, m)]
            }
            _ => vec![l7b::qproj_shape()],
        }
    }
    fn has_cycle_model(&self) -> bool {
        true
    }
    fn gated(&self) -> bool {
        true
    }
    fn prepare(&self, scale: Scale) {
        let cfg = l7b::layer_config(scale, 1);
        l7b::pattern_source(cfg.n_tile());
        if matches!(self.0, L7bMode::Exec) {
            l7b::exec_operands(scale);
        }
    }
    fn oracle(&self, scale: Scale, threads: usize) -> u64 {
        let mut d = Digest::new();
        d.push_str(self.name());
        match self.0 {
            L7bMode::Serial => d.push_report(&self.simulate(l7b::layer_config(scale, 1))),
            L7bMode::Parallel => d.push_report(&self.simulate(l7b::layer_config(scale, threads))),
            L7bMode::Cached => {
                let ta = TransitiveArray::new(TransArrayConfig {
                    plan_cache: l7b::DEFAULT_PLAN_CACHE_ENTRIES,
                    ..l7b::layer_config(scale, threads)
                });
                let n_tile = ta.config().n_tile();
                let warm = ta.simulate_layer(l7b::qproj_shape(), &mut l7b::pattern_source(n_tile));
                let before = ta.plan_cache_stats().expect("cached mode enables the plan cache");
                let replay =
                    ta.simulate_layer(l7b::qproj_shape(), &mut l7b::pattern_source(n_tile));
                let hit_rate = ta.plan_cache_stats().unwrap().delta(&before).hit_rate();
                assert_eq!(warm, replay, "warm plan-cached replay must stay bit-identical");
                d.push_report(&replay);
                d.push_f64(hit_rate);
            }
            L7bMode::Exec => {
                let (w, x) = l7b::exec_operands(scale);
                let ta = TransitiveArray::new(l7b::layer_config(scale, threads));
                let (out, rep) = ta.execute_gemm(&w, &x);
                assert_eq!(out, gemm_i32(&w, &x), "functional engine must stay bit-exact");
                d.push_mat(&out);
                d.push_report(&rep);
            }
        }
        d.finish()
    }
}

struct ServeOpenLoop;

impl Workload for ServeOpenLoop {
    fn name(&self) -> &'static str {
        "serve_open_loop"
    }
    fn description(&self) -> &'static str {
        "ta-serve frontend under a seeded open-loop Poisson trace, bit-checked"
    }
    fn shapes(&self, _scale: Scale) -> Vec<GemmShape> {
        serve::shapes().to_vec()
    }
    fn has_cycle_model(&self) -> bool {
        true
    }
    fn gated(&self) -> bool {
        true
    }
    fn prepare(&self, scale: Scale) {
        serve::session();
        serve::trace(scale);
    }
    fn oracle(&self, scale: Scale, _threads: usize) -> u64 {
        // The serving stack fixes its own worker count; the oracle is
        // the direct serial execution of every trace request — exactly
        // the reference the measured workload bit-checks against.
        let session = serve::session();
        let mut d = Digest::new();
        d.push_str(self.name());
        for arrival in &serve::trace(scale) {
            let resp =
                session.run_serial(serve::request(arrival)).expect("trace requests are valid");
            if let Some(out) = &resp.output {
                d.push_mat(out);
            }
            d.push_report(&resp.report);
        }
        d.finish()
    }
}

struct ServeOverload;

impl Workload for ServeOverload {
    fn name(&self) -> &'static str {
        "serve_overload"
    }
    fn description(&self) -> &'static str {
        "ta-serve under a scripted storm: SLO rejects, deadline sheds, injected worker panics"
    }
    fn shapes(&self, _scale: Scale) -> Vec<GemmShape> {
        serve::shapes().to_vec()
    }
    fn has_cycle_model(&self) -> bool {
        true
    }
    fn gated(&self) -> bool {
        true
    }
    fn prepare(&self, scale: Scale) {
        serve::session();
        serve::overload_arrivals(scale);
        serve::overload_request();
    }
    fn oracle(&self, scale: Scale, _threads: usize) -> u64 {
        // Fingerprints the workload's *content* — the storm trace's
        // requests plus the fixed recovery-wave request — by direct
        // serial execution. The overload counters themselves (rejects,
        // sheds, worker losses) are scripted on the virtual clock and
        // gated exactly in ta-bench; the oracle pins down the operands
        // those counters are measured over.
        let session = serve::session();
        let mut d = Digest::new();
        d.push_str(self.name());
        for arrival in &serve::overload_arrivals(scale) {
            let resp =
                session.run_serial(serve::request(arrival)).expect("trace requests are valid");
            if let Some(out) = &resp.output {
                d.push_mat(out);
            }
            d.push_report(&resp.report);
        }
        let wave = session.run_serial(serve::overload_request()).expect("wave request is valid");
        if let Some(out) = &wave.output {
            d.push_mat(out);
        }
        d.push_report(&wave.report);
        d.finish()
    }
}

#[derive(Clone, Copy)]
enum KernelMode {
    Popcount,
    Extract,
    Im2col,
}

struct KernelMicro(KernelMode);

impl Workload for KernelMicro {
    fn name(&self) -> &'static str {
        match self.0 {
            KernelMode::Popcount => "kernel_micro_popcount",
            KernelMode::Extract => "kernel_micro_extract",
            KernelMode::Im2col => "kernel_micro_im2col",
        }
    }
    fn description(&self) -> &'static str {
        match self.0 {
            KernelMode::Popcount => "word-parallel popcount / XOR-popcount row sweep",
            KernelMode::Extract => "sub-tile TransRow pattern extraction sweep",
            KernelMode::Im2col => "im2col lowering of a ragged-width conv layer",
        }
    }
    fn shapes(&self, scale: Scale) -> Vec<GemmShape> {
        match self.0 {
            KernelMode::Im2col => {
                let (shape, _) = kernel::conv_case(scale);
                let (n, k, m) = shape.gemm_dims();
                vec![GemmShape::new(n, k, m)]
            }
            _ => Vec::new(),
        }
    }
    fn has_cycle_model(&self) -> bool {
        false
    }
    fn gated(&self) -> bool {
        true
    }
    fn prepare(&self, scale: Scale) {
        match self.0 {
            KernelMode::Im2col => {
                kernel::conv_case(scale);
            }
            _ => {
                kernel::plane_matrix(scale);
            }
        }
    }
    fn oracle(&self, scale: Scale, _threads: usize) -> u64 {
        let mut d = Digest::new();
        d.push_str(self.name());
        let total = match self.0 {
            KernelMode::Popcount => kernel::popcount_total(&kernel::plane_matrix(scale)),
            KernelMode::Extract => {
                let mut patterns = Vec::new();
                kernel::extract_total(&kernel::plane_matrix(scale), &mut patterns)
            }
            KernelMode::Im2col => {
                let (shape, input) = kernel::conv_case(scale);
                kernel::im2col_nonzeros(&shape, &input)
            }
        };
        d.push_u64(total);
        d.finish()
    }
}

struct PlanCacheContention;

impl Workload for PlanCacheContention {
    fn name(&self) -> &'static str {
        "plan_cache_contention"
    }
    fn description(&self) -> &'static str {
        "sharded plan-cache hit path hammered from 1/2/8/16 threads at hit rate 1.0"
    }
    fn shapes(&self, _scale: Scale) -> Vec<GemmShape> {
        Vec::new()
    }
    fn has_cycle_model(&self) -> bool {
        false
    }
    fn gated(&self) -> bool {
        true
    }
    fn prepare(&self, _scale: Scale) {
        contention::prewarmed_cache(0);
    }
    fn oracle(&self, _scale: Scale, _threads: usize) -> u64 {
        // Thread count shapes only throughput, never residency: the
        // fingerprint covers the pre-warmed cache's deterministic state.
        let (cache, keys) = contention::prewarmed_cache(0);
        let mut d = Digest::new();
        d.push_str(self.name());
        d.push_u64(cache.len() as u64);
        for key in &keys {
            d.push_u64(u64::from(cache.get(key).is_some()));
        }
        d.finish()
    }
}

// ---------------------------------------------------------------------------
// Model-zoo entries
// ---------------------------------------------------------------------------

fn digest_batch(d: &mut Digest, reports: &[GemmReport]) {
    for rep in reports {
        d.push_report(rep);
    }
}

struct LlamaBlockPrefill;

impl Workload for LlamaBlockPrefill {
    fn name(&self) -> &'static str {
        "llama_block_prefill"
    }
    fn description(&self) -> &'static str {
        "all seven FC GEMMs of a LLaMA-1-7B block at prefill length, one batch"
    }
    fn shapes(&self, scale: Scale) -> Vec<GemmShape> {
        zoo::prefill_layers(scale).iter().map(|l| l.shape).collect()
    }
    fn has_cycle_model(&self) -> bool {
        true
    }
    fn gated(&self) -> bool {
        false
    }
    fn prepare(&self, scale: Scale) {
        zoo::block_config(scale, 1);
        assert_eq!(zoo::prefill_layers(scale).len(), 7);
    }
    fn oracle(&self, scale: Scale, threads: usize) -> u64 {
        let ta = TransitiveArray::new(zoo::block_config(scale, threads));
        let report = simulate_gemms(&ta, &zoo::prefill_layers(scale), zoo::PREFILL_SEED);
        let mut d = Digest::new();
        d.push_str(self.name());
        digest_batch(&mut d, &report.reports);
        d.push_u64(report.total_cycles);
        d.push_u64(report.total_macs);
        d.finish()
    }
}

struct LlamaBlockDecode;

impl Workload for LlamaBlockDecode {
    fn name(&self) -> &'static str {
        "llama_block_decode"
    }
    fn description(&self) -> &'static str {
        "QK^T decode steps over a growing KV cache, executed bit-exactly"
    }
    fn shapes(&self, scale: Scale) -> Vec<GemmShape> {
        (0..zoo::decode_steps(scale))
            .map(|t| GemmShape::new(zoo::PREFILL_KV + t + 1, zoo::HEAD_DIM, 1))
            .collect()
    }
    fn has_cycle_model(&self) -> bool {
        true
    }
    fn gated(&self) -> bool {
        false
    }
    fn prepare(&self, scale: Scale) {
        let stream = zoo::DecodeStream::new(0xA77E, zoo::decode_steps(scale));
        stream.step_request(0);
    }
    fn oracle(&self, scale: Scale, threads: usize) -> u64 {
        let stream = zoo::DecodeStream::new(0xA77E, zoo::decode_steps(scale));
        let ta = TransitiveArray::new(TransArrayConfig { threads, ..zoo::decode_config() });
        let mut d = Digest::new();
        d.push_str(self.name());
        for t in 0..stream.steps() {
            let (k, q) = stream.step_operands(t);
            let (out, rep) = ta.execute_gemm(&k, &q);
            assert_eq!(out, gemm_i32(&k, &q), "decode QK^T must stay bit-exact");
            d.push_mat(&out);
            d.push_report(&rep);
        }
        d.finish()
    }
}

struct ResnetConvIm2col;

impl Workload for ResnetConvIm2col {
    fn name(&self) -> &'static str {
        "resnet_conv_im2col"
    }
    fn description(&self) -> &'static str {
        "ResNet conv layer lowered via im2col, executed against the direct conv"
    }
    fn shapes(&self, scale: Scale) -> Vec<GemmShape> {
        let (n, k, m) = zoo::resnet_conv_shape(scale).gemm_dims();
        vec![GemmShape::new(n, k, m)]
    }
    fn has_cycle_model(&self) -> bool {
        true
    }
    fn gated(&self) -> bool {
        false
    }
    fn prepare(&self, scale: Scale) {
        let shape = zoo::resnet_conv_shape(scale);
        zoo::resnet_operands(&shape, zoo::RESNET_SEED);
    }
    fn oracle(&self, scale: Scale, threads: usize) -> u64 {
        let shape = zoo::resnet_conv_shape(scale);
        let (weights, input) = zoo::resnet_operands(&shape, zoo::RESNET_SEED);
        let patches = im2col(&shape, &input);
        let wmat = flatten_weights(&shape, &weights);
        let ta = TransitiveArray::new(TransArrayConfig { threads, ..zoo::resnet_config() });
        let (out, rep) = ta.execute_gemm(&wmat, &patches);
        assert_eq!(
            out,
            conv_direct(&shape, &weights, &input),
            "im2col conv on TransArray must be exact"
        );
        let mut d = Digest::new();
        d.push_str(self.name());
        d.push_mat(&out);
        d.push_report(&rep);
        d.finish()
    }
}

struct MoeExperts;

impl Workload for MoeExperts {
    fn name(&self) -> &'static str {
        "moe_experts"
    }
    fn description(&self) -> &'static str {
        "mixture-of-experts batch: many small expert FFN GEMMs at once"
    }
    fn shapes(&self, scale: Scale) -> Vec<GemmShape> {
        zoo::moe_layers(scale).iter().map(|l| l.shape).collect()
    }
    fn has_cycle_model(&self) -> bool {
        true
    }
    fn gated(&self) -> bool {
        false
    }
    fn prepare(&self, scale: Scale) {
        zoo::moe_config(scale, 1);
        assert!(zoo::moe_layers(scale).len() >= 8, "MoE means many small GEMMs");
    }
    fn oracle(&self, scale: Scale, threads: usize) -> u64 {
        let ta = TransitiveArray::new(zoo::moe_config(scale, threads));
        let report = simulate_gemms(&ta, &zoo::moe_layers(scale), zoo::MOE_SEED);
        let mut d = Digest::new();
        d.push_str(self.name());
        digest_batch(&mut d, &report.reports);
        d.push_u64(report.total_cycles);
        d.push_u64(report.total_macs);
        d.finish()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Every workload the evaluation knows, bench-roster entries first (in
/// gate order), then the model zoo.
pub fn registry() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Fig9Dse),
        Box::new(L7bQproj(L7bMode::Serial)),
        Box::new(L7bQproj(L7bMode::Parallel)),
        Box::new(L7bQproj(L7bMode::Cached)),
        Box::new(L7bQproj(L7bMode::Exec)),
        Box::new(ServeOpenLoop),
        Box::new(ServeOverload),
        Box::new(KernelMicro(KernelMode::Popcount)),
        Box::new(KernelMicro(KernelMode::Extract)),
        Box::new(KernelMicro(KernelMode::Im2col)),
        Box::new(PlanCacheContention),
        Box::new(LlamaBlockPrefill),
        Box::new(LlamaBlockDecode),
        Box::new(ResnetConvIm2col),
        Box::new(MoeExperts),
    ]
}

/// Looks a workload up by its stable name.
pub fn find(name: &str) -> Option<Box<dyn Workload>> {
    registry().into_iter().find(|w| w.name() == name)
}

/// Every registered workload name, registry order.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|w| w.name()).collect()
}
