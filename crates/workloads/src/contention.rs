//! The `plan_cache_contention` workload definition: a pre-warmed sharded
//! plan cache sized so every shard can hold every key, hammered from
//! several threads at a forced 1.0 hit rate. The measurement loop lives
//! in `ta-bench`; the cache/key construction and the residency contract
//! live here.

use std::sync::Arc;
use ta_hasse::{CachedPlan, PlanKey, ScoreboardConfig, SharedPlanCache};

/// Thread counts the contention workload sweeps.
pub const THREADS: [usize; 4] = [1, 2, 8, 16];

/// Lookups each contention thread performs per sweep point.
pub const LOOKUPS_PER_THREAD: u64 = 20_000;

/// Distinct keys the contention workload pre-warms. The cache is sized
/// so **every shard** can hold all of them, so residency never depends
/// on how the hash spreads keys across shards.
pub const KEYS: usize = 64;

/// The Scoreboard config the contention keys are built against.
pub fn scoreboard_config() -> ScoreboardConfig {
    ScoreboardConfig::with_width(8)
}

/// Mirrors `SharedPlanCache::with_shards`'s rounding so capacity is
/// sized for the shard count the cache will actually use (`0` = auto).
pub fn shard_count(shards: usize) -> usize {
    match shards {
        0 => SharedPlanCache::default_shard_count(),
        n => n.next_power_of_two(),
    }
}

/// Builds and pre-warms the contention cache: [`KEYS`] distinct plan
/// keys, capacity `shard count × KEYS` so even a degenerate hash cannot
/// evict. Returns the cache and the keys in insertion order.
///
/// # Panics
///
/// Panics if pre-warm evicts or leaves a key non-resident — capacity
/// sizing broke, and the forced 1.0 hit rate the workload measures
/// would silently turn into a miss-path benchmark.
pub fn prewarmed_cache(shards: usize) -> (SharedPlanCache, Vec<PlanKey>) {
    let cfg = scoreboard_config();
    let shard_count = shard_count(shards);
    let cache = SharedPlanCache::with_shards(shard_count * KEYS, shard_count);
    let keys: Vec<PlanKey> = (0..KEYS as u16)
        .map(|i| {
            let patterns = [i, i.wrapping_mul(37) % 256, 255 - i, (i * 3) % 256];
            let key = PlanKey::new(&cfg, None, &patterns);
            cache.insert(key.clone(), Arc::new(CachedPlan::build_dynamic(&cfg, &patterns, false)));
            key
        })
        .collect();
    let warm = cache.stats();
    assert_eq!(warm.evictions, 0, "pre-warm must not evict: {warm}");
    assert_eq!(cache.len(), KEYS, "every pre-warmed key must be resident");
    (cache, keys)
}
