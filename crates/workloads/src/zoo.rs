//! The grown model zoo: LLaMA block prefill and decode (growing KV
//! length), a ResNet conv lowered via im2col at realistic shapes, and a
//! mixture-of-experts many-small-GEMMs batch — registry entries beyond
//! the original bench roster, shared by the examples and the sweep.

use crate::Scale;
use ta_bitslice::ConvShape;
use ta_core::{GemmRequest, GemmShape, TransArrayConfig};
use ta_models::{LlamaConfig, NamedGemm, StreamRng};
use ta_quant::MatI32;

// ---------------------------------------------------------------------------
// LLaMA block prefill
// ---------------------------------------------------------------------------

/// Seed of the prefill block's per-layer weight streams.
pub const PREFILL_SEED: u64 = 0xB10C;

/// The prefill entry's model (the paper's LLaMA-1-7B).
pub fn prefill_model() -> LlamaConfig {
    LlamaConfig::l1_7b()
}

/// Prefill sequence length per scale: the paper's 2048 at full, a CI
/// slice at quick, tiny for unit tests.
pub fn prefill_seq(scale: Scale) -> usize {
    if scale == Scale::full() {
        ta_models::PAPER_SEQ_LEN
    } else if scale == Scale::quick() {
        128
    } else {
        32
    }
}

/// The block workloads' accelerator config (paper W8, scale sampling).
pub fn block_config(scale: Scale, threads: usize) -> TransArrayConfig {
    TransArrayConfig { sample_limit: scale.sample_limit, threads, ..TransArrayConfig::paper_w8() }
}

/// The prefill block's seven FC GEMMs at `scale`'s sequence length.
pub fn prefill_layers(scale: Scale) -> Vec<NamedGemm> {
    prefill_model().fc_layers(prefill_seq(scale))
}

// ---------------------------------------------------------------------------
// LLaMA block decode (growing KV length — promoted from the
// attention_online example)
// ---------------------------------------------------------------------------

/// Attention head dimension of the decode stream.
pub const HEAD_DIM: usize = 32;

/// Key rows present before the first decode step.
pub const PREFILL_KV: usize = 16;

/// Decode steps per scale (each step grows the Key cache by one row).
pub fn decode_steps(scale: Scale) -> usize {
    if scale == Scale::full() {
        24
    } else if scale == Scale::quick() {
        8
    } else {
        4
    }
}

/// The decode workload's design point: the dynamic-Scoreboard config of
/// the `attention_online` example, sub-tile knobs scaled for one head.
pub fn decode_config() -> TransArrayConfig {
    TransArrayConfig::builder()
        .units(2)
        .m_tile(16)
        .sample_limit(0)
        .build()
        .expect("decode workload config is valid")
}

/// One tenant's runtime-generated attention stream: the full Key cache
/// (prefill + every decoded token) and one query vector per step. The
/// Key cache exists only at runtime, so the Scoreboard builds each
/// sub-tile's SI dynamically — the capability this workload guards.
pub struct DecodeStream {
    k_cache: MatI32,
    queries: Vec<MatI32>,
}

impl DecodeStream {
    /// Synthesizes a stream able to serve `steps` decode steps.
    pub fn new(seed: u64, steps: usize) -> Self {
        let mut rng = StreamRng::new(seed);
        let mut int8 =
            move || -> i32 { ((rng.next_gaussian() * 39.0).round() as i32).clamp(-127, 127) };
        let k_cache = MatI32::from_fn(PREFILL_KV + steps, HEAD_DIM, |_, _| int8());
        let queries = (0..steps).map(|_| MatI32::from_fn(HEAD_DIM, 1, |_, _| int8())).collect();
        Self { k_cache, queries }
    }

    /// Decode steps this stream can serve.
    pub fn steps(&self) -> usize {
        self.queries.len()
    }

    /// The QKᵀ operands for decode step `t`: the Key rows seen so far
    /// (`PREFILL_KV + t + 1` of them) and this step's query.
    pub fn step_operands(&self, t: usize) -> (MatI32, MatI32) {
        let rows = PREFILL_KV + t + 1;
        let k = MatI32::from_fn(rows, HEAD_DIM, |r, c| self.k_cache.get(r, c));
        (k, self.queries[t].clone())
    }

    /// The QKᵀ request for decode step `t` (the serving-path form).
    pub fn step_request(&self, t: usize) -> GemmRequest {
        let (k, q) = self.step_operands(t);
        GemmRequest::execute(k, q)
    }
}

// ---------------------------------------------------------------------------
// ResNet conv via im2col
// ---------------------------------------------------------------------------

/// Seed of the conv entry's weight/input synthesis.
pub const RESNET_SEED: u64 = 0xC0DE;

/// The conv entry's layer per scale: a realistic ResNet-18 conv2_x
/// block at full scale, the long-standing example shape at quick, tiny
/// for unit tests. All are 3×3 stride-1 pad-1 (the im2col hot case).
pub fn resnet_conv_shape(scale: Scale) -> ConvShape {
    if scale == Scale::full() {
        ConvShape { in_c: 64, out_c: 64, kh: 3, kw: 3, stride: 1, pad: 1, in_h: 28, in_w: 28 }
    } else if scale == Scale::quick() {
        ConvShape { in_c: 8, out_c: 16, kh: 3, kw: 3, stride: 1, pad: 1, in_h: 14, in_w: 14 }
    } else {
        ConvShape { in_c: 4, out_c: 8, kh: 3, kw: 3, stride: 1, pad: 1, in_h: 8, in_w: 8 }
    }
}

/// The conv entry's weights and input feature map: int8-ish Gaussians,
/// weights narrow (the paper quantizes ResNet interiors to 4 bits),
/// drawn from one sequential stream so the pair is one deterministic
/// artifact.
pub fn resnet_operands(shape: &ConvShape, seed: u64) -> (MatI32, MatI32) {
    let mut rng = StreamRng::new(seed);
    let mut gauss = move |spread: f32, clamp: i32| -> i32 {
        ((rng.next_gaussian() * spread).round() as i32).clamp(-clamp, clamp)
    };
    let weights =
        MatI32::from_fn(shape.out_c, shape.in_c * shape.kh * shape.kw, |_, _| gauss(2.2, 7));
    let input = MatI32::from_fn(shape.in_c, shape.in_h * shape.in_w, |_, _| gauss(39.0, 127));
    (weights, input)
}

/// The conv workload's accelerator config (4-bit weights, small tiles —
/// the `resnet_conv` example's design point).
pub fn resnet_config() -> TransArrayConfig {
    TransArrayConfig { units: 2, m_tile: 16, sample_limit: 0, ..TransArrayConfig::paper_w4() }
}

// ---------------------------------------------------------------------------
// Mixture-of-experts: many small GEMMs in one batch
// ---------------------------------------------------------------------------

/// Seed of the MoE entry's per-layer weight streams.
pub const MOE_SEED: u64 = 0x30E5;

/// Experts in the MoE batch per scale.
pub fn moe_experts(scale: Scale) -> usize {
    if scale == Scale::full() {
        16
    } else if scale == Scale::quick() {
        8
    } else {
        4
    }
}

/// The MoE batch: every expert contributes an up- and a down-projection
/// on its routed token slice — many small GEMMs, the batch scheduler's
/// worst case (lots of jobs, little work each).
pub fn moe_layers(scale: Scale) -> Vec<NamedGemm> {
    let (hidden, inter, tokens) = if scale == Scale::full() {
        (256, 512, 32)
    } else if scale == Scale::quick() {
        (128, 256, 16)
    } else {
        (64, 128, 8)
    };
    let mut layers = Vec::new();
    for _ in 0..moe_experts(scale) {
        layers.push(NamedGemm::new("expert_up", GemmShape::new(inter, hidden, tokens)));
        layers.push(NamedGemm::new("expert_down", GemmShape::new(hidden, inter, tokens)));
    }
    layers
}

/// The MoE workload's accelerator config (paper W8, scale sampling).
pub fn moe_config(scale: Scale, threads: usize) -> TransArrayConfig {
    TransArrayConfig { sample_limit: scale.sample_limit, threads, ..TransArrayConfig::paper_w8() }
}
