//! The `serve_open_loop` workload definition: the design point, shape
//! mix, batching policy, and seeded Poisson trace the serving-frontend
//! workload replays. The timed serving loop lives in `ta-bench`; the
//! request synthesis also backs `ta-serve`'s own loadgen.

use crate::Scale;
use ta_core::{GemmRequest, GemmShape, Session, TransArrayConfig};
use ta_serve::loadgen::{poisson_trace, request_for, Arrival};
use ta_serve::BatchPolicy;

/// Weight precision of the serving workload's requests.
pub const WEIGHT_BITS: u32 = 4;

/// Activation precision of the serving workload's requests.
pub const ACT_BITS: u32 = 8;

/// Worker threads behind the serving workload's frontend.
pub const WORKERS: usize = 2;

/// Seed of the open-loop Poisson arrival trace.
pub const TRACE_SEED: u64 = 0x5E_12_7E;

/// The trace's shape mix — small enough to serve hundreds per pass,
/// varied enough to exercise the batcher's shape buckets and padding.
pub fn shapes() -> [GemmShape; 4] {
    [
        GemmShape::new(8, 16, 3),
        GemmShape::new(8, 16, 4),
        GemmShape::new(12, 16, 5),
        GemmShape::new(16, 32, 2),
    ]
}

/// Requests in the trace: 32 at the tiny test scale, 48 at quick, 256
/// at full (scaled off the existing tile knob).
pub fn request_count(scale: Scale) -> usize {
    scale.tiles.max(2) * 16
}

/// The seeded open-loop Poisson arrival trace.
pub fn trace(scale: Scale) -> Vec<Arrival> {
    poisson_trace(TRACE_SEED, request_count(scale), 200, 4, &shapes())
}

/// The batcher policy (width-quantized buckets so padding is exercised).
pub fn policy() -> BatchPolicy {
    BatchPolicy { max_batch: 8, max_delay_ns: 50_000, quantum_m: 4 }
}

/// The small design point the serving workload runs on — sized so one
/// request is cheap enough to serve hundreds per pass at every scale.
pub fn session() -> Session {
    let cfg = TransArrayConfig::builder()
        .width(4)
        .max_transrows(16)
        .weight_bits(WEIGHT_BITS)
        .units(2)
        .m_tile(4)
        .sample_limit(0)
        .build()
        .expect("serve workload config is valid");
    Session::new(cfg).expect("serve workload session opens")
}

/// The executable request for one trace arrival at the workload's
/// precisions.
pub fn request(arrival: &Arrival) -> GemmRequest {
    request_for(arrival, WEIGHT_BITS, ACT_BITS)
}
