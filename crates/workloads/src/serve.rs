//! The `serve_open_loop` and `serve_overload` workload definitions:
//! design points, shape mixes, batching/SLO policies, and seeded
//! traces the serving-frontend workloads replay. The timed serving
//! loops live in `ta-bench`; the request synthesis also backs
//! `ta-serve`'s own loadgen.

use crate::Scale;
use ta_core::{GemmRequest, GemmShape, Session, TransArrayConfig};
use ta_serve::loadgen::{overload_trace, poisson_trace, request_for, Arrival};
use ta_serve::{BatchPolicy, ClockMode, FaultConfig, FaultSite, ServerConfig, SloPolicy};

/// Weight precision of the serving workload's requests.
pub const WEIGHT_BITS: u32 = 4;

/// Activation precision of the serving workload's requests.
pub const ACT_BITS: u32 = 8;

/// Worker threads behind the serving workload's frontend.
pub const WORKERS: usize = 2;

/// Seed of the open-loop Poisson arrival trace.
pub const TRACE_SEED: u64 = 0x5E_12_7E;

/// The trace's shape mix — small enough to serve hundreds per pass,
/// varied enough to exercise the batcher's shape buckets and padding.
pub fn shapes() -> [GemmShape; 4] {
    [
        GemmShape::new(8, 16, 3),
        GemmShape::new(8, 16, 4),
        GemmShape::new(12, 16, 5),
        GemmShape::new(16, 32, 2),
    ]
}

/// Requests in the trace: 32 at the tiny test scale, 48 at quick, 256
/// at full (scaled off the existing tile knob).
pub fn request_count(scale: Scale) -> usize {
    scale.tiles.max(2) * 16
}

/// The seeded open-loop Poisson arrival trace.
pub fn trace(scale: Scale) -> Vec<Arrival> {
    poisson_trace(TRACE_SEED, request_count(scale), 200, 4, &shapes())
}

/// The batcher policy (width-quantized buckets so padding is exercised).
pub fn policy() -> BatchPolicy {
    BatchPolicy { max_batch: 8, max_delay_ns: 50_000, quantum_m: 4 }
}

/// The small design point the serving workload runs on — sized so one
/// request is cheap enough to serve hundreds per pass at every scale.
pub fn session() -> Session {
    let cfg = TransArrayConfig::builder()
        .width(4)
        .max_transrows(16)
        .weight_bits(WEIGHT_BITS)
        .units(2)
        .m_tile(4)
        .sample_limit(0)
        .build()
        .expect("serve workload config is valid");
    Session::new(cfg).expect("serve workload session opens")
}

/// The executable request for one trace arrival at the workload's
/// precisions.
pub fn request(arrival: &Arrival) -> GemmRequest {
    request_for(arrival, WEIGHT_BITS, ACT_BITS)
}

// --- serve_overload: the scripted-overload design point -------------------
//
// The `serve_overload` workload replays a storm trace against a server
// with per-tenant SLOs and injected worker panics, on the virtual
// clock so every counter (rejects, sheds, worker losses, goodput) is a
// pure function of the constants below. The phase protocol lives in
// `ta-bench`; this module owns the design point so the bench, the zoo
// oracle, and the conformance suite agree on it.

/// Seed of the overload storm trace *and* the fault-injection stream.
pub const OVERLOAD_SEED: u64 = 0x0DE2_10AD;

/// Injected worker-panic probability, in parts per million (25%).
pub const OVERLOAD_PANIC_PPM: u32 = 250_000;

/// Per-tenant queue-depth limit during the overload replay. The storm
/// phase submits with the clock frozen, so any tenant drawing more
/// than this many trace arrivals takes deterministic rejections.
pub const OVERLOAD_DEPTH: u64 = 8;

/// Per-request latency budget (logical ns). The storm phase blows it
/// for every admitted request by advancing the virtual clock past it.
pub const OVERLOAD_BUDGET_NS: u64 = 1_000_000;

/// Requests per recovery wave — one shape bucket, one batch job, one
/// worker, so panic decisions land on a deterministic request order.
pub const OVERLOAD_WAVE: usize = 8;

/// Tenants in the overload storm trace.
pub const OVERLOAD_TENANTS: u32 = 4;

/// Recovery waves replayed after the storm: 4 at the tiny test scale,
/// 6 at quick, 32 at full (scaled off the existing tile knob).
pub fn overload_waves(scale: Scale) -> usize {
    scale.tiles.max(2) * 2
}

/// The seeded storm trace the overload phase submits with the clock
/// frozen. Reuses the open-loop request count so trace volume scales
/// with the rest of the suite.
pub fn overload_arrivals(scale: Scale) -> Vec<Arrival> {
    overload_trace(OVERLOAD_SEED, request_count(scale), 200, 16, 6, OVERLOAD_TENANTS, &shapes())
}

/// The fixed request every recovery wave replays (tenant 0, one shape
/// → one batch bucket per wave).
pub fn overload_request() -> GemmRequest {
    let arrival =
        Arrival { at_ns: 0, tenant: 0, shape: GemmShape::new(8, 16, 4), seed: OVERLOAD_SEED };
    request_for(&arrival, WEIGHT_BITS, ACT_BITS)
}

/// The overload server configuration: virtual clock, park-only batcher
/// (deadline flushes drive all dispatch, so no storm bucket ever
/// size-flushes into a worker and perturbs the deterministic reject
/// counts), per-tenant SLO, and worker-panic injection.
pub fn overload_config() -> ServerConfig {
    ServerConfig {
        workers: WORKERS,
        policy: BatchPolicy { max_batch: 1 << 20, max_delay_ns: 100_000, quantum_m: 1 },
        slo: SloPolicy { max_queue_depth: OVERLOAD_DEPTH, latency_budget_ns: OVERLOAD_BUDGET_NS },
        faults: Some(
            FaultConfig::new(OVERLOAD_SEED, OVERLOAD_PANIC_PPM).with_site(FaultSite::WorkerPanic),
        ),
        clock: ClockMode::Virtual,
    }
}
