//! Experiment scale control: full paper-scale runs vs quick smoke runs.

/// How much work each experiment does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Random tiles averaged per design point (Fig. 9 / Fig. 13 sweeps).
    pub tiles: usize,
    /// Sub-tile sampling cap for layer simulations (Fig. 10/12/14).
    pub sample_limit: usize,
    /// Matrix side used by the Table 3 accuracy study.
    pub accuracy_dim: usize,
}

impl Scale {
    /// Paper-scale settings.
    pub fn full() -> Self {
        Self { tiles: 16, sample_limit: 1024, accuracy_dim: 192 }
    }

    /// Smoke-test settings (CI, criterion).
    pub fn quick() -> Self {
        Self { tiles: 3, sample_limit: 96, accuracy_dim: 64 }
    }

    /// `(n, k, m)` of the functional-execution bench GEMM
    /// (`l7b_qproj_exec`): an LLaMA-7B `q_proj`-shaped layer scaled down
    /// so the exact bit-level functional engine finishes in bench time —
    /// full scale keeps the paper's 32 sub-tile columns per k-chunk
    /// aspect, quick scale shrinks further for CI.
    pub fn exec_shape(&self) -> (usize, usize, usize) {
        if *self == Self::full() {
            (512, 512, 128)
        } else if *self == Self::quick() {
            (128, 128, 64)
        } else {
            // Custom (test) scales stay tiny: the exact functional engine
            // is measured, not stressed, in unit tests.
            (64, 64, 16)
        }
    }

    /// Parses a `TA_SCALE` value. Unknown values are an **error**, not a
    /// silent default: a typo'd `TA_SCALE=qiuck` used to fall through to
    /// the multi-minute full-scale run.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message listing the accepted values for
    /// anything other than `quick`/`smoke`/`full`.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.trim() {
            "quick" | "smoke" => Ok(Self::quick()),
            "full" => Ok(Self::full()),
            other => Err(format!(
                "unrecognized TA_SCALE value '{other}': expected 'quick' (alias 'smoke') or 'full'"
            )),
        }
    }

    /// The scale's canonical name (`"quick"` or `"full"`; custom scales
    /// report as `"custom"`). Recorded in bench JSON so baselines are
    /// only compared at matching scales.
    pub fn name(&self) -> &'static str {
        if *self == Self::quick() {
            "quick"
        } else if *self == Self::full() {
            "full"
        } else {
            "custom"
        }
    }

    /// Reads `TA_SCALE=quick|full` from the environment (default full). A
    /// `--smoke` or `--quick` CLI argument also selects [`Scale::quick`], so
    /// `cargo run -p ta-bench --bin fig9 -- --smoke` works without env setup.
    /// Any other argument — and any unknown `TA_SCALE` value — is rejected:
    /// the figure binaries take nothing else, and silently ignoring a typo
    /// would run the multi-minute full-scale simulation instead of the
    /// intended smoke run.
    ///
    /// # Errors
    ///
    /// Returns the diagnostic message for an unrecognized CLI argument or
    /// an invalid `TA_SCALE` value. Library code must use this (or
    /// [`Scale::resolve`]) — only binaries may turn the error into an
    /// exit, via [`Scale::from_env`].
    pub fn try_from_env() -> Result<Self, String> {
        Self::resolve(std::env::args().skip(1), std::env::var("TA_SCALE"))
    }

    /// The pure resolution behind [`Scale::try_from_env`]: CLI arguments
    /// (`--smoke`/`--quick` win) plus the raw `TA_SCALE` lookup result.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for unknown arguments or values.
    pub fn resolve(
        args: impl IntoIterator<Item = String>,
        scale_var: Result<String, std::env::VarError>,
    ) -> Result<Self, String> {
        let mut quick = false;
        for arg in args {
            match arg.as_str() {
                "--smoke" | "--quick" => quick = true,
                other => {
                    return Err(format!(
                        "unrecognized argument '{other}' (expected --smoke or --quick)"
                    ));
                }
            }
        }
        if quick {
            return Ok(Self::quick());
        }
        match scale_var {
            Err(std::env::VarError::NotPresent) => Ok(Self::full()),
            Err(std::env::VarError::NotUnicode(_)) => {
                Err("TA_SCALE is not valid unicode".to_string())
            }
            Ok(value) => Self::parse(&value),
        }
    }

    /// [`Scale::try_from_env`] for the figure **binaries**: prints the
    /// error and exits 2. Never call this from library code — the
    /// process-exit stays confined to `fn main`s.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|msg| {
            eprintln!("error: {msg}");
            std::process::exit(2);
        })
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.tiles < f.tiles);
        assert!(q.sample_limit < f.sample_limit);
        assert!(q.accuracy_dim < f.accuracy_dim);
    }

    #[test]
    fn parse_accepts_known_values() {
        assert_eq!(Scale::parse("quick"), Ok(Scale::quick()));
        assert_eq!(Scale::parse("smoke"), Ok(Scale::quick()));
        assert_eq!(Scale::parse("full"), Ok(Scale::full()));
        assert_eq!(Scale::parse("  quick "), Ok(Scale::quick()), "whitespace tolerated");
    }

    #[test]
    fn parse_rejects_unknown_values_helpfully() {
        for bad in ["qiuck", "FULL", "paper", "", "1"] {
            let err = Scale::parse(bad).expect_err(bad);
            assert!(err.contains("expected 'quick'"), "unhelpful error for '{bad}': {err}");
        }
    }

    #[test]
    fn resolve_args_win_over_env() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            Scale::resolve(args(&["--smoke"]), Ok("full".into())),
            Ok(Scale::quick()),
            "--smoke beats TA_SCALE"
        );
        assert_eq!(
            Scale::resolve(args(&["--quick"]), Err(std::env::VarError::NotPresent)),
            Ok(Scale::quick())
        );
        assert_eq!(
            Scale::resolve(args(&[]), Err(std::env::VarError::NotPresent)),
            Ok(Scale::full())
        );
        assert_eq!(Scale::resolve(args(&[]), Ok("quick".into())), Ok(Scale::quick()));
    }

    #[test]
    fn resolve_error_paths_return_instead_of_exiting() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let bad_arg = Scale::resolve(args(&["--paper"]), Err(std::env::VarError::NotPresent))
            .expect_err("unknown argument must error");
        assert!(bad_arg.contains("unrecognized argument '--paper'"), "{bad_arg}");
        let bad_env = Scale::resolve(args(&[]), Ok("qiuck".into())).expect_err("typo must error");
        assert!(bad_env.contains("expected 'quick'"), "{bad_env}");
        let not_unicode = Scale::resolve(
            args(&[]),
            Err(std::env::VarError::NotUnicode(std::ffi::OsString::new())),
        )
        .expect_err("non-unicode must error");
        assert!(not_unicode.contains("unicode"), "{not_unicode}");
        // A smoke argument still wins even when TA_SCALE is garbage.
        assert_eq!(Scale::resolve(args(&["--smoke"]), Ok("garbage".into())), Ok(Scale::quick()));
    }

    #[test]
    fn scale_names() {
        assert_eq!(Scale::quick().name(), "quick");
        assert_eq!(Scale::full().name(), "full");
        assert_eq!(Scale { tiles: 1, sample_limit: 1, accuracy_dim: 1 }.name(), "custom");
    }
}
