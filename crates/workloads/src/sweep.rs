//! The quantization × sparsity sweep grid: the eight ta-quant methods ×
//! three TransArray precisions (W4A4, W4A8, W8A8) × three weight
//! densities (dense, 0.75 unstructured, 0.5 structured 2:4), each row
//! carrying accuracy metrics, TA cycles, and the STA-style 2:4
//! structured-sparsity baseline column. The `sweep` binary in `ta-bench`
//! renders the grid as figure-style JSON/CSV artifacts.

use crate::Scale;
use ta_baselines::{sparse24, Baseline};
use ta_core::{GemmShape, TransArrayConfig, TransitiveArray};
use ta_models::{llm_activation_matrix, llm_weight_matrix};
use ta_quant::{evaluate_method, table3_roster, MatF32, MatI32, QuantMethod};
use ta_sim::EnergyModel;

/// The TransArray precision axis (label, weight bits, activation bits).
pub const PRECISIONS: [(&str, u32, u32); 3] = [("W4A4", 4, 4), ("W4A8", 4, 8), ("W8A8", 8, 8)];

/// The weight-density axis. `0.5` is realized as structured 2:4 pruning
/// (two survivors per group of four along k); `0.75` is unstructured
/// magnitude pruning; `1.0` is dense.
pub const DENSITIES: [f64; 3] = [1.0, 0.75, 0.5];

/// Seed base of the sweep's synthetic LLM tensor pairs.
pub const SWEEP_SEED: u64 = 0x5EED;

/// One sweep-grid row.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Quantization method (paper Table 3 column name).
    pub method: String,
    /// TransArray precision label (`W4A4`/`W4A8`/`W8A8`).
    pub precision: &'static str,
    /// Weight bits of the precision point.
    pub weight_bits: u32,
    /// Activation bits of the precision point.
    pub act_bits: u32,
    /// Target weight density of the row's pruning.
    pub density_target: f64,
    /// How the target was reached (`dense`/`unstructured`/`2:4`).
    pub structure: &'static str,
    /// Measured weight density after pruning.
    pub weight_density: f64,
    /// Normalized MSE of the method's quantized GEMM output on the
    /// pruned weights.
    pub output_nmse: f64,
    /// SQNR (dB) of the same output.
    pub output_sqnr_db: f64,
    /// TransArray cycles executing the pruned, quantized GEMM exactly.
    pub ta_cycles: u64,
    /// Transitive density of that execution.
    pub ta_density: f64,
    /// The STA-style 2:4 baseline's cycles on the same GEMM (it always
    /// deploys weights 2:4-pruned — the structured-sparsity comparison
    /// column).
    pub sta24_cycles: u64,
    /// `sta24_cycles / ta_cycles`.
    pub ta_speedup_vs_sta24: f64,
}

/// The eight quantized methods of the paper's accuracy study (Table 3's
/// roster minus the FP16 reference).
pub fn sweep_methods() -> Vec<Box<dyn QuantMethod>> {
    let methods: Vec<_> = table3_roster().into_iter().filter(|m| m.name() != "FP16").collect();
    assert_eq!(methods.len(), 8, "the sweep is defined over the eight quantized methods");
    methods
}

/// Symmetric absmax integer quantization of a float tensor — the bridge
/// from the accuracy tensors to the bit-exact execution engine.
fn to_int(m: &MatF32, bits: u32) -> MatI32 {
    let amax = m.abs_max().max(1e-12);
    let q = ((1i64 << (bits - 1)) - 1) as f32;
    MatI32::from_fn(m.rows(), m.cols(), |r, c| (m.get(r, c) / amax * q).round() as i32)
}

/// Prunes `w` to `density` on the sweep's structure policy.
fn prune(w: &MatF32, density: f64) -> (MatF32, &'static str) {
    if density >= 1.0 {
        (w.clone(), "dense")
    } else if (density - 0.5).abs() < 1e-9 {
        (sparse24::prune_2to4(w), "2:4")
    } else {
        (sparse24::prune_to_density(w, density), "unstructured")
    }
}

/// Runs the grid at `scale`. `reduced` cuts the grid for CI smoke runs
/// (half the methods, dense + 2:4 only); the full grid is
/// 8 methods × 3 precisions × 3 densities = 72 rows.
pub fn grid(scale: Scale, reduced: bool) -> Vec<SweepPoint> {
    let em = EnergyModel::paper_28nm();
    let sta24 = Baseline::sta_2to4();
    let densities: &[f64] = if reduced { &[1.0, 0.5] } else { &DENSITIES };
    let dim = scale.accuracy_dim;
    let (n, k, m) = (dim, dim, dim / 2);
    let shape = GemmShape::new(n, k, m);
    let mut rows = Vec::new();
    for (pi, &(precision, wbits, abits)) in PRECISIONS.iter().enumerate() {
        let w = llm_weight_matrix(n, k, SWEEP_SEED + pi as u64);
        let a = llm_activation_matrix(k, m, SWEEP_SEED + 100 + pi as u64);
        let sta24_cycles = sta24.simulate_gemm(shape, wbits, abits, &em).cycles;
        let cfg = if wbits <= 4 {
            TransArrayConfig { sample_limit: 0, ..TransArrayConfig::paper_w4() }
        } else {
            TransArrayConfig { sample_limit: 0, ..TransArrayConfig::paper_w8() }
        };
        let ta = TransitiveArray::new(cfg);
        for &density in densities {
            let (wp, structure) = prune(&w, density);
            let weight_density = sparse24::density(&wp);
            // The cycle columns depend on the pruned tensor, not the
            // quant method: execute once per cell, share across rows.
            let (_, rep) = ta.execute_gemm(&to_int(&wp, wbits), &to_int(&a, abits));
            let mut methods = sweep_methods();
            if reduced {
                methods.truncate(4);
            }
            for method in &methods {
                let acc = evaluate_method(method.as_ref(), &wp, &a);
                rows.push(SweepPoint {
                    method: acc.name.clone(),
                    precision,
                    weight_bits: wbits,
                    act_bits: abits,
                    density_target: density,
                    structure,
                    weight_density,
                    output_nmse: acc.output_nmse,
                    output_sqnr_db: acc.output_sqnr_db,
                    ta_cycles: rep.cycles,
                    ta_density: rep.density,
                    sta24_cycles,
                    ta_speedup_vs_sta24: if rep.cycles > 0 {
                        sta24_cycles as f64 / rep.cycles as f64
                    } else {
                        0.0
                    },
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_methods_are_the_eight_quantized_ones() {
        let names: Vec<String> = sweep_methods().iter().map(|m| m.name().to_string()).collect();
        assert_eq!(names.len(), 8);
        assert!(!names.contains(&"FP16".to_string()));
        // Stable, unique column names.
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "method names must be unique: {names:?}");
    }

    #[test]
    fn tiny_grid_covers_every_cell_with_a_2to4_column() {
        let scale = Scale { tiles: 2, sample_limit: 4, accuracy_dim: 16 };
        let rows = grid(scale, false);
        assert_eq!(rows.len(), 8 * 3 * 3);
        assert!(rows.iter().all(|r| r.sta24_cycles > 0), "2:4 baseline column present");
        let structured: Vec<_> = rows.iter().filter(|r| r.structure == "2:4").collect();
        assert_eq!(structured.len(), 8 * 3);
        for r in &structured {
            assert!(
                (r.weight_density - 0.5).abs() < 0.26,
                "2:4 pruning halves density, got {} for {}",
                r.weight_density,
                r.method
            );
        }
        // Every row carries usable accuracy and cycle columns.
        for r in &rows {
            assert!(r.output_nmse.is_finite() && r.output_nmse >= 0.0, "{r:?}");
            assert!(r.output_sqnr_db.is_finite(), "{r:?}");
            assert!(r.ta_cycles > 0 && r.ta_speedup_vs_sta24 > 0.0, "{r:?}");
        }
    }

    #[test]
    fn reduced_grid_is_a_strict_subset_shape() {
        let scale = Scale { tiles: 2, sample_limit: 4, accuracy_dim: 16 };
        let rows = grid(scale, true);
        assert_eq!(rows.len(), 4 * 3 * 2);
        assert!(rows.iter().all(|r| r.structure != "unstructured"));
    }
}
