//! Registry conformance: every entry's reference oracle is
//! deterministic across thread counts, names are unique and stable, and
//! quick-scale construction of every entry succeeds.

use ta_workloads::{find, names, registry, Scale};

fn tiny() -> Scale {
    Scale { tiles: 2, sample_limit: 4, accuracy_dim: 16 }
}

#[test]
fn names_are_unique_and_stable() {
    let got = names();
    let mut dedup = got.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), got.len(), "duplicate workload names: {got:?}");
    // The stable roster: bench gate order first, then the zoo. Renaming
    // any of these breaks bench JSON joins, --only filters, and docs.
    assert_eq!(
        got,
        vec![
            "fig9_dse_t8_r256",
            "l7b_qproj_serial",
            "l7b_qproj_parallel",
            "l7b_qproj_cached",
            "l7b_qproj_exec",
            "serve_open_loop",
            "serve_overload",
            "kernel_micro_popcount",
            "kernel_micro_extract",
            "kernel_micro_im2col",
            "plan_cache_contention",
            "llama_block_prefill",
            "llama_block_decode",
            "resnet_conv_im2col",
            "moe_experts",
        ]
    );
}

#[test]
fn gate_roster_matches_bench_schema() {
    let gated: Vec<_> = registry().into_iter().filter(|w| w.gated()).collect();
    // Ten PerfRecord workloads plus the contention sweep (gated through
    // the report's contention arm, not a PerfRecord).
    assert_eq!(gated.len(), 11);
}

#[test]
fn quick_scale_construction_succeeds_for_every_entry() {
    for w in registry() {
        w.prepare(Scale::quick());
        // Shape enumeration is part of construction; GEMM entries must
        // report at least one shape.
        let shapes = w.shapes(Scale::quick());
        if w.has_cycle_model() {
            assert!(!shapes.is_empty(), "{} models cycles but reports no shape", w.name());
        }
    }
}

#[test]
fn oracles_are_deterministic_across_threads() {
    for w in registry() {
        let t1 = w.oracle(tiny(), 1);
        let t2 = w.oracle(tiny(), 2);
        let t8 = w.oracle(tiny(), 8);
        assert_eq!(t1, t2, "{}: oracle differs between 1 and 2 threads", w.name());
        assert_eq!(t1, t8, "{}: oracle differs between 1 and 8 threads", w.name());
    }
}

#[test]
fn oracles_fingerprint_real_output() {
    // A fingerprint that never varies would pass determinism vacuously;
    // distinct workloads must disagree with each other.
    let mut prints = Vec::new();
    for w in registry() {
        prints.push((w.name(), w.oracle(tiny(), 1)));
    }
    for i in 0..prints.len() {
        for j in (i + 1)..prints.len() {
            assert_ne!(
                prints[i].1, prints[j].1,
                "{} and {} produced identical fingerprints",
                prints[i].0, prints[j].0
            );
        }
    }
}

#[test]
fn find_resolves_registered_names_only() {
    assert!(find("l7b_qproj_serial").is_some());
    assert!(find("moe_experts").is_some());
    assert!(find("no_such_workload").is_none());
}
