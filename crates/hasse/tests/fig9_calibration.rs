//! Calibration check: the op-accounting model must reproduce the density
//! numbers printed on Fig. 9(a) for a 1024x1024 uniform random 0-1 matrix.

use ta_hasse::{Scoreboard, ScoreboardConfig, TileStats};

/// xorshift64* PRNG - deterministic, no external dependency.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

fn density(width: u32, row_size: usize, total_rows: usize, cols: usize, seed: u64) -> f64 {
    let mut rng = Rng(seed | 1);
    let chunks = cols / width as usize;
    let mut total = TileStats::default();
    let mut first = true;
    for _tile in 0..(total_rows / row_size) {
        for _chunk in 0..chunks {
            let patterns: Vec<u16> =
                (0..row_size).map(|_| (rng.next() & ((1u64 << width) - 1)) as u16).collect();
            // Fig. 9 measures sparsity *potential*: uncapped chain length
            // (the figure's own Dis-5 bars show the DSE runs past the
            // hardware cap of 4).
            let sb = Scoreboard::build(ScoreboardConfig::unbounded(width), patterns);
            let s = TileStats::from_scoreboard(&sb);
            if first {
                total = s;
                first = false;
            } else {
                total.merge(&s);
            }
        }
    }
    total.density()
}

#[test]
fn fig9a_densities_at_row_256() {
    // Paper prints 37.49 / 23.43 / 16.44 / 12.57 / 12.36 / 15.15 / 22.48 %
    // for T = 2/4/6/8/10/12/16. Run a scaled-down sweep (fewer tiles) and
    // check each within a tolerance band.
    let expected =
        [(2u32, 37.49), (4, 23.43), (6, 16.44), (8, 12.57), (10, 12.36), (12, 15.15), (16, 22.48)];
    for (t, exp) in expected {
        // 16 tiles of 256 rows, two column-chunks' worth of randomness.
        let d = 100.0 * density(t, 256, 4096, (t as usize) * 2, 42 + t as u64);
        let tol = exp * 0.08 + 0.6; // 8% relative + absolute slack
        println!("T={t}: measured {d:.2}% expected {exp}%");
        assert!((d - exp).abs() < tol, "T={t}: measured {d:.2}% vs paper {exp}%");
    }
}
