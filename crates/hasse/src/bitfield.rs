//! The packed Scoreboard entry of Fig. 6 — the exact bit-field layout the
//! hardware stores, plus the Prefix/Suffix **Translators** that recover
//! node indices from bitmaps by single-bit flips.
//!
//! For a 4-bit Scoreboard the figure lays out one entry as:
//!
//! ```text
//!  bits  0..4   Node            (T bits)
//!  bits  4..12  Count           (8 bits, saturating)
//!  bits 12..16  Prefix Bitmap 1 (T bits, distance 1)
//!  bits 16..28  Prefix Bitmaps 2,3,4 (3×T bits)
//!  bits 28..32  Lane ID         (⌈log2 T⌉.. stored as 4 bits here)
//!  bits 32..36  Suffix Bitmap   (T bits)
//! ```
//!
//! We generalize the same layout to any `T ≤ 16`. The value of this
//! module is fidelity + the storage arithmetic (§3.2's `2·T·2^T` SI
//! bound): the algorithmic Scoreboard in [`crate::Scoreboard`] uses
//! unpacked entries for speed, and the round-trip tests here prove the
//! packed form loses nothing the hardware needs.

use crate::node::{NodeEntry, NO_LANE};

/// A packed Scoreboard entry (generalized Fig. 6 layout, little-endian
/// bit order within a `u128`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedEntry {
    bits: u128,
    width: u32,
}

/// Number of prefix-bitmap fields stored (distances 1..=4, Fig. 6).
pub const PACKED_PREFIX_FIELDS: usize = 4;

impl PackedEntry {
    /// Packs a node entry (pattern + fields) at the given TransRow width.
    ///
    /// Counts saturate at 255 (the 8-bit Count field); distances beyond 4
    /// are not representable (the hardware treats them as outliers) and
    /// their prefix bitmaps are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=16` or the pattern exceeds it.
    pub fn pack(width: u32, pattern: u16, entry: &NodeEntry) -> Self {
        assert!((1..=16).contains(&width), "width must be in 1..=16");
        assert!((pattern as u32) < (1u32 << width), "pattern exceeds width");
        let t = width as u128;
        let mut bits: u128 = 0;
        let mut off = 0u32;
        let mut put = |v: u128, len: u32, off: &mut u32| {
            let mask = (1u128 << len) - 1;
            bits |= (v & mask) << *off;
            *off += len;
        };
        put(pattern as u128, width, &mut off);
        put(entry.count.min(255) as u128, 8, &mut off);
        for d in 0..PACKED_PREFIX_FIELDS {
            put(entry.prefix_bitmaps[d] as u128, width, &mut off);
        }
        let lane = if entry.lane == NO_LANE { (1u128 << 4) - 1 } else { entry.lane as u128 };
        put(lane, 4, &mut off);
        put(entry.suffix_bitmap as u128, width, &mut off);
        debug_assert!(off as usize <= 128);
        let _ = t;
        Self { bits, width }
    }

    /// Total bits one entry occupies at this width
    /// (`T + 8 + 4·T + 4 + T = 6T + 12`; 36 for `T = 4`, matching Fig. 6).
    pub fn bit_len(width: u32) -> u32 {
        6 * width + 12
    }

    /// Storage for a full table of `2^T` entries, in bytes.
    pub fn table_bytes(width: u32) -> u64 {
        (Self::bit_len(width) as u64 * (1u64 << width)).div_ceil(8)
    }

    /// The raw packed bits.
    pub fn raw(&self) -> u128 {
        self.bits
    }

    fn take(&self, off: &mut u32, len: u32) -> u128 {
        let v = (self.bits >> *off) & ((1u128 << len) - 1);
        *off += len;
        v
    }

    /// The node pattern.
    pub fn pattern(&self) -> u16 {
        (self.bits & ((1u128 << self.width) - 1)) as u16
    }

    /// The Count field.
    pub fn count(&self) -> u32 {
        let mut off = self.width;
        self.take(&mut off, 8) as u32
    }

    /// Prefix bitmap for distance `d` (1..=4).
    ///
    /// # Panics
    ///
    /// Panics if `d` is outside `1..=4`.
    pub fn prefix_bitmap(&self, d: u32) -> u16 {
        assert!((1..=PACKED_PREFIX_FIELDS as u32).contains(&d), "distance must be 1..=4");
        let mut off = self.width + 8 + (d - 1) * self.width;
        self.take(&mut off, self.width) as u16
    }

    /// The Lane ID (`None` when unassigned).
    pub fn lane(&self) -> Option<u8> {
        let mut off = self.width + 8 + 4 * self.width;
        let v = self.take(&mut off, 4) as u8;
        if v == 0xF {
            None
        } else {
            Some(v)
        }
    }

    /// The suffix bitmap.
    pub fn suffix_bitmap(&self) -> u16 {
        let mut off = self.width + 8 + 4 * self.width + 4;
        self.take(&mut off, self.width) as u16
    }

    /// **Prefix Translator** (Fig. 6 bottom-left): decodes the distance-`d`
    /// prefix bitmap into node indices by 1→0 flips of the entry's own
    /// pattern.
    pub fn translate_prefixes(&self, d: u32) -> Vec<u16> {
        let p = self.pattern();
        let bm = self.prefix_bitmap(d);
        (0..self.width)
            .filter_map(|j| {
                let bit = 1u16 << j;
                if bm & bit != 0 {
                    debug_assert!(p & bit != 0, "prefix bitmap must mark set bits");
                    Some(p & !bit)
                } else {
                    None
                }
            })
            .collect()
    }

    /// **Suffix Translator** (Fig. 6 bottom-right): decodes the suffix
    /// bitmap into node indices by 0→1 flips.
    pub fn translate_suffixes(&self) -> Vec<u16> {
        let p = self.pattern();
        let bm = self.suffix_bitmap();
        (0..self.width)
            .filter_map(|j| {
                let bit = 1u16 << j;
                if bm & bit != 0 {
                    debug_assert!(p & bit == 0, "suffix bitmap must mark clear bits");
                    Some(p | bit)
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoreboard::{Scoreboard, ScoreboardConfig};

    #[test]
    fn fig6_entry_is_36_bits_at_width_4() {
        // Fig. 6's 4-bit entry spans bit offsets 0..36 (Node 4 + Count 8 +
        // PB1..4 16 + Lane 4 + Suffix 4).
        assert_eq!(PackedEntry::bit_len(4), 36);
        assert_eq!(PackedEntry::bit_len(8), 60);
    }

    #[test]
    fn table_storage_arithmetic() {
        // A full 8-bit table: 256 entries × 60 bits = 1920 B.
        assert_eq!(PackedEntry::table_bytes(8), 1920);
        // The SI extract (TransRow+Prefix only) is the §3.2 bound of 512 B
        // — far smaller than the full working table, as the paper notes.
        assert!(PackedEntry::table_bytes(8) > 512);
    }

    #[test]
    fn roundtrip_from_real_scoreboard() {
        let patterns = [14u16, 2, 5, 1, 15, 7, 2];
        let sb = Scoreboard::build(ScoreboardConfig::with_width(4), patterns);
        for p in sb.active_nodes() {
            let e = sb.node(p);
            let packed = PackedEntry::pack(4, p, e);
            assert_eq!(packed.pattern(), p);
            assert_eq!(packed.count(), e.count.min(255));
            assert_eq!(packed.lane(), Some(e.lane));
            assert_eq!(packed.suffix_bitmap(), e.suffix_bitmap);
            for d in 1..=4u32 {
                assert_eq!(packed.prefix_bitmap(d), e.prefix_bitmaps[(d - 1) as usize]);
            }
        }
    }

    #[test]
    fn translators_recover_hasse_neighbors() {
        // Fig. 6's example: node 10 (1010) with PB1 = {0010, 1000} and
        // suffixes {1011, 1110}.
        let mut e = NodeEntry::empty();
        e.count = 1;
        e.prefix_bitmaps[0] = 0b1010; // both set bits marked
        e.suffix_bitmap = 0b0101; // both clear bits marked
        e.lane = 2;
        let packed = PackedEntry::pack(4, 0b1010, &e);
        let mut prefixes = packed.translate_prefixes(1);
        prefixes.sort_unstable();
        assert_eq!(prefixes, vec![0b0010, 0b1000]);
        let mut suffixes = packed.translate_suffixes();
        suffixes.sort_unstable();
        assert_eq!(suffixes, vec![0b1011, 0b1110]);
    }

    #[test]
    fn count_saturates_at_255() {
        let mut e = NodeEntry::empty();
        e.count = 1000;
        let packed = PackedEntry::pack(8, 42, &e);
        assert_eq!(packed.count(), 255);
    }

    #[test]
    fn unassigned_lane_roundtrips_as_none() {
        let e = NodeEntry::empty();
        let packed = PackedEntry::pack(8, 7, &e);
        assert_eq!(packed.lane(), None);
    }

    #[test]
    #[should_panic(expected = "pattern exceeds width")]
    fn oversized_pattern_rejected() {
        let _ = PackedEntry::pack(4, 16, &NodeEntry::empty());
    }
}
