//! The memoized plan cache — cross-tile result reuse for the Scoreboard
//! itself.
//!
//! A sub-tile's balanced forest, execution plan, and ZR/TR/FR/PR
//! statistics are fully determined by its TransRow pattern **multiset**
//! and the Scoreboard configuration: `record` only counts occurrences,
//! and the forward/backward/balance passes walk the 2^T Hasse nodes in a
//! fixed order. Two tiles presenting the same multiset — in any row
//! order — therefore produce bit-identical plans, so re-running Alg. 1–2
//! for every sub-tile of a layer wastes the work the paper's whole
//! premise is about reusing. [`PlanCache`] memoizes the post-scoreboard
//! products behind a canonical, permutation-invariant [`PlanKey`];
//! [`SharedPlanCache`] is the thread-safe wrapper the tile-execution
//! runtime's workers share.
//!
//! ## Concurrency design
//!
//! [`SharedPlanCache`] is **sharded**: the key space is partitioned by
//! key hash across a power-of-two number of independently locked
//! [`PlanCache`] shards, so concurrent lookups of different keys only
//! contend when they land in the same shard. Within a shard, recency is
//! **CLOCK** (second-chance), not LRU: a hit sets an atomic referenced
//! bit instead of relinking a recency list, so the hit path needs only a
//! shard **read** lock plus one relaxed atomic store — warm replay never
//! takes a write path, and readers of the same shard proceed in
//! parallel. Only misses (which insert) and evictions take a shard write
//! lock. Aggregate counters ([`SharedPlanCache::stats`]) are folded
//! across shards, so callers see the same hit/miss/eviction/insertion
//! totals a single-table cache would report.
//!
//! Position-dependent per-tile quantities (crossbar bank occupancy, which
//! depends on each row's original index) are deliberately **not** cached
//! — callers recompute them per tile, which is what keeps a cache hit
//! bit-identical to a fresh plan (the determinism contract of
//! `ta_core::runtime`).

use crate::exec::ExecutionPlan;
use crate::scoreboard::{BalancePolicy, Scoreboard, ScoreboardConfig};
use crate::si::StaticTileReport;
use crate::stats::TileStats;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Canonical, permutation-invariant cache key for one sub-tile plan.
///
/// Two pattern slices map to the same key iff they are permutations of
/// one another **and** were planned under the same TransRow width,
/// distance cap, lane count, balance policy, and (for static mode) the
/// same SI table instance. Zero rows participate: they change row counts,
/// Scoreboard scan cycles, and densities.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    width: u32,
    max_distance: u8,
    lanes: u32,
    balance: BalancePolicy,
    /// Static-SI instance token ([`crate::StaticSi::instance_token`]);
    /// `None` for dynamic-mode plans.
    si_token: Option<u64>,
    /// Sorted `(pattern, count)` pairs — the multiset, canonicalized.
    entries: Box<[(u16, u32)]>,
}

impl PlanKey {
    /// Builds the canonical key for `patterns` under `cfg`.
    ///
    /// `si_token` must be `Some` with the static SI's
    /// [`crate::StaticSi::instance_token`] when the plan will be
    /// evaluated against a shared static table (its chains change the
    /// result), `None` for dynamic-mode plans.
    ///
    /// # Panics
    ///
    /// Panics if a pattern exceeds `cfg.width`.
    pub fn new(cfg: &ScoreboardConfig, si_token: Option<u64>, patterns: &[u16]) -> Self {
        let mut sorted: Vec<u16> = patterns.to_vec();
        sorted.sort_unstable();
        if let Some(&max) = sorted.last() {
            assert!(
                (max as u32) < (1u32 << cfg.width),
                "pattern {max:#b} exceeds width {}",
                cfg.width
            );
        }
        let mut entries: Vec<(u16, u32)> = Vec::new();
        for p in sorted {
            match entries.last_mut() {
                Some((last, count)) if *last == p => *count += 1,
                _ => entries.push((p, 1)),
            }
        }
        Self {
            width: cfg.width,
            max_distance: cfg.max_distance,
            lanes: cfg.effective_lanes(),
            balance: cfg.balance,
            si_token,
            entries: entries.into_boxed_slice(),
        }
    }

    /// Total rows the key covers (zero rows included).
    pub fn rows(&self) -> usize {
        self.entries.iter().map(|&(_, c)| c as usize).sum()
    }
}

/// A memoized post-scoreboard plan — everything about a sub-tile that
/// depends only on its pattern multiset (never on row order).
// Values live exclusively behind `Arc<CachedPlan>` in the cache, so the
// variant size asymmetry never inflates a by-value container.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CachedPlan {
    /// Dynamic mode: the tile's statistics plus the per-lane op streams
    /// (the functional evaluator `execute_gemm` replays).
    Dynamic {
        /// ZR/TR/FR/PR statistics and cycle counts of the tile, shared
        /// so cache hits hand them out without deep-cloning the lane
        /// vectors.
        stats: Arc<TileStats>,
        /// The balanced forest linearized into per-lane op streams —
        /// built lazily via [`CachedPlan::dynamic_plan`], so
        /// simulation-only workloads (which never evaluate functionally)
        /// pay neither the linearization nor its resident memory.
        plan: OnceLock<ExecutionPlan>,
    },
    /// Static mode: the tile replay report under one shared SI table.
    Static {
        /// Op/miss accounting of the tile under the static SI.
        report: StaticTileReport,
    },
}

impl CachedPlan {
    /// Builds the dynamic-mode plan for `patterns` from scratch (the
    /// cache-miss path): statistics eagerly, op streams lazily.
    ///
    /// Pass `with_plan = true` from functional callers that are about to
    /// evaluate — the one Scoreboard build then serves both products.
    pub fn build_dynamic(cfg: &ScoreboardConfig, patterns: &[u16], with_plan: bool) -> Self {
        let sb = Scoreboard::build(*cfg, patterns.iter().copied());
        let plan = OnceLock::new();
        if with_plan {
            let _ = plan.set(ExecutionPlan::from_scoreboard(&sb));
        }
        CachedPlan::Dynamic { stats: Arc::new(TileStats::from_scoreboard(&sb)), plan }
    }

    /// The dynamic entry's op streams, building them on first use. A
    /// rebuild from any permutation of the entry's multiset yields the
    /// identical plan (the Scoreboard is multiset-determined), so
    /// callers pass whatever tile produced the cache hit.
    ///
    /// # Panics
    ///
    /// Panics on a `Static` entry.
    pub fn dynamic_plan(&self, cfg: &ScoreboardConfig, patterns: &[u16]) -> &ExecutionPlan {
        match self {
            CachedPlan::Dynamic { plan, .. } => plan.get_or_init(|| {
                ExecutionPlan::from_scoreboard(&Scoreboard::build(*cfg, patterns.iter().copied()))
            }),
            CachedPlan::Static { .. } => panic!("static entries hold no dynamic plan"),
        }
    }
}

/// Hit/miss/eviction counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a memoized plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries inserted (fresh keys only; re-inserting a cached key
    /// refreshes recency without counting again).
    pub insertions: u64,
}

impl PlanCacheStats {
    /// Total lookups (hits plus misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction over all lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter deltas since an earlier snapshot — e.g. the warm-replay
    /// hit rate is `after.delta(&before).hit_rate()`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `before` is not an earlier snapshot of
    /// the same monotonically-growing counters.
    pub fn delta(&self, before: &PlanCacheStats) -> PlanCacheStats {
        debug_assert!(
            self.hits >= before.hits
                && self.misses >= before.misses
                && self.evictions >= before.evictions
                && self.insertions >= before.insertions,
            "delta baseline must be an earlier snapshot"
        );
        PlanCacheStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            evictions: self.evictions - before.evictions,
            insertions: self.insertions - before.insertions,
        }
    }

    /// Folds another counter snapshot into this one (used to aggregate
    /// per-shard counters into a cache-wide total).
    pub fn merge(&mut self, other: &PlanCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.insertions += other.insertions;
    }
}

impl fmt::Display for PlanCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} lookups ({:.1}% hit rate), {} insertions, {} evictions",
            self.hits,
            self.lookups(),
            self.hit_rate() * 100.0,
            self.insertions,
            self.evictions
        )
    }
}

/// One occupied CLOCK slot.
#[derive(Debug)]
struct Slot {
    key: PlanKey,
    value: Arc<CachedPlan>,
    /// CLOCK referenced bit: set by [`PlanCache::get`] under a shared
    /// borrow (relaxed — it is a recency heuristic, not a happens-before
    /// edge), cleared by the eviction sweep.
    referenced: AtomicBool,
}

/// A bounded memo table from canonical pattern multisets to their
/// post-scoreboard plans, with CLOCK (second-chance) eviction.
///
/// CLOCK keeps the hit path **touch-free**: [`PlanCache::get`] takes
/// `&self` and mutates nothing but two relaxed atomics (the hit counter
/// and the slot's referenced bit), so a shared wrapper can serve hits
/// under a read lock. Eviction sweeps a clock hand over the slot slab:
/// a referenced slot gets its bit cleared and a second chance; the first
/// unreferenced slot is the victim (the sweep terminates within two
/// laps). An entry that was hit since the last sweep therefore survives
/// an entry that was not — the LRU-like property the warm-replay
/// workloads rely on — without hits ever rewriting list links.
///
/// Single-threaded building block; [`SharedPlanCache`] wraps one
/// `PlanCache` per shard for the tile-execution runtime's workers.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    map: HashMap<PlanKey, usize>,
    slots: Vec<Slot>,
    /// Next slot the eviction sweep inspects.
    hand: usize,
    /// Hit/miss counters are atomic so `get(&self)` can count under a
    /// shared borrow; insertion/eviction counters only move under
    /// `&mut self` and stay plain.
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: u64,
    insertions: u64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity cache is "cache
    /// off", which callers express by not constructing one.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be non-zero");
        Self {
            capacity,
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: 0,
            insertions: 0,
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions,
            insertions: self.insertions,
        }
    }

    /// Looks up `key`, setting the entry's referenced bit on a hit.
    ///
    /// Takes `&self`: the hit path performs no structural mutation, so
    /// concurrent readers (behind a shard read lock) proceed in parallel.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        match self.map.get(key) {
            Some(&slot) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.slots[slot].referenced.store(true, Ordering::Relaxed);
                Some(Arc::clone(&self.slots[slot].value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → value`, evicting via the CLOCK
    /// sweep when full.
    ///
    /// Fresh entries start with the referenced bit **clear**: an entry
    /// earns its second chance by being hit, so a burst of one-shot keys
    /// cycles through without displacing the warm working set.
    pub fn insert(&mut self, key: PlanKey, value: Arc<CachedPlan>) {
        if let Some(&slot) = self.map.get(&key) {
            // Concurrent workers can race a miss: both compute, both
            // insert. Results are identical by construction; keep the
            // newer value and refresh recency.
            let s = &mut self.slots[slot];
            s.value = value;
            s.referenced.store(true, Ordering::Relaxed);
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(Slot { key: key.clone(), value, referenced: AtomicBool::new(false) });
            self.map.insert(key, self.slots.len() - 1);
            self.insertions += 1;
            return;
        }
        // CLOCK sweep: clear-and-skip referenced slots; the first
        // unreferenced slot is the victim. Terminates within two laps —
        // a first lap over all-referenced slots clears every bit.
        let victim = loop {
            let hand = self.hand;
            self.hand = (self.hand + 1) % self.capacity;
            if !self.slots[hand].referenced.swap(false, Ordering::Relaxed) {
                break hand;
            }
        };
        self.map.remove(&self.slots[victim].key);
        self.slots[victim] = Slot { key: key.clone(), value, referenced: AtomicBool::new(false) };
        self.map.insert(key, victim);
        self.evictions += 1;
        self.insertions += 1;
    }
}

/// Thread-safe, **sharded** [`PlanCache`] the tile-execution runtime's
/// workers (and `Batch` jobs) share.
///
/// Keys are routed to a power-of-two number of shards by a deterministic
/// hash of the canonical [`PlanKey`] (so every permutation of a multiset
/// routes identically). Each shard is an independent `RwLock<PlanCache>`:
///
/// * a **hit** takes one shard *read* lock plus one relaxed atomic store
///   (the CLOCK referenced bit) — concurrent hits, even on the same
///   shard, never serialize against each other;
/// * a **miss** still builds the plan **outside** any lock, then takes
///   one shard *write* lock to insert; two workers may race the same
///   miss and insert identical values (harmless by construction);
/// * counters, lengths, and capacity are folded across shards, so
///   [`SharedPlanCache::stats`] reports the same aggregate totals a
///   single-table cache would.
///
/// The per-shard capacities sum to exactly the requested capacity; the
/// shard count is clamped so no shard is ever empty.
#[derive(Debug)]
pub struct SharedPlanCache {
    shards: Box<[RwLock<PlanCache>]>,
}

impl SharedPlanCache {
    /// Minimum per-shard capacity the **auto** shard count preserves.
    /// Below this, CLOCK degenerates toward a direct-mapped cache: a
    /// skewed key distribution evicts from a full shard while total
    /// occupancy is far below the requested capacity. Explicit shard
    /// counts ([`Self::with_shards`]) are honored past this floor.
    pub const MIN_AUTO_SHARD_CAPACITY: usize = 8;

    /// Creates a shared cache holding at most `capacity` plans, sharded
    /// [`Self::default_shard_count`] ways — halved as needed so each
    /// shard keeps at least [`Self::MIN_AUTO_SHARD_CAPACITY`] entries
    /// (a small cache degenerates to a single shard, i.e. the old
    /// single-table behavior, rather than to per-shard slots of 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        let mut count = Self::default_shard_count();
        while count > 1 && count * Self::MIN_AUTO_SHARD_CAPACITY > capacity {
            count /= 2;
        }
        Self::with_shards(capacity, count)
    }

    /// Creates a shared cache holding at most `capacity` plans across
    /// `shards` shards. The shard count is rounded up to a power of two
    /// and clamped to at most `capacity` (each shard holds ≥ 1 entry);
    /// per-shard capacities sum to exactly `capacity`. The explicit
    /// count is otherwise honored — callers pairing a small capacity
    /// with many shards get shards of very few entries, which evict
    /// under skewed keys well below total capacity; prefer [`Self::new`]
    /// (which keeps per-shard capacity ≥
    /// [`Self::MIN_AUTO_SHARD_CAPACITY`]) unless the count is the point.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be non-zero");
        let mut count = shards.max(1).next_power_of_two();
        while count > capacity {
            count /= 2;
        }
        let base = capacity / count;
        let extra = capacity % count;
        let shards = (0..count)
            .map(|i| RwLock::new(PlanCache::new(base + usize::from(i < extra))))
            .collect();
        Self { shards }
    }

    /// Default shard count: ~4× the host cores, rounded up to a power of
    /// two — enough shards that workers rarely collide even under a
    /// skewed key distribution. Capacity-independent; [`Self::new`]
    /// additionally halves it until per-shard capacity reaches
    /// [`Self::MIN_AUTO_SHARD_CAPACITY`].
    pub fn default_shard_count() -> usize {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        (4 * cores).next_power_of_two()
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to — deterministic per key within
    /// one process build, and identical for every permutation of a
    /// multiset (the canonical [`PlanKey`] is hashed, not the raw
    /// pattern slice).
    pub fn shard_for(&self, key: &PlanKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (self.shards.len() - 1)
    }

    // A worker that panicked mid-insert cannot leave a shard in a state
    // that corrupts *values* (they are immutable Arcs), so recover from
    // poisoning instead of failing every later simulation.
    fn read_shard(&self, i: usize) -> RwLockReadGuard<'_, PlanCache> {
        self.shards[i].read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, PlanCache> {
        self.shards[i].write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key` under its shard's read lock (see
    /// [`PlanCache::get`]).
    pub fn get(&self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        self.read_shard(self.shard_for(key)).get(key)
    }

    /// Inserts `key → value` under its shard's write lock (see
    /// [`PlanCache::insert`]).
    pub fn insert(&self, key: PlanKey, value: Arc<CachedPlan>) {
        self.write_shard(self.shard_for(&key)).insert(key, value);
    }

    /// Counter snapshot folded across shards. Each shard's counters are
    /// read consistently; the fold itself is not one atomic snapshot
    /// across shards (quiescent reads — after workers joined — are
    /// exact, which is how every gate and test uses it).
    pub fn stats(&self) -> PlanCacheStats {
        let mut total = PlanCacheStats::default();
        for i in 0..self.shards.len() {
            total.merge(&self.read_shard(i).stats());
        }
        total
    }

    /// Current entries across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.read_shard(i).len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|i| self.read_shard(i).is_empty())
    }

    /// Maximum entries across all shards (exactly the constructor's
    /// `capacity`).
    pub fn capacity(&self) -> usize {
        (0..self.shards.len()).map(|i| self.read_shard(i).capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(patterns: &[u16]) -> PlanKey {
        PlanKey::new(&ScoreboardConfig::with_width(4), None, patterns)
    }

    fn plan(patterns: &[u16]) -> Arc<CachedPlan> {
        Arc::new(CachedPlan::build_dynamic(&ScoreboardConfig::with_width(4), patterns, false))
    }

    #[test]
    fn shared_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedPlanCache>();
        assert_send_sync::<PlanKey>();
        assert_send_sync::<CachedPlan>();
    }

    #[test]
    fn key_is_permutation_invariant() {
        assert_eq!(key(&[14, 2, 5, 1, 15, 7, 2]), key(&[2, 2, 1, 5, 7, 14, 15]));
        assert_eq!(key(&[0, 3, 0]), key(&[3, 0, 0]));
        assert_eq!(key(&[]), key(&[]));
    }

    #[test]
    fn key_is_count_sensitive() {
        assert_ne!(key(&[2, 5]), key(&[2, 2, 5]));
        assert_ne!(key(&[2]), key(&[2, 0]), "zero rows count");
        assert_ne!(key(&[]), key(&[0]));
    }

    #[test]
    fn key_is_config_sensitive() {
        let patterns = [1u16, 3, 7];
        let base = ScoreboardConfig::with_width(4);
        let k = PlanKey::new(&base, None, &patterns);
        let widened = PlanKey::new(&ScoreboardConfig::with_width(5), None, &patterns);
        assert_ne!(k, widened);
        let capped = PlanKey::new(&ScoreboardConfig { max_distance: 2, ..base }, None, &patterns);
        assert_ne!(k, capped);
        let laned = PlanKey::new(&ScoreboardConfig { lanes: 2, ..base }, None, &patterns);
        assert_ne!(k, laned);
        let unbalanced = PlanKey::new(
            &ScoreboardConfig { balance: BalancePolicy::FirstCandidate, ..base },
            None,
            &patterns,
        );
        assert_ne!(k, unbalanced);
        let static_mode = PlanKey::new(&base, Some(7), &patterns);
        assert_ne!(k, static_mode);
        assert_ne!(static_mode, PlanKey::new(&base, Some(8), &patterns));
    }

    #[test]
    fn key_rows_counts_duplicates_and_zeros() {
        assert_eq!(key(&[0, 1, 1, 9]).rows(), 4);
        assert_eq!(key(&[]).rows(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn key_rejects_oversized_patterns() {
        let _ = key(&[16]);
    }

    #[test]
    fn cache_hits_after_insert() {
        let mut cache = PlanCache::new(4);
        let k = key(&[1, 2, 3]);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), plan(&[1, 2, 3]));
        assert!(cache.get(&k).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 1, 0));
    }

    #[test]
    fn clock_grants_hit_entries_a_second_chance() {
        let mut cache = PlanCache::new(2);
        let (a, b, c) = (key(&[1]), key(&[2]), key(&[3]));
        cache.insert(a.clone(), plan(&[1]));
        cache.insert(b.clone(), plan(&[2]));
        // Touch `a` so its referenced bit protects it from the sweep;
        // `b` (never hit) becomes the victim.
        assert!(cache.get(&a).is_some());
        cache.insert(c.clone(), plan(&[3]));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some(), "referenced entry survives the sweep");
        assert!(cache.get(&b).is_none(), "unreferenced entry evicted");
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clock_sweep_terminates_when_everything_is_referenced() {
        let mut cache = PlanCache::new(2);
        let (a, b, c) = (key(&[1]), key(&[2]), key(&[3]));
        cache.insert(a.clone(), plan(&[1]));
        cache.insert(b.clone(), plan(&[2]));
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_some());
        // Both referenced: the first lap clears both bits, the second
        // evicts the slot the hand started at.
        cache.insert(c.clone(), plan(&[3]));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&c).is_some(), "new entry must be present");
    }

    #[test]
    fn eviction_cycle_reuses_slots() {
        let mut cache = PlanCache::new(2);
        for i in 0..10u16 {
            cache.insert(key(&[i % 16]), plan(&[i % 16]));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 8);
        // The slab never grows past capacity.
        assert!(cache.slots.len() <= 2);
    }

    #[test]
    fn reinsert_refreshes_without_double_count() {
        let mut cache = PlanCache::new(2);
        let k = key(&[5, 5]);
        cache.insert(k.clone(), plan(&[5, 5]));
        cache.insert(k.clone(), plan(&[5, 5]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn capacity_one_cache_works() {
        let mut cache = PlanCache::new(1);
        let (a, b) = (key(&[1]), key(&[2]));
        cache.insert(a.clone(), plan(&[1]));
        cache.insert(b.clone(), plan(&[2]));
        assert!(cache.get(&a).is_none());
        assert!(cache.get(&b).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = PlanCache::new(0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_shared_rejected() {
        let _ = SharedPlanCache::new(0);
    }

    #[test]
    fn hit_rate_math() {
        let mut s = PlanCacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.lookups(), 0);
        s.hits = 3;
        s.misses = 1;
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stats_display_is_human_readable() {
        let s = PlanCacheStats { hits: 3, misses: 1, evictions: 0, insertions: 1 };
        assert_eq!(s.to_string(), "3 hits / 4 lookups (75.0% hit rate), 1 insertions, 0 evictions");
        assert_eq!(
            PlanCacheStats::default().to_string(),
            "0 hits / 0 lookups (0.0% hit rate), 0 insertions, 0 evictions"
        );
    }

    #[test]
    fn delta_isolates_a_window() {
        let before = PlanCacheStats { hits: 10, misses: 5, evictions: 1, insertions: 5 };
        let after = PlanCacheStats { hits: 18, misses: 5, evictions: 1, insertions: 5 };
        let d = after.delta(&before);
        assert_eq!(d, PlanCacheStats { hits: 8, misses: 0, evictions: 0, insertions: 0 });
        assert_eq!(d.hit_rate(), 1.0);
        assert_eq!(before.delta(&before).hit_rate(), 0.0, "empty window");
    }

    #[test]
    fn stats_merge_folds_counters() {
        let mut total = PlanCacheStats { hits: 1, misses: 2, evictions: 3, insertions: 4 };
        total.merge(&PlanCacheStats { hits: 10, misses: 20, evictions: 30, insertions: 40 });
        assert_eq!(total, PlanCacheStats { hits: 11, misses: 22, evictions: 33, insertions: 44 });
    }

    #[test]
    fn cached_dynamic_plan_matches_fresh_build_under_permutation() {
        // The memoization soundness argument in one test: a permuted
        // multiset must yield the same stats and plan evaluation —
        // whether the op streams were built eagerly or lazily.
        let cfg = ScoreboardConfig::with_width(4);
        let original = [14u16, 2, 5, 1, 15, 7, 2, 0];
        let permuted = [0u16, 15, 2, 7, 1, 5, 2, 14];
        assert_eq!(
            PlanKey::new(&cfg, None, &original),
            PlanKey::new(&cfg, None, &permuted),
            "same multiset must share a key"
        );
        let a = CachedPlan::build_dynamic(&cfg, &original, true);
        let b = CachedPlan::build_dynamic(&cfg, &permuted, false);
        let (CachedPlan::Dynamic { stats: sa, .. }, CachedPlan::Dynamic { stats: sb, .. }) =
            (&a, &b)
        else {
            panic!("dynamic plans expected");
        };
        assert_eq!(sa, sb, "stats must be permutation-invariant");
        let inputs: Vec<Vec<i64>> = (0..4).map(|j| vec![j as i64 * 3 - 4]).collect();
        assert_eq!(
            a.dynamic_plan(&cfg, &original).evaluate(&inputs),
            b.dynamic_plan(&cfg, &permuted).evaluate(&inputs),
            "eager and lazily-rebuilt plans must evaluate identically"
        );
    }

    #[test]
    fn shard_count_rounds_to_power_of_two_and_clamps() {
        assert_eq!(SharedPlanCache::with_shards(100, 3).shard_count(), 4);
        assert_eq!(SharedPlanCache::with_shards(100, 8).shard_count(), 8);
        // Clamped: never more shards than capacity.
        assert_eq!(SharedPlanCache::with_shards(2, 64).shard_count(), 2);
        assert_eq!(SharedPlanCache::with_shards(1, 64).shard_count(), 1);
        assert_eq!(SharedPlanCache::with_shards(3, 64).shard_count(), 2);
        // 0 is treated as 1.
        assert_eq!(SharedPlanCache::with_shards(8, 0).shard_count(), 1);
        assert!(SharedPlanCache::new(4096).shard_count().is_power_of_two());
    }

    #[test]
    fn sharded_capacity_sums_exactly() {
        for (cap, shards) in [(4096usize, 16usize), (100, 8), (7, 4), (1, 1), (13, 64)] {
            let cache = SharedPlanCache::with_shards(cap, shards);
            assert_eq!(cache.capacity(), cap, "capacity must be exact for {cap}/{shards}");
            assert!(cache.is_empty());
            assert_eq!(cache.len(), 0);
        }
    }

    #[test]
    fn default_shard_count_is_power_of_two() {
        let n = SharedPlanCache::default_shard_count();
        assert!(n.is_power_of_two());
        assert!(n >= 4, "at least 4 shards even on one core, got {n}");
    }

    #[test]
    fn auto_sharding_preserves_min_per_shard_capacity() {
        // `new` (the `plan_cache_shards = 0` path) must never hand out
        // shards smaller than MIN_AUTO_SHARD_CAPACITY on any host shape:
        // an 8-entry cache gets one shard (the old single-table
        // behavior), never 8 direct-mapped slots.
        for cap in [1usize, 2, 7, 8, 9, 31, 32, 64, 256, 4096] {
            let cache = SharedPlanCache::new(cap);
            let count = cache.shard_count();
            assert!(count.is_power_of_two());
            assert!(
                count == 1 || cap / count >= SharedPlanCache::MIN_AUTO_SHARD_CAPACITY,
                "capacity {cap} auto-sharded {count} ways leaves {}-entry shards",
                cap / count
            );
        }
        assert_eq!(SharedPlanCache::new(8).shard_count(), 1);
        assert_eq!(SharedPlanCache::new(1).shard_count(), 1);
    }

    #[test]
    fn shard_routing_spreads_distinct_keys() {
        // Not a distribution-quality test — just that routing actually
        // uses more than one shard for a varied key population.
        let cache = SharedPlanCache::with_shards(1024, 8);
        let used: std::collections::HashSet<usize> =
            (0..64u16).map(|i| cache.shard_for(&key(&[i % 16, (i / 16) % 16]))).collect();
        assert!(used.len() > 1, "64 distinct keys all routed to one shard");
        for &s in &used {
            assert!(s < cache.shard_count());
        }
    }

    #[test]
    fn shared_cache_concurrent_access() {
        let cache = std::sync::Arc::new(SharedPlanCache::new(64));
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..32u16 {
                        let p = [(i % 8) | (t & 1) << 3];
                        let k = key(&p);
                        if cache.get(&k).is_none() {
                            cache.insert(k, plan(&p));
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.lookups(), 4 * 32);
        assert!(s.hits > 0, "repeat lookups must hit: {s:?}");
        assert!(cache.len() <= 16);
    }

    #[test]
    fn spawn_storm_conserves_counters_and_loses_no_entry() {
        // N threads hammer a small key set with interleaved get/insert.
        // Afterwards the aggregate counters must balance exactly:
        // every lookup is a hit or a miss, and the entry count is the
        // insertions that were not later evicted.
        const THREADS: u16 = 8;
        const ROUNDS: u16 = 200;
        let keys: Vec<Vec<u16>> = (0..6u16).map(|i| vec![i, i, (i + 1) % 16]).collect();
        let cache = std::sync::Arc::new(SharedPlanCache::with_shards(64, 8));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = std::sync::Arc::clone(&cache);
                let keys = &keys;
                scope.spawn(move || {
                    for i in 0..ROUNDS {
                        let p = &keys[((i + t) % keys.len() as u16) as usize];
                        let k = key(p);
                        if cache.get(&k).is_none() {
                            cache.insert(k, plan(p));
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.lookups(), u64::from(THREADS) * u64::from(ROUNDS), "lookup conservation");
        assert_eq!(s.insertions - s.evictions, cache.len() as u64, "entry conservation");
        assert_eq!(s.evictions, 0, "6 keys fit in 64 entries");
        // No lost entries: every key of the working set is resident.
        for p in &keys {
            assert!(cache.get(&key(p)).is_some(), "key {p:?} lost");
        }
    }

    #[test]
    fn spawn_storm_under_eviction_pressure_stays_consistent() {
        // Same storm, but the key population exceeds capacity so every
        // shard evicts continuously; conservation must still hold.
        const THREADS: u16 = 8;
        const ROUNDS: u16 = 150;
        let cache = std::sync::Arc::new(SharedPlanCache::with_shards(8, 4));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..ROUNDS {
                        let p = [(i.wrapping_mul(7) + t) % 16, t % 16];
                        let k = key(&p);
                        if cache.get(&k).is_none() {
                            cache.insert(k, plan(&p));
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.lookups(), u64::from(THREADS) * u64::from(ROUNDS));
        assert_eq!(s.insertions - s.evictions, cache.len() as u64);
        assert!(s.evictions > 0, "population of ~16×8 keys must overflow 8 entries");
        assert!(cache.len() <= cache.capacity());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Shard routing is permutation-invariant: any shuffle of a
        /// pattern multiset canonicalizes to the same key and therefore
        /// routes to the same shard.
        #[test]
        fn shard_routing_is_stable_under_permutation(
            mut patterns in proptest::collection::vec(0u16..16, 0..64),
            seed in 0u64..1024,
            shards in 1usize..64,
        ) {
            let cfg = ScoreboardConfig::with_width(4);
            let cache = SharedPlanCache::with_shards(256, shards);
            let original = PlanKey::new(&cfg, None, &patterns);
            let home = cache.shard_for(&original);
            // Seeded Fisher-Yates so the permutation is reproducible.
            let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            for i in (1..patterns.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = ((s >> 33) as usize) % (i + 1);
                patterns.swap(i, j);
            }
            let permuted = PlanKey::new(&cfg, None, &patterns);
            prop_assert_eq!(&original, &permuted, "canonical keys must match");
            prop_assert_eq!(home, cache.shard_for(&permuted), "shard routing must match");
            prop_assert!(home < cache.shard_count());
        }
    }
}
