//! The memoized plan cache — cross-tile result reuse for the Scoreboard
//! itself.
//!
//! A sub-tile's balanced forest, execution plan, and ZR/TR/FR/PR
//! statistics are fully determined by its TransRow pattern **multiset**
//! and the Scoreboard configuration: `record` only counts occurrences,
//! and the forward/backward/balance passes walk the 2^T Hasse nodes in a
//! fixed order. Two tiles presenting the same multiset — in any row
//! order — therefore produce bit-identical plans, so re-running Alg. 1–2
//! for every sub-tile of a layer wastes the work the paper's whole
//! premise is about reusing. [`PlanCache`] memoizes the post-scoreboard
//! products behind a canonical, permutation-invariant [`PlanKey`];
//! [`SharedPlanCache`] is the thread-safe wrapper the tile-execution
//! runtime's workers share.
//!
//! Position-dependent per-tile quantities (crossbar bank occupancy, which
//! depends on each row's original index) are deliberately **not** cached
//! — callers recompute them per tile, which is what keeps a cache hit
//! bit-identical to a fresh plan (the determinism contract of
//! `ta_core::runtime`).

use crate::exec::ExecutionPlan;
use crate::scoreboard::{BalancePolicy, Scoreboard, ScoreboardConfig};
use crate::si::StaticTileReport;
use crate::stats::TileStats;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Canonical, permutation-invariant cache key for one sub-tile plan.
///
/// Two pattern slices map to the same key iff they are permutations of
/// one another **and** were planned under the same TransRow width,
/// distance cap, lane count, balance policy, and (for static mode) the
/// same SI table instance. Zero rows participate: they change row counts,
/// Scoreboard scan cycles, and densities.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    width: u32,
    max_distance: u8,
    lanes: u32,
    balance: BalancePolicy,
    /// Static-SI instance token ([`crate::StaticSi::instance_token`]);
    /// `None` for dynamic-mode plans.
    si_token: Option<u64>,
    /// Sorted `(pattern, count)` pairs — the multiset, canonicalized.
    entries: Box<[(u16, u32)]>,
}

impl PlanKey {
    /// Builds the canonical key for `patterns` under `cfg`.
    ///
    /// `si_token` must be `Some` with the static SI's
    /// [`crate::StaticSi::instance_token`] when the plan will be
    /// evaluated against a shared static table (its chains change the
    /// result), `None` for dynamic-mode plans.
    ///
    /// # Panics
    ///
    /// Panics if a pattern exceeds `cfg.width`.
    pub fn new(cfg: &ScoreboardConfig, si_token: Option<u64>, patterns: &[u16]) -> Self {
        let mut sorted: Vec<u16> = patterns.to_vec();
        sorted.sort_unstable();
        if let Some(&max) = sorted.last() {
            assert!(
                (max as u32) < (1u32 << cfg.width),
                "pattern {max:#b} exceeds width {}",
                cfg.width
            );
        }
        let mut entries: Vec<(u16, u32)> = Vec::new();
        for p in sorted {
            match entries.last_mut() {
                Some((last, count)) if *last == p => *count += 1,
                _ => entries.push((p, 1)),
            }
        }
        Self {
            width: cfg.width,
            max_distance: cfg.max_distance,
            lanes: cfg.effective_lanes(),
            balance: cfg.balance,
            si_token,
            entries: entries.into_boxed_slice(),
        }
    }

    /// Total rows the key covers (zero rows included).
    pub fn rows(&self) -> usize {
        self.entries.iter().map(|&(_, c)| c as usize).sum()
    }
}

/// A memoized post-scoreboard plan — everything about a sub-tile that
/// depends only on its pattern multiset (never on row order).
// Values live exclusively behind `Arc<CachedPlan>` in the cache, so the
// variant size asymmetry never inflates a by-value container.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CachedPlan {
    /// Dynamic mode: the tile's statistics plus the per-lane op streams
    /// (the functional evaluator `execute_gemm` replays).
    Dynamic {
        /// ZR/TR/FR/PR statistics and cycle counts of the tile, shared
        /// so cache hits hand them out without deep-cloning the lane
        /// vectors.
        stats: Arc<TileStats>,
        /// The balanced forest linearized into per-lane op streams —
        /// built lazily via [`CachedPlan::dynamic_plan`], so
        /// simulation-only workloads (which never evaluate functionally)
        /// pay neither the linearization nor its resident memory.
        plan: OnceLock<ExecutionPlan>,
    },
    /// Static mode: the tile replay report under one shared SI table.
    Static {
        /// Op/miss accounting of the tile under the static SI.
        report: StaticTileReport,
    },
}

impl CachedPlan {
    /// Builds the dynamic-mode plan for `patterns` from scratch (the
    /// cache-miss path): statistics eagerly, op streams lazily.
    ///
    /// Pass `with_plan = true` from functional callers that are about to
    /// evaluate — the one Scoreboard build then serves both products.
    pub fn build_dynamic(cfg: &ScoreboardConfig, patterns: &[u16], with_plan: bool) -> Self {
        let sb = Scoreboard::build(*cfg, patterns.iter().copied());
        let plan = OnceLock::new();
        if with_plan {
            let _ = plan.set(ExecutionPlan::from_scoreboard(&sb));
        }
        CachedPlan::Dynamic { stats: Arc::new(TileStats::from_scoreboard(&sb)), plan }
    }

    /// The dynamic entry's op streams, building them on first use. A
    /// rebuild from any permutation of the entry's multiset yields the
    /// identical plan (the Scoreboard is multiset-determined), so
    /// callers pass whatever tile produced the cache hit.
    ///
    /// # Panics
    ///
    /// Panics on a `Static` entry.
    pub fn dynamic_plan(&self, cfg: &ScoreboardConfig, patterns: &[u16]) -> &ExecutionPlan {
        match self {
            CachedPlan::Dynamic { plan, .. } => plan.get_or_init(|| {
                ExecutionPlan::from_scoreboard(&Scoreboard::build(*cfg, patterns.iter().copied()))
            }),
            CachedPlan::Static { .. } => panic!("static entries hold no dynamic plan"),
        }
    }
}

/// Hit/miss/eviction counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a memoized plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries inserted (fresh keys only; re-inserting a cached key
    /// refreshes recency without counting again).
    pub insertions: u64,
}

impl PlanCacheStats {
    /// Hit fraction over all lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas since an earlier snapshot — e.g. the warm-replay
    /// hit rate is `after.delta(&before).hit_rate()`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `before` is not an earlier snapshot of
    /// the same monotonically-growing counters.
    pub fn delta(&self, before: &PlanCacheStats) -> PlanCacheStats {
        debug_assert!(
            self.hits >= before.hits
                && self.misses >= before.misses
                && self.evictions >= before.evictions
                && self.insertions >= before.insertions,
            "delta baseline must be an earlier snapshot"
        );
        PlanCacheStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            evictions: self.evictions - before.evictions,
            insertions: self.insertions - before.insertions,
        }
    }
}

/// Slab slot of the LRU list. `usize::MAX` marks "no neighbor".
#[derive(Debug)]
struct Slot {
    key: PlanKey,
    value: Arc<CachedPlan>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A bounded, LRU-evicting memo table from canonical pattern multisets to
/// their post-scoreboard plans.
///
/// Single-threaded; wrap in [`SharedPlanCache`] to share across the
/// tile-execution runtime's workers.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    map: HashMap<PlanKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot (the eviction victim).
    tail: usize,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity cache is "cache
    /// off", which callers express by not constructing one.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be non-zero");
        Self {
            capacity,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: PlanCacheStats::default(),
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                Some(Arc::clone(&self.slots[slot].value))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → value`, evicting the
    /// least-recently-used entry when full.
    pub fn insert(&mut self, key: PlanKey, value: Arc<CachedPlan>) {
        if let Some(&slot) = self.map.get(&key) {
            // Concurrent workers can race a miss: both compute, both
            // insert. Results are identical by construction; keep the
            // newer value and refresh recency.
            self.slots[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let old_key = self.slots[victim].key.clone();
            self.map.remove(&old_key);
            self.free.push(victim);
            self.stats.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Slot { key: key.clone(), value, prev: NIL, next: NIL };
                slot
            }
            None => {
                self.slots.push(Slot { key: key.clone(), value, prev: NIL, next: NIL });
                self.slots.len() - 1
            }
        };
        self.attach_front(slot);
        self.map.insert(key, slot);
        self.stats.insertions += 1;
    }

    /// Unlinks `slot` from the recency list.
    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Links `slot` at the most-recently-used end.
    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

/// Thread-safe [`PlanCache`] the tile-execution runtime's workers (and
/// `Batch` jobs) share. All methods take `&self`; contention is one
/// short critical section per lookup/insert — the plan construction a
/// miss triggers happens **outside** the lock, so two workers may race
/// the same miss and insert identical values (harmless by construction).
#[derive(Debug)]
pub struct SharedPlanCache {
    inner: Mutex<PlanCache>,
}

impl SharedPlanCache {
    /// Creates a shared cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self { inner: Mutex::new(PlanCache::new(capacity)) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanCache> {
        // A worker that panicked mid-insert cannot leave the LRU list in
        // a state that corrupts *values* (they are immutable Arcs), so
        // recover instead of poisoning every later simulation.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up `key` (see [`PlanCache::get`]).
    pub fn get(&self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        self.lock().get(key)
    }

    /// Inserts `key → value` (see [`PlanCache::insert`]).
    pub fn insert(&self, key: PlanKey, value: Arc<CachedPlan>) {
        self.lock().insert(key, value);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        self.lock().stats()
    }

    /// Current entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.lock().capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(patterns: &[u16]) -> PlanKey {
        PlanKey::new(&ScoreboardConfig::with_width(4), None, patterns)
    }

    fn plan(patterns: &[u16]) -> Arc<CachedPlan> {
        Arc::new(CachedPlan::build_dynamic(&ScoreboardConfig::with_width(4), patterns, false))
    }

    #[test]
    fn shared_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedPlanCache>();
        assert_send_sync::<PlanKey>();
        assert_send_sync::<CachedPlan>();
    }

    #[test]
    fn key_is_permutation_invariant() {
        assert_eq!(key(&[14, 2, 5, 1, 15, 7, 2]), key(&[2, 2, 1, 5, 7, 14, 15]));
        assert_eq!(key(&[0, 3, 0]), key(&[3, 0, 0]));
        assert_eq!(key(&[]), key(&[]));
    }

    #[test]
    fn key_is_count_sensitive() {
        assert_ne!(key(&[2, 5]), key(&[2, 2, 5]));
        assert_ne!(key(&[2]), key(&[2, 0]), "zero rows count");
        assert_ne!(key(&[]), key(&[0]));
    }

    #[test]
    fn key_is_config_sensitive() {
        let patterns = [1u16, 3, 7];
        let base = ScoreboardConfig::with_width(4);
        let k = PlanKey::new(&base, None, &patterns);
        let widened = PlanKey::new(&ScoreboardConfig::with_width(5), None, &patterns);
        assert_ne!(k, widened);
        let capped = PlanKey::new(&ScoreboardConfig { max_distance: 2, ..base }, None, &patterns);
        assert_ne!(k, capped);
        let laned = PlanKey::new(&ScoreboardConfig { lanes: 2, ..base }, None, &patterns);
        assert_ne!(k, laned);
        let unbalanced = PlanKey::new(
            &ScoreboardConfig { balance: BalancePolicy::FirstCandidate, ..base },
            None,
            &patterns,
        );
        assert_ne!(k, unbalanced);
        let static_mode = PlanKey::new(&base, Some(7), &patterns);
        assert_ne!(k, static_mode);
        assert_ne!(static_mode, PlanKey::new(&base, Some(8), &patterns));
    }

    #[test]
    fn key_rows_counts_duplicates_and_zeros() {
        assert_eq!(key(&[0, 1, 1, 9]).rows(), 4);
        assert_eq!(key(&[]).rows(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn key_rejects_oversized_patterns() {
        let _ = key(&[16]);
    }

    #[test]
    fn cache_hits_after_insert() {
        let mut cache = PlanCache::new(4);
        let k = key(&[1, 2, 3]);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), plan(&[1, 2, 3]));
        assert!(cache.get(&k).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 1, 0));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        let (a, b, c) = (key(&[1]), key(&[2]), key(&[3]));
        cache.insert(a.clone(), plan(&[1]));
        cache.insert(b.clone(), plan(&[2]));
        // Touch `a` so `b` becomes the victim.
        assert!(cache.get(&a).is_some());
        cache.insert(c.clone(), plan(&[3]));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some(), "recently used entry survives");
        assert!(cache.get(&b).is_none(), "LRU entry evicted");
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_cycle_reuses_slots() {
        let mut cache = PlanCache::new(2);
        for i in 0..10u16 {
            cache.insert(key(&[i % 16]), plan(&[i % 16]));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 8);
        // The slab never grows past capacity.
        assert!(cache.slots.len() <= 2);
    }

    #[test]
    fn reinsert_refreshes_without_double_count() {
        let mut cache = PlanCache::new(2);
        let k = key(&[5, 5]);
        cache.insert(k.clone(), plan(&[5, 5]));
        cache.insert(k.clone(), plan(&[5, 5]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn capacity_one_cache_works() {
        let mut cache = PlanCache::new(1);
        let (a, b) = (key(&[1]), key(&[2]));
        cache.insert(a.clone(), plan(&[1]));
        cache.insert(b.clone(), plan(&[2]));
        assert!(cache.get(&a).is_none());
        assert!(cache.get(&b).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = PlanCache::new(0);
    }

    #[test]
    fn hit_rate_math() {
        let mut s = PlanCacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn delta_isolates_a_window() {
        let before = PlanCacheStats { hits: 10, misses: 5, evictions: 1, insertions: 5 };
        let after = PlanCacheStats { hits: 18, misses: 5, evictions: 1, insertions: 5 };
        let d = after.delta(&before);
        assert_eq!(d, PlanCacheStats { hits: 8, misses: 0, evictions: 0, insertions: 0 });
        assert_eq!(d.hit_rate(), 1.0);
        assert_eq!(before.delta(&before).hit_rate(), 0.0, "empty window");
    }

    #[test]
    fn cached_dynamic_plan_matches_fresh_build_under_permutation() {
        // The memoization soundness argument in one test: a permuted
        // multiset must yield the same stats and plan evaluation —
        // whether the op streams were built eagerly or lazily.
        let cfg = ScoreboardConfig::with_width(4);
        let original = [14u16, 2, 5, 1, 15, 7, 2, 0];
        let permuted = [0u16, 15, 2, 7, 1, 5, 2, 14];
        assert_eq!(
            PlanKey::new(&cfg, None, &original),
            PlanKey::new(&cfg, None, &permuted),
            "same multiset must share a key"
        );
        let a = CachedPlan::build_dynamic(&cfg, &original, true);
        let b = CachedPlan::build_dynamic(&cfg, &permuted, false);
        let (CachedPlan::Dynamic { stats: sa, .. }, CachedPlan::Dynamic { stats: sb, .. }) =
            (&a, &b)
        else {
            panic!("dynamic plans expected");
        };
        assert_eq!(sa, sb, "stats must be permutation-invariant");
        let inputs: Vec<Vec<i64>> = (0..4).map(|j| vec![j as i64 * 3 - 4]).collect();
        assert_eq!(
            a.dynamic_plan(&cfg, &original).evaluate(&inputs),
            b.dynamic_plan(&cfg, &permuted).evaluate(&inputs),
            "eager and lazily-rebuilt plans must evaluate identically"
        );
    }

    #[test]
    fn shared_cache_concurrent_access() {
        let cache = std::sync::Arc::new(SharedPlanCache::new(64));
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..32u16 {
                        let p = [(i % 8) | (t & 1) << 3];
                        let k = key(&p);
                        if cache.get(&k).is_none() {
                            cache.insert(k, plan(&p));
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 4 * 32);
        assert!(s.hits > 0, "repeat lookups must hit: {s:?}");
        assert!(cache.len() <= 16);
    }
}
