//! The Hasse graph of the subset partial order on `{0,1}^T` (§2.3, Fig. 4).
//!
//! The graph is never materialized as adjacency lists — neighbors are
//! single-bit flips (the Translators of Fig. 6). This module provides the
//! width-bound view plus the cached Hamming-order traversals the
//! Scoreboard passes use.

use std::sync::OnceLock;

use ta_bitslice::hamming_order;

/// Width-bound view of the Hasse graph for `T`-bit TransRows.
///
/// # Examples
///
/// ```
/// use ta_hasse::HasseGraph;
///
/// let g = HasseGraph::new(4);
/// assert_eq!(g.node_count(), 16);
/// assert_eq!(g.level(0b1011), 3);
/// assert_eq!(g.suffixes(0b0011).collect::<Vec<_>>(), vec![0b0111, 0b1011]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HasseGraph {
    width: u32,
}

/// Cached Hamming orders for every supported width (1..=16).
static ORDERS: [OnceLock<Vec<u16>>; 16] = [const { OnceLock::new() }; 16];

impl HasseGraph {
    /// Creates the graph view.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=16`.
    pub fn new(width: u32) -> Self {
        assert!((1..=16).contains(&width), "width must be in 1..=16, got {width}");
        Self { width }
    }

    /// TransRow width `T`.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Total node count `2^T`.
    #[inline]
    pub fn node_count(&self) -> usize {
        1usize << self.width
    }

    /// Hasse level of a pattern (its popcount).
    #[inline]
    pub fn level(&self, pattern: u16) -> u32 {
        pattern.count_ones()
    }

    /// Nodes in Hamming order (level-ascending — the forward-pass
    /// traversal of Alg. 1). Cached per width.
    pub fn forward_order(&self) -> &'static [u16] {
        ORDERS[self.width as usize - 1].get_or_init(|| hamming_order(self.width))
    }

    /// Immediate suffixes: one 0→1 flip within the width.
    #[inline]
    pub fn suffixes(&self, pattern: u16) -> impl Iterator<Item = u16> + '_ {
        let width = self.width;
        (0..width).filter_map(move |j| {
            let bit = 1u16 << j;
            if pattern & bit == 0 {
                Some(pattern | bit)
            } else {
                None
            }
        })
    }

    /// Immediate prefixes: one 1→0 flip.
    #[inline]
    pub fn prefixes(&self, pattern: u16) -> impl Iterator<Item = u16> {
        let mut bits = pattern;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let bit = bits & bits.wrapping_neg();
                bits &= bits - 1;
                Some(pattern & !bit)
            }
        })
    }

    /// Validates that a pattern fits the width.
    #[inline]
    pub fn contains(&self, pattern: u16) -> bool {
        (pattern as u32) < (1u32 << self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_and_levels() {
        let g = HasseGraph::new(8);
        assert_eq!(g.node_count(), 256);
        assert_eq!(g.level(0), 0);
        assert_eq!(g.level(0xFF), 8);
    }

    #[test]
    fn forward_order_cached_and_monotone() {
        let g = HasseGraph::new(5);
        let o1 = g.forward_order();
        let o2 = g.forward_order();
        assert_eq!(o1.as_ptr(), o2.as_ptr(), "order must be cached");
        assert_eq!(o1.len(), 32);
        for w in o1.windows(2) {
            assert!(g.level(w[0]) <= g.level(w[1]));
        }
    }

    #[test]
    fn suffix_prefix_iterators_match_fig4() {
        let g = HasseGraph::new(4);
        // Node 3 (0011): suffixes 7, 11 — prefixes 1, 2.
        assert_eq!(g.suffixes(0b0011).collect::<Vec<_>>(), vec![0b0111, 0b1011]);
        assert_eq!(g.prefixes(0b0011).collect::<Vec<_>>(), vec![0b0010, 0b0001]);
        // Top node has no suffixes; bottom no prefixes.
        assert_eq!(g.suffixes(0b1111).count(), 0);
        assert_eq!(g.prefixes(0).count(), 0);
    }

    #[test]
    fn suffixes_respect_width() {
        let g = HasseGraph::new(3);
        let s: Vec<u16> = g.suffixes(0b010).collect();
        assert_eq!(s, vec![0b011, 0b110]);
        assert!(s.iter().all(|&p| g.contains(p)));
    }

    #[test]
    fn contains_checks_width() {
        let g = HasseGraph::new(4);
        assert!(g.contains(15));
        assert!(!g.contains(16));
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=16")]
    fn zero_width_rejected() {
        let _ = HasseGraph::new(0);
    }
}
