//! Scoreboard Information (SI) — static and dynamic modes (§3.3, §3.4).
//!
//! The **dynamic** Scoreboard builds a private SI per sub-tile at runtime
//! (just call [`crate::Scoreboard::build`] on the tile's patterns). The
//! **static** Scoreboard computes one SI offline over a whole tensor (or a
//! calibration union) and shares it across every tile — saving the
//! hardware Scoreboard unit (~25% area, §5.8) at the price of *SI misses*:
//! a tile may need a prefix whose result no row of the tile produces, so
//! the chain must be materialized on the fly, costing extra adds.

use crate::exec::{ExecScratch, ResultSink};
use crate::scoreboard::{Scoreboard, ScoreboardConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use ta_bitslice::TileView;

/// Process-wide counter backing [`StaticSi::instance_token`].
static NEXT_SI_TOKEN: AtomicU64 = AtomicU64::new(1);

/// A tensor-level Scoreboard Information table: for every pattern active
/// at calibration time, the single prefix its result chain reuses, plus
/// its lane.
#[derive(Debug, Clone)]
pub struct StaticSi {
    cfg: ScoreboardConfig,
    /// `prefix[p]`: chosen prefix of `p`; `u16::MAX` = not in table;
    /// `SELF` = outlier (computed from scratch).
    prefix: Vec<u16>,
    lane: Vec<u8>,
    entries: usize,
    /// Unique per-construction token (clones share it — their tables are
    /// identical). Keys the plan cache so memoized static-mode tile
    /// reports are never reused across *different* SI tables.
    token: u64,
}

/// Marker for "computed from scratch" entries.
const SELF: u16 = u16::MAX - 1;
const ABSENT: u16 = u16::MAX;

/// Report of executing one tile under a static SI.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StaticTileReport {
    /// Rows in the tile.
    pub rows: usize,
    /// Zero rows (skipped).
    pub zero_rows: usize,
    /// Total accumulate ops (comparable to
    /// [`crate::TileStats::total_ops`]).
    pub total_ops: u64,
    /// Chain steps that had to materialize a pattern no tile row produces
    /// (the *SI miss* events of §3.3).
    pub si_misses: u64,
    /// Tile patterns entirely absent from the calibration table, computed
    /// from scratch.
    pub unknown_patterns: u64,
    /// Dense op count `rows × T`.
    pub dense_bit_ops: u64,
    /// PPE ops per lane (table lane of each pattern; unknown patterns go
    /// to lane 0).
    pub lane_ops: Vec<u64>,
    /// Row accumulations (APE) per lane.
    pub lane_rows: Vec<u64>,
}

impl StaticTileReport {
    /// Ops relative to dense binary GEMM.
    pub fn density(&self) -> f64 {
        if self.dense_bit_ops == 0 {
            0.0
        } else {
            self.total_ops as f64 / self.dense_bit_ops as f64
        }
    }

    /// SI miss rate per non-zero row.
    pub fn miss_rate(&self) -> f64 {
        let nz = (self.rows - self.zero_rows) as f64;
        if nz == 0.0 {
            0.0
        } else {
            self.si_misses as f64 / nz
        }
    }
}

impl StaticSi {
    /// Builds the static SI by running the full Scoreboard over the
    /// tensor-level pattern multiset (offline step, §3.3).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Scoreboard::build`].
    pub fn from_patterns(cfg: ScoreboardConfig, patterns: impl IntoIterator<Item = u16>) -> Self {
        let sb = Scoreboard::build(cfg, patterns);
        Self::from_scoreboard(&sb)
    }

    /// Extracts the SI table from an already-built Scoreboard.
    pub fn from_scoreboard(sb: &Scoreboard) -> Self {
        let cfg = *sb.config();
        let n = 1usize << cfg.width;
        let mut prefix = vec![ABSENT; n];
        let mut lane = vec![u8::MAX; n];
        let mut entries = 0;
        for p in sb.active_nodes() {
            let e = sb.node(p);
            prefix[p as usize] = if sb.is_outlier(p) { SELF } else { e.chosen_parent };
            lane[p as usize] = e.lane;
            entries += 1;
        }
        Self { cfg, prefix, lane, entries, token: NEXT_SI_TOKEN.fetch_add(1, Ordering::Relaxed) }
    }

    /// The configuration the table was built with.
    pub fn config(&self) -> &ScoreboardConfig {
        &self.cfg
    }

    /// A token unique to this table's construction (shared by clones,
    /// which hold identical tables). The plan cache scopes static-mode
    /// entries by it: a memoized tile report is only reused with the SI
    /// whose chains produced it.
    pub fn instance_token(&self) -> u64 {
        self.token
    }

    /// Number of patterns in the table (present + transit at calibration).
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// The table's chosen prefix for `pattern`: `Some(prefix)` for chained
    /// entries, `Some(pattern)` is never returned; `None` when the pattern
    /// is an outlier or absent from the table.
    pub fn prefix_of(&self, pattern: u16) -> Option<u16> {
        match self.prefix[pattern as usize] {
            ABSENT | SELF => None,
            p => Some(p),
        }
    }

    /// Whether the pattern appears in the table at all.
    pub fn contains(&self, pattern: u16) -> bool {
        self.prefix[pattern as usize] != ABSENT
    }

    /// Lane the table assigned to `pattern` (if present).
    pub fn lane_of(&self, pattern: u16) -> Option<u8> {
        if self.contains(pattern) {
            Some(self.lane[pattern as usize])
        } else {
            None
        }
    }

    /// SI storage bits: the paper's `2 × T × 2^T` formula (§3.2 — each
    /// entry stores a TransRow and its prefix at `T` bits each).
    pub fn storage_bits(&self) -> u64 {
        2 * self.cfg.width as u64 * (1u64 << self.cfg.width)
    }

    /// Executes one tile's pattern multiset under this shared SI and
    /// reports ops and misses.
    ///
    /// Semantics: rows execute in Hamming order. A row whose pattern is
    /// already computed in-tile is an FR (1 op). Otherwise its static
    /// chain is walked toward node 0; every not-yet-computed ancestor on
    /// the chain is materialized (1 op each — these are the SI-miss
    /// transit adds when the ancestor has no tile row). Patterns the table
    /// has never seen are computed from scratch (popcount ops).
    pub fn evaluate_tile(&self, patterns: &[u16]) -> StaticTileReport {
        let n = 1usize << self.cfg.width;
        let mut computed = vec![false; n];
        let mut in_tile = vec![false; n];
        for &p in patterns {
            in_tile[p as usize] = true;
        }
        let lanes = self.cfg.effective_lanes() as usize;
        let mut rep = StaticTileReport {
            rows: patterns.len(),
            dense_bit_ops: patterns.len() as u64 * self.cfg.width as u64,
            lane_ops: vec![0; lanes],
            lane_rows: vec![0; lanes],
            ..StaticTileReport::default()
        };
        // Hamming-order row execution (prefixes are lower-level, so
        // processing levels ascending maximizes in-tile reuse, matching
        // the hardware's sorted dispatch).
        let mut sorted: Vec<u16> = patterns.to_vec();
        sorted.sort_unstable_by_key(|p| (p.count_ones(), *p));
        for p in sorted {
            if p == 0 {
                rep.zero_rows += 1;
                continue;
            }
            let lane = self.lane_of(p).map_or(0, |l| (l as usize).min(lanes - 1));
            rep.lane_rows[lane] += 1;
            if computed[p as usize] {
                rep.total_ops += 1; // FR
                rep.lane_ops[lane] += 1;
                continue;
            }
            let ops = self.materialize(p, &mut computed, &in_tile, &mut rep.si_misses);
            rep.total_ops += ops;
            rep.lane_ops[lane] += ops;
            if !self.contains(p) {
                rep.unknown_patterns += 1;
            }
        }
        rep
    }

    /// Functionally materializes every tile pattern's result vector under
    /// the static chains: returns `(pattern, accumulated vector)` pairs in
    /// computation order — the static-mode counterpart of
    /// [`crate::ExecutionPlan::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != width` or the row vectors are ragged.
    pub fn evaluate_tile_functional(
        &self,
        patterns: &[u16],
        inputs: &[Vec<i64>],
    ) -> Vec<(u16, Vec<i64>)> {
        assert_eq!(inputs.len(), self.cfg.width as usize, "need one input row per bit");
        let m = inputs.first().map_or(0, Vec::len);
        assert!(inputs.iter().all(|v| v.len() == m), "ragged input rows");
        let n = 1usize << self.cfg.width;
        let mut results: Vec<Option<Vec<i64>>> = vec![None; n];
        results[0] = Some(vec![0i64; m]);
        let mut order = Vec::new();
        let mut sorted: Vec<u16> = patterns.to_vec();
        sorted.sort_unstable_by_key(|p| (p.count_ones(), *p));
        sorted.dedup();
        for p in sorted {
            if p == 0 {
                continue;
            }
            self.materialize_functional(p, inputs, &mut results, &mut order);
        }
        order
    }

    /// Flat-buffer counterpart of [`Self::evaluate_tile_functional`]:
    /// materializes every tile pattern's result straight into `scratch`'s
    /// slab, emitting each finalized pattern to `sink` in the same
    /// computation order. Allocation-free once the scratch is warm (the
    /// per-tile Hamming sort reuses a scratch-resident buffer);
    /// [`Self::evaluate_tile_functional`] is retained as the test oracle.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.rows() != width`.
    pub fn evaluate_tile_functional_into(
        &self,
        patterns: &[u16],
        inputs: TileView<'_>,
        scratch: &mut ExecScratch,
        sink: &mut (impl ResultSink + ?Sized),
    ) {
        assert_eq!(inputs.rows(), self.cfg.width as usize, "need one input row per bit");
        scratch.begin(self.cfg.width, inputs.cols());
        let mut sorted = std::mem::take(&mut scratch.sort_buf);
        sorted.clear();
        sorted.extend_from_slice(patterns);
        sorted.sort_unstable_by_key(|p| (p.count_ones(), *p));
        sorted.dedup();
        for &p in &sorted {
            if p == 0 || scratch.computed(p) {
                continue;
            }
            self.materialize_into(p, inputs, scratch, sink);
        }
        scratch.sort_buf = sorted;
    }

    /// Walks `p`'s static chain down to the first computed ancestor (or a
    /// from-scratch stop), then replays it upward into the scratch slab —
    /// the iterative, slab-resident form of [`Self::materialize_functional`].
    /// Chain depth is bounded by the TransRow width (every prefix drops
    /// at least one bit), so the walk uses a fixed-size stack.
    fn materialize_into(
        &self,
        p: u16,
        inputs: TileView<'_>,
        scratch: &mut ExecScratch,
        sink: &mut (impl ResultSink + ?Sized),
    ) {
        // Chain of not-yet-computed nodes, `p` first, deepest last.
        let mut chain = [0u16; 16];
        let mut len = 0usize;
        let mut cur = p;
        while !scratch.computed(cur) {
            chain[len] = cur;
            len += 1;
            match self.prefix[cur as usize] {
                ABSENT | SELF => break, // from-scratch stop
                parent => cur = parent,
            }
        }
        // Replay deepest-first: one prefix copy + diff adds per node.
        for &node in chain[..len].iter().rev() {
            let diff = match self.prefix[node as usize] {
                ABSENT | SELF => {
                    scratch.slot_mut(node).fill(0);
                    node // from scratch: all set bits
                }
                parent => {
                    scratch.copy_slot(parent, node);
                    node ^ parent
                }
            };
            scratch.add_inputs(node, inputs, diff);
            scratch.mark(node);
            scratch.emit(node, sink);
        }
    }

    fn materialize_functional(
        &self,
        p: u16,
        inputs: &[Vec<i64>],
        results: &mut [Option<Vec<i64>>],
        order: &mut Vec<(u16, Vec<i64>)>,
    ) {
        if results[p as usize].is_some() {
            return;
        }
        let base = match self.prefix[p as usize] {
            ABSENT | SELF => vec![0i64; inputs.first().map_or(0, Vec::len)],
            parent => {
                self.materialize_functional(parent, inputs, results, order);
                results[parent as usize].as_ref().expect("parent computed").clone()
            }
        };
        let diff = match self.prefix[p as usize] {
            ABSENT | SELF => p, // from scratch: all set bits
            parent => p ^ parent,
        };
        let mut acc = base;
        let mut bits = diff;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            for (a, &x) in acc.iter_mut().zip(&inputs[j]) {
                *a += x;
            }
        }
        results[p as usize] = Some(acc.clone());
        order.push((p, acc));
    }

    /// Materializes `p`'s result, returning the op count charged. Marks
    /// every touched ancestor computed (memoized within the tile).
    fn materialize(
        &self,
        p: u16,
        computed: &mut [bool],
        in_tile: &[bool],
        misses: &mut u64,
    ) -> u64 {
        // Walk the chain down collecting uncomputed ancestors.
        let mut stack = Vec::new();
        let mut cur = p;
        let mut scratch_cost = 0u64;
        loop {
            if cur == 0 || computed[cur as usize] {
                break;
            }
            match self.prefix[cur as usize] {
                ABSENT | SELF => {
                    // From-scratch materialization: popcount adds.
                    scratch_cost = cur.count_ones() as u64;
                    computed[cur as usize] = true;
                    if !in_tile[cur as usize] {
                        *misses += 1;
                    }
                    break;
                }
                parent => {
                    stack.push(cur);
                    cur = parent;
                }
            }
        }
        // Replay upward: one add per chain link.
        let mut ops = scratch_cost;
        while let Some(node) = stack.pop() {
            computed[node as usize] = true;
            if !in_tile[node as usize] {
                *misses += 1;
            }
            ops += 1;
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Workers share StaticSi by reference across the tile-execution
    /// runtime's scoped threads — lock in the auto-derived thread
    /// safety so a future `Rc`/`RefCell` slip fails to compile.
    #[test]
    fn static_si_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StaticSi>();
    }

    fn cfg4() -> ScoreboardConfig {
        ScoreboardConfig::with_width(4)
    }

    #[test]
    fn static_si_matches_dynamic_when_tile_is_tensor() {
        // When the "tile" is the whole calibration set, static SI pays the
        // same ops as the dynamic Scoreboard.
        let patterns = vec![14u16, 2, 5, 1, 15, 7, 2];
        let si = StaticSi::from_patterns(cfg4(), patterns.iter().copied());
        let rep = si.evaluate_tile(&patterns);
        assert_eq!(rep.total_ops, 8); // 7 rows + 1 transit (Fig. 5)
        assert_eq!(rep.si_misses, 1); // the transit stop itself is not a row
        assert_eq!(rep.unknown_patterns, 0);
    }

    #[test]
    fn tile_missing_prefix_pays_misses() {
        // Calibrate on {1, 3, 7, 15}: chain 15→7→3→1.
        let si = StaticSi::from_patterns(cfg4(), [1u16, 3, 7, 15]);
        // A tile containing only {15}: must materialize 1, 3, 7 first.
        let rep = si.evaluate_tile(&[15]);
        assert_eq!(rep.total_ops, 4);
        assert_eq!(rep.si_misses, 3);
        // Dynamic scoreboard on the same tile would pay popcount(15) = 4
        // too (outlier) — static is never *worse* than from-scratch here.
    }

    #[test]
    fn tile_full_chain_present_no_misses() {
        let si = StaticSi::from_patterns(cfg4(), [1u16, 3, 7, 15]);
        let rep = si.evaluate_tile(&[1, 3, 7, 15]);
        assert_eq!(rep.total_ops, 4);
        assert_eq!(rep.si_misses, 0);
    }

    #[test]
    fn unknown_pattern_computed_from_scratch() {
        let si = StaticSi::from_patterns(cfg4(), [1u16, 3]);
        let rep = si.evaluate_tile(&[12]); // never calibrated
        assert_eq!(rep.unknown_patterns, 1);
        assert_eq!(rep.total_ops, 2); // popcount(12)
    }

    #[test]
    fn fr_within_tile_still_one_op() {
        let si = StaticSi::from_patterns(cfg4(), [5u16, 5]);
        let rep = si.evaluate_tile(&[5, 5, 5]);
        // First 5 materializes its chain (5 = 0101: transit level-1 stop +
        // itself = 2 ops), duplicates 1 op each.
        assert_eq!(rep.total_ops, 2 + 2);
    }

    #[test]
    fn zero_rows_skipped() {
        let si = StaticSi::from_patterns(cfg4(), [0u16, 1]);
        let rep = si.evaluate_tile(&[0, 0, 1]);
        assert_eq!(rep.zero_rows, 2);
        assert_eq!(rep.total_ops, 1);
        assert!((rep.density() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn storage_matches_paper_formula() {
        // §3.2: T=8 → 2·8·256 bits = 512 bytes.
        let si = StaticSi::from_patterns(ScoreboardConfig::with_width(8), [1u16]);
        assert_eq!(si.storage_bits(), 4096);
        assert_eq!(si.storage_bits() / 8, 512);
    }

    #[test]
    fn instance_tokens_unique_per_build_shared_by_clones() {
        let a = StaticSi::from_patterns(cfg4(), [1u16, 3]);
        let b = StaticSi::from_patterns(cfg4(), [1u16, 3]);
        assert_ne!(a.instance_token(), b.instance_token(), "independent builds must not alias");
        let c = a.clone();
        assert_eq!(a.instance_token(), c.instance_token(), "clones hold the same table");
    }

    #[test]
    fn miss_rate_and_lane_lookup() {
        let si = StaticSi::from_patterns(cfg4(), [2u16, 6, 14]);
        assert!(si.lane_of(2).is_some());
        assert!(si.lane_of(9).is_none());
        let rep = si.evaluate_tile(&[14, 14]);
        assert!(rep.miss_rate() > 0.0);
    }
}
