//! Execution plans — the per-lane op streams a TransArray unit consumes.
//!
//! The Scoreboard's balanced forest linearizes into one op stream per
//! lane (Hamming order guarantees every parent precedes its children, and
//! chains never straddle lanes), plus a tail of outlier ops dispatched at
//! the end (§5.2).

use crate::scoreboard::Scoreboard;

/// Why a node occupies a PPE slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// First occurrence of a present pattern with a valid prefix
    /// (Prefix-Result-Reuse in the paper's taxonomy).
    Present,
    /// Absent node materialized only to pass a partial result along
    /// (Transitive-Reuse).
    Transit,
}

/// One node computation: `result[node] = result[prefix] + Σ input[diff bits]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOp {
    /// Pattern being computed.
    pub node: u16,
    /// Pattern whose buffered result is reused (0 = empty sum).
    pub prefix: u16,
    /// `node ^ prefix` — the TranSparsity bits the dispatcher resolves
    /// with one XOR (§4.3). Always exactly one bit for in-forest ops.
    pub diff: u16,
    /// Lane executing this op.
    pub lane: u8,
    /// Present or transit.
    pub kind: OpKind,
}

/// One outlier computation: the pattern is accumulated from scratch
/// (popcount adds), bypassing the forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutlierOp {
    /// Pattern computed from scratch.
    pub node: u16,
    /// Lane it was appended to.
    pub lane: u8,
}

/// The complete, ordered execution plan of one Scoreboard.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    width: u32,
    lanes: Vec<Vec<PlanOp>>,
    outliers: Vec<OutlierOp>,
}

impl ExecutionPlan {
    /// Extracts the plan from a built Scoreboard.
    pub fn from_scoreboard(sb: &Scoreboard) -> Self {
        let lane_count = sb.config().effective_lanes() as usize;
        let mut lanes: Vec<Vec<PlanOp>> = vec![Vec::new(); lane_count];
        for p in sb.active_nodes() {
            if sb.is_outlier(p) {
                continue;
            }
            let e = sb.node(p);
            let prefix = e.chosen_parent;
            debug_assert_ne!(prefix, u16::MAX);
            lanes[e.lane as usize].push(PlanOp {
                node: p,
                prefix,
                diff: p ^ prefix,
                lane: e.lane,
                kind: if e.transit { OpKind::Transit } else { OpKind::Present },
            });
        }
        let outliers =
            sb.outliers().iter().map(|&p| OutlierOp { node: p, lane: sb.node(p).lane }).collect();
        Self { width: sb.config().width, lanes, outliers }
    }

    /// TransRow width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Per-lane op streams, parent-before-child within each lane.
    pub fn lanes(&self) -> &[Vec<PlanOp>] {
        &self.lanes
    }

    /// Outlier ops dispatched after the forest.
    pub fn outliers(&self) -> &[OutlierOp] {
        &self.outliers
    }

    /// All in-forest ops across lanes (unspecified inter-lane order).
    pub fn iter_ops(&self) -> impl Iterator<Item = &PlanOp> {
        self.lanes.iter().flatten()
    }

    /// Total PPE node computations (forest ops + outliers).
    pub fn node_op_count(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum::<usize>() + self.outliers.len()
    }

    /// Functionally evaluates the plan: given the `T` input row-vectors of
    /// the sub-tile (each of length `m`), returns the accumulated result
    /// vector for every computed pattern, as `(pattern, Vec<i64>)` pairs in
    /// execution order.
    ///
    /// This is the golden functional model of the PPE array: each op adds
    /// exactly the diff-bit inputs onto its prefix's buffered result.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != width` or the row vectors have unequal
    /// lengths.
    pub fn evaluate(&self, inputs: &[Vec<i64>]) -> Vec<(u16, Vec<i64>)> {
        assert_eq!(inputs.len(), self.width as usize, "need one input row per TransRow bit");
        let m = inputs.first().map_or(0, Vec::len);
        assert!(inputs.iter().all(|v| v.len() == m), "ragged input rows");
        let mut results: Vec<Option<Vec<i64>>> = vec![None; 1usize << self.width];
        results[0] = Some(vec![0i64; m]);
        let mut order = Vec::new();
        // Lanes are independent; evaluate lane by lane (hardware runs them
        // concurrently — results are identical because chains never cross).
        for lane in &self.lanes {
            for op in lane {
                let base = results[op.prefix as usize]
                    .as_ref()
                    .expect("prefix must be computed before its suffix")
                    .clone();
                let mut acc = base;
                let mut bits = op.diff;
                while bits != 0 {
                    let j = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    for (a, &x) in acc.iter_mut().zip(&inputs[j]) {
                        *a += x;
                    }
                }
                results[op.node as usize] = Some(acc.clone());
                order.push((op.node, acc));
            }
        }
        for op in &self.outliers {
            let mut acc = vec![0i64; m];
            let mut bits = op.node;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for (a, &x) in acc.iter_mut().zip(&inputs[j]) {
                    *a += x;
                }
            }
            results[op.node as usize] = Some(acc.clone());
            order.push((op.node, acc));
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Workers share ExecutionPlan by reference across the tile-execution
    /// runtime's scoped threads — lock in the auto-derived thread
    /// safety so a future `Rc`/`RefCell` slip fails to compile.
    #[test]
    fn execution_plan_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionPlan>();
    }
    use crate::scoreboard::ScoreboardConfig;

    fn plan_for(patterns: &[u16], width: u32) -> ExecutionPlan {
        let sb = Scoreboard::build(ScoreboardConfig::with_width(width), patterns.iter().copied());
        ExecutionPlan::from_scoreboard(&sb)
    }

    #[test]
    fn fig1_motivating_example() {
        // Fig. 1: binary rows 1011, 1111, 0011, 0010 over input
        // [6, -5, -2, 4] (bit j ↔ input element j; the figure's leftmost
        // matrix column is its bit 3). Expected row results: 8, 3, 2, -2
        // with 4 total ops.
        let patterns = [0b1011u16, 0b1111, 0b0011, 0b0010];
        let plan = plan_for(&patterns, 4);
        assert_eq!(plan.node_op_count(), 4, "transitive GEMM needs 4 ops");
        // Inputs indexed by bit: bit0=6? Map: pattern bit j multiplies
        // input[j]. Row 1011 must produce 6 + (-2) + 4 = 8 with
        // bit0=6? 1011 has bits 0,1,3 → choose inputs so the paper's sums
        // hold: input = [6, -2, 4 at bit3?]. Use bit0=6, bit1=-2, bit2=-5,
        // bit3=4: row 1011 → 6-2+4=8 ✓; 1111 → 6-2-5+4=3 ✓; 0011 → 4 ✓…
        let inputs: Vec<Vec<i64>> = vec![vec![6], vec![-2], vec![-5], vec![4]];
        let results = plan.evaluate(&inputs);
        let get = |p: u16| results.iter().find(|(n, _)| *n == p).map(|(_, v)| v[0]).unwrap();
        assert_eq!(get(0b0010), -2);
        assert_eq!(get(0b0011), 6 + -2);
        assert_eq!(get(0b1011), 6 + -2 + 4);
        assert_eq!(get(0b1111), 6 + -2 + -5 + 4);
    }

    #[test]
    fn in_forest_diffs_are_single_bit() {
        let patterns: Vec<u16> =
            (0..150u32).map(|i| (i.wrapping_mul(0x9E3779B9) >> 20) as u16 & 0xFF).collect();
        let plan = plan_for(&patterns, 8);
        for op in plan.iter_ops() {
            assert_eq!(op.diff.count_ones(), 1, "{:?}", op);
        }
    }

    #[test]
    fn parents_precede_children_within_lane() {
        let patterns: Vec<u16> =
            (0..100u32).map(|i| (i.wrapping_mul(2654435761) >> 18) as u16 & 0x3F).collect();
        let plan = plan_for(&patterns, 6);
        for lane in plan.lanes() {
            let mut seen = [false; 64];
            seen[0] = true;
            for op in lane {
                assert!(seen[op.prefix as usize], "prefix {} not yet computed", op.prefix);
                seen[op.node as usize] = true;
            }
        }
    }

    #[test]
    fn evaluate_matches_direct_popcount_sum() {
        // Every computed pattern's result must equal the direct sum of its
        // set-bit inputs — regardless of the reuse path taken.
        let patterns: Vec<u16> =
            (0..80u32).map(|i| (i.wrapping_mul(40503) >> 10) as u16 & 0xFF).collect();
        let plan = plan_for(&patterns, 8);
        let inputs: Vec<Vec<i64>> =
            (0..8).map(|j| vec![(j as i64 + 1) * 7 - 20, -(j as i64)]).collect();
        for (pattern, result) in plan.evaluate(&inputs) {
            let mut expect = vec![0i64; 2];
            for (j, input) in inputs.iter().enumerate() {
                if pattern & (1 << j) != 0 {
                    expect[0] += input[0];
                    expect[1] += input[1];
                }
            }
            assert_eq!(result, expect, "pattern {pattern:#010b}");
        }
    }

    #[test]
    fn every_present_pattern_is_computed() {
        let patterns = [7u16, 7, 3, 9, 12, 0, 1];
        let plan = plan_for(&patterns, 4);
        let computed: Vec<u16> = plan.evaluate(&vec![vec![1]; 4]).iter().map(|(p, _)| *p).collect();
        for p in [7u16, 3, 9, 12, 1] {
            assert!(computed.contains(&p), "pattern {p} missing");
        }
        // Zero rows are never computed.
        assert!(!computed.contains(&0));
    }

    #[test]
    #[should_panic(expected = "need one input row")]
    fn evaluate_checks_input_arity() {
        let plan = plan_for(&[1u16], 4);
        let _ = plan.evaluate(&[vec![1i64]]);
    }
}
