//! Execution plans — the per-lane op streams a TransArray unit consumes.
//!
//! The Scoreboard's balanced forest linearizes into one op stream per
//! lane (Hamming order guarantees every parent precedes its children, and
//! chains never straddle lanes), plus a tail of outlier ops dispatched at
//! the end (§5.2).

use crate::scoreboard::Scoreboard;
use ta_bitslice::TileView;

/// Receives each computed pattern result, in execution order — the fused
/// back end of [`ExecutionPlan::evaluate_into`] and
/// [`crate::StaticSi::evaluate_tile_functional_into`].
///
/// Results also stay resident in the [`ExecScratch`] slab after the walk,
/// so callers that accumulate per *row* (the GEMM engine) typically pass
/// [`NullSink`] and read [`ExecScratch::result`] afterwards; the sink
/// exists for streaming consumers and for order-sensitive tests.
pub trait ResultSink {
    /// Called once per computed pattern, immediately after its slab slice
    /// is finalized.
    fn emit(&mut self, pattern: u16, result: &[i64]);
}

/// A [`ResultSink`] that discards everything (results are read back from
/// the scratch slab instead).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ResultSink for NullSink {
    fn emit(&mut self, _pattern: u16, _result: &[i64]) {}
}

impl<F: FnMut(u16, &[i64])> ResultSink for F {
    fn emit(&mut self, pattern: u16, result: &[i64]) {
        self(pattern, result)
    }
}

/// A [`ResultSink`] that records every emission in order — the buffering
/// building block for streaming consumers (a serving frontend forwarding
/// chunks over a channel) and for order-sensitive tests.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// `(pattern, result)` pairs in emission order.
    pub emitted: Vec<(u16, Vec<i64>)>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the recorded emissions, leaving the sink empty for reuse.
    pub fn drain(&mut self) -> Vec<(u16, Vec<i64>)> {
        std::mem::take(&mut self.emitted)
    }
}

impl ResultSink for VecSink {
    fn emit(&mut self, pattern: u16, result: &[i64]) {
        self.emitted.push((pattern, result.to_vec()));
    }
}

/// Per-worker evaluation arena: one contiguous `2^T × m` pattern-result
/// slab plus a generation-stamped computed-flag table, reused across
/// every sub-tile a worker touches — the steady state allocates nothing.
///
/// Each evaluation bumps the generation instead of clearing the slab, so
/// "reset" costs `O(m)` (re-zeroing the empty-pattern slot), not
/// `O(2^T × m)`.
///
/// # Examples
///
/// ```
/// use ta_bitslice::TileView;
/// use ta_hasse::{ExecScratch, ExecutionPlan, NullSink, Scoreboard, ScoreboardConfig};
///
/// let sb = Scoreboard::build(ScoreboardConfig::with_width(4), [0b1011u16, 0b0011]);
/// let plan = ExecutionPlan::from_scoreboard(&sb);
/// let staged = [6i64, -2, -5, 4]; // m = 1: one input element per bit
/// let mut scratch = ExecScratch::new();
/// plan.evaluate_into(TileView::new(&staged, 4, 1, 1), &mut scratch, &mut NullSink);
/// assert_eq!(scratch.result(0b1011), Some(&[6 - 2 + 4][..]));
/// ```
#[derive(Debug, Default)]
pub struct ExecScratch {
    width: u32,
    m: usize,
    /// `2^width × m` result slab; pattern `p` owns `[p·m, (p+1)·m)`.
    slab: Vec<i64>,
    /// Generation stamp per pattern; `stamp[p] == generation` marks `p`
    /// computed in the current sub-tile.
    stamp: Vec<u32>,
    generation: u32,
    /// Reusable per-tile sort buffer (static-mode Hamming ordering).
    pub(crate) sort_buf: Vec<u16>,
}

impl ExecScratch {
    /// Creates an empty arena; buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-arms the arena for one sub-tile of `width` input rows of length
    /// `m`: grows the slab/stamp tables if needed, bumps the generation
    /// (invalidating every previous result without touching the slab),
    /// and marks the empty pattern computed with a zero result.
    pub(crate) fn begin(&mut self, width: u32, m: usize) {
        assert!((1..=16).contains(&width), "width must be in 1..=16");
        let patterns = 1usize << width;
        if self.width != width || self.m != m {
            self.width = width;
            self.m = m;
            self.slab.resize(patterns * m, 0);
            self.stamp.clear();
            self.stamp.resize(patterns, 0);
            self.generation = 0;
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // u32 wrap: scrub the stale stamps once per 2^32 sub-tiles.
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.slab[..m].fill(0);
        self.stamp[0] = self.generation;
    }

    /// Whether `pattern` was computed in the current sub-tile.
    #[inline]
    pub fn computed(&self, pattern: u16) -> bool {
        self.stamp.get(pattern as usize).copied() == Some(self.generation) && self.generation != 0
    }

    /// The current sub-tile's result vector for `pattern` (`None` if the
    /// pattern was not computed — including before any evaluation ran).
    #[inline]
    pub fn result(&self, pattern: u16) -> Option<&[i64]> {
        if self.computed(pattern) {
            let off = pattern as usize * self.m;
            Some(&self.slab[off..off + self.m])
        } else {
            None
        }
    }

    /// Marks `pattern` computed in the current generation.
    #[inline]
    pub(crate) fn mark(&mut self, pattern: u16) {
        self.stamp[pattern as usize] = self.generation;
    }

    /// The slab slice owned by `pattern` (mutable, unchecked stamp).
    #[inline]
    pub(crate) fn slot_mut(&mut self, pattern: u16) -> &mut [i64] {
        let off = pattern as usize * self.m;
        &mut self.slab[off..off + self.m]
    }

    /// Copies `src`'s result over `dst`'s slot (the prefix-reuse step:
    /// one slab-internal memmove instead of a fresh allocation).
    #[inline]
    pub(crate) fn copy_slot(&mut self, src: u16, dst: u16) {
        let (s, d) = (src as usize * self.m, dst as usize * self.m);
        self.slab.copy_within(s..s + self.m, d);
    }

    /// Adds every input row selected by `bits` onto `pattern`'s slot —
    /// the diff-bit accumulation of the PPE model, executed as fused
    /// word-parallel row-adds ([`ta_bitslice::kernels::add_selected_rows`]).
    #[inline]
    pub(crate) fn add_inputs(&mut self, pattern: u16, inputs: TileView<'_>, bits: u16) {
        let off = pattern as usize * self.m;
        ta_bitslice::kernels::add_selected_rows(&mut self.slab[off..off + self.m], inputs, bits);
    }

    /// Emits `pattern`'s finalized slot to the sink.
    #[inline]
    pub(crate) fn emit(&self, pattern: u16, sink: &mut (impl ResultSink + ?Sized)) {
        let off = pattern as usize * self.m;
        sink.emit(pattern, &self.slab[off..off + self.m]);
    }
}

/// Why a node occupies a PPE slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// First occurrence of a present pattern with a valid prefix
    /// (Prefix-Result-Reuse in the paper's taxonomy).
    Present,
    /// Absent node materialized only to pass a partial result along
    /// (Transitive-Reuse).
    Transit,
}

/// One node computation: `result[node] = result[prefix] + Σ input[diff bits]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOp {
    /// Pattern being computed.
    pub node: u16,
    /// Pattern whose buffered result is reused (0 = empty sum).
    pub prefix: u16,
    /// `node ^ prefix` — the TranSparsity bits the dispatcher resolves
    /// with one XOR (§4.3). Always exactly one bit for in-forest ops.
    pub diff: u16,
    /// Lane executing this op.
    pub lane: u8,
    /// Present or transit.
    pub kind: OpKind,
}

/// One outlier computation: the pattern is accumulated from scratch
/// (popcount adds), bypassing the forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutlierOp {
    /// Pattern computed from scratch.
    pub node: u16,
    /// Lane it was appended to.
    pub lane: u8,
}

/// The complete, ordered execution plan of one Scoreboard.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    width: u32,
    lanes: Vec<Vec<PlanOp>>,
    outliers: Vec<OutlierOp>,
}

impl ExecutionPlan {
    /// Extracts the plan from a built Scoreboard.
    pub fn from_scoreboard(sb: &Scoreboard) -> Self {
        let lane_count = sb.config().effective_lanes() as usize;
        let mut lanes: Vec<Vec<PlanOp>> = vec![Vec::new(); lane_count];
        for p in sb.active_nodes() {
            if sb.is_outlier(p) {
                continue;
            }
            let e = sb.node(p);
            let prefix = e.chosen_parent;
            debug_assert_ne!(prefix, u16::MAX);
            lanes[e.lane as usize].push(PlanOp {
                node: p,
                prefix,
                diff: p ^ prefix,
                lane: e.lane,
                kind: if e.transit { OpKind::Transit } else { OpKind::Present },
            });
        }
        let outliers =
            sb.outliers().iter().map(|&p| OutlierOp { node: p, lane: sb.node(p).lane }).collect();
        Self { width: sb.config().width, lanes, outliers }
    }

    /// TransRow width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Per-lane op streams, parent-before-child within each lane.
    pub fn lanes(&self) -> &[Vec<PlanOp>] {
        &self.lanes
    }

    /// Outlier ops dispatched after the forest.
    pub fn outliers(&self) -> &[OutlierOp] {
        &self.outliers
    }

    /// All in-forest ops across lanes (unspecified inter-lane order).
    pub fn iter_ops(&self) -> impl Iterator<Item = &PlanOp> {
        self.lanes.iter().flatten()
    }

    /// Total PPE node computations (forest ops + outliers).
    pub fn node_op_count(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum::<usize>() + self.outliers.len()
    }

    /// Functionally evaluates the plan: given the `T` input row-vectors of
    /// the sub-tile (each of length `m`), returns the accumulated result
    /// vector for every computed pattern, as `(pattern, Vec<i64>)` pairs in
    /// execution order.
    ///
    /// This is the golden functional model of the PPE array: each op adds
    /// exactly the diff-bit inputs onto its prefix's buffered result.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != width` or the row vectors have unequal
    /// lengths.
    pub fn evaluate(&self, inputs: &[Vec<i64>]) -> Vec<(u16, Vec<i64>)> {
        assert_eq!(inputs.len(), self.width as usize, "need one input row per TransRow bit");
        let m = inputs.first().map_or(0, Vec::len);
        assert!(inputs.iter().all(|v| v.len() == m), "ragged input rows");
        let mut results: Vec<Option<Vec<i64>>> = vec![None; 1usize << self.width];
        results[0] = Some(vec![0i64; m]);
        let mut order = Vec::new();
        // Lanes are independent; evaluate lane by lane (hardware runs them
        // concurrently — results are identical because chains never cross).
        for lane in &self.lanes {
            for op in lane {
                let base = results[op.prefix as usize]
                    .as_ref()
                    .expect("prefix must be computed before its suffix")
                    .clone();
                let mut acc = base;
                let mut bits = op.diff;
                while bits != 0 {
                    let j = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    for (a, &x) in acc.iter_mut().zip(&inputs[j]) {
                        *a += x;
                    }
                }
                results[op.node as usize] = Some(acc.clone());
                order.push((op.node, acc));
            }
        }
        for op in &self.outliers {
            let mut acc = vec![0i64; m];
            let mut bits = op.node;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for (a, &x) in acc.iter_mut().zip(&inputs[j]) {
                    *a += x;
                }
            }
            results[op.node as usize] = Some(acc.clone());
            order.push((op.node, acc));
        }
        order
    }

    /// Flat-buffer evaluation: walks the plan writing every add directly
    /// into `scratch`'s pattern-result slab, emitting each finalized
    /// pattern to `sink` in the same execution order as
    /// [`Self::evaluate`]. Results stay readable from
    /// [`ExecScratch::result`] until the scratch is reused.
    ///
    /// Allocation-free once the scratch is warm — this is the hot
    /// execute-GEMM path; [`Self::evaluate`] is retained as the
    /// independently-implemented test oracle.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.rows() != width`.
    pub fn evaluate_into(
        &self,
        inputs: TileView<'_>,
        scratch: &mut ExecScratch,
        sink: &mut (impl ResultSink + ?Sized),
    ) {
        assert_eq!(inputs.rows(), self.width as usize, "need one input row per TransRow bit");
        scratch.begin(self.width, inputs.cols());
        // Lanes are independent; evaluate lane by lane (hardware runs
        // them concurrently — results are identical because chains never
        // cross).
        for lane in &self.lanes {
            for op in lane {
                // Same hard guarantee as the oracle's `expect`: a plan that
                // orders a suffix before its prefix must panic, not copy a
                // stale slot (the stamp compare is O(1)).
                assert!(scratch.computed(op.prefix), "prefix must be computed before its suffix");
                scratch.copy_slot(op.prefix, op.node);
                scratch.add_inputs(op.node, inputs, op.diff);
                scratch.mark(op.node);
                scratch.emit(op.node, sink);
            }
        }
        for op in &self.outliers {
            scratch.slot_mut(op.node).fill(0);
            scratch.add_inputs(op.node, inputs, op.node);
            scratch.mark(op.node);
            scratch.emit(op.node, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Workers share ExecutionPlan by reference across the tile-execution
    /// runtime's scoped threads — lock in the auto-derived thread
    /// safety so a future `Rc`/`RefCell` slip fails to compile.
    #[test]
    fn execution_plan_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionPlan>();
    }
    use crate::scoreboard::ScoreboardConfig;

    fn plan_for(patterns: &[u16], width: u32) -> ExecutionPlan {
        let sb = Scoreboard::build(ScoreboardConfig::with_width(width), patterns.iter().copied());
        ExecutionPlan::from_scoreboard(&sb)
    }

    #[test]
    fn fig1_motivating_example() {
        // Fig. 1: binary rows 1011, 1111, 0011, 0010 over input
        // [6, -5, -2, 4] (bit j ↔ input element j; the figure's leftmost
        // matrix column is its bit 3). Expected row results: 8, 3, 2, -2
        // with 4 total ops.
        let patterns = [0b1011u16, 0b1111, 0b0011, 0b0010];
        let plan = plan_for(&patterns, 4);
        assert_eq!(plan.node_op_count(), 4, "transitive GEMM needs 4 ops");
        // Inputs indexed by bit: bit0=6? Map: pattern bit j multiplies
        // input[j]. Row 1011 must produce 6 + (-2) + 4 = 8 with
        // bit0=6? 1011 has bits 0,1,3 → choose inputs so the paper's sums
        // hold: input = [6, -2, 4 at bit3?]. Use bit0=6, bit1=-2, bit2=-5,
        // bit3=4: row 1011 → 6-2+4=8 ✓; 1111 → 6-2-5+4=3 ✓; 0011 → 4 ✓…
        let inputs: Vec<Vec<i64>> = vec![vec![6], vec![-2], vec![-5], vec![4]];
        let results = plan.evaluate(&inputs);
        let get = |p: u16| results.iter().find(|(n, _)| *n == p).map(|(_, v)| v[0]).unwrap();
        assert_eq!(get(0b0010), -2);
        assert_eq!(get(0b0011), 6 + -2);
        assert_eq!(get(0b1011), 6 + -2 + 4);
        assert_eq!(get(0b1111), 6 + -2 + -5 + 4);
    }

    #[test]
    fn in_forest_diffs_are_single_bit() {
        let patterns: Vec<u16> =
            (0..150u32).map(|i| (i.wrapping_mul(0x9E3779B9) >> 20) as u16 & 0xFF).collect();
        let plan = plan_for(&patterns, 8);
        for op in plan.iter_ops() {
            assert_eq!(op.diff.count_ones(), 1, "{:?}", op);
        }
    }

    #[test]
    fn parents_precede_children_within_lane() {
        let patterns: Vec<u16> =
            (0..100u32).map(|i| (i.wrapping_mul(2654435761) >> 18) as u16 & 0x3F).collect();
        let plan = plan_for(&patterns, 6);
        for lane in plan.lanes() {
            let mut seen = [false; 64];
            seen[0] = true;
            for op in lane {
                assert!(seen[op.prefix as usize], "prefix {} not yet computed", op.prefix);
                seen[op.node as usize] = true;
            }
        }
    }

    #[test]
    fn evaluate_matches_direct_popcount_sum() {
        // Every computed pattern's result must equal the direct sum of its
        // set-bit inputs — regardless of the reuse path taken.
        let patterns: Vec<u16> =
            (0..80u32).map(|i| (i.wrapping_mul(40503) >> 10) as u16 & 0xFF).collect();
        let plan = plan_for(&patterns, 8);
        let inputs: Vec<Vec<i64>> =
            (0..8).map(|j| vec![(j as i64 + 1) * 7 - 20, -(j as i64)]).collect();
        for (pattern, result) in plan.evaluate(&inputs) {
            let mut expect = vec![0i64; 2];
            for (j, input) in inputs.iter().enumerate() {
                if pattern & (1 << j) != 0 {
                    expect[0] += input[0];
                    expect[1] += input[1];
                }
            }
            assert_eq!(result, expect, "pattern {pattern:#010b}");
        }
    }

    #[test]
    fn every_present_pattern_is_computed() {
        let patterns = [7u16, 7, 3, 9, 12, 0, 1];
        let plan = plan_for(&patterns, 4);
        let computed: Vec<u16> = plan.evaluate(&vec![vec![1]; 4]).iter().map(|(p, _)| *p).collect();
        for p in [7u16, 3, 9, 12, 1] {
            assert!(computed.contains(&p), "pattern {p} missing");
        }
        // Zero rows are never computed.
        assert!(!computed.contains(&0));
    }

    #[test]
    #[should_panic(expected = "need one input row")]
    fn evaluate_checks_input_arity() {
        let plan = plan_for(&[1u16], 4);
        let _ = plan.evaluate(&[vec![1i64]]);
    }

    /// Stages `inputs` (one row per bit) into a flat buffer and returns
    /// the `TileView` staging the old nested rows used to be.
    fn stage(inputs: &[Vec<i64>]) -> Vec<i64> {
        inputs.iter().flat_map(|r| r.iter().copied()).collect()
    }

    #[test]
    fn evaluate_into_matches_oracle_order_and_values() {
        let patterns: Vec<u16> =
            (0..120u32).map(|i| (i.wrapping_mul(40503) >> 9) as u16 & 0xFF).collect();
        let plan = plan_for(&patterns, 8);
        let inputs: Vec<Vec<i64>> =
            (0..8).map(|j| vec![(j as i64 + 1) * 11 - 31, -(j as i64) * 3, j as i64]).collect();
        let want = plan.evaluate(&inputs);

        let staged = stage(&inputs);
        let view = TileView::new(&staged, 8, 3, 3);
        let mut scratch = ExecScratch::new();
        let mut got: Vec<(u16, Vec<i64>)> = Vec::new();
        plan.evaluate_into(view, &mut scratch, &mut |p: u16, r: &[i64]| {
            got.push((p, r.to_vec()));
        });
        assert_eq!(got, want, "sink must see the oracle's exact emission order");
        // Slab read-back agrees too.
        for (p, v) in &want {
            assert_eq!(scratch.result(*p), Some(v.as_slice()));
        }
        assert!(scratch.result(0).is_some(), "empty pattern is pre-computed");
    }

    #[test]
    fn dirty_scratch_reuse_is_identical_to_fresh() {
        let tile_a: Vec<u16> = (0..90u32).map(|i| (i * 37 % 251) as u16 & 0x3F).collect();
        let tile_b: Vec<u16> = (0..70u32).map(|i| (i * 101 % 241) as u16 & 0x3F).collect();
        let plan_a = plan_for(&tile_a, 6);
        let plan_b = plan_for(&tile_b, 6);
        let inputs: Vec<Vec<i64>> = (0..6).map(|j| vec![j as i64 * 7 - 15, 2 - j as i64]).collect();
        let staged = stage(&inputs);
        let view = TileView::new(&staged, 6, 2, 2);

        let mut fresh = ExecScratch::new();
        plan_b.evaluate_into(view, &mut fresh, &mut NullSink);
        let want: Vec<(u16, Vec<i64>)> = plan_b
            .iter_ops()
            .map(|op| (op.node, fresh.result(op.node).unwrap().to_vec()))
            .collect();

        // Dirty the scratch with a different tile, then replay tile B.
        let mut dirty = ExecScratch::new();
        plan_a.evaluate_into(view, &mut dirty, &mut NullSink);
        plan_b.evaluate_into(view, &mut dirty, &mut NullSink);
        for (p, v) in &want {
            assert_eq!(dirty.result(*p), Some(v.as_slice()), "pattern {p:#b}");
        }
        // Patterns only tile A computed are invalidated by the generation
        // bump, not readable as stale data.
        for op in plan_a.iter_ops() {
            let in_b = plan_b.iter_ops().any(|o| o.node == op.node)
                || plan_b.outliers().iter().any(|o| o.node == op.node);
            if !in_b {
                assert_eq!(dirty.result(op.node), None, "stale pattern {:#b}", op.node);
            }
        }
    }

    #[test]
    fn scratch_resizes_across_width_and_m_changes() {
        let mut scratch = ExecScratch::new();
        for (width, m) in [(4u32, 3usize), (6, 1), (4, 5), (8, 2)] {
            let patterns: Vec<u16> =
                (0..40u32).map(|i| (i * 29) as u16 & ((1 << width) - 1)).collect();
            let plan = plan_for(&patterns, width);
            let inputs: Vec<Vec<i64>> = (0..width)
                .map(|j| (0..m).map(|c| (j as i64 + 1) * (c as i64 - 2)).collect())
                .collect();
            let staged = stage(&inputs);
            let view = TileView::new(&staged, width as usize, m, m);
            plan.evaluate_into(view, &mut scratch, &mut NullSink);
            for (p, v) in plan.evaluate(&inputs) {
                assert_eq!(scratch.result(p), Some(v.as_slice()), "width {width} m {m}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "need one input row")]
    fn evaluate_into_checks_input_arity() {
        let plan = plan_for(&[1u16], 4);
        let staged = [1i64];
        plan.evaluate_into(TileView::new(&staged, 1, 1, 1), &mut ExecScratch::new(), &mut NullSink);
    }
}
