//! # ta-hasse — the Hasse-graph Scoreboard of the Transitive Array
//!
//! The algorithmic core of the paper (§2.3–§3.4): transitive sparsity is
//! the subset partial order on TransRow patterns, represented by a Hasse
//! graph. The **Scoreboard** builds, in two linear passes, a balanced
//! forest in which every present pattern reuses exactly one prefix's
//! result:
//!
//! * [`HasseGraph`] — the width-bound graph view (neighbors are single-bit
//!   flips; nothing is materialized);
//! * [`Scoreboard`] — record → forward pass (Alg. 1) → backward pass
//!   (Alg. 2) → balanced forest (Fig. 5);
//! * [`ExecutionPlan`] — per-lane op streams plus two functional
//!   evaluators: the allocating oracle (`evaluate`) and the arena-backed
//!   zero-allocation fast path (`evaluate_into` over an [`ExecScratch`]);
//! * [`TileStats`] — ZR/TR/FR/PR classification, density, distance
//!   histograms, per-lane PPE/APE cycles (the quantities of Fig. 9);
//! * [`StaticSi`] — tensor-level Scoreboard Information with SI-miss
//!   accounting (§3.3, Fig. 13);
//! * [`PlanCache`] / [`SharedPlanCache`] — a bounded LRU memo table over
//!   canonical pattern multisets ([`PlanKey`]) that reuses
//!   post-scoreboard plans **across** tiles (and, through the shared
//!   wrapper, across threads and layers) without changing any result.
//!
//! ## Quick example
//!
//! ```
//! use ta_hasse::{ExecutionPlan, Scoreboard, ScoreboardConfig, TileStats};
//!
//! // Fig. 1's motivating rows: 1011, 1111, 0011, 0010.
//! let sb = Scoreboard::build(
//!     ScoreboardConfig::with_width(4),
//!     [0b1011u16, 0b1111, 0b0011, 0b0010],
//! );
//! let stats = TileStats::from_scoreboard(&sb);
//! assert_eq!(stats.total_ops, 4); // the paper's "4 OPs!" vs 10 for bit sparsity
//! let plan = ExecutionPlan::from_scoreboard(&sb);
//! assert_eq!(plan.node_op_count(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitfield;
mod exec;
mod graph;
mod node;
mod plan_cache;
mod scoreboard;
mod si;
mod stats;

pub use bitfield::{PackedEntry, PACKED_PREFIX_FIELDS};
pub use exec::{
    ExecScratch, ExecutionPlan, NullSink, OpKind, OutlierOp, PlanOp, ResultSink, VecSink,
};
pub use graph::HasseGraph;
pub use node::{NodeEntry, DIST_INF, HW_MAX_DISTANCE, MAX_DISTANCE, NO_LANE};
pub use plan_cache::{CachedPlan, PlanCache, PlanCacheStats, PlanKey, SharedPlanCache};
pub use scoreboard::{BalancePolicy, Scoreboard, ScoreboardConfig};
pub use si::{StaticSi, StaticTileReport};
pub use stats::TileStats;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use ta_bitslice::TileView;

    fn patterns_strategy(width: u32, max_len: usize) -> impl Strategy<Value = Vec<u16>> {
        let hi = (1u32 << width) as u16;
        proptest::collection::vec(0..hi, 0..max_len)
    }

    /// Deterministic nested input rows (`width × m`) plus their flat
    /// staging — the two representations the equivalence tests compare.
    fn staged_inputs(width: u32, m: usize, seed: i64) -> (Vec<Vec<i64>>, Vec<i64>) {
        let nested: Vec<Vec<i64>> = (0..width)
            .map(|j| (0..m).map(|c| (j as i64 * 37 + c as i64 * 13 + seed) % 41 - 20).collect())
            .collect();
        let flat = nested.iter().flat_map(|r| r.iter().copied()).collect();
        (nested, flat)
    }

    proptest! {
        /// Tentpole contract: the arena-backed `evaluate_into` emits the
        /// exact `(pattern, result)` sequence of the oracle `evaluate`,
        /// for random tiles, widths, and vector lengths — and a **dirty**
        /// scratch (already used by a different tile) changes nothing.
        #[test]
        fn evaluate_into_equals_oracle_evaluate(
            width in 2u32..=8,
            raw in patterns_strategy(8, 96),
            dirty_raw in patterns_strategy(8, 48),
            m in 1usize..4,
            seed in 0i64..100,
        ) {
            let mask = ((1u32 << width) - 1) as u16;
            let patterns: Vec<u16> = raw.iter().map(|p| p & mask).collect();
            let dirty_tile: Vec<u16> = dirty_raw.iter().map(|p| p & mask).collect();
            let cfg = ScoreboardConfig::with_width(width);
            let plan = ExecutionPlan::from_scoreboard(
                &Scoreboard::build(cfg, patterns.iter().copied()));
            let (nested, flat) = staged_inputs(width, m, seed);
            let want = plan.evaluate(&nested);

            let view = TileView::new(&flat, width as usize, m, m);
            // Dirty the scratch with an unrelated tile first.
            let mut scratch = ExecScratch::new();
            ExecutionPlan::from_scoreboard(
                &Scoreboard::build(cfg, dirty_tile.iter().copied()))
                .evaluate_into(view, &mut scratch, &mut NullSink);

            let mut got: Vec<(u16, Vec<i64>)> = Vec::new();
            plan.evaluate_into(view, &mut scratch, &mut |p: u16, r: &[i64]| {
                got.push((p, r.to_vec()));
            });
            prop_assert_eq!(&got, &want);
            for (p, v) in &want {
                prop_assert_eq!(scratch.result(*p), Some(v.as_slice()));
            }
        }

        /// Static-mode counterpart: `evaluate_tile_functional_into` over a
        /// (dirty) scratch emits exactly what the allocating oracle does.
        #[test]
        fn static_evaluate_into_equals_oracle(
            calib in patterns_strategy(6, 80),
            tile in patterns_strategy(6, 40),
            dirty_tile in patterns_strategy(6, 24),
            m in 1usize..4,
            seed in 0i64..50,
        ) {
            let cfg = ScoreboardConfig::with_width(6);
            let si = StaticSi::from_patterns(cfg, calib);
            let (nested, flat) = staged_inputs(6, m, seed);
            let want = si.evaluate_tile_functional(&tile, &nested);

            let view = TileView::new(&flat, 6, m, m);
            let mut scratch = ExecScratch::new();
            si.evaluate_tile_functional_into(&dirty_tile, view, &mut scratch, &mut NullSink);
            let mut got: Vec<(u16, Vec<i64>)> = Vec::new();
            si.evaluate_tile_functional_into(&tile, view, &mut scratch,
                &mut |p: u16, r: &[i64]| got.push((p, r.to_vec())));
            prop_assert_eq!(&got, &want);
            for (p, v) in &want {
                prop_assert_eq!(scratch.result(*p), Some(v.as_slice()));
            }
        }

        /// Every computed pattern's functional result equals the direct
        /// subset sum — the paper's losslessness claim at plan level.
        #[test]
        fn plan_results_equal_subset_sums(
            patterns in patterns_strategy(8, 64),
            seed in 0i64..100
        ) {
            let sb = Scoreboard::build(ScoreboardConfig::with_width(8), patterns.clone());
            let plan = ExecutionPlan::from_scoreboard(&sb);
            let inputs: Vec<Vec<i64>> =
                (0..8).map(|j| vec![(j as i64 * 37 + seed) % 19 - 9]).collect();
            for (pattern, result) in plan.evaluate(&inputs) {
                let mut expect = 0i64;
                for (j, input) in inputs.iter().enumerate() {
                    if pattern & (1 << j) != 0 {
                        expect += input[0];
                    }
                }
                prop_assert_eq!(result[0], expect);
            }
        }

        /// Every non-zero pattern of the input multiset gets computed.
        #[test]
        fn all_present_patterns_computed(patterns in patterns_strategy(6, 80)) {
            let sb = Scoreboard::build(ScoreboardConfig::with_width(6), patterns.clone());
            let plan = ExecutionPlan::from_scoreboard(&sb);
            let inputs: Vec<Vec<i64>> = (0..6).map(|j| vec![j as i64]).collect();
            let computed: Vec<u16> = plan.evaluate(&inputs).iter().map(|(p, _)| *p).collect();
            for &p in &patterns {
                if p != 0 {
                    prop_assert!(computed.contains(&p), "pattern {:#08b} missing", p);
                }
            }
        }

        /// Forest invariants: single-bit downward steps, no lane
        /// straddling, acyclicity, and one prefix per node.
        #[test]
        fn forest_invariants(patterns in patterns_strategy(8, 128)) {
            let sb = Scoreboard::build(ScoreboardConfig::with_width(8), patterns);
            for p in sb.active_nodes() {
                if sb.is_outlier(p) { continue; }
                let mut cur = p;
                let mut steps = 0u32;
                while cur != 0 {
                    let parent = sb.node(cur).chosen_parent;
                    prop_assert!(parent != u16::MAX);
                    prop_assert_eq!((cur ^ parent).count_ones(), 1);
                    prop_assert_eq!(parent & cur, parent);
                    if parent != 0 {
                        prop_assert_eq!(sb.node(parent).lane, sb.node(p).lane);
                    }
                    cur = parent;
                    steps += 1;
                    prop_assert!(steps <= 8, "cycle");
                }
            }
        }

        /// Op accounting identity: total = nonzero rows + transit + outlier
        /// extras; per-lane sums agree with the class counts.
        #[test]
        fn ops_accounting(patterns in patterns_strategy(8, 200)) {
            let sb = Scoreboard::build(ScoreboardConfig::with_width(8), patterns.clone());
            let s = TileStats::from_scoreboard(&sb);
            let nonzero = patterns.iter().filter(|&&p| p != 0).count() as u64;
            prop_assert_eq!(
                s.total_ops,
                nonzero + s.transit_ops as u64 + s.outlier_extra_ops
            );
            prop_assert_eq!((s.pr_rows + s.outlier_rows + s.fr_rows) as u64, nonzero);
            let ppe_sum: u64 = s.lane_ppe.iter().sum();
            prop_assert_eq!(ppe_sum, s.total_ops);
            let ape_sum: u64 = s.lane_ape.iter().sum();
            prop_assert_eq!(ape_sum, nonzero);
        }

        /// Static-mode functional evaluation produces exact subset sums
        /// for every tile pattern — even ones absent from calibration.
        #[test]
        fn static_functional_is_exact(
            calib in patterns_strategy(8, 80),
            tile in patterns_strategy(8, 40),
            seed in 0i64..50,
        ) {
            let cfg = ScoreboardConfig::with_width(8);
            let si = StaticSi::from_patterns(cfg, calib);
            let inputs: Vec<Vec<i64>> =
                (0..8).map(|j| vec![(j as i64 * 13 + seed) % 23 - 11]).collect();
            for (pattern, result) in si.evaluate_tile_functional(&tile, &inputs) {
                let mut expect = 0i64;
                for (j, input) in inputs.iter().enumerate() {
                    if pattern & (1 << j) != 0 {
                        expect += input[0];
                    }
                }
                prop_assert_eq!(result[0], expect, "pattern {:#010b}", pattern);
            }
        }

        /// Plan-cache key canonicalization: invariant under any row
        /// permutation of the tile, and the memoized dynamic plan of the
        /// permuted tile is bit-identical (stats and functional results).
        #[test]
        fn plan_key_is_permutation_invariant(
            patterns in patterns_strategy(6, 64),
            seed in 0u64..1024,
        ) {
            let cfg = ScoreboardConfig::with_width(6);
            // Seeded Fisher-Yates permutation of the rows.
            let mut permuted = patterns.clone();
            let mut s = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            for i in (1..permuted.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = ((s >> 33) as usize) % (i + 1);
                permuted.swap(i, j);
            }
            prop_assert_eq!(
                PlanKey::new(&cfg, None, &patterns),
                PlanKey::new(&cfg, None, &permuted)
            );
            let a = CachedPlan::build_dynamic(&cfg, &patterns, true);
            let b = CachedPlan::build_dynamic(&cfg, &permuted, false);
            let (CachedPlan::Dynamic { stats: sa, .. },
                 CachedPlan::Dynamic { stats: sb, .. }) = (&a, &b) else {
                panic!("dynamic plans expected");
            };
            prop_assert_eq!(sa, sb);
            let inputs: Vec<Vec<i64>> =
                (0..6).map(|j| vec![(j as i64 * 31 + seed as i64) % 17 - 8]).collect();
            prop_assert_eq!(
                a.dynamic_plan(&cfg, &patterns).evaluate(&inputs),
                b.dynamic_plan(&cfg, &permuted).evaluate(&inputs)
            );
        }

        /// Plan-cache key sensitivity: changing any multiset count, the
        /// width, or the balance policy changes the key.
        #[test]
        fn plan_key_is_count_and_config_sensitive(
            patterns in patterns_strategy(6, 48),
            extra in 0u16..64,
        ) {
            let cfg = ScoreboardConfig::with_width(6);
            let base = PlanKey::new(&cfg, None, &patterns);
            // One more occurrence of any pattern (present or not) is a
            // different multiset.
            let mut grown = patterns.clone();
            grown.push(extra);
            prop_assert_ne!(base.clone(), PlanKey::new(&cfg, None, &grown));
            // A wider config never shares keys (patterns still fit).
            let wide = ScoreboardConfig::with_width(7);
            prop_assert_ne!(base.clone(), PlanKey::new(&wide, None, &patterns));
            // Nor does the unbalanced ablation policy.
            let unbalanced = ScoreboardConfig {
                balance: BalancePolicy::FirstCandidate,
                ..cfg
            };
            prop_assert_ne!(base, PlanKey::new(&unbalanced, None, &patterns));
        }

        /// The static SI replayed on its own calibration multiset costs
        /// exactly the dynamic ops.
        #[test]
        fn static_equals_dynamic_on_calibration_set(patterns in patterns_strategy(8, 100)) {
            let cfg = ScoreboardConfig::with_width(8);
            let sb = Scoreboard::build(cfg, patterns.clone());
            let dynamic = TileStats::from_scoreboard(&sb).total_ops;
            let si = StaticSi::from_scoreboard(&sb);
            let replay = si.evaluate_tile(&patterns).total_ops;
            prop_assert_eq!(replay, dynamic);
        }

        /// Static SI on a random *sub*-tile stays within sound bounds:
        /// at least 1 op per non-zero row (the 1/T density floor), and at
        /// most the from-scratch cost plus its miss materializations.
        ///
        /// Note there is **no** "static ≥ dynamic" invariant in general:
        /// on pathological tiles the static chain's memoized long paths
        /// can beat the dynamic scoreboard, whose distance cap forces
        /// outlier rows to recompute from scratch. On realistic tiles
        /// (dense pattern coverage) dynamic wins — that is Fig. 13, which
        /// the `fig13` harness reproduces.
        #[test]
        fn static_bounded_below_and_above(
            calib in patterns_strategy(8, 150),
            tile_len in 1usize..40
        ) {
            prop_assume!(!calib.is_empty());
            let cfg = ScoreboardConfig::with_width(8);
            let si = StaticSi::from_patterns(cfg, calib.iter().copied());
            let tile: Vec<u16> =
                calib.iter().cycle().take(tile_len).copied().collect();
            let rep = si.evaluate_tile(&tile);
            let nonzero = tile.iter().filter(|&&p| p != 0).count() as u64;
            let scratch: u64 = {
                // From-scratch with FR dedup: popcount per distinct + 1 per dup.
                let mut seen = std::collections::HashSet::new();
                let mut ops = 0u64;
                for &p in &tile {
                    if p == 0 { continue; }
                    if seen.insert(p) { ops += p.count_ones() as u64; }
                    else { ops += 1; }
                }
                ops
            };
            prop_assert!(rep.total_ops >= nonzero,
                "static {} < row floor {}", rep.total_ops, nonzero);
            prop_assert!(rep.total_ops <= scratch + rep.si_misses,
                "static {} > scratch {} + misses {}", rep.total_ops, scratch, rep.si_misses);
            // The dynamic scoreboard obeys the same floor.
            let dynamic = TileStats::from_scoreboard(
                &Scoreboard::build(cfg, tile.iter().copied())).total_ops;
            prop_assert!(dynamic >= nonzero);
        }
    }
}
