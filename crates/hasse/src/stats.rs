//! Transitive-sparsity statistics — the quantities behind Fig. 9 and the
//! cycle model of §4.6.
//!
//! Classifies TransRows into the paper's four computation patterns
//! (§5.2): **ZR** (zero row — skipped), **TR** (transit reuse — PPE only),
//! **FR** (full result reuse — APE only), **PR** (prefix result reuse —
//! PPE + APE), and derives op counts, density, distance histograms, and
//! per-lane PPE/APE cycle counts.

use crate::scoreboard::Scoreboard;
use ta_bitslice::bitonic_depth;

/// Statistics of one Scoreboard (one sub-tile in dynamic mode).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TileStats {
    /// TransRow width `T`.
    pub width: u32,
    /// Total TransRows recorded (incl. zero rows and duplicates).
    pub rows: usize,
    /// Zero rows (ZR) — skipped entirely.
    pub zero_rows: usize,
    /// Rows that fully reuse an earlier identical row (FR): `count − 1`
    /// summed over present nodes.
    pub fr_rows: usize,
    /// First occurrences with a valid prefix (PR), including distance-1
    /// roots.
    pub pr_rows: usize,
    /// Transit (TR) node activations.
    pub transit_ops: usize,
    /// First occurrences beyond the distance cap, computed from scratch.
    pub outlier_rows: usize,
    /// Extra adds outliers need beyond their 1-op row slot
    /// (`popcount − 1` each).
    pub outlier_extra_ops: u64,
    /// Total accumulate operations (the paper's op count: every non-zero
    /// row costs 1, plus transit ops, plus outlier extras).
    pub total_ops: u64,
    /// Dense binary-GEMM op count, `rows × T`.
    pub dense_bit_ops: u64,
    /// Rows per prefix distance, indexed by distance (1..=17); index 0 is
    /// unused. Outlier rows are *not* bucketed here — see
    /// [`TileStats::outlier_rows`].
    pub distance_rows: [u64; 18],
    /// PPE cycles per lane: rows + transit + outlier extras in that lane.
    pub lane_ppe: Vec<u64>,
    /// APE cycles per lane: rows accumulated in that lane.
    pub lane_ape: Vec<u64>,
    /// Dynamic Scoreboarding cycles, `⌈min(rows, 2^T)/T⌉` (§4.6).
    pub scoreboard_cycles: u64,
    /// Bitonic sort pipeline-fill depth for this row count.
    pub sort_depth: u32,
}

impl TileStats {
    /// Gathers statistics from a built Scoreboard.
    pub fn from_scoreboard(sb: &Scoreboard) -> Self {
        let cfg = *sb.config();
        let lanes = cfg.effective_lanes() as usize;
        let mut s = TileStats {
            width: cfg.width,
            rows: sb.rows(),
            zero_rows: sb.node(0).count as usize,
            dense_bit_ops: sb.rows() as u64 * cfg.width as u64,
            lane_ppe: vec![0; lanes],
            lane_ape: vec![0; lanes],
            scoreboard_cycles: {
                let distinct = sb.rows().min(1usize << cfg.width) as u64;
                distinct.div_ceil(cfg.width as u64)
            },
            sort_depth: bitonic_depth(sb.rows()),
            ..TileStats::default()
        };
        for p in sb.active_nodes() {
            let e = sb.node(p);
            let lane = e.lane as usize;
            if e.transit {
                s.transit_ops += 1;
                s.lane_ppe[lane] += 1;
                continue;
            }
            // Present node: first occurrence + (count−1) FR duplicates.
            let count = e.count as u64;
            s.fr_rows += (count - 1) as usize;
            if sb.is_outlier(p) {
                s.outlier_rows += 1;
                let extra = p.count_ones() as u64 - 1;
                s.outlier_extra_ops += extra;
                s.lane_ppe[lane] += count + extra;
            } else {
                s.pr_rows += 1;
                s.lane_ppe[lane] += count;
                // Clamp into the histogram. Today `distance_rows` is a
                // fixed 18-slot array, so the clamp target always
                // exists; the saturating/`get_mut` form keeps this safe
                // if the histogram ever becomes dynamically sized (a
                // `len() - 1` on an empty one would underflow) — a
                // degenerate config then degrades to "unbucketed"
                // instead of panicking.
                let cap = s.distance_rows.len().saturating_sub(1);
                if let Some(bucket) = s.distance_rows.get_mut((e.distance as usize).min(cap)) {
                    *bucket += count;
                }
            }
            s.lane_ape[lane] += count;
        }
        let nonzero_rows = (s.rows - s.zero_rows) as u64;
        s.total_ops = nonzero_rows + s.transit_ops as u64 + s.outlier_extra_ops;
        s
    }

    /// Overall density: accumulate ops relative to dense binary GEMM
    /// (`rows × T` adds). The paper's headline metric (Fig. 9); lower is
    /// better, bounded below by `1/T`.
    pub fn density(&self) -> f64 {
        if self.dense_bit_ops == 0 {
            0.0
        } else {
            self.total_ops as f64 / self.dense_bit_ops as f64
        }
    }

    /// ZR sparsity: fraction of rows skipped entirely.
    pub fn zr_sparsity(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.zero_rows as f64 / self.rows as f64
        }
    }

    /// TR density: transit ops over dense ops (Fig. 9 b/c series).
    pub fn tr_density(&self) -> f64 {
        if self.dense_bit_ops == 0 {
            0.0
        } else {
            self.transit_ops as f64 / self.dense_bit_ops as f64
        }
    }

    /// FR density: full-reuse rows over dense ops.
    pub fn fr_density(&self) -> f64 {
        if self.dense_bit_ops == 0 {
            0.0
        } else {
            self.fr_rows as f64 / self.dense_bit_ops as f64
        }
    }

    /// PR density: prefix-reuse rows (incl. outlier ops) over dense ops.
    pub fn pr_density(&self) -> f64 {
        if self.dense_bit_ops == 0 {
            0.0
        } else {
            (self.pr_rows as u64 + self.outlier_rows as u64 + self.outlier_extra_ops) as f64
                / self.dense_bit_ops as f64
        }
    }

    /// PPE stage cycles: the slowest lane (critical path, §4.6).
    pub fn ppe_cycles(&self) -> u64 {
        self.lane_ppe.iter().copied().max().unwrap_or(0)
    }

    /// APE stage cycles: the slowest lane's row accumulations.
    pub fn ape_cycles(&self) -> u64 {
        self.lane_ape.iter().copied().max().unwrap_or(0)
    }

    /// Steady-state sub-tile cycles under the 3-stage double-buffered
    /// pipeline: `max(Scoreboard, PPE, APE)`.
    pub fn subtile_cycles(&self) -> u64 {
        self.scoreboard_cycles.max(self.ppe_cycles()).max(self.ape_cycles())
    }

    /// Load-balance efficiency: mean lane PPE load over max (1.0 =
    /// perfectly balanced).
    pub fn balance_efficiency(&self) -> f64 {
        let max = self.ppe_cycles();
        if max == 0 {
            return 1.0;
        }
        let sum: u64 = self.lane_ppe.iter().sum();
        sum as f64 / (max as f64 * self.lane_ppe.len() as f64)
    }

    /// Merges another tile's statistics into this one (for tensor-level
    /// aggregation across sub-tiles). Lane vectors are added elementwise;
    /// cycle counts add (sequential tiles).
    ///
    /// # Panics
    ///
    /// Panics if widths or lane counts differ.
    pub fn merge(&mut self, other: &TileStats) {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.lane_ppe.len(), other.lane_ppe.len(), "lane count mismatch");
        self.rows += other.rows;
        self.zero_rows += other.zero_rows;
        self.fr_rows += other.fr_rows;
        self.pr_rows += other.pr_rows;
        self.transit_ops += other.transit_ops;
        self.outlier_rows += other.outlier_rows;
        self.outlier_extra_ops += other.outlier_extra_ops;
        self.total_ops += other.total_ops;
        self.dense_bit_ops += other.dense_bit_ops;
        for (a, b) in self.distance_rows.iter_mut().zip(&other.distance_rows) {
            *a += b;
        }
        for (a, b) in self.lane_ppe.iter_mut().zip(&other.lane_ppe) {
            *a += b;
        }
        for (a, b) in self.lane_ape.iter_mut().zip(&other.lane_ape) {
            *a += b;
        }
        self.scoreboard_cycles += other.scoreboard_cycles;
        self.sort_depth = self.sort_depth.max(other.sort_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Workers share TileStats by reference across the tile-execution
    /// runtime's scoped threads — lock in the auto-derived thread
    /// safety so a future `Rc`/`RefCell` slip fails to compile.
    #[test]
    fn tile_stats_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TileStats>();
    }
    use crate::scoreboard::{Scoreboard, ScoreboardConfig};

    fn stats_for(patterns: &[u16], width: u32) -> TileStats {
        let sb = Scoreboard::build(ScoreboardConfig::with_width(width), patterns.iter().copied());
        TileStats::from_scoreboard(&sb)
    }

    #[test]
    fn fig1_example_density() {
        // Fig. 1: 4 rows × 4 bits, 4 ops → density 25% (vs 10 ops of bit
        // sparsity = 62.5%).
        let s = stats_for(&[0b1011, 0b1111, 0b0011, 0b0010], 4);
        assert_eq!(s.total_ops, 4);
        assert_eq!(s.dense_bit_ops, 16);
        assert!((s.density() - 0.25).abs() < 1e-12);
        assert_eq!(s.zero_rows, 0);
        assert_eq!(s.pr_rows, 4);
        assert_eq!(s.fr_rows, 0);
        assert_eq!(s.transit_ops, 0);
    }

    #[test]
    fn fig5_example_classification() {
        let s = stats_for(&[14, 2, 5, 1, 15, 7, 2], 4);
        assert_eq!(s.rows, 7);
        assert_eq!(s.zero_rows, 0);
        assert_eq!(s.fr_rows, 1); // the duplicate 2
        assert_eq!(s.pr_rows, 6); // 1,2,5,7,14,15
        assert_eq!(s.transit_ops, 1); // the 2→14 stop
        assert_eq!(s.total_ops, 7 + 1);
        // Lane cycle counts: PPE = 4/4, APE = 4/3 (transit has no APE).
        assert_eq!(s.ppe_cycles(), 4);
        let mut ape: Vec<u64> = s.lane_ape.iter().copied().filter(|&x| x > 0).collect();
        ape.sort_unstable();
        assert_eq!(ape, vec![3, 4]);
    }

    #[test]
    fn all_zero_rows() {
        let s = stats_for(&[0, 0, 0, 0], 4);
        assert_eq!(s.total_ops, 0);
        assert_eq!(s.density(), 0.0);
        assert_eq!(s.zr_sparsity(), 1.0);
        assert_eq!(s.subtile_cycles(), 1); // scoreboard still scans
    }

    #[test]
    fn duplicates_count_as_fr() {
        let s = stats_for(&[5, 5, 5, 5], 4);
        assert_eq!(s.pr_rows, 1);
        assert_eq!(s.fr_rows, 3);
        // 4 row ops + 1 transit (5 = 0101 is level 2 with no present
        // parents → one transit stop).
        assert_eq!(s.total_ops, 5);
    }

    #[test]
    fn distance_histogram_buckets() {
        // Pattern at level 3 → distance 3 (2 transit stops); superset at
        // distance 1.
        let s = stats_for(&[0b0111, 0b1111], 4);
        assert_eq!(s.distance_rows[3], 1);
        assert_eq!(s.distance_rows[1], 1);
        assert_eq!(s.distance_rows[5], 0);
        assert_eq!(s.transit_ops, 2);
    }

    #[test]
    fn degenerate_configs_do_not_break_the_histogram() {
        // Empty tile: nothing bucketed, nothing panics.
        let empty = stats_for(&[], 1);
        assert_eq!(empty.rows, 0);
        assert_eq!(empty.distance_rows.iter().sum::<u64>(), 0);
        // Minimal width with duplicate rows: everything lands in bucket 1.
        let tiny = stats_for(&[1, 1, 0], 1);
        assert_eq!(tiny.distance_rows[1], 2);
        // Unbounded distance cap at full width: the deepest reachable
        // distance (17) still clamps inside the fixed histogram.
        let deep: u16 = u16::MAX; // level 16 at width 16 → distance 16
        let sb = Scoreboard::build(ScoreboardConfig::unbounded(16), [deep]);
        let s = TileStats::from_scoreboard(&sb);
        assert_eq!(s.distance_rows.iter().sum::<u64>(), 1);
        assert_eq!(s.outlier_rows, 0);
    }

    #[test]
    fn outliers_bucketed_separately() {
        let p: u16 = 0b0011_1110; // level 5, width 8 → outlier
        let s = stats_for(&[p, p], 8);
        assert_eq!(s.outlier_rows, 1);
        assert_eq!(s.fr_rows, 1);
        assert_eq!(s.outlier_extra_ops, 4);
        assert_eq!(s.distance_rows.iter().sum::<u64>(), 0, "outliers not bucketed");
        // total = 2 row ops + 4 extras.
        assert_eq!(s.total_ops, 6);
    }

    #[test]
    fn density_lower_bound_one_over_t() {
        // All 256 patterns present twice: every row costs exactly 1 op.
        let patterns: Vec<u16> = (0..256u16).chain(0..256u16).collect();
        let s = stats_for(&patterns, 8);
        assert_eq!(s.total_ops, 510); // 512 rows − 2 zero rows
        let density = s.density();
        assert!((density - 510.0 / 4096.0).abs() < 1e-12);
        assert!(density > 1.0 / 8.0 - 0.01 && density < 1.0 / 8.0 + 0.01);
    }

    #[test]
    fn scoreboard_cycles_bound() {
        // §4.6: SB processes min(n, 2^T)/T per cycle-group — always ≤ n/T.
        let patterns: Vec<u16> = (0..600u32).map(|i| (i % 256) as u16).collect();
        let s = stats_for(&patterns, 8);
        assert_eq!(s.scoreboard_cycles, 256 / 8);
        assert!(s.scoreboard_cycles <= 600 / 8);
    }

    #[test]
    fn merge_accumulates() {
        let a = stats_for(&[1, 2, 3], 4);
        let b = stats_for(&[0, 7, 7], 4);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.rows, 6);
        assert_eq!(m.zero_rows, 1);
        assert_eq!(m.total_ops, a.total_ops + b.total_ops);
        assert_eq!(m.dense_bit_ops, 24);
    }

    #[test]
    fn balance_efficiency_range() {
        let s = stats_for(&[1, 2, 4, 8, 3, 5, 9, 6, 10, 12], 4);
        let e = s.balance_efficiency();
        assert!(e > 0.0 && e <= 1.0, "{e}");
    }
}
