//! Scoreboard node entries — the bit-field record of Fig. 6.
//!
//! One entry exists per Hasse node (2^T entries). The hardware packs it
//! into ~34 bits; we keep the same fields in natural Rust types:
//! `Count`, `Distance`, four `Prefix Bitmaps` (distances 1–4), a
//! `Suffix Bitmap`, and the `Lane ID`.
//!
//! Bitmap semantics (the Prefix/Suffix *Translators* of Fig. 6): prefix
//! bitmap bit `j` names the immediate parent obtained by a 1→0 flip of the
//! node's own bit `j`; suffix bitmap bit `j` names the child obtained by a
//! 0→1 flip. The translators therefore never store full node indices —
//! exactly the compression the paper describes.

/// Capacity of the prefix-bitmap array — enough for an *unbounded* chain
/// on 16-bit TransRows (distance ≤ 16, plus one so the cap can sit above
/// every reachable distance). The deployed hardware caps at 4
/// ([`HW_MAX_DISTANCE`]); the design-space exploration of Fig. 9 runs
/// uncapped.
pub const MAX_DISTANCE: usize = 17;

/// The deployed hardware's distance cap: nodes with distance ≥ 4 are
/// outliers dispatched at the end (§5.2, Fig. 6 stores prefix bitmaps for
/// distances 1–4).
pub const HW_MAX_DISTANCE: u8 = 4;

/// Sentinel for "no distance recorded yet" (`+∞` in Alg. 1).
pub const DIST_INF: u8 = u8::MAX;

/// Sentinel for "no lane assigned".
pub const NO_LANE: u8 = u8::MAX;

/// One Scoreboard entry (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeEntry {
    /// Number of TransRows whose pattern equals this node (the `Count`
    /// field; drives FR reuse and load balancing).
    pub count: u32,
    /// Distance to the nearest *present* ancestor (or to node 0 through
    /// absent chains); [`DIST_INF`] until the forward pass reaches it.
    pub distance: u8,
    /// Prefix bitmaps for distances 1..=4: bit `j` set in
    /// `prefix_bitmaps[d-1]` means the immediate parent `node & !(1<<j)`
    /// leads to a present ancestor at total distance `d`.
    pub prefix_bitmaps: [u16; MAX_DISTANCE],
    /// Suffix bitmap filled by the backward pass: bit `j` set means the
    /// child `node | (1<<j)` consumes this node's (transit) result.
    pub suffix_bitmap: u16,
    /// Lane this node's tree executes on ([`NO_LANE`] until balancing).
    pub lane: u8,
    /// `true` when the backward pass activated this absent node as a
    /// transit (TR) stop on a distance>1 path.
    pub transit: bool,
    /// The single immediate parent chosen by the backward pass (for
    /// distance>1 nodes) or by the balancer (distance-1 nodes). `u16::MAX`
    /// until chosen; node 0's children record parent 0.
    pub chosen_parent: u16,
}

impl NodeEntry {
    /// A fresh, never-touched entry.
    pub const fn empty() -> Self {
        Self {
            count: 0,
            distance: DIST_INF,
            prefix_bitmaps: [0; MAX_DISTANCE],
            suffix_bitmap: 0,
            lane: NO_LANE,
            transit: false,
            chosen_parent: u16::MAX,
        }
    }

    /// Whether at least one TransRow carries this pattern.
    #[inline]
    pub fn is_present(&self) -> bool {
        self.count > 0 && !self.transit
    }

    /// Whether the node participates in execution at all (present row or
    /// activated transit stop).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.count > 0
    }

    /// Whether a parent has been committed for this node.
    #[inline]
    pub fn has_chosen_parent(&self) -> bool {
        self.chosen_parent != u16::MAX
    }
}

impl Default for NodeEntry {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_entry_is_inactive() {
        let e = NodeEntry::empty();
        assert!(!e.is_present());
        assert!(!e.is_active());
        assert!(!e.has_chosen_parent());
        assert_eq!(e.distance, DIST_INF);
        assert_eq!(e.lane, NO_LANE);
    }

    #[test]
    fn present_vs_transit() {
        let mut e = NodeEntry::empty();
        e.count = 2;
        assert!(e.is_present());
        assert!(e.is_active());
        e.transit = true;
        assert!(!e.is_present(), "transit nodes are not 'present' rows");
        assert!(e.is_active());
    }

    #[test]
    fn default_matches_empty() {
        assert_eq!(NodeEntry::default(), NodeEntry::empty());
    }
}
