//! The Scoreboard — forward pass (Alg. 1), backward pass (Alg. 2), and the
//! balanced forest (Fig. 5).
//!
//! Given the multiset of TransRow patterns of one sub-tile (dynamic mode)
//! or one tensor (static mode), the Scoreboard builds, in two linear
//! passes over the 2^T Hasse nodes, a forest in which every present node
//! has exactly one prefix whose result it reuses, transit (TR) stops are
//! materialized on distance>1 paths, and trees are spread over `T` lanes
//! by a workload counter.

use crate::graph::HasseGraph;
use crate::node::{NodeEntry, DIST_INF, HW_MAX_DISTANCE, MAX_DISTANCE, NO_LANE};

/// How the balancer distributes trees over lanes (Fig. 5 step ⑤).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BalancePolicy {
    /// The paper's workload counter + priority supervision: each node
    /// picks the available prefix whose lane is least loaded.
    #[default]
    WorkloadCounter,
    /// Ablation baseline: always take the first candidate prefix (no
    /// balancing) — quantifies what the workload counter buys.
    FirstCandidate,
}

/// Scoreboard configuration.
///
/// Defaults follow the paper's deployed design point: `T = 8`,
/// `max_distance = 4` (nodes at distance ≥ 4 are outliers, §5.2), one lane
/// per TransRow bit (§2.4's "granularity corresponding to Level 1").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreboardConfig {
    /// TransRow width `T` (1..=16).
    pub width: u32,
    /// Distance at which present nodes become outliers. Reuse paths are
    /// built for distances `1..max_distance`. The hardware uses 4
    /// ([`HW_MAX_DISTANCE`]); [`ScoreboardConfig::unbounded`] lifts the cap
    /// above every reachable distance for sparsity-potential studies.
    pub max_distance: u8,
    /// Parallel lanes (trees execute one per lane). 0 means "use `width`".
    pub lanes: u32,
    /// Lane-balancing policy (ablation knob; default = the paper's).
    pub balance: BalancePolicy,
}

impl ScoreboardConfig {
    /// The paper's deployed design point for a given width (cap 4).
    pub fn with_width(width: u32) -> Self {
        Self {
            width,
            max_distance: HW_MAX_DISTANCE,
            lanes: 0,
            balance: BalancePolicy::WorkloadCounter,
        }
    }

    /// Uncapped configuration: every present node reaches a reuse chain
    /// (no outliers) — the setting behind the Fig. 9 sparsity sweeps.
    pub fn unbounded(width: u32) -> Self {
        Self { max_distance: width as u8 + 1, ..Self::with_width(width) }
    }

    /// Effective lane count (`lanes`, or `width` when 0).
    pub fn effective_lanes(&self) -> u32 {
        if self.lanes == 0 {
            self.width
        } else {
            self.lanes
        }
    }

    fn validate(&self) {
        assert!((1..=16).contains(&self.width), "width must be in 1..=16");
        assert!(
            (1..=MAX_DISTANCE as u8).contains(&self.max_distance),
            "max_distance must be in 1..=17"
        );
        assert!(self.effective_lanes() >= 1, "need at least one lane");
        assert!(self.effective_lanes() <= 254, "lane id must fit u8 (< 255)");
    }
}

impl Default for ScoreboardConfig {
    fn default() -> Self {
        Self::with_width(8)
    }
}

/// A fully built Scoreboard for one pattern multiset.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    cfg: ScoreboardConfig,
    graph: HasseGraph,
    nodes: Vec<NodeEntry>,
    outliers: Vec<u16>,
    lane_workload: Vec<u64>,
    rows: usize,
}

impl Scoreboard {
    /// Builds the Scoreboard: record → forward → backward → balance.
    ///
    /// `patterns` is the TransRow multiset (duplicates matter — they drive
    /// FR reuse and load balancing). Patterns must fit `cfg.width`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or a pattern exceeds the
    /// width.
    ///
    /// # Examples
    ///
    /// ```
    /// use ta_hasse::{Scoreboard, ScoreboardConfig};
    ///
    /// // The worked example of Fig. 5: TransRows 14,2,5,1,15,7,2 (T=4).
    /// let sb = Scoreboard::build(
    ///     ScoreboardConfig::with_width(4),
    ///     [14, 2, 5, 1, 15, 7, 2],
    /// );
    /// assert_eq!(sb.node(5).chosen_parent, 1); // 0101 reuses 0001
    /// assert_eq!(sb.node(7).chosen_parent, 5); // 0111 reuses 0101
    /// ```
    pub fn build(cfg: ScoreboardConfig, patterns: impl IntoIterator<Item = u16>) -> Self {
        cfg.validate();
        let graph = HasseGraph::new(cfg.width);
        let mut sb = Self {
            cfg,
            graph,
            nodes: vec![NodeEntry::empty(); graph.node_count()],
            outliers: Vec::new(),
            lane_workload: vec![0; cfg.effective_lanes() as usize],
            rows: 0,
        };
        sb.record(patterns);
        sb.forward();
        sb.backward();
        sb.balance();
        sb
    }

    /// The configuration this Scoreboard was built with.
    pub fn config(&self) -> &ScoreboardConfig {
        &self.cfg
    }

    /// The Hasse graph view.
    pub fn graph(&self) -> HasseGraph {
        self.graph
    }

    /// Number of TransRows recorded (including zero rows and duplicates).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The node entry for `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` exceeds the width.
    pub fn node(&self, pattern: u16) -> &NodeEntry {
        assert!(self.graph.contains(pattern), "pattern {pattern:#b} exceeds width");
        &self.nodes[pattern as usize]
    }

    /// Present patterns that could not be given a reuse path within the
    /// distance cap — "dispatched at the end of other operations" (§5.2).
    pub fn outliers(&self) -> &[u16] {
        &self.outliers
    }

    /// Whether `pattern` is an outlier.
    pub fn is_outlier(&self, pattern: u16) -> bool {
        self.outliers.contains(&pattern)
    }

    /// Final per-lane workload counters (PPE op counts used for balance).
    pub fn lane_workload(&self) -> &[u64] {
        &self.lane_workload
    }

    /// Iterator over all active node patterns (present or transit),
    /// excluding node 0, in Hamming (execution) order.
    pub fn active_nodes(&self) -> impl Iterator<Item = u16> + '_ {
        self.graph
            .forward_order()
            .iter()
            .copied()
            .filter(move |&p| p != 0 && self.nodes[p as usize].is_active())
    }

    // ---- Step ②: record (Fig. 5) -------------------------------------

    fn record(&mut self, patterns: impl IntoIterator<Item = u16>) {
        for p in patterns {
            assert!(self.graph.contains(p), "pattern {p:#b} exceeds width {}", self.cfg.width);
            self.nodes[p as usize].count += 1;
            self.rows += 1;
        }
    }

    // ---- Step ③: forward pass (Alg. 1) --------------------------------

    fn forward(&mut self) {
        let maxd = self.cfg.max_distance;
        let width = self.cfg.width;
        for &i in self.graph.forward_order() {
            let idx = i as usize;
            let mut dis = self.nodes[idx].distance;
            // Alg. 1 line 7: unreachable-or-capped nodes do not propagate
            // (note: this also bars capped *present* nodes from serving as
            // prefixes — they are outliers).
            if i != 0 && dis >= maxd {
                continue;
            }
            // Alg. 1 line 8: present nodes (and the origin) reset the
            // propagated distance — they will be computed and can serve as
            // prefixes.
            if self.nodes[idx].count > 0 || i == 0 {
                dis = 0;
            }
            let d = dis + 1;
            debug_assert!(d as usize <= MAX_DISTANCE);
            for j in 0..width {
                let bit = 1u16 << j;
                if i & bit == 0 {
                    let s = (i | bit) as usize;
                    self.nodes[s].prefix_bitmaps[(d - 1) as usize] |= bit;
                    if d < self.nodes[s].distance {
                        self.nodes[s].distance = d;
                    }
                }
            }
        }
    }

    // ---- Step ④: backward pass (Alg. 2) -------------------------------

    fn backward(&mut self) {
        let maxd = self.cfg.max_distance;
        for &i in self.graph.forward_order().iter().rev() {
            let idx = i as usize;
            let dis = self.nodes[idx].distance;
            // Alg. 2 line 5: present nodes with 1 < distance < cap trace a
            // path to their nearest prefix through transit stops.
            if self.nodes[idx].count > 0 && dis > 1 && dis < maxd {
                let bm = self.nodes[idx].prefix_bitmaps[(dis - 1) as usize];
                debug_assert!(bm != 0, "distance {dis} recorded but bitmap empty");
                // Alg. 2 line 7: only the first prefix, to avoid redundant
                // paths (Fig. 5's node 14 discussion).
                let j = bm.trailing_zeros();
                let parent = i & !(1u16 << j);
                self.nodes[idx].chosen_parent = parent;
                let p = parent as usize;
                self.nodes[p].suffix_bitmap |= 1 << j;
                if self.nodes[p].count == 0 {
                    // Activate the transit (TR) stop; reverse Hamming order
                    // guarantees it is processed after us and continues the
                    // chain if its own distance exceeds 1.
                    self.nodes[p].count = 1;
                    self.nodes[p].transit = true;
                }
            }
            // Alg. 2 line 11: keep only the smallest-distance prefix bitmap.
            if dis != DIST_INF {
                let keep = (dis - 1) as usize;
                for (d, bm) in self.nodes[idx].prefix_bitmaps.iter_mut().enumerate() {
                    if d != keep {
                        *bm = 0;
                    }
                }
            }
        }
    }

    // ---- Step ⑤: balanced forest --------------------------------------

    fn balance(&mut self) {
        let maxd = self.cfg.max_distance;
        let order: Vec<u16> = self.graph.forward_order().to_vec();
        for i in order {
            let idx = i as usize;
            if i == 0 || self.nodes[idx].count == 0 {
                continue;
            }
            let dis = self.nodes[idx].distance;
            // Present nodes beyond the cap are outliers — dispatched at the
            // end, assigned lanes after the forest is balanced.
            if !self.nodes[idx].transit && (dis >= maxd || dis == DIST_INF) {
                self.outliers.push(i);
                continue;
            }
            let lane = if self.graph.level(i) == 1 {
                // Roots: open each tree on the least-loaded lane (or, in
                // the unbalanced ablation, simply on the bit's own lane).
                self.nodes[idx].chosen_parent = 0;
                match self.cfg.balance {
                    BalancePolicy::WorkloadCounter => self.argmin_lane(),
                    BalancePolicy::FirstCandidate => {
                        (i.trailing_zeros() % self.cfg.effective_lanes()) as u8
                    }
                }
            } else if self.nodes[idx].has_chosen_parent() {
                // Distance >1 nodes follow the path the backward pass fixed.
                let parent = self.nodes[idx].chosen_parent as usize;
                debug_assert_ne!(self.nodes[parent].lane, NO_LANE, "parent must be laned first");
                self.nodes[parent].lane
            } else {
                // Distance-1 nodes pick an *available* prefix whose lane is
                // least loaded (the workload counter + priority supervision
                // of §2.4 / Fig. 5 step ⑤). Candidates are (a) any already-
                // laned active parent — present or transit, one add either
                // way — and (b) for level-2 nodes, an absent level-1
                // parent, which can be opened as a transit root for one
                // extra add; this is what keeps otherwise-idle lanes busy
                // when a tile lacks some level-1 patterns ("select an
                // available prefix node for each node, thereby evenly
                // distributing workloads among the trees"). Ties break
                // round-robin by node value.
                debug_assert_eq!(dis, 1);
                let width = self.cfg.width;
                if self.cfg.balance == BalancePolicy::FirstCandidate {
                    // Unbalanced ablation: lowest-bit active parent, no
                    // idle-lane opening.
                    let mut chosen: Option<(u16, u8)> = None;
                    for j in 0..width {
                        let bit = 1u16 << j;
                        if i & bit == 0 {
                            continue;
                        }
                        let parent = i & !bit;
                        let pl = self.nodes[parent as usize].lane;
                        if pl != NO_LANE {
                            chosen = Some((parent, pl));
                            break;
                        }
                    }
                    let (parent, lane) =
                        chosen.expect("distance-1 node must have an active parent");
                    self.nodes[idx].chosen_parent = parent;
                    self.nodes[idx].lane = lane;
                    self.lane_workload[lane as usize] += self.nodes[idx].count as u64;
                    continue;
                }
                let rotation = (i as u32) % width;
                // (candidate parent, lane, activation cost).
                let mut best: Option<(u16, u8, u64)> = None;
                let consider = |parent: u16,
                                lane: u8,
                                extra: u64,
                                best: &mut Option<(u16, u8, u64)>,
                                workload: &[u64]| {
                    let score = workload[lane as usize] + extra;
                    let better = match best {
                        None => true,
                        Some((_, bl, bextra)) => score < workload[*bl as usize] + *bextra,
                    };
                    if better {
                        *best = Some((parent, lane, extra));
                    }
                };
                for step in 0..width {
                    let j = (rotation + step) % width;
                    let bit = 1u16 << j;
                    if i & bit == 0 {
                        continue;
                    }
                    let parent = i & !bit;
                    let pl = self.nodes[parent as usize].lane;
                    if pl != NO_LANE {
                        // Active, laned parent (present or transit stop).
                        consider(parent, pl, 0, &mut best, &self.lane_workload);
                    } else if parent.count_ones() == 1 && self.nodes[parent as usize].count == 0 {
                        // Absent level-1 parent: can open the least-loaded
                        // lane as a fresh transit root. Scored with a
                        // penalty of 2 — the extra transit add itself plus
                        // a net-benefit margin, so idle lanes only open
                        // when they actually shorten the critical path
                        // (Fig. 5's example must keep its 4+4 two-lane
                        // forest).
                        let lane = self.argmin_lane();
                        consider(parent, lane, 2, &mut best, &self.lane_workload);
                    }
                }
                let (parent, lane, extra) =
                    best.expect("distance-1 node must have an available parent");
                if extra > 0 {
                    // Materialize the level-1 transit root.
                    let p = parent as usize;
                    self.nodes[p].count = 1;
                    self.nodes[p].transit = true;
                    self.nodes[p].chosen_parent = 0;
                    self.nodes[p].lane = lane;
                    self.nodes[p].suffix_bitmap |= i ^ parent;
                    self.lane_workload[lane as usize] += 1;
                }
                self.nodes[idx].chosen_parent = parent;
                lane
            };
            self.nodes[idx].lane = lane;
            self.lane_workload[lane as usize] += self.nodes[idx].count as u64;
        }
        // Outliers: computed from scratch (popcount adds for the first
        // occurrence, FR reuse for duplicates), least-loaded lanes.
        let outliers = self.outliers.clone();
        for p in outliers {
            let lane = self.argmin_lane();
            let idx = p as usize;
            self.nodes[idx].lane = lane;
            let cost = p.count_ones() as u64 + (self.nodes[idx].count as u64 - 1);
            self.lane_workload[lane as usize] += cost;
        }
    }

    fn argmin_lane(&self) -> u8 {
        let mut best = 0usize;
        for (l, &w) in self.lane_workload.iter().enumerate() {
            if w < self.lane_workload[best] {
                best = l;
            }
        }
        best as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Workers share Scoreboard by reference across the tile-execution
    /// runtime's scoped threads — lock in the auto-derived thread
    /// safety so a future `Rc`/`RefCell` slip fails to compile.
    #[test]
    fn scoreboard_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Scoreboard>();
    }

    /// The Fig. 5 worked example: TransRows 14,2,5,1,15,7,2 at T=4.
    fn fig5() -> Scoreboard {
        Scoreboard::build(ScoreboardConfig::with_width(4), [14u16, 2, 5, 1, 15, 7, 2])
    }

    #[test]
    fn fig5_counts_recorded() {
        let sb = fig5();
        assert_eq!(sb.rows(), 7);
        assert_eq!(sb.node(2).count, 2);
        assert_eq!(sb.node(14).count, 1);
        assert_eq!(sb.node(0).count, 0);
    }

    #[test]
    fn fig5_forward_distances() {
        let sb = fig5();
        // Present level-1 nodes get distance 1 from node 0.
        assert_eq!(sb.node(1).distance, 1);
        assert_eq!(sb.node(2).distance, 1);
        // 5 = 0101 has present parent 1 → distance 1.
        assert_eq!(sb.node(5).distance, 1);
        // 7 = 0111 has present parent 5 → distance 1.
        assert_eq!(sb.node(7).distance, 1);
        // 14 = 1110: parents 6,10,12 all absent; 6 and 10 sit above present
        // node 2 → distance 2 (the paper's discussion of step ④).
        assert_eq!(sb.node(14).distance, 2);
        // 15 = 1111 has present parents 7 and 14 → distance 1.
        assert_eq!(sb.node(15).distance, 1);
    }

    #[test]
    fn fig5_backward_builds_one_transit_path() {
        let sb = fig5();
        // 14 keeps exactly one path 2 → t → 14 with t ∈ {6, 10} (the paper
        // keeps "the first prefix"; the tie-break within the bitmap is
        // arbitrary but must be unique).
        let t = sb.node(14).chosen_parent;
        assert!(t == 6 || t == 10, "transit must be 6 or 10, got {t}");
        assert!(sb.node(t).transit);
        assert_eq!(sb.node(t).count, 1);
        assert_eq!(sb.node(t).chosen_parent, 2, "transit chains to present node 2");
        // The other candidate stays inactive.
        let other = if t == 6 { 10 } else { 6 };
        assert!(!sb.node(other).is_active());
    }

    #[test]
    fn fig5_balanced_forest_has_4_plus_4_ops() {
        let sb = fig5();
        // Paper's result: Lane A = {1,5,7,15} (4 ops), Lane B = {2,2,6,14}
        // (4 ops). Our tie-breaks may swap lane ids or pick transit 10, but
        // the workload split must be 4/4.
        let mut loads: Vec<u64> = sb.lane_workload().iter().copied().filter(|&w| w > 0).collect();
        loads.sort_unstable();
        assert_eq!(loads, vec![4, 4]);
        // Chain 1 → 5 → 7 → 15 shares one lane.
        let lane1 = sb.node(1).lane;
        for p in [5u16, 7, 15] {
            assert_eq!(sb.node(p).lane, lane1, "node {p}");
        }
        // Chain 2 → transit → 14 shares the other lane.
        let lane2 = sb.node(2).lane;
        assert_ne!(lane1, lane2);
        assert_eq!(sb.node(14).lane, lane2);
        // 15 chose the lighter tree's head as prefix (node 7's lane had 3
        // ops vs node 14's 4 when 15 was placed).
        assert_eq!(sb.node(15).chosen_parent, 7);
    }

    #[test]
    fn fig5_no_outliers() {
        let sb = fig5();
        assert!(sb.outliers().is_empty());
    }

    #[test]
    fn duplicate_only_input_forms_single_node() {
        let sb = Scoreboard::build(ScoreboardConfig::with_width(4), [9u16, 9, 9]);
        assert_eq!(sb.node(9).count, 3);
        // 9 = 1001 at level 2 with no present parents: distance 2 via an
        // absent level-1 node, which becomes transit.
        assert_eq!(sb.node(9).distance, 2);
        let t = sb.node(9).chosen_parent;
        assert!(t == 1 || t == 8);
        assert!(sb.node(t).transit);
        // Ops: 3 rows + 1 transit = 4.
        let total: u64 = sb.lane_workload().iter().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn zero_rows_cost_nothing() {
        let sb = Scoreboard::build(ScoreboardConfig::with_width(4), [0u16, 0, 0, 1]);
        let total: u64 = sb.lane_workload().iter().sum();
        assert_eq!(total, 1);
        assert_eq!(sb.node(0).count, 3);
        assert_eq!(sb.node(0).lane, NO_LANE);
    }

    #[test]
    fn outlier_detected_beyond_distance_cap() {
        // T=8, a single level-6 pattern: nearest "present" ancestor is node
        // 0 at distance 6 > cap 4 → outlier, cost = popcount = 6.
        let p: u16 = 0b0011_1111;
        let sb = Scoreboard::build(ScoreboardConfig::with_width(8), [p]);
        assert!(sb.is_outlier(p));
        assert_eq!(sb.node(p).lane, 0);
        let total: u64 = sb.lane_workload().iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn outlier_duplicates_reuse_fr() {
        let p: u16 = 0b0011_1111;
        let sb = Scoreboard::build(ScoreboardConfig::with_width(8), [p, p]);
        // First costs popcount (6), duplicate costs 1.
        let total: u64 = sb.lane_workload().iter().sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn capped_present_nodes_do_not_serve_as_prefixes() {
        // Alg. 1 line 7 is checked *before* the present-node reset (line
        // 8): a present node whose own distance hit the cap never
        // propagates, so its superset cannot reuse it — both become
        // outliers. This is the faithful hardware behaviour (§5.2 treats
        // distance ≥ 4 rows as outliers dispatched at the end).
        let lo: u16 = 0b0011_1110; // level 5 → unreachable within cap 4
        let hi: u16 = 0b0011_1111; // level 6, superset of lo
        let sb = Scoreboard::build(ScoreboardConfig::with_width(8), [lo, hi]);
        assert!(sb.is_outlier(lo));
        assert!(sb.is_outlier(hi));
        // Costs: popcount(lo) + popcount(hi) = 5 + 6.
        let total: u64 = sb.lane_workload().iter().sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn mid_level_present_chain_reuses_within_cap() {
        // Level-3 node is reachable at distance 3 (≤ cap) through absent
        // transit stops; a present level-4 superset then reuses it at
        // distance 1.
        let lo: u16 = 0b0000_0111; // level 3, distance 3 from node 0
        let hi: u16 = 0b0000_1111; // level 4, superset
        let sb = Scoreboard::build(ScoreboardConfig::with_width(8), [lo, hi]);
        assert!(!sb.is_outlier(lo));
        assert!(!sb.is_outlier(hi));
        assert_eq!(sb.node(lo).distance, 3);
        assert_eq!(sb.node(hi).distance, 1);
        assert_eq!(sb.node(hi).chosen_parent, lo);
        // Ops: lo's chain costs 3 (two transit + itself), hi costs 1.
        let total: u64 = sb.lane_workload().iter().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn full_pattern_set_all_distance_one() {
        // Every 4-bit pattern present → every node reuses at distance 1,
        // no transit, no outliers.
        let sb = Scoreboard::build(ScoreboardConfig::with_width(4), 0u16..16);
        for p in 1u16..16 {
            assert_eq!(sb.node(p).distance, 1, "node {p}");
            assert!(!sb.node(p).transit);
        }
        assert!(sb.outliers().is_empty());
        let total: u64 = sb.lane_workload().iter().sum();
        assert_eq!(total, 15); // 15 non-zero rows, 1 op each
    }

    #[test]
    fn chains_are_acyclic_and_single_bit_steps() {
        // Random-ish multiset; verify the one-prefix forest invariants.
        let patterns: Vec<u16> =
            (0..200u32).map(|i| ((i.wrapping_mul(2654435761)) >> 24) as u16 & 0xFF).collect();
        let sb = Scoreboard::build(ScoreboardConfig::with_width(8), patterns);
        for p in sb.active_nodes() {
            if sb.is_outlier(p) {
                continue;
            }
            // Walk to the root, at most `level` steps.
            let mut cur = p;
            let mut steps = 0;
            while cur != 0 {
                let parent = sb.node(cur).chosen_parent;
                assert!(parent != u16::MAX, "active node {cur:#010b} lacks parent");
                // Single-bit, downward step.
                assert_eq!((cur ^ parent).count_ones(), 1, "{cur:#010b}->{parent:#010b}");
                assert!(parent & cur == parent, "parent must be a subset");
                // Same lane all along the chain.
                if parent != 0 {
                    assert_eq!(sb.node(parent).lane, sb.node(p).lane);
                }
                cur = parent;
                steps += 1;
                assert!(steps <= 16, "cycle detected");
            }
        }
    }

    #[test]
    fn lane_override_respected() {
        let cfg = ScoreboardConfig { lanes: 2, ..ScoreboardConfig::with_width(4) };
        let sb = Scoreboard::build(cfg, [1u16, 2, 4, 8, 3, 5]);
        assert_eq!(sb.lane_workload().len(), 2);
        for p in sb.active_nodes() {
            assert!(sb.node(p).lane < 2);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn oversized_pattern_rejected() {
        let _ = Scoreboard::build(ScoreboardConfig::with_width(4), [16u16]);
    }
}
