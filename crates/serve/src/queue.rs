//! Tenant-fair admission queue.
//!
//! Each tenant gets a private FIFO; the scheduler drains tenants
//! round-robin, so a tenant flooding the server cannot starve a light
//! one: with `T` active tenants, every tenant's head-of-line request is
//! dispatched within `T` pops. Within a tenant, order is strictly FIFO.

use std::collections::{BTreeMap, VecDeque};

use crate::request::{Envelope, TenantId};

/// Per-tenant FIFOs drained round-robin (see module docs).
#[derive(Default)]
pub(crate) struct AdmissionQueue {
    lanes: BTreeMap<TenantId, VecDeque<Envelope>>,
    /// Round-robin cursor: the next tenant to serve. Tenants are
    /// visited in ascending id order starting from the cursor, which
    /// makes the schedule deterministic for a deterministic arrival
    /// order.
    cursor: TenantId,
    len: usize,
}

impl AdmissionQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Appends to the submitting tenant's FIFO.
    pub(crate) fn push(&mut self, env: Envelope) {
        self.lanes.entry(env.tenant).or_default().push_back(env);
        self.len += 1;
    }

    /// Pops the head-of-line request of the next tenant at or after the
    /// cursor (wrapping), then advances the cursor past that tenant.
    pub(crate) fn pop(&mut self) -> Option<Envelope> {
        let tenant = self
            .lanes
            .range(self.cursor..)
            .next()
            .or_else(|| self.lanes.range(..).next())
            .map(|(t, _)| *t)?;
        let lane = self.lanes.get_mut(&tenant).expect("tenant lane exists");
        let env = lane.pop_front().expect("lanes are never left empty");
        if lane.is_empty() {
            self.lanes.remove(&tenant);
        }
        self.len -= 1;
        self.cursor = tenant.wrapping_add(1);
        Some(env)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::test_envelope;
    use ta_core::GemmRequest;
    use ta_quant::MatI32;

    fn req() -> GemmRequest {
        GemmRequest::execute(MatI32::zeros(2, 4), MatI32::zeros(4, 1))
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut q = AdmissionQueue::new();
        for id in 0..5 {
            q.push(test_envelope(id, 7, req()));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn skewed_tenants_are_interleaved_fairly() {
        let mut q = AdmissionQueue::new();
        // Tenant 0 floods with 10 requests before tenant 1 submits 3.
        let mut id = 0;
        for _ in 0..10 {
            q.push(test_envelope(id, 0, req()));
            id += 1;
        }
        for _ in 0..3 {
            q.push(test_envelope(id, 1, req()));
            id += 1;
        }
        let order: Vec<(u32, u64)> =
            std::iter::from_fn(|| q.pop()).map(|e| (e.tenant, e.id)).collect();
        assert!(q.is_empty());
        // Round-robin: the light tenant's 3 requests all dispatch within
        // the first 6 pops despite arriving last.
        let t1_positions: Vec<usize> =
            order.iter().enumerate().filter(|(_, (t, _))| *t == 1).map(|(i, _)| i).collect();
        assert_eq!(t1_positions, vec![1, 3, 5], "order was {order:?}");
        // And each tenant's own stream stays FIFO.
        let t0_ids: Vec<u64> = order.iter().filter(|(t, _)| *t == 0).map(|(_, id)| *id).collect();
        assert_eq!(t0_ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn late_joining_tenant_is_served_promptly() {
        let mut q = AdmissionQueue::new();
        q.push(test_envelope(0, 3, req()));
        q.push(test_envelope(1, 3, req()));
        assert_eq!(q.pop().unwrap().tenant, 3);
        // Tenant 5 joins mid-stream; cursor is past 3, so 5 is next.
        q.push(test_envelope(2, 5, req()));
        assert_eq!(q.pop().unwrap().tenant, 5);
        assert_eq!(q.pop().unwrap().tenant, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fully_rejected_tenant_does_not_stall_the_cursor() {
        // Tenant 4's submits are all refused by admission control, so
        // its lane never exists — but pops of tenant 3 leave the
        // cursor parked *at* 4. The next pop must skip the absent
        // tenant and serve whoever is live, in bounded time.
        let mut q = AdmissionQueue::new();
        q.push(test_envelope(0, 3, req()));
        assert_eq!(q.pop().unwrap().tenant, 3, "cursor now rests on absent tenant 4");
        q.push(test_envelope(1, 1, req()));
        q.push(test_envelope(2, 7, req()));
        assert_eq!(q.pop().unwrap().tenant, 7, "first live tenant at or after the cursor");
        assert_eq!(q.pop().unwrap().tenant, 1, "wraps past the absent tenant");
        assert!(q.pop().is_none());
        // Same at the id-space edge: cursor wraps from u32::MAX.
        q.push(test_envelope(3, u32::MAX, req()));
        assert_eq!(q.pop().unwrap().tenant, u32::MAX);
        q.push(test_envelope(4, 0, req()));
        assert_eq!(q.pop().unwrap().tenant, 0, "cursor wrapped to 0 after u32::MAX");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Round-robin fairness survives arbitrary admission
            // patterns, including tenants whose requests are all
            // rejected upstream (they simply never appear here): no
            // tenant is served twice in a row while another tenant
            // still has queued work, and each tenant's own order
            // stays FIFO.
            #[test]
            fn round_robin_never_serves_a_tenant_twice_while_others_wait(
                tenants in proptest::collection::vec(0u32..12, 1..80),
            ) {
                let mut q = AdmissionQueue::new();
                let mut pending: std::collections::BTreeMap<u32, u64> =
                    std::collections::BTreeMap::new();
                for (id, &tenant) in tenants.iter().enumerate() {
                    q.push(test_envelope(id as u64, tenant, req()));
                    *pending.entry(tenant).or_insert(0) += 1;
                }
                let mut last_served: Option<u32> = None;
                let mut popped = Vec::new();
                while let Some(env) = q.pop() {
                    if let Some(last) = last_served {
                        let others_waiting =
                            pending.iter().any(|(&t, &n)| t != last && n > 0);
                        prop_assert!(
                            !(others_waiting && env.tenant == last),
                            "tenant {last} served twice in a row with others waiting"
                        );
                    }
                    *pending.get_mut(&env.tenant).unwrap() -= 1;
                    last_served = Some(env.tenant);
                    popped.push((env.tenant, env.id));
                }
                prop_assert_eq!(popped.len(), tenants.len());
                // Per-tenant FIFO: ids within a tenant stay sorted.
                for t in pending.keys() {
                    let ids: Vec<u64> =
                        popped.iter().filter(|(pt, _)| pt == t).map(|(_, id)| *id).collect();
                    let mut sorted = ids.clone();
                    sorted.sort_unstable();
                    prop_assert_eq!(ids, sorted);
                }
            }
        }
    }
}
