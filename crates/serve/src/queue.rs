//! Tenant-fair admission queue.
//!
//! Each tenant gets a private FIFO; the scheduler drains tenants
//! round-robin, so a tenant flooding the server cannot starve a light
//! one: with `T` active tenants, every tenant's head-of-line request is
//! dispatched within `T` pops. Within a tenant, order is strictly FIFO.

use std::collections::{BTreeMap, VecDeque};

use crate::request::{Envelope, TenantId};

/// Per-tenant FIFOs drained round-robin (see module docs).
#[derive(Default)]
pub(crate) struct AdmissionQueue {
    lanes: BTreeMap<TenantId, VecDeque<Envelope>>,
    /// Round-robin cursor: the next tenant to serve. Tenants are
    /// visited in ascending id order starting from the cursor, which
    /// makes the schedule deterministic for a deterministic arrival
    /// order.
    cursor: TenantId,
    len: usize,
}

impl AdmissionQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Appends to the submitting tenant's FIFO.
    pub(crate) fn push(&mut self, env: Envelope) {
        self.lanes.entry(env.tenant).or_default().push_back(env);
        self.len += 1;
    }

    /// Pops the head-of-line request of the next tenant at or after the
    /// cursor (wrapping), then advances the cursor past that tenant.
    pub(crate) fn pop(&mut self) -> Option<Envelope> {
        let tenant = self
            .lanes
            .range(self.cursor..)
            .next()
            .or_else(|| self.lanes.range(..).next())
            .map(|(t, _)| *t)?;
        let lane = self.lanes.get_mut(&tenant).expect("tenant lane exists");
        let env = lane.pop_front().expect("lanes are never left empty");
        if lane.is_empty() {
            self.lanes.remove(&tenant);
        }
        self.len -= 1;
        self.cursor = tenant.wrapping_add(1);
        Some(env)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::test_envelope;
    use ta_core::GemmRequest;
    use ta_quant::MatI32;

    fn req() -> GemmRequest {
        GemmRequest::execute(MatI32::zeros(2, 4), MatI32::zeros(4, 1))
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut q = AdmissionQueue::new();
        for id in 0..5 {
            q.push(test_envelope(id, 7, req()));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn skewed_tenants_are_interleaved_fairly() {
        let mut q = AdmissionQueue::new();
        // Tenant 0 floods with 10 requests before tenant 1 submits 3.
        let mut id = 0;
        for _ in 0..10 {
            q.push(test_envelope(id, 0, req()));
            id += 1;
        }
        for _ in 0..3 {
            q.push(test_envelope(id, 1, req()));
            id += 1;
        }
        let order: Vec<(u32, u64)> =
            std::iter::from_fn(|| q.pop()).map(|e| (e.tenant, e.id)).collect();
        assert!(q.is_empty());
        // Round-robin: the light tenant's 3 requests all dispatch within
        // the first 6 pops despite arriving last.
        let t1_positions: Vec<usize> =
            order.iter().enumerate().filter(|(_, (t, _))| *t == 1).map(|(i, _)| i).collect();
        assert_eq!(t1_positions, vec![1, 3, 5], "order was {order:?}");
        // And each tenant's own stream stays FIFO.
        let t0_ids: Vec<u64> = order.iter().filter(|(t, _)| *t == 0).map(|(_, id)| *id).collect();
        assert_eq!(t0_ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn late_joining_tenant_is_served_promptly() {
        let mut q = AdmissionQueue::new();
        q.push(test_envelope(0, 3, req()));
        q.push(test_envelope(1, 3, req()));
        assert_eq!(q.pop().unwrap().tenant, 3);
        // Tenant 5 joins mid-stream; cursor is past 3, so 5 is next.
        q.push(test_envelope(2, 5, req()));
        assert_eq!(q.pop().unwrap().tenant, 5);
        assert_eq!(q.pop().unwrap().tenant, 3);
        assert!(q.pop().is_none());
    }
}
