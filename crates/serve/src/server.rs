//! The continuous-batching server: admission → batcher → worker pool.
//!
//! ```text
//!  submit() ──mpsc──▶ scheduler thread ──mpsc──▶ worker 0..W
//!                      │  AdmissionQueue           │ run each request
//!                      │  (tenant round-robin)     │ serially, stream
//!                      │  Batcher (shape buckets,  │ chunks, reply on
//!                      │  budget/deadline flush)   │ the ticket channel
//! ```
//!
//! Determinism contract: every request executes as its own GEMM,
//! serially, inside one worker (`Session::run_serial`). The runtime's
//! parallel-equals-serial guarantee then makes each response —
//! output matrix *and* full `GemmReport` — bit-identical to calling
//! the session directly, regardless of worker count, batching policy,
//! or arrival order. Padding (`quantum_m > 1`) widens a request's
//! input with zero columns that are sliced back off, so outputs still
//! match bit-for-bit; only then does the report describe the padded
//! shape.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ta_core::error::TaError;
use ta_core::{GemmRequest, Session};
use ta_quant::MatI32;

use crate::batcher::{BatchJob, BatchPolicy, Batcher};
use crate::queue::AdmissionQueue;
use crate::request::{
    Envelope, RequestId, ServeError, ServeResponse, StreamChunk, StreamTicket, TenantId, Ticket,
};

/// Server construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerConfig {
    /// Worker threads executing batches; `0` means one per host core.
    /// Each request runs serially inside its worker, so this is the
    /// server's total parallelism.
    pub workers: usize,
    /// Shape-bucketing policy (see [`BatchPolicy`]).
    pub policy: BatchPolicy,
}

/// A monotonic snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests admitted by [`Server::submit`] and variants.
    pub submitted: u64,
    /// Responses delivered (successfully executed requests).
    pub completed: u64,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Execute requests that were zero-padded to their bucket width.
    pub padded: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    padded: AtomicU64,
}

/// The serving frontend. See the module docs for the architecture and
/// the determinism contract.
pub struct Server {
    session: Session,
    cmd_tx: Option<mpsc::Sender<Envelope>>,
    scheduler: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
    next_id: AtomicU64,
    epoch: Instant,
}

impl Server {
    /// Starts the scheduler and worker threads over a session.
    pub fn start(session: Session, config: ServerConfig) -> Self {
        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let counters = Arc::new(Counters::default());
        let epoch = Instant::now();
        let (cmd_tx, cmd_rx) = mpsc::channel::<Envelope>();
        let (job_tx, job_rx) = mpsc::channel::<BatchJob>();
        let job_rx = Arc::new(Mutex::new(job_rx));

        let sched_counters = Arc::clone(&counters);
        let policy = config.policy;
        let scheduler = std::thread::Builder::new()
            .name("ta-serve-sched".into())
            .spawn(move || scheduler_loop(cmd_rx, job_tx, policy, epoch, &sched_counters))
            .expect("spawn scheduler thread");

        let workers = (0..worker_count)
            .map(|i| {
                let session = session.clone();
                let job_rx = Arc::clone(&job_rx);
                let counters = Arc::clone(&counters);
                std::thread::Builder::new()
                    .name(format!("ta-serve-worker-{i}"))
                    .spawn(move || worker_loop(&session, &job_rx, epoch, &counters))
                    .expect("spawn worker thread")
            })
            .collect();

        Self {
            session,
            cmd_tx: Some(cmd_tx),
            scheduler: Some(scheduler),
            workers,
            counters,
            next_id: AtomicU64::new(0),
            epoch,
        }
    }

    /// The session this server runs (shared plan cache and all).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Validates and admits a request; returns a [`Ticket`] resolving
    /// to its response.
    ///
    /// # Errors
    ///
    /// The session's validation error; rejected requests are never
    /// admitted.
    pub fn submit(&self, tenant: TenantId, request: GemmRequest) -> Result<Ticket, TaError> {
        self.admit(tenant, request, None)
    }

    /// [`Self::submit`], but per-pattern results also stream out on the
    /// returned [`StreamTicket::chunks`] channel as they are computed.
    /// Simulate requests complete normally but stream nothing.
    ///
    /// # Errors
    ///
    /// Same as [`Self::submit`].
    pub fn submit_streaming(
        &self,
        tenant: TenantId,
        request: GemmRequest,
    ) -> Result<StreamTicket, TaError> {
        let (chunk_tx, chunks) = mpsc::channel();
        let ticket = self.admit(tenant, request, Some(chunk_tx))?;
        Ok(StreamTicket { ticket, chunks })
    }

    fn admit(
        &self,
        tenant: TenantId,
        request: GemmRequest,
        stream: Option<mpsc::Sender<StreamChunk>>,
    ) -> Result<Ticket, TaError> {
        self.session.validate(&request)?;
        let id: RequestId = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = mpsc::channel();
        let env = Envelope {
            id,
            tenant,
            request,
            submitted_at_ns: self.now_ns(),
            reply: reply_tx,
            stream,
        };
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.cmd_tx
            .as_ref()
            .expect("server is running")
            .send(env)
            .expect("scheduler outlives the server handle");
        Ok(Ticket { id, reply: reply_rx })
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            padded: self.counters.padded.load(Ordering::Relaxed),
        }
    }

    /// Nanoseconds since the server started (the clock every
    /// [`ServeResponse`] timestamp uses).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Stops admissions, drains every in-flight request, and joins all
    /// threads. Outstanding tickets resolve before this returns.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        // Closing the command channel makes the scheduler drain its
        // queue, flush the batcher, and close the job channel; workers
        // then finish their remaining jobs and exit.
        drop(self.cmd_tx.take());
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn scheduler_loop(
    cmd_rx: mpsc::Receiver<Envelope>,
    job_tx: mpsc::Sender<BatchJob>,
    policy: BatchPolicy,
    epoch: Instant,
    counters: &Counters,
) {
    let mut queue = AdmissionQueue::new();
    let mut batcher = Batcher::new(policy);
    let mut open = true;
    while open || !queue.is_empty() || batcher.pending() > 0 {
        if open {
            let now_ns = epoch.elapsed().as_nanos() as u64;
            // Sleep until the next bucket deadline (or for new work).
            let first = match batcher.next_deadline_ns() {
                Some(deadline) => {
                    let wait = Duration::from_nanos(deadline.saturating_sub(now_ns));
                    match cmd_rx.recv_timeout(wait) {
                        Ok(env) => Some(env),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => {
                            open = false;
                            None
                        }
                    }
                }
                None => match cmd_rx.recv() {
                    Ok(env) => Some(env),
                    Err(_) => {
                        open = false;
                        None
                    }
                },
            };
            if let Some(env) = first {
                queue.push(env);
            }
            // Batch up everything else that has already arrived.
            loop {
                match cmd_rx.try_recv() {
                    Ok(env) => queue.push(env),
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
        }
        let now_ns = epoch.elapsed().as_nanos() as u64;
        let mut jobs = Vec::new();
        // Tenant-fair drain into the batcher; full buckets flush here.
        while let Some(env) = queue.pop() {
            jobs.extend(batcher.offer(env, now_ns));
        }
        if open {
            jobs.extend(batcher.flush_due(now_ns));
        } else {
            jobs.extend(batcher.flush_all());
        }
        for job in jobs {
            counters.batches.fetch_add(1, Ordering::Relaxed);
            if job_tx.send(job).is_err() {
                return; // workers are gone; nothing left to do
            }
        }
    }
}

fn worker_loop(
    session: &Session,
    job_rx: &Arc<Mutex<mpsc::Receiver<BatchJob>>>,
    epoch: Instant,
    counters: &Counters,
) {
    loop {
        // Holding the lock across recv() briefly serializes job pickup,
        // which is fine: execution dominates and handoff still rotates
        // through the pool.
        let job = {
            let rx = job_rx.lock().expect("job channel lock");
            rx.recv()
        };
        let Ok(job) = job else { break };
        let batch_size = job.requests.len();
        for env in job.requests {
            run_one(session, env, job.padded_m, batch_size, epoch, counters);
        }
    }
}

fn run_one(
    session: &Session,
    env: Envelope,
    padded_m: usize,
    batch_size: usize,
    epoch: Instant,
    counters: &Counters,
) {
    let Envelope { id, tenant, request, submitted_at_ns, reply, stream } = env;
    let original_m = request.shape().m;
    let request = if request.is_execute() && original_m < padded_m {
        counters.padded.fetch_add(1, Ordering::Relaxed);
        request.padded_to(padded_m)
    } else {
        request
    };
    let result = match stream {
        Some(chunk_tx) => {
            // The blanket FnMut ResultSink impl adapts the channel; a
            // dropped receiver just discards chunks.
            let mut sink = |pattern: u16, values: &[i64]| {
                let _ = chunk_tx.send(StreamChunk { pattern, values: values.to_vec() });
            };
            session.run_streaming(request, &mut sink)
        }
        None => session.run_serial(request),
    };
    let outcome = result
        .map(|mut response| {
            if let Some(out) = response.output.take() {
                response.output = Some(slice_cols(out, original_m));
            }
            counters.completed.fetch_add(1, Ordering::Relaxed);
            ServeResponse {
                id,
                tenant,
                response,
                submitted_at_ns,
                completed_at_ns: epoch.elapsed().as_nanos() as u64,
                batch_size,
            }
        })
        .map_err(ServeError::Rejected);
    let _ = reply.send(outcome); // an abandoned ticket is not an error
}

/// Drops the zero-padded output columns added by bucket padding.
fn slice_cols(out: MatI32, m: usize) -> MatI32 {
    if out.cols() == m {
        return out;
    }
    MatI32::from_fn(out.rows(), m, |r, c| out.get(r, c))
}
