//! The continuous-batching server: admission → batcher → worker pool.
//!
//! ```text
//!  submit() ──mpsc──▶ scheduler thread ──mpsc──▶ worker 0..W
//!   │ SLO admission    │  AdmissionQueue           │ run each request
//!   │ (per-tenant      │  (tenant round-robin)     │ serially under
//!   │  depth limit)    │  Batcher (shape buckets,  │ catch_unwind,
//!   │                  │  budget/deadline flush,   │ stream chunks,
//!   │                  │  deadline shedding)       │ reply on ticket
//! ```
//!
//! Determinism contract: every request executes as its own GEMM,
//! serially, inside one worker (`Session::run_serial`). The runtime's
//! parallel-equals-serial guarantee then makes each response —
//! output matrix *and* full `GemmReport` — bit-identical to calling
//! the session directly, regardless of worker count, batching policy,
//! or arrival order. Padding (`quantum_m > 1`) widens a request's
//! input with zero columns that are sliced back off, so outputs still
//! match bit-for-bit; only then does the report describe the padded
//! shape.
//!
//! Fault-tolerance contract: every admitted request resolves — to the
//! bit-exact response or to a typed [`ServeError`] — no matter what.
//! Worker panics are isolated with `catch_unwind`: the victim ticket
//! resolves [`ServeError::WorkerLost`], the worker finishes the rest
//! of its batch (each request individually guarded) and respawns
//! itself, and every other lane stays bit-exact. Deadline pressure is
//! handled by [`SloPolicy`]: over-depth tenants are rejected at
//! submit, over-budget requests are shed at the batcher before any
//! worker time is spent on them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ta_core::{GemmRequest, Session};
use ta_quant::MatI32;

use crate::batcher::{BatchJob, BatchPolicy, Batcher};
use crate::faultpoint::{FaultConfig, FaultPlan, FaultSite, FaultStats};
use crate::queue::AdmissionQueue;
use crate::request::{
    Envelope, RejectReason, RequestId, ServeError, ServeResponse, StreamChunk, StreamEvent,
    StreamTicket, TenantId, Ticket,
};

/// How long the scheduler stalls when a [`FaultSite::QueueStall`]
/// decision fires (wall time; the fault simulates a descheduled
/// scheduler, not a logical-clock event).
const QUEUE_STALL: Duration = Duration::from_micros(500);

/// Poll interval of the scheduler under [`ClockMode::Virtual`]: with
/// no wall deadlines to sleep toward, the scheduler wakes at this wall
/// cadence to re-read the virtual clock.
const VIRTUAL_POLL: Duration = Duration::from_micros(200);

/// Per-tenant service-level objectives enforced by the server.
/// `0` disables the corresponding limit (the default: admit and keep
/// everything, exactly the pre-SLO behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SloPolicy {
    /// Maximum in-flight (admitted, unresolved) requests per tenant.
    /// Submits beyond it fail fast with
    /// [`RejectReason::QueueFull`] instead of growing the queue.
    pub max_queue_depth: u64,
    /// Maximum server-clock nanoseconds a request may wait before
    /// dispatch. Requests over budget at flush time are shed at the
    /// batcher with [`ServeError::Shed`] — no worker time is spent on
    /// an answer whose deadline is already blown.
    pub latency_budget_ns: u64,
}

/// Which clock drives `submitted_at_ns`, batcher deadlines, and
/// latency budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Wall time since server start (the default).
    #[default]
    Wall,
    /// A logical clock that only moves when [`Server::advance_clock`]
    /// is called. Benchmarks and tests use it to script overload
    /// scenarios — "now everyone's deadline is blown" — with
    /// deterministic outcomes on any host.
    Virtual,
}

/// Server construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerConfig {
    /// Worker threads executing batches; `0` means one per host core.
    /// Each request runs serially inside its worker, so this is the
    /// server's total parallelism.
    pub workers: usize,
    /// Shape-bucketing policy (see [`BatchPolicy`]).
    pub policy: BatchPolicy,
    /// Per-tenant SLOs (see [`SloPolicy`]; default: unlimited).
    pub slo: SloPolicy,
    /// Fault injection. `None` (the default) falls back to the
    /// `TA_FAULTS` environment variable ([`FaultConfig::from_env`]);
    /// injection is off when that is unset too.
    pub faults: Option<FaultConfig>,
    /// Clock driving all serving timestamps (see [`ClockMode`]).
    pub clock: ClockMode,
}

/// A monotonic snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests admitted by [`Server::submit`] and variants.
    pub submitted: u64,
    /// Responses delivered (successfully executed requests).
    pub completed: u64,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Execute requests that were zero-padded to their bucket width.
    pub padded: u64,
    /// Submits refused by SLO admission control ([`RejectReason::QueueFull`]).
    /// Validation failures are not counted — they were never load.
    pub rejected: u64,
    /// Admitted requests shed at the batcher over a blown latency
    /// budget ([`ServeError::Shed`]).
    pub shed: u64,
    /// Requests resolved [`ServeError::WorkerLost`] (worker panic, or
    /// dispatch to an already-dead pool).
    pub worker_lost: u64,
    /// Replacement workers spawned after a panic.
    pub respawned: u64,
    /// Admitted requests the scheduler has absorbed into the batcher
    /// (counted whether they later complete, shed, or fail). Virtual-
    /// clock drivers spin on this to know their submits are batched
    /// before advancing the clock.
    pub absorbed: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    padded: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    worker_lost: AtomicU64,
    respawned: AtomicU64,
    absorbed: AtomicU64,
}

struct Clock {
    mode: ClockMode,
    epoch: Instant,
    virtual_ns: AtomicU64,
}

impl Clock {
    fn new(mode: ClockMode) -> Self {
        Self { mode, epoch: Instant::now(), virtual_ns: AtomicU64::new(0) }
    }

    fn now_ns(&self) -> u64 {
        match self.mode {
            ClockMode::Wall => self.epoch.elapsed().as_nanos() as u64,
            ClockMode::Virtual => self.virtual_ns.load(Ordering::SeqCst),
        }
    }
}

/// State shared by the handle, the scheduler, and every worker
/// (including respawned ones).
struct Inner {
    counters: Counters,
    clock: Clock,
    faults: FaultPlan,
    slo: SloPolicy,
    /// In-flight request count per tenant; entries are removed at zero
    /// so an idle tenant costs nothing.
    depths: Mutex<BTreeMap<TenantId, u64>>,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Releases one unit of the tenant's queue depth. Called on every
    /// resolution path — completion, shed, worker loss — so admission
    /// control tracks true in-flight load.
    fn release(&self, tenant: TenantId) {
        let mut depths = self.depths.lock().expect("depth map lock");
        if let Some(depth) = depths.get_mut(&tenant) {
            *depth -= 1;
            if *depth == 0 {
                depths.remove(&tenant);
            }
        }
    }

    /// Resolves an envelope with a typed error, maintaining depth
    /// accounting and the given failure counter. Depth is released
    /// *before* the ticket resolves: a caller that observed its
    /// ticket's resolution must never race a stale depth entry into a
    /// spurious `QueueFull`.
    fn fail(&self, env: Envelope, err: ServeError, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
        self.release(env.tenant);
        env.resolve_err(err);
    }
}

/// The serving frontend. See the module docs for the architecture,
/// the determinism contract, and the fault-tolerance contract.
pub struct Server {
    session: Session,
    cmd_tx: Option<mpsc::Sender<Envelope>>,
    scheduler: Option<JoinHandle<()>>,
    /// Live worker handles. Respawned workers push their replacement's
    /// handle *before* exiting, so draining this to empty (while
    /// joining each popped handle) joins every worker ever spawned.
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    inner: Arc<Inner>,
    next_id: AtomicU64,
}

impl Server {
    /// Starts the scheduler and worker threads over a session.
    ///
    /// # Panics
    ///
    /// Panics if `config.faults` is `None` and the `TA_FAULTS`
    /// environment variable holds a malformed spec (a silently
    /// ignored fault spec would make a chaos run vacuously green).
    pub fn start(session: Session, config: ServerConfig) -> Self {
        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let faults = config.faults.or_else(FaultConfig::from_env);
        let inner = Arc::new(Inner {
            counters: Counters::default(),
            clock: Clock::new(config.clock),
            faults: FaultPlan::new(faults),
            slo: config.slo,
            depths: Mutex::new(BTreeMap::new()),
        });
        let (cmd_tx, cmd_rx) = mpsc::channel::<Envelope>();
        let (job_tx, job_rx) = mpsc::channel::<BatchJob>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = Arc::new(Mutex::new(Vec::with_capacity(worker_count)));

        let sched_inner = Arc::clone(&inner);
        let policy = config.policy;
        let scheduler = std::thread::Builder::new()
            .name("ta-serve-sched".into())
            .spawn(move || scheduler_loop(cmd_rx, job_tx, policy, &sched_inner))
            .expect("spawn scheduler thread");

        {
            let mut registry = workers.lock().expect("worker handle registry");
            for index in 0..worker_count {
                let ctx = WorkerCtx {
                    session: session.clone(),
                    job_rx: Arc::clone(&job_rx),
                    inner: Arc::clone(&inner),
                    handles: Arc::clone(&workers),
                    index,
                    generation: 0,
                };
                registry.push(spawn_worker(ctx));
            }
        }

        Self {
            session,
            cmd_tx: Some(cmd_tx),
            scheduler: Some(scheduler),
            workers,
            inner,
            next_id: AtomicU64::new(0),
        }
    }

    /// The session this server runs (shared plan cache and all).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Validates and admits a request; returns a [`Ticket`] resolving
    /// to its response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] — the request failed validation
    /// ([`RejectReason::Invalid`]) or the tenant is at its
    /// [`SloPolicy::max_queue_depth`] ([`RejectReason::QueueFull`]).
    /// Rejected requests are never admitted.
    pub fn submit(&self, tenant: TenantId, request: GemmRequest) -> Result<Ticket, ServeError> {
        self.admit(tenant, request, None)
    }

    /// [`Self::submit`], but per-pattern results also stream out on the
    /// returned [`StreamTicket::events`] channel as they are computed,
    /// always terminated by one [`StreamEvent::Done`]. Simulate
    /// requests complete normally but stream no chunks.
    ///
    /// # Errors
    ///
    /// Same as [`Self::submit`].
    pub fn submit_streaming(
        &self,
        tenant: TenantId,
        request: GemmRequest,
    ) -> Result<StreamTicket, ServeError> {
        let (event_tx, events) = mpsc::channel();
        let ticket = self.admit(tenant, request, Some(event_tx))?;
        Ok(StreamTicket { ticket, events })
    }

    fn admit(
        &self,
        tenant: TenantId,
        request: GemmRequest,
        stream: Option<mpsc::Sender<StreamEvent>>,
    ) -> Result<Ticket, ServeError> {
        self.session
            .validate(&request)
            .map_err(|e| ServeError::Rejected(RejectReason::Invalid(e)))?;
        let limit = self.inner.slo.max_queue_depth;
        if limit > 0 {
            let mut depths = self.inner.depths.lock().expect("depth map lock");
            let depth = depths.entry(tenant).or_insert(0);
            if *depth >= limit {
                let depth = *depth;
                drop(depths);
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Rejected(RejectReason::QueueFull { tenant, depth, limit }));
            }
            *depth += 1;
        }
        let id: RequestId = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = mpsc::channel();
        let env = Envelope {
            id,
            tenant,
            request,
            submitted_at_ns: self.inner.now_ns(),
            reply: reply_tx,
            stream,
        };
        self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.cmd_tx
            .as_ref()
            .expect("server is running")
            .send(env)
            .expect("scheduler outlives the server handle");
        Ok(Ticket { id, reply: reply_rx })
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let c = &self.inner.counters;
        ServerStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            padded: c.padded.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            worker_lost: c.worker_lost.load(Ordering::Relaxed),
            respawned: c.respawned.load(Ordering::Relaxed),
            absorbed: c.absorbed.load(Ordering::Relaxed),
        }
    }

    /// Decision/fired tallies of the fault-injection plan (all zero
    /// when injection is off).
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.faults.stats()
    }

    /// Nanoseconds on the server's clock (the clock every
    /// [`ServeResponse`] timestamp uses; see [`ClockMode`]).
    pub fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    /// Advances the virtual clock by `delta_ns`.
    ///
    /// # Panics
    ///
    /// Panics under [`ClockMode::Wall`] — wall time cannot be scripted.
    pub fn advance_clock(&self, delta_ns: u64) {
        assert!(
            self.inner.clock.mode == ClockMode::Virtual,
            "advance_clock requires ClockMode::Virtual"
        );
        self.inner.clock.virtual_ns.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Stops admissions, drains every in-flight request, and joins all
    /// threads. Outstanding tickets resolve before this returns.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        // Closing the command channel makes the scheduler drain its
        // queue, flush the batcher, and close the job channel; workers
        // then finish their remaining jobs and exit. Respawned workers
        // register their handle before their predecessor exits, so the
        // drain loop below observes every worker ever spawned.
        drop(self.cmd_tx.take());
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        loop {
            let handle = self.workers.lock().expect("worker handle registry").pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn scheduler_loop(
    cmd_rx: mpsc::Receiver<Envelope>,
    job_tx: mpsc::Sender<BatchJob>,
    policy: BatchPolicy,
    inner: &Inner,
) {
    let mut queue = AdmissionQueue::new();
    let mut batcher = Batcher::new(policy);
    let mut open = true;
    // Set once dispatch fails (all workers gone — possible only during
    // teardown races); everything afterwards resolves WorkerLost
    // instead of being silently dropped.
    let mut workers_gone = false;
    // Consecutive flush passes skipped by `batcher_delay` fires. A
    // fault may *delay* a flush, never starve it: even at a 100% fire
    // rate the bound below forces a real flush pass, keeping the
    // liveness contract (every request resolves) fault-rate-independent.
    let mut delayed_passes = 0u32;
    const MAX_DELAYED_PASSES: u32 = 8;
    while open || !queue.is_empty() || batcher.pending() > 0 {
        if inner.faults.decide(FaultSite::QueueStall) {
            std::thread::sleep(QUEUE_STALL);
        }
        if open {
            // Sleep until the next bucket deadline or for new work. The
            // virtual clock never wakes a sleeper, so under it the
            // scheduler polls at a short wall cadence instead.
            let wait = match inner.clock.mode {
                ClockMode::Virtual => Some(VIRTUAL_POLL),
                ClockMode::Wall => batcher
                    .next_deadline_ns()
                    .map(|deadline| Duration::from_nanos(deadline.saturating_sub(inner.now_ns()))),
            };
            let first = match wait {
                Some(wait) => match cmd_rx.recv_timeout(wait) {
                    Ok(env) => Some(env),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        open = false;
                        None
                    }
                },
                None => match cmd_rx.recv() {
                    Ok(env) => Some(env),
                    Err(_) => {
                        open = false;
                        None
                    }
                },
            };
            if let Some(env) = first {
                queue.push(env);
            }
            // Batch up everything else that has already arrived.
            loop {
                match cmd_rx.try_recv() {
                    Ok(env) => queue.push(env),
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
        }
        let now_ns = inner.now_ns();
        let mut jobs = Vec::new();
        // Tenant-fair drain into the batcher; full buckets flush here.
        while let Some(env) = queue.pop() {
            jobs.extend(batcher.offer(env, now_ns));
            // Counted *after* the offer: once `absorbed` covers a
            // request, its bucket deadline is set and a virtual-clock
            // advance is guaranteed to reach it.
            inner.counters.absorbed.fetch_add(1, Ordering::Relaxed);
        }
        if open {
            if inner.faults.decide(FaultSite::BatcherDelay) && delayed_passes < MAX_DELAYED_PASSES {
                delayed_passes += 1;
            } else {
                delayed_passes = 0;
                jobs.extend(batcher.flush_due(now_ns));
            }
        } else {
            jobs.extend(batcher.flush_all());
        }
        for mut job in jobs {
            // Deadline shedding at the batcher: drop whatever is
            // already over budget before spending worker time on it.
            for env in job.take_expired(now_ns, inner.slo.latency_budget_ns) {
                let waited_ns = now_ns.saturating_sub(env.submitted_at_ns);
                let err = ServeError::Shed { waited_ns, budget_ns: inner.slo.latency_budget_ns };
                inner.fail(env, err, &inner.counters.shed);
            }
            if job.requests.is_empty() {
                continue;
            }
            if workers_gone {
                for env in job.requests {
                    inner.fail(env, ServeError::WorkerLost, &inner.counters.worker_lost);
                }
                continue;
            }
            match job_tx.send(job) {
                Ok(()) => {
                    inner.counters.batches.fetch_add(1, Ordering::Relaxed);
                }
                Err(mpsc::SendError(job)) => {
                    workers_gone = true;
                    for env in job.requests {
                        inner.fail(env, ServeError::WorkerLost, &inner.counters.worker_lost);
                    }
                }
            }
        }
    }
}

/// Everything a worker thread needs — including what it takes to
/// respawn itself after an isolated panic.
struct WorkerCtx {
    session: Session,
    job_rx: Arc<Mutex<mpsc::Receiver<BatchJob>>>,
    inner: Arc<Inner>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    index: usize,
    generation: u64,
}

fn spawn_worker(ctx: WorkerCtx) -> JoinHandle<()> {
    let name = if ctx.generation == 0 {
        format!("ta-serve-worker-{}", ctx.index)
    } else {
        format!("ta-serve-worker-{}g{}", ctx.index, ctx.generation)
    };
    std::thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(ctx))
        .expect("spawn worker thread")
}

fn worker_loop(ctx: WorkerCtx) {
    loop {
        // Holding the lock across recv() briefly serializes job pickup,
        // which is fine: execution dominates and handoff still rotates
        // through the pool.
        let job = {
            let rx = ctx.job_rx.lock().expect("job channel lock");
            rx.recv()
        };
        let Ok(mut job) = job else { break };
        let batch_size = job.requests.len();
        let mut panicked = false;
        for env in job.requests.drain(..) {
            // Each request is individually guarded, so one panic never
            // takes down its batchmates: the rest of the job completes
            // (bit-exactly) on this same thread before it retires.
            panicked |= run_one(&ctx, env, job.padded_m, batch_size);
        }
        if panicked {
            // This thread's unwind-poisoned frame retires; an
            // identical replacement takes over the pool slot. The
            // handle is registered before this thread exits, so
            // `Server::stop`'s drain-join cannot miss it.
            let next = WorkerCtx {
                session: ctx.session.clone(),
                job_rx: Arc::clone(&ctx.job_rx),
                inner: Arc::clone(&ctx.inner),
                handles: Arc::clone(&ctx.handles),
                index: ctx.index,
                generation: ctx.generation + 1,
            };
            let handle = spawn_worker(next);
            ctx.inner.counters.respawned.fetch_add(1, Ordering::Relaxed);
            ctx.handles.lock().expect("worker handle registry").push(handle);
            return;
        }
    }
}

/// Executes one envelope; returns whether execution panicked (real or
/// injected). The reply and stream senders live *outside* the unwind
/// guard, so a panic mid-execution still leaves this worker able to
/// actively resolve the ticket with [`ServeError::WorkerLost`].
fn run_one(ctx: &WorkerCtx, env: Envelope, padded_m: usize, batch_size: usize) -> bool {
    let inner = &ctx.inner;
    // Worker-side shedding: the budget can blow while a job sits in
    // the dispatch channel behind slow batches.
    let budget_ns = inner.slo.latency_budget_ns;
    let waited_ns = inner.now_ns().saturating_sub(env.submitted_at_ns);
    if budget_ns > 0 && waited_ns > budget_ns {
        inner.fail(env, ServeError::Shed { waited_ns, budget_ns }, &inner.counters.shed);
        return false;
    }
    let Envelope { id, tenant, request, submitted_at_ns, reply, stream } = env;
    let original_m = request.shape().m;
    let request = if request.is_execute() && original_m < padded_m {
        inner.counters.padded.fetch_add(1, Ordering::Relaxed);
        request.padded_to(padded_m)
    } else {
        request
    };
    let session = &ctx.session;
    let stream_tx = stream.clone();
    let faults = &inner.faults;
    let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        if faults.decide(FaultSite::WorkerPanic) {
            panic!("injected worker panic (site worker_panic)");
        }
        match stream_tx {
            Some(event_tx) => {
                // The blanket FnMut ResultSink impl adapts the channel;
                // a dropped receiver just discards chunks.
                let mut sink = |pattern: u16, values: &[i64]| {
                    let _ = event_tx
                        .send(StreamEvent::Chunk(StreamChunk { pattern, values: values.to_vec() }));
                };
                session.run_streaming(request, &mut sink)
            }
            None => session.run_serial(request),
        }
    }));
    match executed {
        Ok(result) => {
            let outcome = result
                .map(|mut response| {
                    if let Some(out) = response.output.take() {
                        response.output = Some(slice_cols(out, original_m));
                    }
                    inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                    ServeResponse {
                        id,
                        tenant,
                        response,
                        submitted_at_ns,
                        completed_at_ns: inner.now_ns(),
                        batch_size,
                    }
                })
                .map_err(|e| ServeError::Rejected(RejectReason::Invalid(e)));
            inner.release(tenant);
            if let Some(stream) = &stream {
                let done = outcome.as_ref().map(|_| ()).map_err(Clone::clone);
                let _ = stream.send(StreamEvent::Done(done));
            }
            let _ = reply.send(outcome); // an abandoned ticket is not an error
            false
        }
        Err(_panic) => {
            inner.counters.worker_lost.fetch_add(1, Ordering::Relaxed);
            inner.release(tenant);
            if let Some(stream) = &stream {
                let _ = stream.send(StreamEvent::Done(Err(ServeError::WorkerLost)));
            }
            let _ = reply.send(Err(ServeError::WorkerLost));
            true
        }
    }
}

/// Drops the zero-padded output columns added by bucket padding.
fn slice_cols(out: MatI32, m: usize) -> MatI32 {
    if out.cols() == m {
        return out;
    }
    MatI32::from_fn(out.rows(), m, |r, c| out.get(r, c))
}
