//! Deterministic open-loop load generation.
//!
//! Every trace is a pure function of its seed — inter-arrival gaps come
//! from a splitmix64 stream pushed through the inverse-CDF exponential
//! transform, never from wall-clock randomness — so tests and benches
//! replay byte-identical workloads on every run. Arrival *times* are
//! logical offsets; an open-loop driver sleeps until each offset and
//! submits, closing the loop only at measurement time.

use ta_core::{GemmRequest, GemmShape};
use ta_models::{seeded_span_matrix, splitmix64};

use crate::request::TenantId;

/// One scheduled request arrival in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Logical nanoseconds (from trace start) at which to submit.
    pub at_ns: u64,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// The GEMM shape to request.
    pub shape: GemmShape,
    /// Per-arrival seed for deterministic operand synthesis.
    pub seed: u64,
}

/// Draws a unit-interval uniform from a counter-mode splitmix64 stream.
fn uniform(seed: u64, counter: &mut u64) -> f64 {
    *counter += 1;
    let bits = splitmix64(seed.wrapping_add(*counter).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // 53 mantissa bits → uniform in [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Inverse-CDF exponential draw with the given mean.
fn exponential_ns(mean_ns: u64, seed: u64, counter: &mut u64) -> u64 {
    let u = uniform(seed, counter);
    (-(1.0 - u).ln() * mean_ns as f64) as u64
}

/// A Poisson process: exponential inter-arrival gaps with mean
/// `mean_gap_ns`, tenants drawn uniformly from `0..tenants`, shapes
/// cycling round-robin through `shapes`.
///
/// # Panics
///
/// Panics if `tenants` is zero or `shapes` is empty.
pub fn poisson_trace(
    seed: u64,
    count: usize,
    mean_gap_ns: u64,
    tenants: u32,
    shapes: &[GemmShape],
) -> Vec<Arrival> {
    assert!(tenants > 0, "need at least one tenant");
    assert!(!shapes.is_empty(), "need at least one shape");
    let mut counter = 0u64;
    let mut at_ns = 0u64;
    (0..count)
        .map(|i| {
            at_ns += exponential_ns(mean_gap_ns, seed, &mut counter);
            let tenant = (splitmix64(seed ^ (0xA5A5_0000 + i as u64)) % tenants as u64) as u32;
            Arrival { at_ns, tenant, shape: shapes[i % shapes.len()], seed: seed ^ (i as u64) }
        })
        .collect()
}

/// A bursty process: `burst_len` arrivals packed at `mean_gap_ns / 8`,
/// then an idle gap of `8 × mean_gap_ns`, repeating. Models the
/// feast-or-famine arrival pattern that stresses deadline-driven
/// batching (full buckets during bursts, timer flushes in the lulls).
///
/// # Panics
///
/// Panics if `burst_len` or `tenants` is zero or `shapes` is empty.
pub fn bursty_trace(
    seed: u64,
    count: usize,
    mean_gap_ns: u64,
    burst_len: usize,
    tenants: u32,
    shapes: &[GemmShape],
) -> Vec<Arrival> {
    assert!(burst_len > 0, "burst_len must be non-zero");
    assert!(tenants > 0, "need at least one tenant");
    assert!(!shapes.is_empty(), "need at least one shape");
    let mut counter = 0u64;
    let mut at_ns = 0u64;
    (0..count)
        .map(|i| {
            let mean = if i % burst_len == 0 && i > 0 {
                mean_gap_ns.saturating_mul(8) // inter-burst lull
            } else {
                (mean_gap_ns / 8).max(1) // inside a burst
            };
            at_ns += exponential_ns(mean, seed, &mut counter);
            let tenant = (splitmix64(seed ^ (0x5A5A_0000 + i as u64)) % tenants as u64) as u32;
            Arrival { at_ns, tenant, shape: shapes[i % shapes.len()], seed: seed ^ (i as u64) }
        })
        .collect()
}

/// An overload process: a Poisson base load (exponential gaps with
/// mean `mean_gap_ns`, uniformly drawn tenants) interrupted every
/// `storm_every` arrivals by a synchronized burst storm — `storm_len`
/// arrivals landing at the *same* instant, cycling through every
/// tenant in order so all tenants pile onto the server at once. This
/// is the adversarial shape SLO admission control and deadline
/// shedding exist for: storms blow per-tenant queue depths and
/// latency budgets while the base load keeps flowing.
///
/// # Panics
///
/// Panics if `storm_len >= storm_every`, `tenants` is zero, or
/// `shapes` is empty.
pub fn overload_trace(
    seed: u64,
    count: usize,
    mean_gap_ns: u64,
    storm_every: usize,
    storm_len: usize,
    tenants: u32,
    shapes: &[GemmShape],
) -> Vec<Arrival> {
    assert!(storm_len < storm_every, "storms must be shorter than their period");
    assert!(tenants > 0, "need at least one tenant");
    assert!(!shapes.is_empty(), "need at least one shape");
    let mut counter = 0u64;
    let mut at_ns = 0u64;
    (0..count)
        .map(|i| {
            let in_storm = i % storm_every < storm_len;
            let storm_start = i % storm_every == 0;
            // The storm's first arrival lands after a normal gap; the
            // rest of the storm lands at that same instant.
            if !in_storm || storm_start {
                at_ns += exponential_ns(mean_gap_ns, seed, &mut counter);
            }
            let tenant = if in_storm {
                // Synchronized: the storm sweeps tenants in order, so
                // every tenant takes burst pressure at once.
                ((i % storm_every) % tenants as usize) as u32
            } else {
                (splitmix64(seed ^ (0x0DE2_0000 + i as u64)) % tenants as u64) as u32
            };
            Arrival { at_ns, tenant, shape: shapes[i % shapes.len()], seed: seed ^ (i as u64) }
        })
        .collect()
}

/// Synthesizes the deterministic execute request for an arrival:
/// operands are seeded functions of `(arrival.seed, position)` within
/// the given bit-widths, so a trace maps to byte-identical GEMMs on
/// every replay.
pub fn request_for(arrival: &Arrival, weight_bits: u32, act_bits: u32) -> GemmRequest {
    let GemmShape { n, k, m } = arrival.shape;
    let weights = seeded_span_matrix(n, k, weight_bits, arrival.seed ^ 0x5E1F_17E5);
    let input = seeded_span_matrix(k, m, act_bits, arrival.seed ^ 0xAC71_AC71);
    GemmRequest::execute(weights, input)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPES: &[GemmShape] =
        &[GemmShape { n: 8, k: 16, m: 4 }, GemmShape { n: 8, k: 16, m: 6 }];

    #[test]
    fn traces_are_deterministic_in_the_seed() {
        let a = poisson_trace(42, 64, 1_000, 3, SHAPES);
        let b = poisson_trace(42, 64, 1_000, 3, SHAPES);
        assert_eq!(a, b, "same seed must replay identically");
        let c = poisson_trace(43, 64, 1_000, 3, SHAPES);
        assert_ne!(a, c, "different seeds must differ");
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns), "arrivals are ordered");
        assert!(a.iter().all(|arr| arr.tenant < 3));
    }

    #[test]
    fn poisson_gaps_track_the_requested_mean() {
        let trace = poisson_trace(7, 4096, 1_000, 1, SHAPES);
        let mean = trace.last().unwrap().at_ns as f64 / trace.len() as f64;
        assert!((mean - 1_000.0).abs() < 120.0, "empirical mean gap {mean} too far from 1000");
    }

    #[test]
    fn bursty_trace_alternates_dense_and_sparse_gaps() {
        let trace = bursty_trace(9, 64, 10_000, 8, 2, SHAPES);
        let gaps: Vec<u64> = trace.windows(2).map(|w| w[1].at_ns - w[0].at_ns).collect();
        // Gaps at burst boundaries (every 8th arrival) dwarf in-burst gaps.
        let boundary: Vec<u64> = gaps.iter().skip(7).step_by(8).copied().collect();
        let inside: Vec<u64> =
            gaps.iter().enumerate().filter(|(i, _)| (i + 1) % 8 != 0).map(|(_, g)| *g).collect();
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            mean(&boundary) > 4.0 * mean(&inside),
            "burst boundaries ({}) should dwarf in-burst gaps ({})",
            mean(&boundary),
            mean(&inside)
        );
    }

    #[test]
    fn overload_trace_storms_are_synchronized_and_cover_every_tenant() {
        let trace = overload_trace(21, 96, 10_000, 16, 6, 3, SHAPES);
        let again = overload_trace(21, 96, 10_000, 16, 6, 3, SHAPES);
        assert_eq!(trace, again, "same seed must replay identically");
        assert!(trace.windows(2).all(|w| w[0].at_ns <= w[1].at_ns), "arrivals are ordered");
        for storm in trace.chunks(16) {
            // The 6 storm arrivals land at one instant...
            let storm_ns: Vec<u64> = storm[..6].iter().map(|a| a.at_ns).collect();
            assert!(storm_ns.iter().all(|&t| t == storm_ns[0]), "storm not synchronized");
            // ...and sweep every tenant (storm_len 6 ≥ 3 tenants).
            let mut storm_tenants: Vec<u32> = storm[..6].iter().map(|a| a.tenant).collect();
            storm_tenants.sort_unstable();
            storm_tenants.dedup();
            assert_eq!(storm_tenants, vec![0, 1, 2], "storm must hit all tenants");
            // Base arrivals between storms keep Poisson-ish spacing.
            let base_gaps: Vec<u64> =
                storm[5..].windows(2).map(|w| w[1].at_ns - w[0].at_ns).collect();
            assert!(base_gaps.iter().any(|&g| g > 0), "base load must not be a storm");
        }
        let different = overload_trace(22, 96, 10_000, 16, 6, 3, SHAPES);
        assert_ne!(trace, different, "different seeds must differ");
    }

    #[test]
    fn request_synthesis_is_deterministic_and_in_range() {
        let arrival = Arrival { at_ns: 0, tenant: 0, shape: SHAPES[0], seed: 11 };
        let a = request_for(&arrival, 4, 8);
        let b = request_for(&arrival, 4, 8);
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.shape(), SHAPES[0]);
    }
}
