//! # ta-serve — multi-tenant continuous-batching serving frontend
//!
//! A std-only (threads + channels, no async runtime) serving layer over
//! the redesigned `ta-core` request API:
//!
//! * [`Server`] — admission queue → shape-bucketing batcher →
//!   continuous-batching worker pool, all behind
//!   [`Server::submit`] / [`Server::submit_streaming`];
//! * tenant fairness — per-tenant FIFOs drained round-robin, so a
//!   flooding tenant cannot starve a light one;
//! * [`BatchPolicy`] — bucket compatible shapes, flush on budget
//!   (`max_batch`) or deadline (`max_delay_ns`), optional width
//!   quantization (`quantum_m`) with exact zero-padding;
//! * [`SloPolicy`] — per-tenant admission control (reject over-depth
//!   tenants at submit with [`RejectReason::QueueFull`]) and deadline
//!   shedding (drop over-budget requests at the batcher with
//!   [`ServeError::Shed`] before any worker time is spent);
//! * fault isolation — worker panics are caught, the victim ticket
//!   resolves [`ServeError::WorkerLost`], the worker respawns, and
//!   every other lane stays bit-exact; [`Ticket::wait_timeout`]
//!   bounds any wait on the caller side;
//! * [`faultpoint`] — deterministic seeded fault injection at named
//!   sites (worker panic, queue stall, batcher delay), enabled via
//!   [`ServerConfig::faults`] or the `TA_FAULTS` environment variable,
//!   with no wall-clock randomness anywhere;
//! * [`loadgen`] — seeded Poisson, bursty, and overload open-loop
//!   traces (pure functions of the seed; no wall-clock randomness).
//!
//! The headline guarantee is inherited from the accelerator runtime:
//! **serving never changes a bit**. Each request executes serially
//! inside one worker, so its output matrix and `GemmReport` are
//! identical to a direct `Session::run_serial` call whatever the
//! worker count, batch size, or arrival order. The fault-tolerance
//! layer adds a liveness guarantee on top: every admitted request
//! resolves — to that bit-exact response or to a typed [`ServeError`]
//! — never a silent hang.
//!
//! ```
//! use ta_core::{GemmRequest, Session, TransArrayConfig};
//! use ta_quant::MatI32;
//! use ta_serve::{Server, ServerConfig};
//!
//! let cfg = TransArrayConfig::builder()
//!     .width(4)
//!     .max_transrows(16)
//!     .weight_bits(4)
//!     .m_tile(4)
//!     .sample_limit(0)
//!     .build()
//!     .unwrap();
//! let server = Server::start(Session::new(cfg).unwrap(), ServerConfig::default());
//! let w = MatI32::from_rows(&[&[3, -5, 7, 1], &[-8, 2, 0, 6]]);
//! let x = MatI32::from_rows(&[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
//! let ticket = server.submit(0, GemmRequest::execute(w, x)).unwrap();
//! let resp = ticket.wait().unwrap();
//! assert_eq!(resp.response.output.unwrap().get(0, 0), 3 - 15 + 35 + 7);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batcher;
pub mod faultpoint;
pub mod loadgen;
mod queue;
mod request;
mod server;

pub use batcher::BatchPolicy;
pub use faultpoint::{FaultConfig, FaultSite, FaultStats};
pub use request::{
    RejectReason, RequestId, ServeError, ServeResponse, StreamChunk, StreamEvent, StreamTicket,
    TenantId, Ticket,
};
pub use server::{ClockMode, Server, ServerConfig, ServerStats, SloPolicy};

#[cfg(test)]
mod tests {
    use super::*;
    use loadgen::{poisson_trace, request_for};
    use std::time::Duration;
    use ta_core::error::TaError;
    use ta_core::{GemmRequest, GemmShape, Session, TransArrayConfig};
    use ta_quant::{gemm_i32, MatI32};

    use faultpoint::quiet_injected_panics;

    fn small_session(threads: usize) -> Session {
        let cfg = TransArrayConfig::builder()
            .width(4)
            .max_transrows(16)
            .weight_bits(4)
            .units(2)
            .m_tile(4)
            .threads(threads)
            .sample_limit(0)
            .build()
            .unwrap();
        Session::new(cfg).unwrap()
    }

    fn server_with(threads: usize, policy: BatchPolicy) -> Server {
        Server::start(
            small_session(threads),
            ServerConfig { workers: threads, policy, ..Default::default() },
        )
    }

    /// A policy that parks requests in the batcher indefinitely (huge
    /// batch budget, effectively infinite delay) — used to hold
    /// requests in a known place while a test pokes at the server.
    fn parking_policy() -> BatchPolicy {
        BatchPolicy { max_batch: 1 << 20, max_delay_ns: u64::MAX / 4, quantum_m: 1 }
    }

    const SHAPES: &[GemmShape] = &[
        GemmShape { n: 8, k: 16, m: 3 },
        GemmShape { n: 8, k: 16, m: 4 },
        GemmShape { n: 12, k: 16, m: 5 },
    ];

    fn small_request() -> GemmRequest {
        let w = MatI32::from_fn(8, 16, |r, c| ((r * 5 + c * 3) % 15) as i32 - 7);
        let x = MatI32::from_fn(16, 4, |r, c| ((r * 7 + c) % 255) as i32 - 127);
        GemmRequest::execute(w, x)
    }

    #[test]
    fn served_responses_match_direct_execution_bit_for_bit() {
        let direct = small_session(1);
        let trace = poisson_trace(17, 24, 100, 3, SHAPES);
        let server = server_with(2, BatchPolicy::default());
        let tickets: Vec<_> =
            trace.iter().map(|a| server.submit(a.tenant, request_for(a, 4, 8)).unwrap()).collect();
        for (ticket, arrival) in tickets.into_iter().zip(&trace) {
            let served = ticket.wait().unwrap();
            let want = direct.run_serial(request_for(arrival, 4, 8)).unwrap();
            assert_eq!(served.response, want, "arrival {arrival:?}");
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.padded, 0, "quantum 1 never pads");
        assert_eq!(stats.absorbed, 24, "every admitted request is absorbed");
        assert_eq!(stats.rejected + stats.shed + stats.worker_lost + stats.respawned, 0);
    }

    #[test]
    fn padded_buckets_still_return_exact_outputs() {
        let policy = BatchPolicy { max_batch: 4, max_delay_ns: 0, quantum_m: 4 };
        let server = server_with(2, policy);
        let trace = poisson_trace(23, 16, 50, 2, SHAPES);
        let tickets: Vec<_> =
            trace.iter().map(|a| server.submit(a.tenant, request_for(a, 4, 8)).unwrap()).collect();
        let direct = small_session(1);
        for (ticket, arrival) in tickets.into_iter().zip(&trace) {
            let served = ticket.wait().unwrap();
            let shape = request_for(arrival, 4, 8).shape();
            let out = served.response.output.expect("execute requests carry output");
            assert_eq!(out.cols(), shape.m, "padding must be sliced back off");
            let want = direct.run_serial(request_for(arrival, 4, 8)).unwrap();
            assert_eq!(out, want.output.unwrap(), "padded serving changed bits for {arrival:?}");
        }
        let stats = server.shutdown();
        assert!(stats.padded > 0, "m=3 and m=5 shapes must have been padded");
    }

    #[test]
    fn streaming_tickets_deliver_chunks_then_a_terminal_done() {
        let server = server_with(1, BatchPolicy::default());
        let w = MatI32::from_fn(8, 16, |r, c| ((r * 5 + c * 3) % 15) as i32 - 7);
        let x = MatI32::from_fn(16, 4, |r, c| ((r * 7 + c) % 255) as i32 - 127);
        let st = server.submit_streaming(1, GemmRequest::execute(w.clone(), x.clone())).unwrap();
        let resp = st.ticket.wait().unwrap();
        assert_eq!(resp.response.output.as_ref().unwrap(), &gemm_i32(&w, &x));
        let events: Vec<_> = st.events.try_iter().collect();
        assert!(events.len() > 1, "streaming must emit per-pattern chunks");
        for event in &events[..events.len() - 1] {
            match event {
                StreamEvent::Chunk(c) => assert_eq!(c.values.len(), 4),
                other => panic!("non-terminal event {other:?}"),
            }
        }
        assert_eq!(
            events.last(),
            Some(&StreamEvent::Done(Ok(()))),
            "streams end with exactly one terminal Done"
        );
        server.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_at_admission() {
        let server = server_with(1, BatchPolicy::default());
        let err = server
            .submit(0, GemmRequest::execute(MatI32::zeros(4, 5), MatI32::zeros(6, 2)))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Rejected(RejectReason::Invalid(TaError::ShapeMismatch { .. }))
        ));
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 0, "rejected requests are never admitted");
        assert_eq!(stats.rejected, 0, "validation failures are not SLO rejections");
    }

    #[test]
    fn shutdown_drains_all_in_flight_requests() {
        // The parking policy holds requests in the batcher; shutdown
        // must still flush and answer every ticket.
        let server = server_with(2, parking_policy());
        let trace = poisson_trace(31, 12, 10, 4, SHAPES);
        let tickets: Vec<_> =
            trace.iter().map(|a| server.submit(a.tenant, request_for(a, 4, 8)).unwrap()).collect();
        let stats = server.shutdown();
        assert_eq!(stats.completed, 12);
        for ticket in tickets {
            ticket.wait().expect("shutdown resolves every outstanding ticket");
        }
    }

    #[test]
    fn shutdown_resolves_in_flight_streams_with_a_terminal_event() {
        // Regression (mid-stream shutdown): streaming tickets parked at
        // shutdown used to lose their sender without a terminal event.
        let server = server_with(1, parking_policy());
        let st = server.submit_streaming(3, small_request()).unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1, "shutdown drains the parked stream request");
        let events: Vec<_> = st.events.try_iter().collect();
        assert!(
            matches!(events.last(), Some(StreamEvent::Done(Ok(())))),
            "mid-stream shutdown must end the stream with a terminal Done, got {events:?}"
        );
        st.ticket.wait().expect("the parked streaming request still resolves");
    }

    #[test]
    fn simulate_requests_are_served_too() {
        let server = server_with(1, BatchPolicy::default());
        let shape = GemmShape::new(16, 16, 8);
        let src = ta_models::UniformBitSource::new(4, 4, 5);
        let ticket = server.submit(2, GemmRequest::simulate(shape, src)).unwrap();
        let resp = ticket.wait().unwrap();
        assert!(resp.response.output.is_none());
        assert!(resp.response.report.cycles > 0);
        server.shutdown();
    }

    #[test]
    fn over_depth_tenants_are_rejected_and_depth_releases_on_completion() {
        let config = ServerConfig {
            workers: 1,
            policy: parking_policy(),
            slo: SloPolicy { max_queue_depth: 2, latency_budget_ns: 0 },
            ..Default::default()
        };
        let server = Server::start(small_session(1), config);
        let t0 = server.submit(5, small_request()).unwrap();
        let t1 = server.submit(5, small_request()).unwrap();
        // Third submit for the same tenant: over depth, typed reject.
        match server.submit(5, small_request()) {
            Err(ServeError::Rejected(RejectReason::QueueFull { tenant, depth, limit })) => {
                assert_eq!((tenant, depth, limit), (5, 2, 2));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Other tenants are unaffected by tenant 5's full lane.
        let t2 = server.submit(6, small_request()).unwrap();
        assert_eq!(server.stats().rejected, 1);
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        for t in [t0, t1, t2] {
            t.wait().expect("admitted requests all complete");
        }

        // Depth releases at resolution: with a flush-immediately
        // policy, sequential submits never see a stale full lane.
        let config = ServerConfig {
            workers: 1,
            slo: SloPolicy { max_queue_depth: 1, latency_budget_ns: 0 },
            ..Default::default()
        };
        let server = Server::start(small_session(1), config);
        for _ in 0..4 {
            let ticket = server.submit(9, small_request()).unwrap();
            ticket.wait().expect("depth released by the previous completion");
        }
        let stats = server.shutdown();
        assert_eq!(stats.rejected, 0, "sequential load never trips a depth-1 limit");
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn blown_latency_budgets_shed_at_the_batcher_on_the_virtual_clock() {
        let config = ServerConfig {
            workers: 2,
            policy: BatchPolicy { max_batch: 1 << 20, max_delay_ns: 500, quantum_m: 1 },
            slo: SloPolicy { max_queue_depth: 0, latency_budget_ns: 1_000 },
            clock: ClockMode::Virtual,
            ..Default::default()
        };
        let server = Server::start(small_session(1), config);
        assert_eq!(server.now_ns(), 0, "virtual clock starts frozen at zero");
        let t0 = server.submit(0, small_request()).unwrap();
        let st = server.submit_streaming(1, small_request()).unwrap();
        while server.stats().absorbed < 2 {
            std::thread::yield_now();
        }
        // Clock jumps past everyone's budget: the batcher flush sheds
        // both requests without spending any worker time.
        server.advance_clock(2_000);
        let expect_shed = |r: Result<ServeResponse, ServeError>| match r {
            Err(ServeError::Shed { waited_ns, budget_ns }) => {
                assert_eq!((waited_ns, budget_ns), (2_000, 1_000));
            }
            other => panic!("expected Shed, got {other:?}"),
        };
        expect_shed(t0.wait());
        expect_shed(st.ticket.wait());
        let events: Vec<_> = st.events.iter().collect();
        assert_eq!(
            events,
            vec![StreamEvent::Done(Err(ServeError::Shed { waited_ns: 2_000, budget_ns: 1_000 }))],
            "shed streams get their terminal Done"
        );
        let stats = server.shutdown();
        assert_eq!(stats.shed, 2);
        assert_eq!(stats.completed, 0, "no worker time was spent on blown deadlines");
    }

    #[test]
    fn injected_worker_panics_resolve_worker_lost_and_respawn() {
        quiet_injected_panics();
        // Panic on every 1st-of-4 decisions: deterministic mixture of
        // lost and served requests through one worker.
        let faults = FaultConfig::new(0xFA_17, 250_000).with_site(FaultSite::WorkerPanic);
        let config = ServerConfig { workers: 1, faults: Some(faults), ..Default::default() };
        let server = Server::start(small_session(1), config);
        let direct = small_session(1);
        let want = direct.run_serial(small_request()).unwrap();
        let mut lost = 0u64;
        let mut completed = 0u64;
        for _ in 0..24 {
            let ticket = server.submit(0, small_request()).unwrap();
            match ticket.wait() {
                Ok(resp) => {
                    completed += 1;
                    assert_eq!(resp.response, want, "surviving lanes stay bit-exact");
                }
                Err(ServeError::WorkerLost) => lost += 1,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        let fired = server.fault_stats().fired(FaultSite::WorkerPanic);
        assert_eq!(fired, lost, "every fired worker-panic fault is a WorkerLost ticket");
        assert!(lost > 0 && completed > 0, "25% rate over 24 must mix (lost={lost})");
        let stats = server.shutdown();
        assert_eq!(stats.worker_lost, lost);
        assert_eq!(stats.completed, completed);
        assert!(stats.respawned >= 1, "a panicked worker must respawn");
        assert!(stats.respawned <= stats.worker_lost);
    }

    #[test]
    fn injected_panic_on_a_stream_sends_terminal_done_worker_lost() {
        quiet_injected_panics();
        let faults = FaultConfig::new(1, 1_000_000).with_site(FaultSite::WorkerPanic);
        let config = ServerConfig { workers: 1, faults: Some(faults), ..Default::default() };
        let server = Server::start(small_session(1), config);
        let st = server.submit_streaming(2, small_request()).unwrap();
        assert_eq!(st.ticket.wait(), Err(ServeError::WorkerLost));
        let events: Vec<_> = st.events.iter().collect();
        assert_eq!(events, vec![StreamEvent::Done(Err(ServeError::WorkerLost))]);
        let stats = server.shutdown();
        assert_eq!((stats.worker_lost, stats.completed), (1, 0));
        assert_eq!(stats.respawned, 1);
    }

    #[test]
    fn wait_timeout_bounds_a_parked_request_without_losing_it() {
        let server = server_with(1, parking_policy());
        let mut ticket = server.submit(0, small_request()).unwrap();
        match ticket.wait_timeout(Duration::from_millis(20)) {
            Err(ServeError::Timeout { waited_ns }) => assert!(waited_ns >= 20_000_000),
            other => panic!("expected Timeout for a parked request, got {other:?}"),
        }
        // The request is still live; shutdown flushes and resolves it,
        // and the same ticket delivers the response.
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
        ticket.wait_timeout(Duration::from_secs(30)).expect("parked request resolves");
    }

    #[test]
    fn scheduler_fault_sites_delay_but_never_drop_requests() {
        quiet_injected_panics();
        // 100% queue-stall + batcher-delay rates: every scheduler
        // iteration stalls and skips a flush pass, yet liveness and
        // bit-exactness must hold (flushes ride on later iterations —
        // shutdown's flush_all is unconditional).
        let faults = FaultConfig::new(3, 1_000_000)
            .with_site(FaultSite::QueueStall)
            .with_site(FaultSite::BatcherDelay);
        let config = ServerConfig {
            workers: 2,
            policy: BatchPolicy { max_batch: 4, max_delay_ns: 1_000, quantum_m: 1 },
            faults: Some(faults),
            ..Default::default()
        };
        let server = Server::start(small_session(1), config);
        let direct = small_session(1);
        let want = direct.run_serial(small_request()).unwrap();
        let tickets: Vec<_> =
            (0..8).map(|i| server.submit(i % 3, small_request()).unwrap()).collect();
        for mut ticket in tickets {
            let resp = ticket
                .wait_timeout(Duration::from_secs(60))
                .expect("stalled scheduler still serves");
            assert_eq!(resp.response, want);
        }
        let fault_stats = server.fault_stats();
        assert!(fault_stats.fired(FaultSite::QueueStall) > 0);
        assert!(fault_stats.fired(FaultSite::BatcherDelay) > 0);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 8);
    }
}
