//! # ta-serve — multi-tenant continuous-batching serving frontend
//!
//! A std-only (threads + channels, no async runtime) serving layer over
//! the redesigned `ta-core` request API:
//!
//! * [`Server`] — admission queue → shape-bucketing batcher →
//!   continuous-batching worker pool, all behind
//!   [`Server::submit`] / [`Server::submit_streaming`];
//! * tenant fairness — per-tenant FIFOs drained round-robin, so a
//!   flooding tenant cannot starve a light one;
//! * [`BatchPolicy`] — bucket compatible shapes, flush on budget
//!   (`max_batch`) or deadline (`max_delay_ns`), optional width
//!   quantization (`quantum_m`) with exact zero-padding;
//! * [`loadgen`] — seeded Poisson and bursty open-loop traces (pure
//!   functions of the seed; no wall-clock randomness).
//!
//! The headline guarantee is inherited from the accelerator runtime:
//! **serving never changes a bit**. Each request executes serially
//! inside one worker, so its output matrix and `GemmReport` are
//! identical to a direct `Session::run_serial` call whatever the
//! worker count, batch size, or arrival order.
//!
//! ```
//! use ta_core::{GemmRequest, Session, TransArrayConfig};
//! use ta_quant::MatI32;
//! use ta_serve::{Server, ServerConfig};
//!
//! let cfg = TransArrayConfig::builder()
//!     .width(4)
//!     .max_transrows(16)
//!     .weight_bits(4)
//!     .m_tile(4)
//!     .sample_limit(0)
//!     .build()
//!     .unwrap();
//! let server = Server::start(Session::new(cfg).unwrap(), ServerConfig::default());
//! let w = MatI32::from_rows(&[&[3, -5, 7, 1], &[-8, 2, 0, 6]]);
//! let x = MatI32::from_rows(&[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
//! let ticket = server.submit(0, GemmRequest::execute(w, x)).unwrap();
//! let resp = ticket.wait().unwrap();
//! assert_eq!(resp.response.output.unwrap().get(0, 0), 3 - 15 + 35 + 7);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batcher;
pub mod loadgen;
mod queue;
mod request;
mod server;

pub use batcher::BatchPolicy;
pub use request::{
    RequestId, ServeError, ServeResponse, StreamChunk, StreamTicket, TenantId, Ticket,
};
pub use server::{Server, ServerConfig, ServerStats};

#[cfg(test)]
mod tests {
    use super::*;
    use loadgen::{poisson_trace, request_for};
    use ta_core::error::TaError;
    use ta_core::{GemmRequest, GemmShape, Session, TransArrayConfig};
    use ta_quant::{gemm_i32, MatI32};

    fn small_session(threads: usize) -> Session {
        let cfg = TransArrayConfig::builder()
            .width(4)
            .max_transrows(16)
            .weight_bits(4)
            .units(2)
            .m_tile(4)
            .threads(threads)
            .sample_limit(0)
            .build()
            .unwrap();
        Session::new(cfg).unwrap()
    }

    fn server_with(threads: usize, policy: BatchPolicy) -> Server {
        Server::start(small_session(threads), ServerConfig { workers: threads, policy })
    }

    const SHAPES: &[GemmShape] = &[
        GemmShape { n: 8, k: 16, m: 3 },
        GemmShape { n: 8, k: 16, m: 4 },
        GemmShape { n: 12, k: 16, m: 5 },
    ];

    #[test]
    fn served_responses_match_direct_execution_bit_for_bit() {
        let direct = small_session(1);
        let trace = poisson_trace(17, 24, 100, 3, SHAPES);
        let server = server_with(2, BatchPolicy::default());
        let tickets: Vec<_> =
            trace.iter().map(|a| server.submit(a.tenant, request_for(a, 4, 8)).unwrap()).collect();
        for (ticket, arrival) in tickets.into_iter().zip(&trace) {
            let served = ticket.wait().unwrap();
            let want = direct.run_serial(request_for(arrival, 4, 8)).unwrap();
            assert_eq!(served.response, want, "arrival {arrival:?}");
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.padded, 0, "quantum 1 never pads");
    }

    #[test]
    fn padded_buckets_still_return_exact_outputs() {
        let policy = BatchPolicy { max_batch: 4, max_delay_ns: 0, quantum_m: 4 };
        let server = server_with(2, policy);
        let trace = poisson_trace(23, 16, 50, 2, SHAPES);
        let tickets: Vec<_> =
            trace.iter().map(|a| server.submit(a.tenant, request_for(a, 4, 8)).unwrap()).collect();
        let direct = small_session(1);
        for (ticket, arrival) in tickets.into_iter().zip(&trace) {
            let served = ticket.wait().unwrap();
            let shape = request_for(arrival, 4, 8).shape();
            let out = served.response.output.expect("execute requests carry output");
            assert_eq!(out.cols(), shape.m, "padding must be sliced back off");
            let want = direct.run_serial(request_for(arrival, 4, 8)).unwrap();
            assert_eq!(out, want.output.unwrap(), "padded serving changed bits for {arrival:?}");
        }
        let stats = server.shutdown();
        assert!(stats.padded > 0, "m=3 and m=5 shapes must have been padded");
    }

    #[test]
    fn streaming_tickets_deliver_chunks_and_identical_response() {
        let server = server_with(1, BatchPolicy::default());
        let w = MatI32::from_fn(8, 16, |r, c| ((r * 5 + c * 3) % 15) as i32 - 7);
        let x = MatI32::from_fn(16, 4, |r, c| ((r * 7 + c) % 255) as i32 - 127);
        let st = server.submit_streaming(1, GemmRequest::execute(w.clone(), x.clone())).unwrap();
        let resp = st.ticket.wait().unwrap();
        assert_eq!(resp.response.output.as_ref().unwrap(), &gemm_i32(&w, &x));
        let chunks: Vec<_> = st.chunks.try_iter().collect();
        assert!(!chunks.is_empty(), "streaming must emit per-pattern chunks");
        assert!(chunks.iter().all(|c| c.values.len() == 4));
        server.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_at_admission() {
        let server = server_with(1, BatchPolicy::default());
        let err = server
            .submit(0, GemmRequest::execute(MatI32::zeros(4, 5), MatI32::zeros(6, 2)))
            .unwrap_err();
        assert!(matches!(err, TaError::ShapeMismatch { .. }));
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 0, "rejected requests are never admitted");
    }

    #[test]
    fn shutdown_drains_all_in_flight_requests() {
        // A large max_delay with a huge max_batch parks requests in the
        // batcher; shutdown must still flush and answer every ticket.
        let policy = BatchPolicy { max_batch: 1024, max_delay_ns: u64::MAX / 4, quantum_m: 1 };
        let server = server_with(2, policy);
        let trace = poisson_trace(31, 12, 10, 4, SHAPES);
        let tickets: Vec<_> =
            trace.iter().map(|a| server.submit(a.tenant, request_for(a, 4, 8)).unwrap()).collect();
        let stats = server.shutdown();
        assert_eq!(stats.completed, 12);
        for ticket in tickets {
            ticket.wait().expect("shutdown resolves every outstanding ticket");
        }
    }

    #[test]
    fn simulate_requests_are_served_too() {
        let server = server_with(1, BatchPolicy::default());
        let shape = GemmShape::new(16, 16, 8);
        let src = ta_models::UniformBitSource::new(4, 4, 5);
        let ticket = server.submit(2, GemmRequest::simulate(shape, src)).unwrap();
        let resp = ticket.wait().unwrap();
        assert!(resp.response.output.is_none());
        assert!(resp.response.report.cycles > 0);
        server.shutdown();
    }
}
