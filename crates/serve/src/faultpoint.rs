//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultConfig`] names a seed, a firing rate, and a set of
//! [`FaultSite`]s. Each site draws its fire/skip decisions from a
//! counter-mode splitmix64 stream — decision `n` at a site fires iff
//! `splitmix64(seed ^ site_salt ^ n) % 1_000_000 < rate_ppm` — so a
//! given `(seed, rate, site)` triple produces the same decision
//! *sequence* on every run, with no wall-clock randomness anywhere.
//! Which thread consumes decision `n` can still race (that is the
//! point of chaos testing), but sites whose decisions are consumed in
//! a deterministic order (one decision per executed request, say)
//! yield fully deterministic fault counts.
//!
//! Injection is enabled either programmatically
//! (`ServerConfig::faults`) or from the environment: `TA_FAULTS`
//! holds a spec like `seed=42,rate_ppm=250000,sites=worker_panic`
//! (see [`FaultConfig::parse`]). The server never reads the
//! environment when `ServerConfig::faults` is set.

use std::sync::atomic::{AtomicU64, Ordering};

use ta_models::splitmix64;

/// Decisions per million that fire at `rate_ppm = 1_000_000`.
const PPM_SCALE: u64 = 1_000_000;

/// A named point in the serving stack where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Panic inside a worker just before it executes a request. The
    /// server must isolate the panic (`catch_unwind`), resolve the
    /// victim ticket with `ServeError::WorkerLost`, and respawn the
    /// worker. One decision is consumed per executed request.
    WorkerPanic,
    /// Stall the scheduler loop briefly before it drains the admission
    /// queue, simulating a descheduled or overloaded scheduler thread.
    /// One decision is consumed per scheduler iteration.
    QueueStall,
    /// Skip one deadline-flush pass in the batcher, delaying partial
    /// buckets past their `max_delay_ns`. One decision is consumed per
    /// scheduler iteration. The scheduler bounds consecutive skipped
    /// passes, so this site delays flushes but can never starve them —
    /// liveness holds even at a 100% fire rate.
    BatcherDelay,
}

impl FaultSite {
    /// Every site, in bit-mask order.
    pub const ALL: [FaultSite; 3] =
        [FaultSite::WorkerPanic, FaultSite::QueueStall, FaultSite::BatcherDelay];

    /// Stable name used by the `TA_FAULTS` spec and log lines.
    pub fn name(self) -> &'static str {
        match self {
            Self::WorkerPanic => "worker_panic",
            Self::QueueStall => "queue_stall",
            Self::BatcherDelay => "batcher_delay",
        }
    }

    /// This site's bit in [`FaultConfig`]'s site mask.
    pub fn mask(self) -> u8 {
        1 << self.index()
    }

    fn index(self) -> usize {
        match self {
            Self::WorkerPanic => 0,
            Self::QueueStall => 1,
            Self::BatcherDelay => 2,
        }
    }

    /// Per-site salt decorrelating the decision streams of different
    /// sites under one seed.
    fn salt(self) -> u64 {
        match self {
            Self::WorkerPanic => 0x57_4F_52_4B_50_41_4E_43,
            Self::QueueStall => 0x51_55_45_55_45_53_54_4C,
            Self::BatcherDelay => 0x42_41_54_43_48_44_4C_59,
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Seeded fault-injection policy (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of every site's decision stream.
    pub seed: u64,
    /// Firing probability in parts per million (`1_000_000` = every
    /// decision fires). Clamped to the PPM scale by [`Self::parse`];
    /// programmatic values above it simply always fire.
    pub rate_ppm: u32,
    /// Bit mask of enabled sites ([`FaultSite::mask`]).
    sites: u8,
}

impl FaultConfig {
    /// A config with the given seed and rate and *no* enabled sites;
    /// chain [`Self::with_site`] / [`Self::all_sites`] to arm it.
    pub fn new(seed: u64, rate_ppm: u32) -> Self {
        Self { seed, rate_ppm, sites: 0 }
    }

    /// Enables one site.
    pub fn with_site(mut self, site: FaultSite) -> Self {
        self.sites |= site.mask();
        self
    }

    /// Enables every site.
    pub fn all_sites(mut self) -> Self {
        for site in FaultSite::ALL {
            self.sites |= site.mask();
        }
        self
    }

    /// Whether decisions at `site` can ever fire under this config.
    pub fn site_enabled(&self, site: FaultSite) -> bool {
        self.sites & site.mask() != 0
    }

    /// Parses a `TA_FAULTS`-style spec: comma-separated `key=value`
    /// pairs with keys `seed` (u64, default 0), `rate_ppm` (u32,
    /// ≤ 1_000_000, default 1_000_000), and `sites` (`+`-separated
    /// site names or `all`, default `all`). Example:
    /// `seed=42,rate_ppm=250000,sites=worker_panic+queue_stall`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed token.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut config = Self::new(0, PPM_SCALE as u32).all_sites();
        if spec.trim().is_empty() {
            return Err("empty fault spec (unset TA_FAULTS to disable injection)".into());
        }
        for token in spec.split(',') {
            let token = token.trim();
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("fault spec token {token:?} is not key=value"))?;
            match key.trim() {
                "seed" => {
                    config.seed = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("fault spec seed {value:?}: {e}"))?;
                }
                "rate_ppm" => {
                    let rate: u32 = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("fault spec rate_ppm {value:?}: {e}"))?;
                    if rate as u64 > PPM_SCALE {
                        return Err(format!("fault spec rate_ppm {rate} exceeds {PPM_SCALE}"));
                    }
                    config.rate_ppm = rate;
                }
                "sites" => {
                    config.sites = 0;
                    for name in value.split('+') {
                        let name = name.trim();
                        if name == "all" {
                            config = config.all_sites();
                        } else {
                            let site = FaultSite::from_name(name).ok_or_else(|| {
                                format!(
                                    "fault spec names unknown site {name:?} \
                                     (known: worker_panic, queue_stall, batcher_delay, all)"
                                )
                            })?;
                            config = config.with_site(site);
                        }
                    }
                }
                other => return Err(format!("fault spec has unknown key {other:?}")),
            }
        }
        Ok(config)
    }

    /// Reads the `TA_FAULTS` environment variable; `None` when unset.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec — a silently ignored fault spec
    /// would make a chaos run vacuously green.
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("TA_FAULTS").ok()?;
        Some(Self::parse(&spec).expect("malformed TA_FAULTS spec"))
    }
}

/// Installs a process-wide panic-hook filter that silences the spew of
/// *injected* worker panics (their payloads name the fault site) while
/// forwarding every other panic to the previously installed hook.
/// Idempotent; call it from chaos tests and bench drivers so seeded
/// fault storms don't flood logs with expected backtraces.
pub fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("injected worker panic"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Decision/fired tallies per site, snapshotted by
/// [`crate::Server::fault_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    decisions: [u64; 3],
    fired: [u64; 3],
}

impl FaultStats {
    /// Decisions drawn at `site` (fired or not). Disabled sites draw
    /// none.
    pub fn decisions(&self, site: FaultSite) -> u64 {
        self.decisions[site.index()]
    }

    /// Faults actually injected at `site`.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site.index()]
    }

    /// Faults injected across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
}

#[derive(Default)]
struct SiteState {
    decisions: AtomicU64,
    fired: AtomicU64,
}

/// The live decision streams of one server. Decisions mutate shared
/// per-site counters, so every consumer sees one global sequence per
/// site regardless of which thread asks.
pub(crate) struct FaultPlan {
    config: Option<FaultConfig>,
    states: [SiteState; 3],
}

impl FaultPlan {
    pub(crate) fn new(config: Option<FaultConfig>) -> Self {
        Self { config, states: Default::default() }
    }

    /// Draws the next decision at `site`. Disabled (or unconfigured)
    /// sites return `false` without consuming a decision index, so
    /// enabling one site never perturbs another's stream.
    pub(crate) fn decide(&self, site: FaultSite) -> bool {
        let Some(config) = &self.config else { return false };
        if !config.site_enabled(site) {
            return false;
        }
        let state = &self.states[site.index()];
        let n = state.decisions.fetch_add(1, Ordering::Relaxed);
        let fire = splitmix64(config.seed ^ site.salt() ^ n) % PPM_SCALE < config.rate_ppm as u64;
        if fire {
            state.fired.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    pub(crate) fn stats(&self) -> FaultStats {
        let mut stats = FaultStats::default();
        for (i, state) in self.states.iter().enumerate() {
            stats.decisions[i] = state.decisions.load(Ordering::Relaxed);
            stats.fired[i] = state.fired.load(Ordering::Relaxed);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_sequences_replay_identically_for_a_seed() {
        let config = FaultConfig::new(42, 250_000).all_sites();
        let a = FaultPlan::new(Some(config));
        let b = FaultPlan::new(Some(config));
        for site in FaultSite::ALL {
            let sa: Vec<bool> = (0..256).map(|_| a.decide(site)).collect();
            let sb: Vec<bool> = (0..256).map(|_| b.decide(site)).collect();
            assert_eq!(sa, sb, "site {} must replay", site.name());
            assert!(sa.iter().any(|&f| f), "rate 25% over 256 draws should fire");
            assert!(!sa.iter().all(|&f| f), "rate 25% over 256 draws should also skip");
        }
        // Different seeds produce different streams.
        let c = FaultPlan::new(Some(FaultConfig::new(43, 250_000).all_sites()));
        let sc: Vec<bool> = (0..256).map(|_| c.decide(FaultSite::WorkerPanic)).collect();
        let sa: Vec<bool> = (0..256).map(|_| a.decide(FaultSite::WorkerPanic)).collect();
        // (`a` already consumed 256 worker-panic decisions above, so
        // compare stream shapes, not positions: both must be mixed.)
        assert!(sc.iter().any(|&f| f) && sa.iter().any(|&f| !f));
    }

    #[test]
    fn rate_extremes_always_or_never_fire() {
        let never = FaultPlan::new(Some(FaultConfig::new(7, 0).all_sites()));
        let always = FaultPlan::new(Some(FaultConfig::new(7, 1_000_000).all_sites()));
        for _ in 0..64 {
            assert!(!never.decide(FaultSite::WorkerPanic));
            assert!(always.decide(FaultSite::WorkerPanic));
        }
        assert_eq!(never.stats().total_fired(), 0);
        assert_eq!(always.stats().fired(FaultSite::WorkerPanic), 64);
        assert_eq!(always.stats().decisions(FaultSite::WorkerPanic), 64);
    }

    #[test]
    fn disabled_sites_never_fire_and_consume_no_decisions() {
        let plan =
            FaultPlan::new(Some(FaultConfig::new(7, 1_000_000).with_site(FaultSite::WorkerPanic)));
        for _ in 0..16 {
            assert!(!plan.decide(FaultSite::QueueStall));
            assert!(plan.decide(FaultSite::WorkerPanic));
        }
        assert_eq!(plan.stats().decisions(FaultSite::QueueStall), 0);
        assert_eq!(plan.stats().decisions(FaultSite::WorkerPanic), 16);
        // An unconfigured plan is inert everywhere.
        let off = FaultPlan::new(None);
        assert!(FaultSite::ALL.into_iter().all(|s| !off.decide(s)));
        assert_eq!(off.stats().total_fired(), 0);
    }

    #[test]
    fn spec_parsing_round_trips_and_rejects_garbage() {
        let c =
            FaultConfig::parse("seed=42,rate_ppm=250000,sites=worker_panic+batcher_delay").unwrap();
        assert_eq!(c.seed, 42);
        assert_eq!(c.rate_ppm, 250_000);
        assert!(c.site_enabled(FaultSite::WorkerPanic));
        assert!(!c.site_enabled(FaultSite::QueueStall));
        assert!(c.site_enabled(FaultSite::BatcherDelay));

        let defaults = FaultConfig::parse("seed=9").unwrap();
        assert_eq!(defaults.rate_ppm, 1_000_000, "rate defaults to always-fire");
        assert!(FaultSite::ALL.into_iter().all(|s| defaults.site_enabled(s)));
        assert_eq!(FaultConfig::parse("sites=all").unwrap().seed, 0);

        for bad in ["", "seed", "seed=x", "rate_ppm=2000000", "sites=meteor_strike", "volume=11"] {
            assert!(FaultConfig::parse(bad).is_err(), "spec {bad:?} must be rejected");
        }
    }
}
