//! Request and response envelopes for the serving frontend.

use std::sync::mpsc;

use ta_core::error::TaError;
use ta_core::{GemmRequest, GemmResponse};

/// Monotonically increasing identifier assigned at admission.
pub type RequestId = u64;

/// Tenant identifier. Tenants share the accelerator but are scheduled
/// fairly against each other by the admission queue.
pub type TenantId = u32;

/// One streamed per-pattern result chunk from an execute request: the
/// TransRow `pattern` and the accumulator row it produced (one `i64`
/// per input column, at the batch's possibly padded width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamChunk {
    /// The non-trivial TransRow pattern that was computed.
    pub pattern: u16,
    /// The per-column dot-product contribution for that pattern.
    pub values: Vec<i64>,
}

/// A completed request: the [`GemmResponse`] plus serving metadata.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The admission-order id [`crate::Server::submit`] returned.
    pub id: RequestId,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The accelerator's answer — bit-identical to running the same
    /// [`GemmRequest`] directly on the session.
    pub response: GemmResponse,
    /// Server-clock nanoseconds at which the request was admitted.
    pub submitted_at_ns: u64,
    /// Server-clock nanoseconds at which the response was finalized.
    pub completed_at_ns: u64,
    /// How many requests shared the batch this one was dispatched in.
    pub batch_size: usize,
}

impl ServeResponse {
    /// End-to-end latency (admission to completion) in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.completed_at_ns.saturating_sub(self.submitted_at_ns)
    }
}

/// Why a served request failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request failed accelerator-side validation.
    Rejected(TaError),
    /// The server shut down before the response was produced.
    ServerClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Rejected(e) => write!(f, "request rejected: {e}"),
            Self::ServerClosed => write!(f, "server shut down before the response was produced"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Rejected(e) => Some(e),
            Self::ServerClosed => None,
        }
    }
}

impl From<TaError> for ServeError {
    fn from(e: TaError) -> Self {
        Self::Rejected(e)
    }
}

/// A handle on one in-flight request; resolves to its [`ServeResponse`].
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: RequestId,
    pub(crate) reply: mpsc::Receiver<Result<ServeResponse, ServeError>>,
}

impl Ticket {
    /// The id the server assigned this request at admission.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// [`ServeError::ServerClosed`] if the server shut down first.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        self.reply.recv().unwrap_or(Err(ServeError::ServerClosed))
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&mut self) -> Option<Result<ServeResponse, ServeError>> {
        match self.reply.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ServerClosed)),
        }
    }
}

/// A [`Ticket`] whose per-pattern results also stream out as they are
/// computed (via the accelerator's `ResultSink` hook).
#[derive(Debug)]
pub struct StreamTicket {
    /// Resolves to the final response, exactly like a plain ticket.
    pub ticket: Ticket,
    /// Receives every computed [`StreamChunk`] in emission order; closes
    /// when the request completes.
    pub chunks: mpsc::Receiver<StreamChunk>,
}

/// The internal unit the queue, batcher, and workers pass around: the
/// tenant's request plus its reply channels.
pub(crate) struct Envelope {
    pub(crate) id: RequestId,
    pub(crate) tenant: TenantId,
    pub(crate) request: GemmRequest,
    pub(crate) submitted_at_ns: u64,
    pub(crate) reply: mpsc::Sender<Result<ServeResponse, ServeError>>,
    pub(crate) stream: Option<mpsc::Sender<StreamChunk>>,
}

impl Envelope {
    /// The GEMM shape, used for bucket keying.
    pub(crate) fn shape(&self) -> ta_core::GemmShape {
        self.request.shape()
    }
}

#[cfg(test)]
pub(crate) fn test_envelope(id: RequestId, tenant: TenantId, request: GemmRequest) -> Envelope {
    // Queue/batcher tests never execute the envelope, so the dropped
    // receiver is harmless (workers ignore send errors anyway).
    let (reply, _) = mpsc::channel();
    Envelope { id, tenant, request, submitted_at_ns: 0, reply, stream: None }
}
