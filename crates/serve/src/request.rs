//! Request and response envelopes for the serving frontend.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use ta_core::error::TaError;
use ta_core::{GemmRequest, GemmResponse};

/// Monotonically increasing identifier assigned at admission.
pub type RequestId = u64;

/// Tenant identifier. Tenants share the accelerator but are scheduled
/// fairly against each other by the admission queue.
pub type TenantId = u32;

/// One streamed per-pattern result chunk from an execute request: the
/// TransRow `pattern` and the accumulator row it produced (one `i64`
/// per input column, at the batch's possibly padded width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamChunk {
    /// The non-trivial TransRow pattern that was computed.
    pub pattern: u16,
    /// The per-column dot-product contribution for that pattern.
    pub values: Vec<i64>,
}

/// One event on a [`StreamTicket`]'s event channel. Every streaming
/// request ends with exactly one terminal [`StreamEvent::Done`] —
/// including on shed, worker loss, and shutdown — so stream consumers
/// never have to infer an outcome from a silently closed channel.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A per-pattern partial result, in emission order.
    Chunk(StreamChunk),
    /// Terminal event: how the request resolved. `Ok(())` means the
    /// final response is (or is about to be) on the ticket channel.
    Done(Result<(), ServeError>),
}

/// A completed request: the [`GemmResponse`] plus serving metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The admission-order id [`crate::Server::submit`] returned.
    pub id: RequestId,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The accelerator's answer — bit-identical to running the same
    /// [`GemmRequest`] directly on the session.
    pub response: GemmResponse,
    /// Server-clock nanoseconds at which the request was admitted.
    pub submitted_at_ns: u64,
    /// Server-clock nanoseconds at which the response was finalized.
    pub completed_at_ns: u64,
    /// How many requests shared the batch this one was dispatched in.
    pub batch_size: usize,
}

impl ServeResponse {
    /// End-to-end latency (admission to completion) in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.completed_at_ns.saturating_sub(self.submitted_at_ns)
    }
}

/// Why [`crate::Server::submit`] refused a request outright.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The request failed accelerator-side validation; it would fail
    /// identically on a direct `Session` call.
    Invalid(TaError),
    /// The tenant's admission-queue depth hit the
    /// [`crate::SloPolicy::max_queue_depth`] limit. Back off and retry;
    /// other tenants' lanes are unaffected.
    QueueFull {
        /// The over-limit tenant.
        tenant: TenantId,
        /// In-flight requests the tenant had at the time.
        depth: u64,
        /// The configured per-tenant limit.
        limit: u64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Invalid(e) => write!(f, "invalid request: {e}"),
            Self::QueueFull { tenant, depth, limit } => {
                write!(f, "tenant {tenant} queue full ({depth} in flight, limit {limit})")
            }
        }
    }
}

/// Why a served request failed. Every ticket resolves to exactly one
/// of a bit-exact [`ServeResponse`] or one of these — the server never
/// leaves a caller hanging (see [`Ticket::wait`] / `wait_timeout`).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Refused at submit time; the request was never admitted.
    Rejected(RejectReason),
    /// Admitted, but shed before execution because its latency budget
    /// ([`crate::SloPolicy::latency_budget_ns`]) was already blown.
    Shed {
        /// Server-clock nanoseconds the request had waited when shed.
        waited_ns: u64,
        /// The budget it exceeded.
        budget_ns: u64,
    },
    /// [`Ticket::wait_timeout`] gave up before the request resolved.
    /// The request is still in flight; the caller may wait again.
    Timeout {
        /// Wall nanoseconds the caller waited.
        waited_ns: u64,
    },
    /// The worker executing the request died (panicked) or the server
    /// dropped the reply path before resolving it. The server respawns
    /// panicked workers; other requests are unaffected.
    WorkerLost,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Rejected(reason) => write!(f, "request rejected: {reason}"),
            Self::Shed { waited_ns, budget_ns } => {
                write!(f, "request shed after {waited_ns} ns (latency budget {budget_ns} ns)")
            }
            Self::Timeout { waited_ns } => {
                write!(f, "gave up waiting after {waited_ns} ns; request still in flight")
            }
            Self::WorkerLost => write!(f, "worker lost before the response was produced"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Rejected(RejectReason::Invalid(e)) => Some(e),
            _ => None,
        }
    }
}

impl From<TaError> for ServeError {
    fn from(e: TaError) -> Self {
        Self::Rejected(RejectReason::Invalid(e))
    }
}

/// A handle on one in-flight request; resolves to its [`ServeResponse`].
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: RequestId,
    pub(crate) reply: mpsc::Receiver<Result<ServeResponse, ServeError>>,
}

impl Ticket {
    /// The id the server assigned this request at admission.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Blocks until the request resolves.
    ///
    /// # Errors
    ///
    /// The typed [`ServeError`] the server resolved the request with.
    /// A reply channel whose sender disappeared without an explicit
    /// resolution (a bug, or a hard server teardown) maps to
    /// [`ServeError::WorkerLost`] instead of blocking forever.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        self.reply.recv().unwrap_or(Err(ServeError::WorkerLost))
    }

    /// Blocks until the request resolves or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`ServeError::Timeout`] when the deadline passes first — the
    /// request is still in flight and the ticket remains usable (call
    /// again, or [`Self::wait`]). Other errors as [`Self::wait`].
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<ServeResponse, ServeError> {
        let started = Instant::now();
        match self.reply.recv_timeout(timeout) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(ServeError::Timeout { waited_ns: started.elapsed().as_nanos() as u64 })
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::WorkerLost),
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&mut self) -> Option<Result<ServeResponse, ServeError>> {
        match self.reply.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::WorkerLost)),
        }
    }
}

/// A [`Ticket`] whose per-pattern results also stream out as they are
/// computed (via the accelerator's `ResultSink` hook).
#[derive(Debug)]
pub struct StreamTicket {
    /// Resolves to the final response, exactly like a plain ticket.
    pub ticket: Ticket,
    /// Receives every [`StreamEvent::Chunk`] in emission order,
    /// followed by exactly one terminal [`StreamEvent::Done`].
    pub events: mpsc::Receiver<StreamEvent>,
}

/// The internal unit the queue, batcher, and workers pass around: the
/// tenant's request plus its reply channels.
pub(crate) struct Envelope {
    pub(crate) id: RequestId,
    pub(crate) tenant: TenantId,
    pub(crate) request: GemmRequest,
    pub(crate) submitted_at_ns: u64,
    pub(crate) reply: mpsc::Sender<Result<ServeResponse, ServeError>>,
    pub(crate) stream: Option<mpsc::Sender<StreamEvent>>,
}

impl Envelope {
    /// The GEMM shape, used for bucket keying.
    pub(crate) fn shape(&self) -> ta_core::GemmShape {
        self.request.shape()
    }

    /// Resolves this request with a typed error: the stream (if any)
    /// gets its terminal [`StreamEvent::Done`] and the ticket gets the
    /// error. Abandoned tickets/streams are not an error.
    pub(crate) fn resolve_err(self, err: ServeError) {
        if let Some(stream) = &self.stream {
            let _ = stream.send(StreamEvent::Done(Err(err.clone())));
        }
        let _ = self.reply.send(Err(err));
    }
}

#[cfg(test)]
pub(crate) fn test_envelope(id: RequestId, tenant: TenantId, request: GemmRequest) -> Envelope {
    // Queue/batcher tests never execute the envelope, so the dropped
    // receiver is harmless (workers ignore send errors anyway).
    let (reply, _) = mpsc::channel();
    Envelope { id, tenant, request, submitted_at_ns: 0, reply, stream: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orphan_ticket() -> Ticket {
        let (tx, reply) = mpsc::channel::<Result<ServeResponse, ServeError>>();
        drop(tx);
        Ticket { id: 0, reply }
    }

    #[test]
    fn dropped_reply_sender_resolves_worker_lost_not_hang() {
        // Regression: `wait` used to block forever (then report a
        // generic closure) when a worker died holding the only sender.
        assert_eq!(orphan_ticket().wait().unwrap_err(), ServeError::WorkerLost);
        let mut t = orphan_ticket();
        assert_eq!(t.try_wait(), Some(Err(ServeError::WorkerLost)));
        assert_eq!(t.wait_timeout(Duration::from_secs(5)).unwrap_err(), ServeError::WorkerLost);
    }

    #[test]
    fn wait_timeout_reports_timeout_and_keeps_the_ticket_usable() {
        let (tx, reply) = mpsc::channel();
        let mut t = Ticket { id: 1, reply };
        match t.wait_timeout(Duration::from_millis(10)) {
            Err(ServeError::Timeout { waited_ns }) => {
                assert!(waited_ns >= 10_000_000, "waited {waited_ns} ns < the 10 ms deadline");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        // The request resolves later; the same ticket picks it up.
        tx.send(Err(ServeError::WorkerLost)).unwrap();
        assert_eq!(t.wait_timeout(Duration::from_secs(5)), Err(ServeError::WorkerLost));
    }

    #[test]
    fn resolve_err_sends_exactly_one_terminal_stream_event() {
        let (reply_tx, reply_rx) = mpsc::channel();
        let (stream_tx, stream_rx) = mpsc::channel();
        let env = Envelope {
            id: 3,
            tenant: 0,
            request: GemmRequest::execute(
                ta_quant::MatI32::zeros(2, 4),
                ta_quant::MatI32::zeros(4, 1),
            ),
            submitted_at_ns: 0,
            reply: reply_tx,
            stream: Some(stream_tx),
        };
        env.resolve_err(ServeError::Shed { waited_ns: 9, budget_ns: 4 });
        let events: Vec<StreamEvent> = stream_rx.try_iter().collect();
        assert_eq!(
            events,
            vec![StreamEvent::Done(Err(ServeError::Shed { waited_ns: 9, budget_ns: 4 }))]
        );
        assert_eq!(
            reply_rx.try_recv().unwrap(),
            Err(ServeError::Shed { waited_ns: 9, budget_ns: 4 })
        );
    }

    #[test]
    fn error_display_is_informative() {
        let msgs = [
            ServeError::Rejected(RejectReason::QueueFull { tenant: 7, depth: 8, limit: 8 })
                .to_string(),
            ServeError::Shed { waited_ns: 2_000, budget_ns: 1_000 }.to_string(),
            ServeError::Timeout { waited_ns: 55 }.to_string(),
            ServeError::WorkerLost.to_string(),
        ];
        assert!(msgs[0].contains("tenant 7") && msgs[0].contains("limit 8"));
        assert!(msgs[1].contains("2000 ns") && msgs[1].contains("1000 ns"));
        assert!(msgs[2].contains("still in flight"));
        assert!(msgs[3].contains("worker lost"));
    }
}
