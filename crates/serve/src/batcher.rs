//! Shape-bucketing batcher.
//!
//! Compatible requests coalesce into one [`BatchJob`] so a worker
//! dispatches them back-to-back at a uniform shape (one plan-cache
//! working set, one scheduling decision). Compatibility is by bucket
//! key:
//!
//! * execute requests bucket on `(n, k, ceil(m / quantum_m))` — same
//!   weights shape, input width rounded up to the bucket's quantum.
//!   Requests narrower than the bucket width are zero-padded (exact:
//!   the padded output columns are identically zero and are sliced back
//!   off before the response is sent);
//! * simulate requests bucket on their exact shape and are never
//!   padded (there is no functional input to pad).
//!
//! Requests **never** pad across buckets: a request's padded width is
//! always within `quantum_m - 1` columns of its own width.
//!
//! A bucket flushes when it reaches `max_batch` requests (inside
//! [`Batcher::offer`]) or when its oldest request has waited
//! `max_delay_ns` (inside [`Batcher::flush_due`]). The batcher is
//! driven by caller-supplied logical timestamps, so every policy
//! decision is unit-testable without wall-clock time.

use std::collections::BTreeMap;

use crate::request::Envelope;

/// Batching policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush a bucket as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a bucket once its oldest request has waited this long.
    pub max_delay_ns: u64,
    /// Execute-request input widths are rounded up to a multiple of
    /// this quantum for bucketing; `1` (the default) means exact-shape
    /// bucketing and no padding ever.
    pub quantum_m: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self { max_batch: 8, max_delay_ns: 2_000_000, quantum_m: 1 }
    }
}

impl BatchPolicy {
    fn validated(self) -> Self {
        assert!(self.max_batch > 0, "max_batch must be at least 1");
        assert!(self.quantum_m > 0, "quantum_m must be at least 1");
        self
    }
}

/// What makes two requests batchable together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct BucketKey {
    execute: bool,
    n: usize,
    k: usize,
    /// `ceil(m / quantum_m)` for execute requests, exact `m` otherwise.
    m_bucket: usize,
}

/// A flushed bucket: the scheduling unit handed to one worker.
pub(crate) struct BatchJob {
    /// Uniform input width every execute request is padded to.
    pub(crate) padded_m: usize,
    pub(crate) requests: Vec<Envelope>,
}

impl BatchJob {
    /// Splits off every request whose latency budget is already blown
    /// at logical time `now_ns` (strictly over `budget_ns` since
    /// admission), preserving the relative order of both halves. The
    /// scheduler sheds the returned envelopes with a typed error
    /// instead of spending worker time on answers nobody is waiting
    /// for. A zero budget means "no deadline" and sheds nothing.
    pub(crate) fn take_expired(&mut self, now_ns: u64, budget_ns: u64) -> Vec<Envelope> {
        if budget_ns == 0 {
            return Vec::new();
        }
        let (expired, kept) = std::mem::take(&mut self.requests)
            .into_iter()
            .partition(|env| now_ns.saturating_sub(env.submitted_at_ns) > budget_ns);
        self.requests = kept;
        expired
    }
}

struct Bucket {
    requests: Vec<Envelope>,
    /// Logical time the current oldest request entered the bucket.
    opened_at_ns: u64,
}

/// See the module docs.
pub(crate) struct Batcher {
    policy: BatchPolicy,
    buckets: BTreeMap<BucketKey, Bucket>,
}

impl Batcher {
    pub(crate) fn new(policy: BatchPolicy) -> Self {
        Self { policy: policy.validated(), buckets: BTreeMap::new() }
    }

    fn key_for(&self, env: &Envelope) -> BucketKey {
        let shape = env.shape();
        let execute = env.request.is_execute();
        let m_bucket = if execute { shape.m.div_ceil(self.policy.quantum_m) } else { shape.m };
        BucketKey { execute, n: shape.n, k: shape.k, m_bucket }
    }

    fn job(&self, key: BucketKey, requests: Vec<Envelope>) -> BatchJob {
        let padded_m =
            if key.execute { key.m_bucket * self.policy.quantum_m } else { key.m_bucket };
        BatchJob { padded_m, requests }
    }

    /// Admits one request at logical time `now_ns`; returns the bucket
    /// as a job if this request filled it to `max_batch`.
    pub(crate) fn offer(&mut self, env: Envelope, now_ns: u64) -> Option<BatchJob> {
        let key = self.key_for(&env);
        let bucket = self
            .buckets
            .entry(key)
            .or_insert_with(|| Bucket { requests: Vec::new(), opened_at_ns: now_ns });
        bucket.requests.push(env);
        if bucket.requests.len() >= self.policy.max_batch {
            let bucket = self.buckets.remove(&key).expect("bucket just touched");
            return Some(self.job(key, bucket.requests));
        }
        None
    }

    /// Flushes every bucket whose oldest request has waited
    /// `max_delay_ns` by `now_ns`, in deterministic key order.
    pub(crate) fn flush_due(&mut self, now_ns: u64) -> Vec<BatchJob> {
        let due: Vec<BucketKey> = self
            .buckets
            .iter()
            .filter(|(_, b)| now_ns.saturating_sub(b.opened_at_ns) >= self.policy.max_delay_ns)
            .map(|(k, _)| *k)
            .collect();
        due.into_iter()
            .map(|key| {
                let bucket = self.buckets.remove(&key).expect("key collected above");
                self.job(key, bucket.requests)
            })
            .collect()
    }

    /// Flushes everything (shutdown path), in deterministic key order.
    pub(crate) fn flush_all(&mut self) -> Vec<BatchJob> {
        let buckets = std::mem::take(&mut self.buckets);
        buckets.into_iter().map(|(key, b)| self.job(key, b.requests)).collect()
    }

    /// The earliest logical time at which a bucket becomes due, if any
    /// bucket is open — what the scheduler sleeps until.
    pub(crate) fn next_deadline_ns(&self) -> Option<u64> {
        self.buckets.values().map(|b| b.opened_at_ns + self.policy.max_delay_ns).min()
    }

    /// Requests currently waiting in open buckets.
    pub(crate) fn pending(&self) -> usize {
        self.buckets.values().map(|b| b.requests.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::test_envelope;
    use ta_core::{GemmRequest, GemmShape};
    use ta_models::UniformBitSource;
    use ta_quant::MatI32;

    fn exec(id: u64, n: usize, k: usize, m: usize) -> Envelope {
        test_envelope(id, 0, GemmRequest::execute(MatI32::zeros(n, k), MatI32::zeros(k, m)))
    }

    fn policy(max_batch: usize, max_delay_ns: u64, quantum_m: usize) -> BatchPolicy {
        BatchPolicy { max_batch, max_delay_ns, quantum_m }
    }

    #[test]
    fn same_quantum_bucket_coalesces_and_pads_to_quantum() {
        let mut b = Batcher::new(policy(2, 1_000, 4));
        assert!(b.offer(exec(0, 8, 16, 3), 0).is_none());
        let job = b.offer(exec(1, 8, 16, 4), 10).expect("bucket reached max_batch");
        assert_eq!(job.padded_m, 4);
        assert_eq!(job.requests.len(), 2);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn no_cross_bucket_padding() {
        // m=1 and m=5 straddle a quantum boundary: they must never
        // share a bucket, so the m=1 request pads to 4, never to 8.
        let mut b = Batcher::new(policy(2, 1_000, 4));
        assert!(b.offer(exec(0, 8, 16, 1), 0).is_none());
        assert!(b.offer(exec(1, 8, 16, 5), 0).is_none(), "different buckets must not merge");
        assert_eq!(b.pending(), 2);
        let jobs = b.flush_all();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].padded_m, 4, "m=1 pads only to its own bucket quantum");
        assert_eq!(jobs[1].padded_m, 8);
        // Different weight shapes never merge either.
        let mut b = Batcher::new(policy(2, 1_000, 4));
        assert!(b.offer(exec(0, 8, 16, 2), 0).is_none());
        assert!(b.offer(exec(1, 8, 32, 2), 0).is_none());
        assert_eq!(b.flush_all().len(), 2);
    }

    #[test]
    fn quantum_one_never_pads() {
        let mut b = Batcher::new(policy(4, 1_000, 1));
        assert!(b.offer(exec(0, 8, 16, 3), 0).is_none());
        assert!(b.offer(exec(1, 8, 16, 5), 0).is_none(), "m=3 and m=5 are distinct buckets");
        for job in b.flush_all() {
            let m = job.requests[0].shape().m;
            assert_eq!(job.padded_m, m, "quantum 1 is exact-shape bucketing");
        }
    }

    #[test]
    fn deadline_flushes_partial_bucket() {
        let mut b = Batcher::new(policy(8, 100, 1));
        assert!(b.offer(exec(0, 8, 16, 2), 0).is_none());
        assert_eq!(b.next_deadline_ns(), Some(100));
        assert!(b.flush_due(99).is_empty(), "not due yet");
        let jobs = b.flush_due(100);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].requests.len(), 1);
        assert_eq!(b.next_deadline_ns(), None);
    }

    #[test]
    fn deadline_tracks_oldest_request_in_bucket() {
        let mut b = Batcher::new(policy(8, 100, 1));
        assert!(b.offer(exec(0, 8, 16, 2), 0).is_none());
        // A later arrival into the same bucket must not extend the
        // oldest request's deadline.
        assert!(b.offer(exec(1, 8, 16, 2), 90).is_none());
        let jobs = b.flush_due(100);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].requests.len(), 2, "both flush with the oldest");
    }

    #[test]
    fn take_expired_sheds_only_over_budget_requests_in_order() {
        let mut b = Batcher::new(policy(8, 100, 1));
        let at = |id: u64, submitted_at_ns: u64| {
            let mut env = exec(id, 8, 16, 2);
            env.submitted_at_ns = submitted_at_ns;
            env
        };
        for (id, t) in [(0, 0), (1, 500), (2, 100), (3, 900)] {
            assert!(b.offer(at(id, t), t).is_none());
        }
        let mut job = b.flush_all().pop().expect("one bucket");
        // Budget 600 at now=1000: waited 1000/500/900/100 → ids 0 and 2
        // are strictly over budget; 1 and 3 survive, order intact.
        let expired: Vec<u64> = job.take_expired(1_000, 600).iter().map(|e| e.id).collect();
        assert_eq!(expired, vec![0, 2]);
        let kept: Vec<u64> = job.requests.iter().map(|e| e.id).collect();
        assert_eq!(kept, vec![1, 3]);
        // Exactly-at-budget is not over budget.
        assert!(job.take_expired(1_100, 600).is_empty(), "waited == budget must not shed");
        // Budget 0 disables deadline shedding entirely.
        assert!(job.take_expired(u64::MAX, 0).is_empty());
        assert_eq!(job.requests.len(), 2);
    }

    #[test]
    fn simulate_requests_bucket_exactly_and_never_pad() {
        let mut b = Batcher::new(policy(2, 1_000, 4));
        let sim = |id: u64, m: usize| {
            test_envelope(
                id,
                0,
                GemmRequest::simulate(GemmShape::new(8, 16, m), UniformBitSource::new(4, 4, 1)),
            )
        };
        assert!(b.offer(sim(0, 3), 0).is_none());
        // Same quantum bucket as m=3 for executes, but simulates key on
        // exact m: these must not merge.
        assert!(b.offer(sim(1, 4), 0).is_none());
        // And an execute with the same shape never joins a simulate.
        assert!(b.offer(exec(2, 8, 16, 3), 0).is_none());
        let jobs = b.flush_all();
        assert_eq!(jobs.len(), 3);
        for job in &jobs {
            if !job.requests[0].request.is_execute() {
                assert_eq!(job.padded_m, job.requests[0].shape().m);
            }
        }
    }
}
