//! Crossbar with conflict queue — the data-arrangement stage between the
//! dispatcher and the prefix buffer (§4.4).
//!
//! Each cycle the dispatcher emits up to `T` partial-sum vectors whose
//! destination banks derive from their row indices. Vectors aimed at the
//! same bank conflict; a queue serializes them, and the double-buffer
//! overlap hides the latency as long as queue occupancy stays bounded.

/// Crossbar conflict model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crossbar {
    banks: u32,
    dispatches: u64,
    conflict_cycles: u64,
    max_queue: u64,
    traversals: u64,
}

impl Crossbar {
    /// Creates a crossbar over `banks` destination banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(banks: u32) -> Self {
        assert!(banks > 0, "need at least one bank");
        Self { banks, dispatches: 0, conflict_cycles: 0, max_queue: 0, traversals: 0 }
    }

    /// Bank count.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Schedules one dispatch group (the bank id of each concurrent
    /// vector) and returns the cycles the group occupies the crossbar:
    /// 1 for a conflict-free group, more when a bank is oversubscribed.
    pub fn dispatch(&mut self, bank_ids: &[u32]) -> u64 {
        self.dispatches += 1;
        self.traversals += bank_ids.len() as u64;
        let mut occupancy = vec![0u64; self.banks as usize];
        for &b in bank_ids {
            occupancy[(b % self.banks) as usize] += 1;
        }
        let worst = occupancy.into_iter().max().unwrap_or(0).max(1);
        let extra = worst - 1;
        self.conflict_cycles += extra;
        self.max_queue = self.max_queue.max(extra);
        worst
    }

    /// Convenience: derives bank ids from row indices (`row % banks`).
    pub fn dispatch_rows(&mut self, rows: &[u64]) -> u64 {
        let ids: Vec<u32> = rows.iter().map(|&r| (r % self.banks as u64) as u32).collect();
        self.dispatch(&ids)
    }

    /// Dispatch groups scheduled.
    pub fn dispatch_count(&self) -> u64 {
        self.dispatches
    }

    /// Total stall cycles caused by bank conflicts.
    pub fn conflict_cycles(&self) -> u64 {
        self.conflict_cycles
    }

    /// Deepest queue occupancy observed.
    pub fn max_queue_depth(&self) -> u64 {
        self.max_queue
    }

    /// Total element traversals (an energy event count).
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Resets the counters.
    pub fn reset(&mut self) {
        self.dispatches = 0;
        self.conflict_cycles = 0;
        self.max_queue = 0;
        self.traversals = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_group_is_one_cycle() {
        let mut x = Crossbar::new(8);
        assert_eq!(x.dispatch(&[0, 1, 2, 3, 4, 5, 6, 7]), 1);
        assert_eq!(x.conflict_cycles(), 0);
    }

    #[test]
    fn full_conflict_serializes() {
        let mut x = Crossbar::new(8);
        assert_eq!(x.dispatch(&[3; 8]), 8);
        assert_eq!(x.conflict_cycles(), 7);
        assert_eq!(x.max_queue_depth(), 7);
    }

    #[test]
    fn partial_conflicts() {
        let mut x = Crossbar::new(4);
        // Banks: 0,0,1,2 → bank 0 has 2 → 2 cycles.
        assert_eq!(x.dispatch(&[0, 0, 1, 2]), 2);
        assert_eq!(x.conflict_cycles(), 1);
    }

    #[test]
    fn dispatch_rows_mods_banks() {
        let mut x = Crossbar::new(4);
        // Rows 0, 4, 8 all hit bank 0.
        assert_eq!(x.dispatch_rows(&[0, 4, 8]), 3);
    }

    #[test]
    fn empty_group_costs_one() {
        let mut x = Crossbar::new(2);
        assert_eq!(x.dispatch(&[]), 1);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut x = Crossbar::new(2);
        x.dispatch(&[0, 0]);
        x.dispatch(&[0, 1]);
        assert_eq!(x.dispatch_count(), 2);
        assert_eq!(x.traversals(), 4);
        x.reset();
        assert_eq!(x.dispatch_count(), 0);
        assert_eq!(x.conflict_cycles(), 0);
    }
}
