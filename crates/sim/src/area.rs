//! Area model — the component table behind Table 2.
//!
//! Component areas come **from the paper's own Table 2** (synthesized with
//! Design Compiler + ARM 28 nm cells); buffer areas follow a CACTI-like
//! per-KB density. The model exists to regenerate Table 2 and to feed the
//! static-power integrals.

/// Area of one component instance in µm², with its array multiplicity.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Display name (e.g. `"PPE"`).
    pub name: String,
    /// Area of one instance (µm²).
    pub unit_um2: f64,
    /// Number of instances.
    pub count: u64,
}

impl Component {
    /// Creates a component row.
    pub fn new(name: impl Into<String>, unit_um2: f64, count: u64) -> Self {
        Self { name: name.into(), unit_um2, count }
    }

    /// Total area (mm²).
    pub fn total_mm2(&self) -> f64 {
        self.unit_um2 * self.count as f64 / 1.0e6
    }
}

/// An accelerator's area budget: compute components + buffer capacity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AreaModel {
    /// Compute-core components.
    pub components: Vec<Component>,
    /// On-chip buffer capacity (KB).
    pub buffer_kb: f64,
}

/// SRAM density at 28 nm, mm² per KB (≈0.0012 mm²/KB — 6T cells plus
/// periphery).
pub const SRAM_MM2_PER_KB: f64 = 0.0012;

impl AreaModel {
    /// Total compute-core area (mm²) — the "Computation Core" column of
    /// Table 2.
    pub fn core_mm2(&self) -> f64 {
        self.components.iter().map(Component::total_mm2).sum()
    }

    /// Buffer area (mm²).
    pub fn buffer_mm2(&self) -> f64 {
        self.buffer_kb * SRAM_MM2_PER_KB
    }

    /// Total area (mm²).
    pub fn total_mm2(&self) -> f64 {
        self.core_mm2() + self.buffer_mm2()
    }
}

/// Table 2's published component areas (µm² per instance, 28 nm).
pub mod table2 {
    /// TransArray Prefix PE (12-bit adder + control).
    pub const PPE_UM2: f64 = 50.3;
    /// TransArray Accumulation PE (24-bit accumulator).
    pub const APE_UM2: f64 = 101.7;
    /// One TransArray unit's NoC (8-way Benes + crossbar).
    pub const NOC_UM2: f64 = 19_520.0;
    /// The shared dynamic Scoreboard unit.
    pub const SCOREBOARD_UM2: f64 = 92_507.0;
    /// BitFusion 8-bit PE.
    pub const BITFUSION_PE_UM2: f64 = 548.0;
    /// ANT 4-bit PE.
    pub const ANT_PE_UM2: f64 = 210.0;
    /// Olive 4-bit PE.
    pub const OLIVE_PE_UM2: f64 = 319.0;
    /// BitVert 8-bit PE.
    pub const BITVERT_PE_UM2: f64 = 985.0;
    /// Tender 4-bit PE.
    pub const TENDER_PE_UM2: f64 = 329.0;
}

/// The TransArray area model of Table 2: 6 units × (8×32 PPE + 8×32 APE +
/// NoC) + one Scoreboard, 480 KB of buffer.
pub fn transarray_area(units: u64, lanes: u64, vector_width: u64, buffer_kb: f64) -> AreaModel {
    let pes = units * lanes * vector_width;
    AreaModel {
        components: vec![
            Component::new("PPE", table2::PPE_UM2, pes),
            Component::new("APE", table2::APE_UM2, pes),
            Component::new("NoC", table2::NOC_UM2, units),
            Component::new("Scoreboard", table2::SCOREBOARD_UM2, 1),
        ],
        buffer_kb,
    }
}

/// A baseline's area model from its Table 2 PE geometry.
pub fn baseline_area(name: &str, pe_um2: f64, rows: u64, cols: u64, buffer_kb: f64) -> AreaModel {
    AreaModel { components: vec![Component::new(name, pe_um2, rows * cols)], buffer_kb }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transarray_core_matches_table2() {
        // Table 2: TransArray (6 units) core = 0.443 mm².
        let a = transarray_area(6, 8, 32, 480.0);
        let core = a.core_mm2();
        assert!((core - 0.443).abs() < 0.015, "TransArray core {core:.3} mm² vs Table 2's 0.443");
    }

    #[test]
    fn baselines_match_table2() {
        // (name, pe µm², rows, cols, expected core mm²)
        let rows = [
            ("BitFusion", table2::BITFUSION_PE_UM2, 28u64, 32u64, 0.491),
            ("ANT", table2::ANT_PE_UM2, 36, 64, 0.484),
            ("Olive", table2::OLIVE_PE_UM2, 32, 48, 0.489),
            ("BitVert", table2::BITVERT_PE_UM2, 16, 30, 0.473),
            ("Tender", table2::TENDER_PE_UM2, 30, 48, 0.474),
        ];
        for (name, pe, r, c, expected) in rows {
            let a = baseline_area(name, pe, r, c, 512.0);
            let core = a.core_mm2();
            assert!((core - expected).abs() < 0.02, "{name}: {core:.3} vs {expected}");
        }
    }

    #[test]
    fn transarray_core_is_smallest() {
        // The paper's claim: TA has the lowest core area of the roster.
        let ta = transarray_area(6, 8, 32, 480.0).core_mm2();
        for (pe, r, c) in [
            (table2::BITFUSION_PE_UM2, 28u64, 32u64),
            (table2::ANT_PE_UM2, 36, 64),
            (table2::OLIVE_PE_UM2, 32, 48),
            (table2::BITVERT_PE_UM2, 16, 30),
            (table2::TENDER_PE_UM2, 30, 48),
        ] {
            assert!(ta < baseline_area("x", pe, r, c, 512.0).core_mm2());
        }
    }

    #[test]
    fn buffer_area_proportional() {
        let a = transarray_area(6, 8, 32, 480.0);
        let b = transarray_area(6, 8, 32, 960.0);
        assert!((b.buffer_mm2() / a.buffer_mm2() - 2.0).abs() < 1e-12);
        assert!(a.total_mm2() > a.core_mm2());
    }

    #[test]
    fn component_total() {
        let c = Component::new("X", 100.0, 1000);
        assert!((c.total_mm2() - 0.1).abs() < 1e-12);
    }
}
