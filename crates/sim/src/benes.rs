//! Benes network — the non-blocking distribution network of the
//! TransArray dispatcher (§4.4).
//!
//! A Benes network on `N = 2^k` terminals has `2k − 1` switch stages of
//! `N/2` two-by-two crossbars and can realize **any** permutation without
//! blocking. This module implements the classic recursive *looping*
//! routing algorithm, a functional `apply` that pushes data through the
//! switch settings, and the depth/switch-count figures the area and
//! energy models consume (the paper quotes `2·log(N)+1` levels counting
//! the terminal stages).

/// A Benes network for a power-of-two terminal count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenesNetwork {
    n: usize,
}

/// Switch settings produced by routing one permutation. The tree mirrors
/// the recursive construction: an input column, two half-size
/// sub-networks, and an output column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenesRouting {
    /// A single 2×2 switch: `false` = straight, `true` = crossed.
    Leaf(bool),
    /// A recursive stage.
    Stage {
        /// Input-column switch settings (`n/2` entries).
        input: Vec<bool>,
        /// Upper half-size sub-network.
        upper: Box<BenesRouting>,
        /// Lower half-size sub-network.
        lower: Box<BenesRouting>,
        /// Output-column switch settings (`n/2` entries).
        output: Vec<bool>,
    },
}

impl BenesNetwork {
    /// Creates a network with `n` terminals.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two and `n ≥ 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "Benes network needs a power-of-two size ≥ 2");
        Self { n }
    }

    /// Terminal count.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Switch stages: `2·log2(n) − 1`.
    pub fn depth(&self) -> u32 {
        2 * self.n.trailing_zeros() - 1
    }

    /// Total 2×2 switches: `(n/2) · depth`.
    pub fn switch_count(&self) -> usize {
        self.n / 2 * self.depth() as usize
    }

    /// Routes `perm`, where `perm[output] = input` (output `o` must
    /// receive the data presented at input `perm[o]`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn route(&self, perm: &[usize]) -> BenesRouting {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        let mut seen = vec![false; self.n];
        for &p in perm {
            assert!(p < self.n, "permutation entry {p} out of range");
            assert!(!seen[p], "duplicate permutation entry {p}");
            seen[p] = true;
        }
        route_rec(perm)
    }

    /// Pushes `inputs` through the routed switches, returning the outputs.
    ///
    /// # Panics
    ///
    /// Panics if the input length or routing shape disagrees with the
    /// network size.
    pub fn apply<T: Clone>(&self, routing: &BenesRouting, inputs: &[T]) -> Vec<T> {
        assert_eq!(inputs.len(), self.n, "input length mismatch");
        apply_rec(routing, inputs)
    }
}

/// Recursive looping algorithm. `perm[o] = i`.
fn route_rec(perm: &[usize]) -> BenesRouting {
    let n = perm.len();
    if n == 2 {
        // Crossed iff output 0 takes input 1.
        return BenesRouting::Leaf(perm[0] == 1);
    }
    // inv[input] = output position.
    let mut inv = vec![0usize; n];
    for (o, &i) in perm.iter().enumerate() {
        inv[i] = o;
    }
    // 2-color inputs into subnets: inputs sharing an input switch (i, i^1)
    // must differ; inputs sharing an output switch (perm[2k], perm[2k+1])
    // must differ. The constraint graph is a disjoint union of even
    // cycles, so greedy chain-walking 2-colors it.
    const UNSET: u8 = 2;
    let mut color = vec![UNSET; n];
    for start in 0..n {
        if color[start] != UNSET {
            continue;
        }
        let mut cur = start;
        color[cur] = 0;
        loop {
            // Input-switch partner takes the opposite subnet.
            let partner = cur ^ 1;
            if color[partner] != UNSET {
                break;
            }
            color[partner] = color[cur] ^ 1;
            // Output-switch partner of `partner` must take the opposite of
            // partner's color.
            let out_partner = perm[inv[partner] ^ 1];
            if color[out_partner] != UNSET {
                break;
            }
            color[out_partner] = color[partner] ^ 1;
            cur = out_partner;
        }
    }
    // Input column: switch k handles inputs 2k (top) and 2k+1 (bottom).
    // Setting=false (straight) sends the top input to the upper subnet.
    let half = n / 2;
    let mut input_sw = vec![false; half];
    for k in 0..half {
        // Crossed iff the top input goes to the lower subnet.
        input_sw[k] = color[2 * k] == 1;
    }
    // Output column: switch k drives outputs 2k, 2k+1; straight takes the
    // upper-subnet arrival to output 2k.
    let mut output_sw = vec![false; half];
    for k in 0..half {
        output_sw[k] = color[perm[2 * k]] == 1;
    }
    // Sub-permutations. Input i sits at sub-position i/2 of its subnet;
    // output o arrives from sub-position o/2 of the subnet that carries it.
    let mut upper_perm = vec![0usize; half];
    let mut lower_perm = vec![0usize; half];
    for o in (0..n).step_by(2) {
        let k = o / 2;
        for &out in &[o, o + 1] {
            let i = perm[out];
            if color[i] == 0 {
                upper_perm[k] = i / 2;
            } else {
                lower_perm[k] = i / 2;
            }
        }
    }
    BenesRouting::Stage {
        input: input_sw,
        upper: Box::new(route_rec(&upper_perm)),
        lower: Box::new(route_rec(&lower_perm)),
        output: output_sw,
    }
}

fn apply_rec<T: Clone>(routing: &BenesRouting, inputs: &[T]) -> Vec<T> {
    match routing {
        BenesRouting::Leaf(crossed) => {
            assert_eq!(inputs.len(), 2, "leaf expects 2 inputs");
            if *crossed {
                vec![inputs[1].clone(), inputs[0].clone()]
            } else {
                inputs.to_vec()
            }
        }
        BenesRouting::Stage { input, upper, lower, output } => {
            let n = inputs.len();
            let half = n / 2;
            assert_eq!(input.len(), half, "input column size mismatch");
            let mut up_in = Vec::with_capacity(half);
            let mut lo_in = Vec::with_capacity(half);
            for k in 0..half {
                let (top, bottom) = (&inputs[2 * k], &inputs[2 * k + 1]);
                if input[k] {
                    up_in.push(bottom.clone());
                    lo_in.push(top.clone());
                } else {
                    up_in.push(top.clone());
                    lo_in.push(bottom.clone());
                }
            }
            let up_out = apply_rec(upper, &up_in);
            let lo_out = apply_rec(lower, &lo_in);
            let mut out = Vec::with_capacity(n);
            for k in 0..half {
                if output[k] {
                    out.push(lo_out[k].clone());
                    out.push(up_out[k].clone());
                } else {
                    out.push(up_out[k].clone());
                    out.push(lo_out[k].clone());
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_perm(net: &BenesNetwork, perm: &[usize]) {
        let routing = net.route(perm);
        let inputs: Vec<usize> = (0..net.size()).collect();
        let outputs = net.apply(&routing, &inputs);
        for (o, &expected_input) in perm.iter().enumerate() {
            assert_eq!(outputs[o], expected_input, "output {o} of {perm:?}");
        }
    }

    #[test]
    fn identity_and_reverse() {
        for n in [2usize, 4, 8, 16] {
            let net = BenesNetwork::new(n);
            let id: Vec<usize> = (0..n).collect();
            check_perm(&net, &id);
            let rev: Vec<usize> = (0..n).rev().collect();
            check_perm(&net, &rev);
        }
    }

    #[test]
    fn all_permutations_of_4_route() {
        let net = BenesNetwork::new(4);
        let mut perm = [0usize, 1, 2, 3];
        permute_all(&mut perm, 4, &mut |p| check_perm(&net, p));
    }

    #[test]
    fn all_permutations_of_8_route() {
        let net = BenesNetwork::new(8);
        let mut perm = [0usize, 1, 2, 3, 4, 5, 6, 7];
        permute_all(&mut perm, 8, &mut |p| check_perm(&net, p));
    }

    fn permute_all(v: &mut [usize], k: usize, f: &mut impl FnMut(&[usize])) {
        if k == 1 {
            f(v);
            return;
        }
        for i in 0..k {
            permute_all(v, k - 1, f);
            if k.is_multiple_of(2) {
                v.swap(i, k - 1);
            } else {
                v.swap(0, k - 1);
            }
        }
    }

    #[test]
    fn rotations_of_16() {
        let net = BenesNetwork::new(16);
        for shift in 0..16 {
            let perm: Vec<usize> = (0..16).map(|o| (o + shift) % 16).collect();
            check_perm(&net, &perm);
        }
    }

    #[test]
    fn pseudo_random_perms_of_32() {
        let net = BenesNetwork::new(32);
        let mut state = 0x12345678u64;
        for _ in 0..50 {
            // Fisher–Yates with xorshift.
            let mut perm: Vec<usize> = (0..32).collect();
            for i in (1..32).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let j = (state % (i as u64 + 1)) as usize;
                perm.swap(i, j);
            }
            check_perm(&net, &perm);
        }
    }

    #[test]
    fn depth_and_switches() {
        // The 8-way net of the paper (Table 1: "An 8-way Benes net").
        let net = BenesNetwork::new(8);
        assert_eq!(net.depth(), 5);
        assert_eq!(net.switch_count(), 20);
        let net16 = BenesNetwork::new(16);
        assert_eq!(net16.depth(), 7);
        assert_eq!(net16.switch_count(), 56);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = BenesNetwork::new(6);
    }

    #[test]
    #[should_panic(expected = "duplicate permutation entry")]
    fn non_permutation_rejected() {
        let net = BenesNetwork::new(4);
        let _ = net.route(&[0, 0, 1, 2]);
    }

    #[test]
    fn apply_routes_payloads_not_just_indices() {
        let net = BenesNetwork::new(4);
        let perm = [2usize, 0, 3, 1];
        let routing = net.route(&perm);
        let data = ["a", "b", "c", "d"];
        let out = net.apply(&routing, &data);
        assert_eq!(out, vec!["c", "a", "d", "b"]);
    }
}
