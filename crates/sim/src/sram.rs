//! On-chip SRAM buffer models: access counting, capacity checks, banking,
//! and double buffering (§4.4, Table 1's buffer budget).

use crate::energy::EnergyModel;

/// A banked SRAM buffer that counts accesses for the energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct SramBuffer {
    name: String,
    capacity_bytes: u64,
    banks: u32,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl SramBuffer {
    /// Creates a buffer.
    ///
    /// # Panics
    ///
    /// Panics if capacity or bank count is zero.
    pub fn new(name: impl Into<String>, capacity_bytes: u64, banks: u32) -> Self {
        assert!(capacity_bytes > 0, "capacity must be non-zero");
        assert!(banks > 0, "need at least one bank");
        Self {
            name: name.into(),
            capacity_bytes,
            banks,
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// Buffer name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Capacity in KB (f64, for the energy law).
    pub fn capacity_kb(&self) -> f64 {
        self.capacity_bytes as f64 / 1024.0
    }

    /// Bank count.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Records a read of `bytes`.
    pub fn read(&mut self, bytes: u64) {
        self.reads += 1;
        self.bytes_read += bytes;
    }

    /// Records a write of `bytes`.
    pub fn write(&mut self, bytes: u64) {
        self.writes += 1;
        self.bytes_written += bytes;
    }

    /// Total read accesses.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total write accesses.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Total bytes moved (reads + writes).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Dynamic energy of all recorded accesses (pJ) under `model`.
    pub fn energy_pj(&self, model: &EnergyModel) -> f64 {
        model.sram_pj_per_byte(self.capacity_kb()) * self.bytes_total() as f64
    }

    /// Whether a working set of `bytes` fits.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.capacity_bytes
    }

    /// Resets the counters (e.g. between experiments).
    pub fn reset(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.bytes_read = 0;
        self.bytes_written = 0;
    }

    /// Bank index a row-id maps to (the crossbar's conflict criterion,
    /// §4.4).
    pub fn bank_of(&self, row_id: u64) -> u32 {
        (row_id % self.banks as u64) as u32
    }
}

/// A double buffer: two same-sized halves that swap roles each tile so
/// fill and drain overlap (§4.4: "double buffer mechanism so that the
/// partial sum buffer overlaps and conceals the overhead").
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleBuffer {
    front: SramBuffer,
    back: SramBuffer,
    swaps: u64,
}

impl DoubleBuffer {
    /// Creates a double buffer of `total_bytes` split into two halves.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes < 2`.
    pub fn new(name: &str, total_bytes: u64, banks: u32) -> Self {
        assert!(total_bytes >= 2, "double buffer needs ≥ 2 bytes");
        let half = total_bytes / 2;
        Self {
            front: SramBuffer::new(format!("{name}.front"), half, banks),
            back: SramBuffer::new(format!("{name}.back"), half, banks),
            swaps: 0,
        }
    }

    /// The half currently serving the compute stage.
    pub fn front(&mut self) -> &mut SramBuffer {
        &mut self.front
    }

    /// The half currently being filled/drained.
    pub fn back(&mut self) -> &mut SramBuffer {
        &mut self.back
    }

    /// Swaps roles (end of a tile).
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.front, &mut self.back);
        self.swaps += 1;
    }

    /// Number of swaps performed.
    pub fn swap_count(&self) -> u64 {
        self.swaps
    }

    /// Combined access energy (pJ).
    pub fn energy_pj(&self, model: &EnergyModel) -> f64 {
        self.front.energy_pj(model) + self.back.energy_pj(model)
    }

    /// Combined bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.front.bytes_total() + self.back.bytes_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_counting() {
        let mut b = SramBuffer::new("w", 8192, 4);
        b.read(64);
        b.read(64);
        b.write(32);
        assert_eq!(b.read_count(), 2);
        assert_eq!(b.write_count(), 1);
        assert_eq!(b.bytes_total(), 160);
        b.reset();
        assert_eq!(b.bytes_total(), 0);
    }

    #[test]
    fn energy_proportional_to_bytes() {
        let model = EnergyModel::paper_28nm();
        let mut a = SramBuffer::new("a", 8 * 1024, 1);
        let mut b = SramBuffer::new("b", 8 * 1024, 1);
        a.read(100);
        b.read(200);
        assert!((b.energy_pj(&model) / a.energy_pj(&model) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bigger_buffers_cost_more_per_byte() {
        let model = EnergyModel::paper_28nm();
        let mut small = SramBuffer::new("s", 8 * 1024, 1);
        let mut large = SramBuffer::new("l", 128 * 1024, 1);
        small.read(1000);
        large.read(1000);
        assert!(large.energy_pj(&model) > small.energy_pj(&model));
    }

    #[test]
    fn capacity_checks() {
        let b = SramBuffer::new("x", 1000, 2);
        assert!(b.fits(1000));
        assert!(!b.fits(1001));
        assert_eq!(b.bank_of(0), 0);
        assert_eq!(b.bank_of(3), 1);
    }

    #[test]
    fn double_buffer_swaps() {
        let mut db = DoubleBuffer::new("psum", 2048, 2);
        db.front().write(10);
        db.swap();
        db.front().write(20);
        assert_eq!(db.swap_count(), 1);
        assert_eq!(db.bytes_total(), 30);
        // After the swap, the original front (10 bytes) is now back.
        assert_eq!(db.back().bytes_total(), 10);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = SramBuffer::new("z", 0, 1);
    }
}
