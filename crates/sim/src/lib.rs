//! # ta-sim — hardware-modeling substrate for the Transitive Array
//!
//! The building blocks the cycle-level simulator (`ta-core`) and the
//! baseline models (`ta-baselines`) are assembled from:
//!
//! * [`BenesNetwork`] — the non-blocking distribution network of the
//!   dispatcher (§4.4), with a real looping-algorithm router;
//! * [`Crossbar`] — bank-conflict queueing between dispatcher and prefix
//!   buffer;
//! * [`SramBuffer`] / [`DoubleBuffer`] — on-chip buffers with access
//!   counting;
//! * [`DramModel`] — shared off-chip bandwidth/energy model;
//! * [`EnergyModel`] / [`EnergyBreakdown`] — per-event pJ constants at the
//!   28 nm / 500 MHz operating point and Fig. 11's breakdown slices;
//! * [`AreaModel`] + the published Table 2 component areas;
//! * [`pipeline_cycles`] — the 3-stage double-buffered schedule math of
//!   §4.6.
//!
//! ## Quick example
//!
//! ```
//! use ta_sim::{BenesNetwork, EnergyModel};
//!
//! let net = BenesNetwork::new(8); // Table 1's "8-way Benes net"
//! let perm = [7usize, 6, 5, 4, 3, 2, 1, 0];
//! let routing = net.route(&perm);
//! let out = net.apply(&routing, &[0usize, 1, 2, 3, 4, 5, 6, 7]);
//! assert_eq!(out, vec![7, 6, 5, 4, 3, 2, 1, 0]);
//!
//! let e = EnergyModel::paper_28nm();
//! assert!(e.mac_pj(8) > e.add_pj(12)); // why multiplication-free wins
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod area;
mod benes;
mod crossbar;
mod dram;
mod energy;
mod pipeline;
mod sram;
mod vpu;

pub use area::{baseline_area, table2, transarray_area, AreaModel, Component, SRAM_MM2_PER_KB};
pub use benes::{BenesNetwork, BenesRouting};
pub use crossbar::Crossbar;
pub use dram::DramModel;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use pipeline::{fill_overhead, pipeline_cycles, steady_state_cycles};
pub use sram::{DoubleBuffer, SramBuffer};
pub use vpu::VpuModel;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn perm_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
        Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
    }

    proptest! {
        /// The Benes router realizes every permutation exactly.
        #[test]
        fn benes_routes_any_permutation(perm in perm_strategy(16)) {
            let net = BenesNetwork::new(16);
            let routing = net.route(&perm);
            let inputs: Vec<usize> = (0..16).collect();
            let out = net.apply(&routing, &inputs);
            for (o, &i) in perm.iter().enumerate() {
                prop_assert_eq!(out[o], i);
            }
        }

        /// Benes output is always a permutation of the input payloads.
        #[test]
        fn benes_preserves_payloads(perm in perm_strategy(8), base in 0u32..1000) {
            let net = BenesNetwork::new(8);
            let routing = net.route(&perm);
            let inputs: Vec<u32> = (0..8).map(|i| base + i).collect();
            let mut out = net.apply(&routing, &inputs);
            out.sort_unstable();
            prop_assert_eq!(out, inputs);
        }

        /// Pipeline latency is bounded below by both the slowest stage's
        /// total and any single tile's stage sum.
        #[test]
        fn pipeline_bounds(
            tiles in proptest::collection::vec(
                proptest::collection::vec(0u64..50, 3), 1..20)
        ) {
            let total = pipeline_cycles(&tiles);
            for s in 0..3 {
                let stage_sum: u64 = tiles.iter().map(|t| t[s]).sum();
                prop_assert!(total >= stage_sum);
            }
            let first_sum: u64 = tiles[0].iter().sum();
            prop_assert!(total >= first_sum);
            // And above by the fully serialized schedule.
            let serial: u64 = tiles.iter().flatten().sum();
            prop_assert!(total <= serial);
        }

        /// Crossbar dispatch cycles equal the worst bank occupancy.
        #[test]
        fn crossbar_worst_occupancy(ids in proptest::collection::vec(0u32..8, 1..24)) {
            let mut x = Crossbar::new(8);
            let cycles = x.dispatch(&ids);
            let mut occ = [0u64; 8];
            for &b in &ids { occ[b as usize] += 1; }
            prop_assert_eq!(cycles, *occ.iter().max().unwrap());
        }
    }
}
