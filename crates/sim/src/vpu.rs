//! Vector Processing Unit model — the non-GEMM operations every
//! accelerator in the roster must run (de-quantization, softmax, …),
//! "similar to previous studies" (§4.5).
//!
//! Attention layers interleave GEMMs with softmax over the score matrix;
//! the VPU time is common to all accelerators (it scales with precision,
//! not with the GEMM engine) and compresses attention speedups relative
//! to FC layers — the effect visible in Fig. 12.

/// A SIMD vector unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpuModel {
    /// Elementwise 8-bit ops per cycle across all lanes.
    pub ops_per_cycle_8bit: f64,
}

/// Elementwise op count per softmax element (max-subtract, exp
/// approximation, accumulate, divide — amortized).
const SOFTMAX_OPS_PER_ELEM: f64 = 6.0;

/// Elementwise ops per de-/re-quantization element (scale multiply +
/// round/clamp).
const REQUANT_OPS_PER_ELEM: f64 = 2.0;

impl VpuModel {
    /// The paper-scale VPU: 40 lanes' worth of 8-bit throughput at
    /// 500 MHz (shared by the 6 units).
    pub fn paper_default() -> Self {
        Self { ops_per_cycle_8bit: 40.0 }
    }

    /// Throughput at `bits` precision (wider elements halve lane count).
    pub fn ops_per_cycle(&self, bits: u32) -> f64 {
        self.ops_per_cycle_8bit * 8.0 / bits.max(1) as f64
    }

    /// Cycles to softmax a `rows × cols` score matrix at `bits` precision.
    pub fn softmax_cycles(&self, rows: usize, cols: usize, bits: u32) -> u64 {
        let elems = rows as f64 * cols as f64;
        (elems * SOFTMAX_OPS_PER_ELEM / self.ops_per_cycle(bits)).ceil() as u64
    }

    /// Cycles to requantize `elems` outputs (group-wise rescale, §4.5).
    pub fn requant_cycles(&self, elems: usize, bits: u32) -> u64 {
        (elems as f64 * REQUANT_OPS_PER_ELEM / self.ops_per_cycle(bits)).ceil() as u64
    }

    /// VPU dynamic energy for `elems` × `ops_per_elem` at `bits`:
    /// modeled as one `bits`-wide multiply-add per op.
    pub fn energy_pj(&self, elems: u64, ops_per_elem: f64, bits: u32, mac_pj: f64) -> f64 {
        let _ = bits;
        elems as f64 * ops_per_elem * mac_pj
    }
}

impl Default for VpuModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_elements_are_slower() {
        let v = VpuModel::paper_default();
        let c8 = v.softmax_cycles(128, 128, 8);
        let c16 = v.softmax_cycles(128, 128, 16);
        assert!((c16 as f64 / c8 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn softmax_scales_with_elements() {
        let v = VpuModel::paper_default();
        let small = v.softmax_cycles(64, 64, 8) as f64;
        let big = v.softmax_cycles(128, 128, 8) as f64;
        assert!((big / small - 4.0).abs() < 0.01, "{big} vs {small}");
    }

    #[test]
    fn requant_cheaper_than_softmax() {
        let v = VpuModel::paper_default();
        assert!(v.requant_cycles(4096, 8) < v.softmax_cycles(64, 64, 8));
    }

    #[test]
    fn attention_softmax_is_gemm_scale() {
        // For seq 2048 the softmax over one head's scores must be the same
        // order of magnitude as a TransArray QK^T pass — the Fig. 12
        // compression effect.
        let v = VpuModel::paper_default();
        let softmax = v.softmax_cycles(2048, 2048, 8);
        let ta_qk_cycles = 2048u64 * 128 * 2048 / 1536; // ideal TA-8bit
        let ratio = softmax as f64 / ta_qk_cycles as f64;
        assert!((0.5..4.0).contains(&ratio), "ratio {ratio}");
    }
}
