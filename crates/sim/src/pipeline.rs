//! Pipeline composition math — the 3-stage double-buffered schedule of
//! §4.6 (dynamic Scoreboarding → PPE array → APE array).
//!
//! With double buffering between stages, consecutive tiles overlap: tile
//! `i`'s stage `s` can start once stage `s` finished tile `i−1` *and*
//! stage `s−1` finished tile `i`. Total latency follows the classic
//! dataflow recurrence; in steady state the slowest stage dominates —
//! which the paper uses to argue the PPE array is the critical path.

/// Computes the total cycles to push every tile through an `S`-stage
/// pipeline, given each tile's per-stage service times.
///
/// `tiles[i][s]` = cycles stage `s` spends on tile `i`.
///
/// # Examples
///
/// ```
/// use ta_sim::pipeline_cycles;
///
/// // Two tiles, two balanced stages of 10 → fill (10) + 2·10 = 30.
/// assert_eq!(pipeline_cycles(&[vec![10, 10], vec![10, 10]]), 30);
/// ```
pub fn pipeline_cycles(tiles: &[Vec<u64>]) -> u64 {
    let Some(first) = tiles.first() else {
        return 0;
    };
    let stages = first.len();
    if stages == 0 {
        return 0;
    }
    let mut finish = vec![0u64; stages];
    for tile in tiles {
        assert_eq!(tile.len(), stages, "all tiles must have the same stage count");
        let mut prev_stage_finish = 0u64;
        for (s, &latency) in tile.iter().enumerate() {
            let start = finish[s].max(prev_stage_finish);
            finish[s] = start + latency;
            prev_stage_finish = finish[s];
        }
    }
    finish[stages - 1]
}

/// Steady-state throughput bound: the sum over tiles of each tile's
/// slowest stage (what the pipeline converges to once full, ignoring
/// fill/drain).
pub fn steady_state_cycles(tiles: &[Vec<u64>]) -> u64 {
    tiles.iter().map(|t| t.iter().copied().max().unwrap_or(0)).sum()
}

/// Pipeline-fill overhead: total minus steady state (≥ 0 only when the
/// workload is stage-balanced; reported for model introspection).
pub fn fill_overhead(tiles: &[Vec<u64>]) -> i64 {
    pipeline_cycles(tiles) as i64 - steady_state_cycles(tiles) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_trivial() {
        assert_eq!(pipeline_cycles(&[]), 0);
        assert_eq!(pipeline_cycles(&[vec![]]), 0);
        assert_eq!(pipeline_cycles(&[vec![5]]), 5);
    }

    #[test]
    fn single_tile_is_sum_of_stages() {
        assert_eq!(pipeline_cycles(&[vec![3, 4, 5]]), 12);
    }

    #[test]
    fn balanced_stages_overlap() {
        // n tiles × S stages of c cycles → (S−1)·c fill + n·c.
        let tiles = vec![vec![10u64, 10, 10]; 5];
        assert_eq!(pipeline_cycles(&tiles), 2 * 10 + 5 * 10);
    }

    #[test]
    fn bottleneck_stage_dominates() {
        // Stage 1 is 3× slower; steady state is governed by it.
        let tiles = vec![vec![10u64, 30, 10]; 10];
        let total = pipeline_cycles(&tiles);
        assert_eq!(total, 10 + 10 * 30 + 10); // fill + bottleneck + drain
        assert_eq!(steady_state_cycles(&tiles), 300);
    }

    #[test]
    fn paper_claim_ppe_is_critical_path() {
        // §4.6: PPE ≥ APE always, SB ≤ both; steady state = Σ PPE.
        let tiles: Vec<Vec<u64>> = (0..20).map(|i| vec![8, 32 + (i % 3), 32]).collect();
        let total_ppe: u64 = tiles.iter().map(|t| t[1]).sum();
        assert_eq!(steady_state_cycles(&tiles), total_ppe);
    }

    #[test]
    fn varying_tiles_respect_dependencies() {
        // Hand-checked schedule: two stages.
        // Tile A: [2, 10], tile B: [9, 1].
        // s0: A 0–2, B 2–11. s1: A 2–12, B max(12,11)=12–13.
        assert_eq!(pipeline_cycles(&[vec![2, 10], vec![9, 1]]), 13);
    }

    #[test]
    fn fill_overhead_nonnegative_for_uniform() {
        let tiles = vec![vec![7u64, 7]; 4];
        assert!(fill_overhead(&tiles) >= 0);
    }

    #[test]
    #[should_panic(expected = "same stage count")]
    fn ragged_tiles_rejected() {
        let _ = pipeline_cycles(&[vec![1, 2], vec![3]]);
    }
}
