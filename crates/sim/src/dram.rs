//! Off-chip DRAM model: bandwidth-bound transfer timing plus dynamic and
//! static energy — shared by the TransArray and every baseline so memory
//! effects never bias the comparison (§5.1's methodology).

use crate::energy::EnergyModel;

/// A bandwidth/energy DRAM model.
#[derive(Debug, Clone, PartialEq)]
pub struct DramModel {
    bytes_per_cycle: f64,
    burst_bytes: u64,
    traffic_bytes: u64,
    /// Logical transfer requests: one per [`DramModel::transfer`] call.
    requests: u64,
    /// Burst-granularity beats those requests decomposed into.
    bursts: u64,
}

impl DramModel {
    /// Creates a model with the given sustained bandwidth (bytes per
    /// accelerator cycle) and burst granularity.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth or burst size is zero.
    pub fn new(bytes_per_cycle: f64, burst_bytes: u64) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        assert!(burst_bytes > 0, "burst size must be non-zero");
        Self { bytes_per_cycle, burst_bytes, traffic_bytes: 0, requests: 0, bursts: 0 }
    }

    /// The paper-scale default: ~128 GB/s at 500 MHz → 256 B/cycle,
    /// 64-byte bursts.
    pub fn paper_default() -> Self {
        Self::new(256.0, 64)
    }

    /// Sustained bandwidth (bytes/cycle).
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Records a transfer of `bytes` (rounded up to bursts) and returns
    /// the cycles it occupies on the memory channel.
    ///
    /// Accounting: the call is **one request**; its burst-rounded beats
    /// accumulate separately in [`DramModel::bursts`] (they used to be
    /// conflated into a single unreadable counter).
    pub fn transfer(&mut self, bytes: u64) -> u64 {
        let bursts = bytes.div_ceil(self.burst_bytes);
        let moved = bursts * self.burst_bytes;
        self.traffic_bytes += moved;
        self.requests += 1;
        self.bursts += bursts;
        (moved as f64 / self.bytes_per_cycle).ceil() as u64
    }

    /// Cycles a transfer of `bytes` would take, without recording it.
    pub fn cycles_for(&self, bytes: u64) -> u64 {
        let bursts = bytes.div_ceil(self.burst_bytes);
        ((bursts * self.burst_bytes) as f64 / self.bytes_per_cycle).ceil() as u64
    }

    /// Total traffic recorded (bytes, burst-rounded).
    pub fn traffic_bytes(&self) -> u64 {
        self.traffic_bytes
    }

    /// Transfer requests recorded (one per [`DramModel::transfer`] call).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Burst beats recorded (each request's bytes rounded up to
    /// [`burst_bytes`](Self::new)-sized beats).
    pub fn bursts(&self) -> u64 {
        self.bursts
    }

    /// Dynamic DRAM energy of the recorded traffic (pJ).
    pub fn dynamic_pj(&self, model: &EnergyModel) -> f64 {
        model.dram_pj(self.traffic_bytes)
    }

    /// Static DRAM energy over `cycles` of wall-clock (pJ).
    pub fn static_pj(&self, model: &EnergyModel, cycles: u64) -> f64 {
        model.static_pj(model.dram_static_mw, cycles)
    }

    /// Resets the traffic counters.
    pub fn reset(&mut self) {
        self.traffic_bytes = 0;
        self.requests = 0;
        self.bursts = 0;
    }
}

impl Default for DramModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_rounds_to_bursts() {
        let mut d = DramModel::new(64.0, 64);
        let cycles = d.transfer(65);
        assert_eq!(d.traffic_bytes(), 128);
        assert_eq!(cycles, 2);
        assert_eq!(d.requests(), 1, "one transfer call = one request");
        assert_eq!(d.bursts(), 2, "65 bytes = two 64 B bursts");
    }

    #[test]
    fn requests_and_bursts_tracked_separately() {
        let mut d = DramModel::new(64.0, 64);
        d.transfer(64); // 1 burst
        d.transfer(400); // 7 bursts
        d.transfer(1); // 1 burst
        assert_eq!(d.requests(), 3);
        assert_eq!(d.bursts(), 9);
        assert_eq!(d.traffic_bytes(), 9 * 64);
    }

    #[test]
    fn cycles_scale_with_bandwidth() {
        let fast = DramModel::new(256.0, 64);
        let slow = DramModel::new(64.0, 64);
        assert_eq!(fast.cycles_for(1 << 20) * 4, slow.cycles_for(1 << 20));
    }

    #[test]
    fn dynamic_energy_tracks_traffic() {
        let model = EnergyModel::paper_28nm();
        let mut d = DramModel::paper_default();
        d.transfer(1024);
        let e1 = d.dynamic_pj(&model);
        d.transfer(1024);
        assert!((d.dynamic_pj(&model) / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn static_energy_independent_of_traffic() {
        let model = EnergyModel::paper_28nm();
        let d = DramModel::paper_default();
        let e = d.static_pj(&model, 1000);
        assert!(e > 0.0);
        let d2 = {
            let mut x = DramModel::paper_default();
            x.transfer(1 << 30);
            x
        };
        assert_eq!(e, d2.static_pj(&model, 1000));
    }

    #[test]
    fn reset_clears() {
        let mut d = DramModel::paper_default();
        d.transfer(100);
        d.reset();
        assert_eq!(d.traffic_bytes(), 0);
        assert_eq!(d.requests(), 0);
        assert_eq!(d.bursts(), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = DramModel::new(0.0, 64);
    }
}
