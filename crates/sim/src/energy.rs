//! Energy model — per-event pJ constants at the paper's 28 nm / 500 MHz
//! operating point, and the breakdown accounting behind Fig. 10/11.
//!
//! The constants are scaled from the published 45 nm energy tables
//! (Horowitz, ISSCC'14: 32-bit add ≈ 0.1 pJ, 8-bit mult ≈ 0.2 pJ, SRAM
//! and DRAM access figures) by the standard ~0.5× dynamic-energy factor
//! for 45→28 nm, with SRAM access energy following a CACTI-like
//! `a + b·√KB` law. Absolute joules are **not** the reproduction target —
//! every figure reports ratios, which these constants preserve (DESIGN.md
//! §3).

/// Per-event energies (picojoules) and static powers (milliwatts).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Technology scale factor applied to the 45 nm base numbers.
    pub tech_scale: f64,
    /// DRAM dynamic energy per byte (pJ/B).
    pub dram_pj_per_byte: f64,
    /// DRAM static (background + refresh) power in mW.
    pub dram_static_mw: f64,
    /// Core static power per mm² of logic (mW/mm²).
    pub core_static_mw_per_mm2: f64,
    /// SRAM static power per KB (mW/KB).
    pub sram_static_mw_per_kb: f64,
    /// Clock frequency (Hz) — converts cycle counts to seconds for the
    /// static-energy integrals.
    pub freq_hz: f64,
}

impl EnergyModel {
    /// The paper's operating point: 28 nm, 500 MHz.
    pub fn paper_28nm() -> Self {
        Self {
            tech_scale: 0.5,
            // LPDDR4X-class device energy, ~3 pJ/bit (interface + array;
            // the accelerator literature's common figure for mobile-class
            // DRAM at this node).
            dram_pj_per_byte: 24.0,
            dram_static_mw: 140.0,
            core_static_mw_per_mm2: 60.0,
            sram_static_mw_per_kb: 0.009,
            freq_hz: 500.0e6,
        }
    }

    /// Energy of one `bits`-wide integer addition (pJ).
    ///
    /// Linear in width from the 45 nm anchor (32-bit add = 0.1 pJ,
    /// Horowitz), times the technology scale.
    pub fn add_pj(&self, bits: u32) -> f64 {
        self.tech_scale * 0.1 * bits as f64 / 32.0
    }

    /// Energy of one `bits × bits` integer multiply (pJ).
    ///
    /// Quadratic in width from the 45 nm anchor (8-bit mult = 0.2 pJ).
    pub fn mult_pj(&self, bits: u32) -> f64 {
        self.tech_scale * 0.2 * (bits as f64 / 8.0).powi(2)
    }

    /// Energy of one `bits`-precision MAC (multiply + accumulate at 4×
    /// accumulator width).
    pub fn mac_pj(&self, bits: u32) -> f64 {
        self.mult_pj(bits) + self.add_pj(4 * bits)
    }

    /// SRAM access energy per byte for a buffer of `capacity_kb` KB
    /// (pJ/B): CACTI-like `a + b·√KB` law anchored at ~0.08 pJ/B for 8 KB
    /// and growing with bank size.
    pub fn sram_pj_per_byte(&self, capacity_kb: f64) -> f64 {
        self.tech_scale * (0.06 + 0.04 * capacity_kb.max(1.0).sqrt())
    }

    /// DRAM access energy for `bytes` (pJ).
    pub fn dram_pj(&self, bytes: u64) -> f64 {
        self.dram_pj_per_byte * bytes as f64
    }

    /// Static energy (pJ) burned by `mw` milliwatts over `cycles` cycles.
    pub fn static_pj(&self, mw: f64, cycles: u64) -> f64 {
        // mW · s = µJ; ×1e6 → pJ.
        mw * (cycles as f64 / self.freq_hz) * 1.0e9
    }

    /// Seconds for a cycle count at the model frequency.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_28nm()
    }
}

/// Energy breakdown in pJ, matching Fig. 11's slices.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// PE-array / scoreboard / NoC dynamic energy.
    pub core: f64,
    /// Weight-buffer accesses.
    pub weight_buf: f64,
    /// Input-buffer accesses.
    pub input_buf: f64,
    /// Output-buffer accesses.
    pub output_buf: f64,
    /// Prefix-buffer accesses (TransArray only).
    pub prefix_buf: f64,
    /// Double-buffer / crossbar queue accesses.
    pub double_buf: f64,
    /// DRAM dynamic (request) energy.
    pub dram_dynamic: f64,
    /// DRAM static energy over the execution time.
    pub dram_static: f64,
    /// Core + SRAM leakage over the execution time.
    pub core_static: f64,
}

impl EnergyBreakdown {
    /// Total buffer energy (the "Buffer" super-slice of Fig. 11).
    pub fn buffer_total(&self) -> f64 {
        self.weight_buf + self.input_buf + self.output_buf + self.prefix_buf + self.double_buf
    }

    /// Grand total (pJ).
    pub fn total(&self) -> f64 {
        self.core + self.buffer_total() + self.dram_dynamic + self.dram_static + self.core_static
    }

    /// Elementwise accumulation.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.core += other.core;
        self.weight_buf += other.weight_buf;
        self.input_buf += other.input_buf;
        self.output_buf += other.output_buf;
        self.prefix_buf += other.prefix_buf;
        self.double_buf += other.double_buf;
        self.dram_dynamic += other.dram_dynamic;
        self.dram_static += other.dram_static;
        self.core_static += other.core_static;
    }

    /// Scales every slice (used by the sampling extrapolation).
    pub fn scale(&mut self, factor: f64) {
        self.core *= factor;
        self.weight_buf *= factor;
        self.input_buf *= factor;
        self.output_buf *= factor;
        self.prefix_buf *= factor;
        self.double_buf *= factor;
        self.dram_dynamic *= factor;
        self.dram_static *= factor;
        self.core_static *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_energy_scales_linearly() {
        let m = EnergyModel::paper_28nm();
        let e12 = m.add_pj(12);
        let e24 = m.add_pj(24);
        assert!((e24 / e12 - 2.0).abs() < 1e-12);
        // 32-bit add at 28nm ≈ 0.05 pJ.
        assert!((m.add_pj(32) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn mult_energy_scales_quadratically() {
        let m = EnergyModel::paper_28nm();
        assert!((m.mult_pj(16) / m.mult_pj(8) - 4.0).abs() < 1e-9);
        assert!((m.mult_pj(4) / m.mult_pj(8) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn mac_dominated_by_multiplier() {
        let m = EnergyModel::paper_28nm();
        assert!(m.mac_pj(8) > m.mult_pj(8));
        assert!(m.mac_pj(8) < 2.0 * m.mult_pj(8) + m.add_pj(32));
    }

    #[test]
    fn adder_vs_mac_ratio_motivates_multiplication_free() {
        // The paper's multiplication-free pitch: a 12-bit PPE add must be
        // far cheaper than an 8-bit MAC.
        let m = EnergyModel::paper_28nm();
        assert!(m.mac_pj(8) / m.add_pj(12) > 5.0);
    }

    #[test]
    fn sram_energy_grows_with_capacity() {
        let m = EnergyModel::paper_28nm();
        assert!(m.sram_pj_per_byte(80.0) > m.sram_pj_per_byte(8.0));
        assert!(m.sram_pj_per_byte(8.0) > 0.0);
    }

    #[test]
    fn static_energy_accumulates_with_time() {
        let m = EnergyModel::paper_28nm();
        let e1 = m.static_pj(100.0, 500);
        let e2 = m.static_pj(100.0, 1000);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
        // 100 mW for 1 s = 0.1 J = 1e11 pJ.
        let one_second = m.freq_hz as u64;
        assert!((m.static_pj(100.0, one_second) - 1.0e11).abs() / 1.0e11 < 1e-9);
    }

    #[test]
    fn breakdown_totals() {
        let mut b = EnergyBreakdown {
            core: 1.0,
            weight_buf: 2.0,
            input_buf: 3.0,
            output_buf: 4.0,
            prefix_buf: 5.0,
            double_buf: 6.0,
            dram_dynamic: 7.0,
            dram_static: 8.0,
            core_static: 9.0,
        };
        assert_eq!(b.buffer_total(), 20.0);
        assert_eq!(b.total(), 45.0);
        let c = b;
        b.add(&c);
        assert_eq!(b.total(), 90.0);
        b.scale(0.5);
        assert_eq!(b.total(), 45.0);
    }
}
