//! Error types for the public request–response API.
//!
//! The historical entry points (`TransitiveArray::new`, `execute_gemm`)
//! panic on bad inputs — fine for experiment drivers, fatal for a serving
//! frontend. Everything reachable from [`crate::Session`] returns
//! [`TaError`] instead; panics remain only for internal invariant
//! violations (a computed pattern missing from the slab, an accumulator
//! overflowing the simulated datapath).

use std::error::Error;
use std::fmt;

/// A configuration rejected by [`crate::ConfigBuilder`] (or by
/// [`crate::TransArrayConfig::try_validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// TransRow width outside the supported `1..=16` range.
    WidthOutOfRange {
        /// The rejected width.
        width: u32,
    },
    /// `max_transrows` was zero.
    ZeroTransrows,
    /// `max_transrows` is not a multiple of `weight_bits`, so weight rows
    /// cannot be sliced into whole TransRow groups.
    IndivisibleTransrows {
        /// The rejected row count.
        max_transrows: usize,
        /// The weight precision it must divide into.
        weight_bits: u32,
    },
    /// Weight precision outside `2..=16`.
    WeightBitsOutOfRange {
        /// The rejected precision.
        bits: u32,
    },
    /// Activation precision outside `2..=16`.
    ActBitsOutOfRange {
        /// The rejected precision.
        bits: u32,
    },
    /// The accelerator needs at least one TransArray unit.
    ZeroUnits,
    /// `m_tile` was zero.
    ZeroMTile,
    /// `plan_cache_shards` was set while the plan cache is disabled
    /// (`plan_cache == 0`) — the knob would be silently ignored.
    ShardsWithoutCache {
        /// The requested shard count.
        shards: usize,
    },
    /// More plan-cache shards than cache entries: every shard would hold
    /// less than one entry. The legacy constructors clamp this silently;
    /// the builder rejects it.
    ShardsExceedCache {
        /// The requested shard count.
        shards: usize,
        /// The requested cache capacity (entries).
        cache: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WidthOutOfRange { width } => {
                write!(f, "width {width} out of range: must be in 1..=16")
            }
            Self::ZeroTransrows => write!(f, "max_transrows must be non-zero"),
            Self::IndivisibleTransrows { max_transrows, weight_bits } => write!(
                f,
                "max_transrows ({max_transrows}) must divide into weight_bits ({weight_bits})"
            ),
            Self::WeightBitsOutOfRange { bits } => {
                write!(f, "weight_bits {bits} out of range: must be in 2..=16")
            }
            Self::ActBitsOutOfRange { bits } => {
                write!(f, "act_bits {bits} out of range: must be in 2..=16")
            }
            Self::ZeroUnits => write!(f, "need at least one unit"),
            Self::ZeroMTile => write!(f, "m_tile must be non-zero"),
            Self::ShardsWithoutCache { shards } => write!(
                f,
                "plan_cache_shards = {shards} has no effect with plan_cache = 0; \
                 enable the cache or drop the shard knob"
            ),
            Self::ShardsExceedCache { shards, cache } => write!(
                f,
                "plan_cache_shards ({shards}) exceeds plan_cache capacity ({cache}): \
                 each shard must hold at least one entry"
            ),
        }
    }
}

impl Error for ConfigError {}

/// Any error the request–response API ([`crate::Session`]) can return.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TaError {
    /// The accelerator configuration is invalid.
    Config(ConfigError),
    /// GEMM inner dimension mismatch: `weights.cols() != input.rows()`.
    ShapeMismatch {
        /// Columns of the weight matrix (the inner dimension `K`).
        weight_cols: usize,
        /// Rows of the input matrix (must equal `weight_cols`).
        input_rows: usize,
    },
    /// The input matrix does not fit the configured activation precision.
    InputRange {
        /// The configured activation precision in bits.
        act_bits: u32,
    },
    /// The weight matrix does not fit the configured weight precision.
    WeightRange {
        /// The configured weight precision in bits.
        weight_bits: u32,
    },
    /// A simulate request's pattern source disagrees with the
    /// accelerator's TransRow width.
    SourceWidthMismatch {
        /// The source's TransRow width.
        source: u32,
        /// The accelerator's TransRow width.
        accelerator: u32,
    },
}

impl TaError {
    /// A stable snake_case tag naming this error's variant, for log
    /// lines, metrics labels, and machine-readable error taxonomies.
    /// Serving-layer error types (ta-serve's `ServeError`) wrap
    /// `TaError` for validation failures and lean on this tag when
    /// classifying rejections, so the strings here are a compatibility
    /// surface: add new tags freely, never rename existing ones.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Config(_) => "config",
            Self::ShapeMismatch { .. } => "shape_mismatch",
            Self::InputRange { .. } => "input_range",
            Self::WeightRange { .. } => "weight_range",
            Self::SourceWidthMismatch { .. } => "source_width_mismatch",
        }
    }
}

impl fmt::Display for TaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::ShapeMismatch { weight_cols, input_rows } => write!(
                f,
                "GEMM inner dimension mismatch: weights have {weight_cols} columns but the \
                 input has {input_rows} rows"
            ),
            Self::InputRange { act_bits } => {
                write!(f, "input does not fit act_bits ({act_bits}); quantize first")
            }
            Self::WeightRange { weight_bits } => {
                write!(f, "weights do not fit weight_bits ({weight_bits}); quantize first")
            }
            Self::SourceWidthMismatch { source, accelerator } => write!(
                f,
                "source width mismatch: source emits width-{source} patterns but the \
                 accelerator runs width {accelerator}"
            ),
        }
    }
}

impl Error for TaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for TaError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_knob() {
        let e = ConfigError::IndivisibleTransrows { max_transrows: 100, weight_bits: 8 };
        assert!(e.to_string().contains("must divide"));
        let e = ConfigError::ShardsExceedCache { shards: 64, cache: 8 };
        assert!(e.to_string().contains("64") && e.to_string().contains("8"));
        let e = TaError::ShapeMismatch { weight_cols: 3, input_rows: 4 };
        assert!(e.to_string().contains("inner dimension mismatch"));
    }

    #[test]
    fn kind_tags_are_stable_snake_case() {
        let cases = [
            (TaError::Config(ConfigError::ZeroUnits), "config"),
            (TaError::ShapeMismatch { weight_cols: 1, input_rows: 2 }, "shape_mismatch"),
            (TaError::InputRange { act_bits: 8 }, "input_range"),
            (TaError::WeightRange { weight_bits: 4 }, "weight_range"),
            (TaError::SourceWidthMismatch { source: 4, accelerator: 8 }, "source_width_mismatch"),
        ];
        for (err, tag) in cases {
            assert_eq!(err.kind(), tag);
            assert!(tag.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn ta_error_wraps_config_error_as_source() {
        let e = TaError::from(ConfigError::ZeroUnits);
        assert!(matches!(e, TaError::Config(ConfigError::ZeroUnits)));
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("at least one unit"));
    }
}
